/**
 * @file
 * The cluster cache of the hierarchical machine (Section 8's first
 * research question: "how to extend our scheme to hierarchical
 * structures more amiable to large scale parallel processing").
 *
 * A cluster groups several PEs (with their private L1 caches) on a
 * cluster bus; one ClusterCache per cluster connects that bus to the
 * global bus.  The RB scheme is applied recursively:
 *
 *  - Within a cluster, the L1s run ordinary RB on the cluster bus;
 *    the ClusterCache is the bus's memory side.
 *  - Across clusters, the ClusterCaches run RB on the global bus: a
 *    cluster-cache entry is Readable (value matches global memory) or
 *    Local (this cluster owns the word; global memory may be stale).
 *
 * Key mechanics:
 *  - Reads that hit the cluster cache never reach the global bus
 *    (the hierarchy filters read traffic, which dominates by the
 *    paper's assumption 1).
 *  - A cluster-bus write is accepted only while the cluster owns the
 *    word (entry Local); otherwise the ClusterCache NACKs it,
 *    acquires global ownership with a global bus write (which
 *    invalidates all other clusters), and accepts the retry.  Once
 *    owned, all further writes in the cluster stay cluster-internal.
 *  - RMW-class operations (TS, read-lock/write-unlock) always
 *    serialize on the global bus; an owned (possibly dirty) word is
 *    flushed global-ward first.
 *  - Snoop broadcasts propagate down *within the cycle*: the global
 *    and cluster buses form one logically single broadcast medium
 *    ("although physically this may be a set of buses", Section 1),
 *    so every globally visible write invalidates every stale L1 copy
 *    in the same cycle that it commits.
 *  - A global read of a word whose latest value sits in some L1 is
 *    killed and supplied through the ClusterCache, which sources the
 *    data from the dirty child.
 *
 * Simplifications (documented in DESIGN.md): RB at both levels,
 * one-word blocks, and an unbounded (fully associative) cluster cache
 * so inclusion of the L1s is structural.
 */

#ifndef DDC_HIER_CLUSTER_CACHE_HH
#define DDC_HIER_CLUSTER_CACHE_HH

#include <deque>
#include <vector>

#include "base/flat_map.hh"
#include "base/types.hh"
#include "sim/bus.hh"
#include "sim/cache.hh"
#include "stats/counter.hh"

namespace ddc {
namespace hier {

/** One cluster's second-level cache: global BusClient + cluster
 *  MemorySide. */
class ClusterCache : public BusClient, public MemorySide
{
  public:
    /**
     * @param cluster_id This cluster's index.
     * @param stats Counter set receiving hier.* statistics.
     */
    ClusterCache(int cluster_id, stats::CounterSet &stats);

    /**
     * Attach to the global interconnect (exactly once) — the snooping
     * global Bus or the directory fabric; the recursive-RB mechanics
     * are identical either way.
     */
    void connectGlobal(GlobalFabric &fabric);

    /** Register a child L1 (all children before first use). */
    void addChild(Cache *child);

    /** Does this cluster currently own @p addr (entry Local)? */
    bool owns(Addr addr) const;

    /** Does this cluster hold any entry for @p addr? */
    bool holds(Addr addr) const;

    /** The cluster cache's value of @p addr (0 when absent). */
    Word value(Addr addr) const;

    // ---- Global-bus client side ----------------------------------
    bool hasRequest() override;
    BusRequest currentRequest() override;
    Addr pendingAddr() const override;
    void requestComplete(const BusResult &result) override;
    bool wouldSupply(Addr addr, Word &value) override;
    void observe(const BusTransaction &txn) override;
    void supplied(Addr addr) override;
    void requestNacked() override;
    PeId peId() const override;

    // ---- Cluster-bus memory side ----------------------------------
    /**
     * As a memory side the cluster cache never self-schedules:
     * whenever it has queued forwards it is armed on the *global* bus
     * (updateArmed()), and a cluster-bus transaction it NACKed leaves
     * the issuing L1 armed on the cluster bus — so one of the two
     * buses always reports the pending work and kNever here never
     * hides an event from the skip engine.
     *
     * The same property gives the lookahead window its one-cycle
     * global-serialization latency: cluster traffic only goes
     * global-ward through here, during the cluster bus's own tick
     * (execute/forward), so a cluster whose bus has no event before
     * cycle c cannot arm the global interconnect before c either —
     * Shard::earliestGlobalEmission counts the bus, not this side.
     */
    Cycle
    nextEventCycle(Cycle now) const override
    {
        (void)now;
        return kNever;
    }

    bool tryRead(Addr addr, PeId pe, Word &data) override;
    bool tryReadBlock(Addr base, std::size_t words, PeId pe,
                      std::vector<Word> &block) override;
    bool tryWrite(Addr addr, PeId pe, Word data) override;
    bool tryInvalidate(Addr addr, PeId pe, Word data) override;
    bool tryWriteBlock(Addr base, PeId pe,
                       const std::vector<Word> &block) override;
    bool tryRmw(Addr addr, PeId pe, Word set_value, Word &old,
                bool &success) override;
    bool tryReadLock(Addr addr, PeId pe, Word &data) override;
    bool tryWriteUnlock(Addr addr, PeId pe, Word data) override;
    void acceptSupply(Addr addr, Word data) override;
    void acceptSupplyBlock(Addr base,
                           const std::vector<Word> &block) override;

  private:
    /** Global-level coherence entry for one word. */
    struct Entry
    {
        /** Readable (matches global memory) or Local (cluster owns). */
        LineTag tag = LineTag::Readable;
        Word value = 0;
    };

    /** A cluster-bus request being serialized on the global bus. */
    struct Forward
    {
        BusOp op = BusOp::Read;
        Addr addr = 0;
        Word data = 0;
        PeId origin = kNoPe;
        /** Child to complete directly at the global commit instant. */
        Cache *origin_child = nullptr;
        /** The child's accessId at enqueue (abandonment detection). */
        std::uint64_t child_access = 0;
    };

    /** Queue a forward unless @p pe already has one in flight. */
    void enqueueForward(BusOp op, Addr addr, Word data, PeId pe);

    /** Drop @p pe's queued forward (its op is being served locally). */
    void cancelForward(PeId pe);

    /** Serve queued forwards that became cluster-serviceable. */
    void resolvePendingLocally();

    /** Complete a forward's originating L1 (drops abandoned reads). */
    void deliverToChild(const Forward &forward, const BusResult &result);

    /** Deliver a (downward) broadcast to every child L1. */
    void forwardDown(const BusTransaction &txn);

    /** Re-arm/disarm on the global bus after a forwards mutation. */
    void updateArmed();

    /** Number of BusOp enumerators (op-indexed handle table). */
    static constexpr std::size_t kNumBusOps = 6;

    int clusterId;
    stats::CounterSet &stats;
    std::vector<Cache *> children;
    FlatMap<PeId, Cache *> childByPe;
    GlobalFabric *global = nullptr;
    /** This cluster's client index on the global fabric. */
    int clientIndex = -1;

    // Handles interned once at construction (per-event adds).
    stats::CounterId statForwardCancelled, statDroppedReadCompletion,
        statPull, statForwardResolvedLocally, statFlush,
        statGlobalInvalidation, statSupply, statForwardRotate,
        statDownwardBroadcast, statAbsorbedRead, statAbsorbedWrite;
    /** hier.forward.<op> counters, indexed by BusOp. */
    stats::CounterId statForwardOp[kNumBusOps];

    /**
     * Per-word coherence entries, on the same FlatMap
     * (base/flat_map.hh) as the directory and the memory banks —
     * looked up on every cluster-bus transaction and every global
     * observation, the hierarchical machine's per-access hot path.
     */
    FlatMap<Addr, Entry> entries;
    std::deque<Forward> forwards;
    /** True while the front forward is its pre-flush global write. */
    bool flushing = false;
    /** Child chosen by the last wouldSupply, pending supplied(). */
    Cache *pendingSupplyChild = nullptr;
};

} // namespace hier
} // namespace ddc

#endif // DDC_HIER_CLUSTER_CACHE_HH
