/**
 * @file
 * Unit tests for the RWB scheme: every edge of the Figure 5-1 state
 * transition diagram, the First-write streak logic, and the BI signal,
 * including the generalized k-writes-to-local rule of footnote 6.
 */

#include <gtest/gtest.h>

#include "core/rwb.hh"

namespace ddc {
namespace {

const LineState kNP{LineTag::NotPresent, 0};
const LineState kI{LineTag::Invalid, 0};
const LineState kR{LineTag::Readable, 0};
const LineState kL{LineTag::Local, 0};
const LineState kF1{LineTag::FirstWrite, 1};
const LineState kF2{LineTag::FirstWrite, 2};

class RwbTest : public ::testing::Test
{
  protected:
    RwbProtocol rwb; // paper default: k = 2
};

TEST_F(RwbTest, Identity)
{
    EXPECT_EQ(rwb.name(), "RWB");
    EXPECT_TRUE(rwb.broadcastsWrites());
    EXPECT_EQ(rwb.writesToLocal(), 2);
}

// --- Reads ---------------------------------------------------------------

TEST_F(RwbTest, ReadsHitInReadableFirstWriteAndLocal)
{
    for (auto state : {kR, kF1, kL}) {
        auto reaction = rwb.onCpuAccess(state, CpuOp::Read,
                                        DataClass::Shared);
        EXPECT_FALSE(reaction.needs_bus);
        EXPECT_EQ(reaction.next, state); // own reads keep the streak
    }
}

TEST_F(RwbTest, ReadMissGeneratesBusRead)
{
    for (auto state : {kI, kNP}) {
        auto reaction = rwb.onCpuAccess(state, CpuOp::Read,
                                        DataClass::Shared);
        EXPECT_TRUE(reaction.needs_bus);
        EXPECT_EQ(reaction.bus_op, BusOp::Read);
    }
    EXPECT_EQ(rwb.afterBusOp(kI, BusOp::Read, false), kR);
}

// --- The write streak ------------------------------------------------

TEST_F(RwbTest, FirstWriteBroadcastsData)
{
    auto reaction = rwb.onCpuAccess(kR, CpuOp::Write, DataClass::Shared);
    EXPECT_TRUE(reaction.needs_bus);
    EXPECT_EQ(reaction.bus_op, BusOp::Write);
    EXPECT_EQ(rwb.afterBusOp(kR, BusOp::Write, false), kF1);
}

TEST_F(RwbTest, SecondWriteConfirmsLocalWithBusInvalidate)
{
    auto reaction = rwb.onCpuAccess(kF1, CpuOp::Write, DataClass::Shared);
    EXPECT_TRUE(reaction.needs_bus);
    EXPECT_EQ(reaction.bus_op, BusOp::Invalidate);
    EXPECT_EQ(rwb.afterBusOp(kF1, BusOp::Invalidate, false), kL);
}

TEST_F(RwbTest, WritesInLocalStayLocal)
{
    auto reaction = rwb.onCpuAccess(kL, CpuOp::Write, DataClass::Shared);
    EXPECT_FALSE(reaction.needs_bus);
    EXPECT_EQ(reaction.next, kL);
    EXPECT_TRUE(reaction.update_value);
}

TEST_F(RwbTest, WriteMissEntersFirstWrite)
{
    auto reaction = rwb.onCpuAccess(kNP, CpuOp::Write, DataClass::Shared);
    EXPECT_TRUE(reaction.needs_bus);
    EXPECT_EQ(reaction.bus_op, BusOp::Write);
    EXPECT_EQ(rwb.afterBusOp(kNP, BusOp::Write, false), kF1);
}

TEST_F(RwbTest, GeneralizedKRequiresKWrites)
{
    RwbProtocol rwb3(3);
    // First write: BW -> F1; second: BW -> F2; third: BI -> L.
    EXPECT_EQ(rwb3.onCpuAccess(kR, CpuOp::Write, DataClass::Shared).bus_op,
              BusOp::Write);
    EXPECT_EQ(rwb3.afterBusOp(kR, BusOp::Write, false), kF1);
    EXPECT_EQ(rwb3.onCpuAccess(kF1, CpuOp::Write, DataClass::Shared).bus_op,
              BusOp::Write);
    EXPECT_EQ(rwb3.afterBusOp(kF1, BusOp::Write, false), kF2);
    EXPECT_EQ(rwb3.onCpuAccess(kF2, CpuOp::Write, DataClass::Shared).bus_op,
              BusOp::Invalidate);
    EXPECT_EQ(rwb3.afterBusOp(kF2, BusOp::Invalidate, false), kL);
}

TEST_F(RwbTest, KOfOneGoesStraightToLocal)
{
    RwbProtocol rwb1(1);
    EXPECT_EQ(rwb1.onCpuAccess(kR, CpuOp::Write, DataClass::Shared).bus_op,
              BusOp::Invalidate);
    EXPECT_EQ(rwb1.afterBusOp(kR, BusOp::Invalidate, false), kL);
}

// --- Snooping: reads -------------------------------------------------

TEST_F(RwbTest, SnoopedReadFillsInvalid)
{
    auto reaction = rwb.onSnoop(kI, BusOp::Read);
    EXPECT_EQ(reaction.next, kR);
    EXPECT_TRUE(reaction.snarf);
}

TEST_F(RwbTest, SnoopedReadLeavesFirstWriteUnchanged)
{
    // "All other configurations will be unchanged" for bus reads.
    auto reaction = rwb.onSnoop(kF1, BusOp::Read);
    EXPECT_EQ(reaction.next, kF1);
    EXPECT_FALSE(reaction.snarf);
    EXPECT_FALSE(reaction.supply);
}

TEST_F(RwbTest, SnoopedReadSuppliedByLocalOwner)
{
    EXPECT_TRUE(rwb.onSnoop(kL, BusOp::Read).supply);
}

// --- Snooping: writes (the data broadcast) ------------------------------

TEST_F(RwbTest, SnoopedWriteUpdatesInsteadOfInvalidating)
{
    for (auto state : {kR, kI, kF1, kF2, kL}) {
        auto reaction = rwb.onSnoop(state, BusOp::Write);
        EXPECT_EQ(reaction.next, kR) << toString(state);
        EXPECT_TRUE(reaction.snarf) << toString(state);
    }
}

TEST_F(RwbTest, SnoopedWriteResetsStreak)
{
    auto reaction = rwb.onSnoop(kF1, BusOp::Write);
    EXPECT_EQ(reaction.next.streak, 0);
}

// --- Snooping: the BI signal ---------------------------------------------

TEST_F(RwbTest, SnoopedInvalidateKillsEveryCopy)
{
    for (auto state : {kR, kI, kF1}) {
        auto reaction = rwb.onSnoop(state, BusOp::Invalidate);
        EXPECT_EQ(reaction.next, kI) << toString(state);
        EXPECT_FALSE(reaction.snarf);
    }
}

// --- Supply / write-back -------------------------------------------------

TEST_F(RwbTest, SupplierBecomesReadable)
{
    EXPECT_EQ(rwb.afterSupply(kL), kR);
}

TEST_F(RwbTest, FirstWriteNeedsNoWriteback)
{
    // F wrote through: memory is current (the array-init argument of
    // Section 5 — one bus write per element instead of RB's two).
    EXPECT_FALSE(rwb.needsWriteback(kF1));
    EXPECT_FALSE(rwb.needsWriteback(kF2));
    EXPECT_TRUE(rwb.needsWriteback(kL));
    EXPECT_FALSE(rwb.needsWriteback(kR));
}

// --- Synchronization ops ---------------------------------------------

TEST_F(RwbTest, RmwSuccessLeavesSharedConfiguration)
{
    // "the RWB scheme will leave the caches in a shared configuration
    // so that subsequent reads cause no bus activity."
    EXPECT_EQ(rwb.afterBusOp(kR, BusOp::Rmw, true), kF1);
}

TEST_F(RwbTest, RmwFailureActsAsRead)
{
    EXPECT_EQ(rwb.afterBusOp(kR, BusOp::Rmw, false), kR);
}

TEST_F(RwbTest, WriteUnlockLandsFirstWrite)
{
    EXPECT_EQ(rwb.afterBusOp(kR, BusOp::WriteUnlock, false), kF1);
}

TEST_F(RwbTest, ConstructorRejectsBadK)
{
    EXPECT_DEATH(RwbProtocol(0), "writes_to_local");
}

} // namespace
} // namespace ddc
