/**
 * @file
 * Unit tests for the Cache: hit/miss flows, snarfing, the Local-state
 * intervention, eviction write-back, the flush-before-RMW phase, and
 * the lazy broadcast-fill completion.
 */

#include <gtest/gtest.h>

#include "core/rb.hh"
#include "core/rwb.hh"
#include "sim/bus.hh"
#include "sim/cache.hh"
#include "sim/memory.hh"

namespace ddc {
namespace {

/** A two-cache single-bus rig with manual clock control. */
template <typename ProtocolType>
class Rig
{
  public:
    explicit Rig(std::size_t lines = 8)
        : memory(stats), bus(memory, ArbiterKind::RoundRobin, clock, stats),
          cache0(0, lines, protocol, clock, stats, &log),
          cache1(1, lines, protocol, clock, stats, &log)
    {
        cache0.connectBus(bus);
        cache1.connectBus(bus);
    }

    /** Run bus cycles until @p cache completes its pending op. */
    Cache::AccessResult
    drain(Cache &cache, int max_cycles = 64)
    {
        for (int i = 0; i < max_cycles; i++) {
            if (cache.hasCompletion())
                return cache.takeCompletion();
            bus.tick();
            clock.now++;
        }
        ADD_FAILURE() << "cache op did not complete";
        return {};
    }

    /** Issue @p ref and run it to completion. */
    Cache::AccessResult
    access(Cache &cache, const MemRef &ref)
    {
        auto result = cache.cpuAccess(ref);
        if (result.complete)
            return result;
        return drain(cache);
    }

    stats::CounterSet stats;
    Clock clock;
    ExecutionLog log;
    ProtocolType protocol;
    Memory memory;
    Bus bus;
    Cache cache0;
    Cache cache1;
};

MemRef
read(Addr addr)
{
    return {CpuOp::Read, addr, 0, DataClass::Shared};
}

MemRef
write(Addr addr, Word data)
{
    return {CpuOp::Write, addr, data, DataClass::Shared};
}

MemRef
tas(Addr addr, Word data = 1)
{
    return {CpuOp::TestAndSet, addr, data, DataClass::Shared};
}

TEST(CacheRb, ReadMissFetchesFromMemory)
{
    Rig<RbProtocol> rig;
    rig.memory.write(3, 42);
    auto result = rig.access(rig.cache0, read(3));
    EXPECT_EQ(result.value, 42u);
    EXPECT_EQ(rig.cache0.lineState(3).tag, LineTag::Readable);
    EXPECT_EQ(rig.cache0.lineValue(3), 42u);
}

TEST(CacheRb, ReadHitGeneratesNoBusTraffic)
{
    Rig<RbProtocol> rig;
    rig.access(rig.cache0, read(3));
    auto before = rig.stats.get("bus.busy_cycles");
    auto result = rig.cache0.cpuAccess(read(3));
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(rig.stats.get("bus.busy_cycles"), before);
}

TEST(CacheRb, WriteThroughInvalidatesOtherCopy)
{
    Rig<RbProtocol> rig;
    rig.access(rig.cache0, read(3));
    rig.access(rig.cache1, read(3));
    EXPECT_EQ(rig.cache1.lineState(3).tag, LineTag::Readable);

    rig.access(rig.cache0, write(3, 7));
    EXPECT_EQ(rig.cache0.lineState(3).tag, LineTag::Local);
    EXPECT_EQ(rig.cache1.lineState(3).tag, LineTag::Invalid);
    EXPECT_EQ(rig.memory.peek(3), 7u);
}

TEST(CacheRb, LocalWritesStayInCache)
{
    Rig<RbProtocol> rig;
    rig.access(rig.cache0, write(3, 1));
    auto busy = rig.stats.get("bus.busy_cycles");
    auto result = rig.cache0.cpuAccess(write(3, 2));
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(rig.stats.get("bus.busy_cycles"), busy);
    EXPECT_EQ(rig.cache0.lineValue(3), 2u);
    EXPECT_EQ(rig.memory.peek(3), 1u); // memory is stale until supplied
}

TEST(CacheRb, LocalOwnerSuppliesReader)
{
    Rig<RbProtocol> rig;
    rig.access(rig.cache0, write(3, 1));
    rig.access(rig.cache0, write(3, 2)); // dirty local copy

    auto result = rig.access(rig.cache1, read(3));
    EXPECT_EQ(result.value, 2u);
    EXPECT_EQ(rig.memory.peek(3), 2u); // supply updated memory
    EXPECT_EQ(rig.cache0.lineState(3).tag, LineTag::Readable);
    EXPECT_EQ(rig.cache1.lineState(3).tag, LineTag::Readable);
    EXPECT_GE(rig.stats.get("bus.kill"), 1u);
    EXPECT_GE(rig.stats.get("cache.supply"), 1u);
}

TEST(CacheRb, RbDoesNotFillReaderFromSupplyWrite)
{
    // In RB the killed read must retry: the supply write invalidates
    // rather than fills, so the retry is a real second transaction.
    Rig<RbProtocol> rig;
    rig.access(rig.cache0, write(3, 1));
    rig.access(rig.cache0, write(3, 2));
    rig.access(rig.cache1, read(3));
    EXPECT_EQ(rig.stats.get("cache.broadcast_fill"), 0u);
}

TEST(CacheRb, EvictionWritesBackDirtyVictim)
{
    Rig<RbProtocol> rig(4); // addrs 1 and 5 collide (mod 4)
    rig.access(rig.cache0, write(1, 10));
    rig.access(rig.cache0, write(1, 11)); // 1 is dirty Local
    auto result = rig.access(rig.cache0, read(5));
    EXPECT_EQ(result.value, 0u);
    EXPECT_EQ(rig.memory.peek(1), 11u); // victim written back
    EXPECT_EQ(rig.stats.get("cache.writeback"), 1u);
    EXPECT_EQ(rig.cache0.lineState(1).tag, LineTag::NotPresent);
    EXPECT_EQ(rig.cache0.lineState(5).tag, LineTag::Readable);
}

TEST(CacheRb, CleanVictimDroppedWithoutWriteback)
{
    Rig<RbProtocol> rig(4);
    rig.access(rig.cache0, read(1));     // Readable, clean
    rig.access(rig.cache0, read(5));     // evicts 1 silently
    EXPECT_EQ(rig.stats.get("cache.writeback"), 0u);
    EXPECT_EQ(rig.cache0.lineState(1).tag, LineTag::NotPresent);
}

TEST(CacheRb, FlushPrecedesTestAndSetOnDirtyCopy)
{
    Rig<RbProtocol> rig;
    rig.access(rig.cache0, write(3, 5));
    rig.access(rig.cache0, write(3, 6)); // Local, memory stale (5)

    // TS must observe 6 (non-zero) and fail, not the stale 5.
    auto result = rig.access(rig.cache0, tas(3));
    EXPECT_FALSE(result.ts_success);
    EXPECT_EQ(result.value, 6u);
    EXPECT_EQ(rig.stats.get("cache.flush"), 1u);
    EXPECT_EQ(rig.memory.peek(3), 6u);
}

TEST(CacheRb, TestAndSetSuccessTakesOwnership)
{
    Rig<RbProtocol> rig;
    rig.access(rig.cache1, read(3));
    auto result = rig.access(rig.cache0, tas(3, 9));
    EXPECT_TRUE(result.ts_success);
    EXPECT_EQ(result.value, 0u);
    EXPECT_EQ(rig.cache0.lineState(3).tag, LineTag::Local);
    EXPECT_EQ(rig.cache1.lineState(3).tag, LineTag::Invalid);
    EXPECT_EQ(rig.memory.peek(3), 9u);
}

TEST(CacheRb, ReadBroadcastRefillsInvalidCopies)
{
    Rig<RbProtocol> rig;
    rig.access(rig.cache0, read(3));
    rig.access(rig.cache1, write(3, 4)); // cache0 -> Invalid
    EXPECT_EQ(rig.cache0.lineState(3).tag, LineTag::Invalid);

    // cache0's own read is a bus read; cache1 (Local) supplies, then
    // the retried read refills both caches.
    auto result = rig.access(rig.cache0, read(3));
    EXPECT_EQ(result.value, 4u);
    EXPECT_EQ(rig.cache0.lineState(3).tag, LineTag::Readable);
}

TEST(CacheRwb, WriteBroadcastUpdatesOtherCopies)
{
    Rig<RwbProtocol> rig;
    rig.access(rig.cache0, read(3));
    rig.access(rig.cache1, read(3));

    rig.access(rig.cache0, write(3, 8));
    EXPECT_EQ(rig.cache0.lineState(3).tag, LineTag::FirstWrite);
    EXPECT_EQ(rig.cache1.lineState(3).tag, LineTag::Readable);
    EXPECT_EQ(rig.cache1.lineValue(3), 8u); // updated, not invalidated
    EXPECT_EQ(rig.stats.get("cache.snarf"), 1u);
}

TEST(CacheRwb, SecondWriteSendsBusInvalidate)
{
    Rig<RwbProtocol> rig;
    rig.access(rig.cache1, read(3));
    rig.access(rig.cache0, write(3, 8));
    rig.access(rig.cache0, write(3, 9));
    EXPECT_EQ(rig.cache0.lineState(3).tag, LineTag::Local);
    EXPECT_EQ(rig.cache1.lineState(3).tag, LineTag::Invalid);
    EXPECT_EQ(rig.stats.get("bus.invalidate"), 1u);
    EXPECT_EQ(rig.memory.peek(3), 9u); // BI carries the data
}

TEST(CacheRwb, ThirdWriteIsSilent)
{
    Rig<RwbProtocol> rig;
    rig.access(rig.cache0, write(3, 1));
    rig.access(rig.cache0, write(3, 2)); // -> Local via BI
    auto busy = rig.stats.get("bus.busy_cycles");
    auto result = rig.cache0.cpuAccess(write(3, 3));
    EXPECT_TRUE(result.complete);
    EXPECT_EQ(rig.stats.get("bus.busy_cycles"), busy);
}

TEST(CacheRwb, FirstWriteEvictionNeedsNoWriteback)
{
    Rig<RwbProtocol> rig(4);
    rig.access(rig.cache0, write(1, 10)); // F, memory already has 10
    rig.access(rig.cache0, read(5));      // evict 1
    EXPECT_EQ(rig.stats.get("cache.writeback"), 0u);
    EXPECT_EQ(rig.memory.peek(1), 10u);
}

TEST(Cache, RejectsSecondOutstandingAccess)
{
    Rig<RbProtocol> rig;
    auto result = rig.cache0.cpuAccess(read(3));
    EXPECT_FALSE(result.complete);
    EXPECT_TRUE(rig.cache0.busy());
    EXPECT_DEATH(rig.cache0.cpuAccess(read(4)), "outstanding");
}

TEST(Cache, LineStateForUnknownAddressIsNotPresent)
{
    Rig<RbProtocol> rig;
    EXPECT_EQ(rig.cache0.lineState(77).tag, LineTag::NotPresent);
    EXPECT_EQ(rig.cache0.lineValue(77), 0u);
}

TEST(Cache, CommitsAreLogged)
{
    Rig<RbProtocol> rig;
    rig.access(rig.cache0, write(3, 5));
    rig.access(rig.cache1, read(3));
    ASSERT_EQ(rig.log.size(), 2u);
    EXPECT_EQ(rig.log.all()[0].op, CpuOp::Write);
    EXPECT_EQ(rig.log.all()[0].value, 5u);
    EXPECT_EQ(rig.log.all()[1].op, CpuOp::Read);
    EXPECT_EQ(rig.log.all()[1].value, 5u);
    EXPECT_EQ(rig.log.all()[1].pe, 1);
}

} // namespace
} // namespace ddc
