/**
 * @file
 * Ablation A2: TS vs TTS scaling under contention (Section 6's
 * hot-spot elimination, quantified).  Sweep the PE count and report
 * bus transactions per successful acquisition, failed RMW attempts,
 * and completion time for both disciplines on RB and RWB.
 */

#include "bench_common.hh"

#include <iostream>

#include "stats/table.hh"
#include "sync/workload.hh"

namespace {

using namespace ddc;

const ProtocolKind kProtocols[] = {ProtocolKind::Rb, ProtocolKind::Rwb};
const int kPeCounts[] = {2, 4, 8, 16, 32};
const sync::LockKind kLocks[] = {sync::LockKind::TestAndSet,
                                 sync::LockKind::TestAndTestAndSet};

sync::LockExperimentResult
run(int num_pes, sync::LockKind lock, ProtocolKind protocol)
{
    sync::LockExperimentConfig config;
    config.num_pes = num_pes;
    config.lock = lock;
    config.protocol = protocol;
    config.acquisitions_per_pe = 8;
    config.cs_increments = 8;
    return sync::runLockExperiment(config);
}

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Ablation A2: TS vs TTS lock contention scaling\n"
        "(8 acquisitions/PE, 8-increment critical sections)\n\n";

    exp::ParamGrid grid;
    grid.axis("protocol", {"RB", "RWB"});
    grid.axis("pes", {"2", "4", "8", "16", "32"});
    grid.axis("lock", {"TS", "TTS"});

    exp::Experiment spec("ablation_ts_vs_tts",
                         "A2: TS vs TTS lock contention scaling on RB "
                         "and RWB");
    for (std::size_t flat = 0; flat < grid.size(); flat++) {
        auto indices = grid.indicesAt(flat);
        auto protocol = kProtocols[indices[0]];
        int m = kPeCounts[indices[1]];
        auto lock = kLocks[indices[2]];
        spec.addCustom(grid.paramsAt(flat), [m, lock, protocol]() {
            auto lock_result = run(m, lock, protocol);
            exp::RunResult result;
            result.cycles = lock_result.cycles;
            result.bus_transactions = lock_result.bus_transactions;
            result.setMetric("bus_per_acquisition",
                             lock_result.bus_per_acquisition);
            result.setMetric("rmw_failures",
                             static_cast<double>(
                                 lock_result.rmw_failures));
            return result;
        });
    }
    const auto &results = session.run(spec);

    std::size_t flat = 0;
    for (auto protocol : kProtocols) {
        Table table(std::string("Scheme: ") +
                    std::string(toString(protocol)));
        table.setHeader({"PEs", "lock", "cycles", "bus ops",
                         "bus/acquisition", "failed RMWs"});
        for (int m : kPeCounts) {
            for (auto lock : kLocks) {
                const auto &result = results[flat++];
                table.addRow({std::to_string(m),
                              std::string(sync::toString(lock)),
                              std::to_string(result.cycles),
                              std::to_string(result.bus_transactions),
                              Table::num(
                                  result.metric("bus_per_acquisition"),
                                  1),
                              std::to_string(static_cast<std::uint64_t>(
                                  result.metric("rmw_failures")))});
            }
            table.addSeparator();
        }
        std::cout << table.render() << "\n";
    }
    std::cout <<
        "Expected shape: TS bus traffic and failed RMWs grow with the\n"
        "PE count (every spin is a bus RMW); TTS failed RMWs stay near\n"
        "zero and its bus ops per acquisition stay roughly flat -- the\n"
        "hot spot is eliminated.\n\n";
}

void
BM_LockScaling(benchmark::State &state)
{
    auto num_pes = static_cast<int>(state.range(0));
    auto lock = state.range(1) == 0 ? sync::LockKind::TestAndSet
                                    : sync::LockKind::TestAndTestAndSet;
    for (auto _ : state) {
        auto result = run(num_pes, lock, ProtocolKind::Rb);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetLabel(std::string(sync::toString(lock)));
}
BENCHMARK(BM_LockScaling)
    ->Args({4, 0})->Args({4, 1})
    ->Args({16, 0})->Args({16, 1})
    ->Unit(benchmark::kMillisecond);

/** Simulated cycles to finish the contention run, as a counter. */
void
BM_LockSimulatedCycles(benchmark::State &state)
{
    auto num_pes = static_cast<int>(state.range(0));
    auto lock = state.range(1) == 0 ? sync::LockKind::TestAndSet
                                    : sync::LockKind::TestAndTestAndSet;
    double cycles = 0.0;
    for (auto _ : state) {
        auto result = run(num_pes, lock, ProtocolKind::Rb);
        cycles = static_cast<double>(result.cycles);
    }
    state.counters["simulated_cycles"] = cycles;
    state.SetLabel(std::string(sync::toString(lock)));
}
BENCHMARK(BM_LockSimulatedCycles)
    ->Args({16, 0})->Args({16, 1})
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
