#include "core/factory.hh"

#include "base/logging.hh"
#include "core/cmstar.hh"
#include "core/goodman.hh"
#include "core/rb.hh"
#include "core/rwb.hh"
#include "core/write_through.hh"

namespace ddc {

std::string_view
toString(ProtocolKind kind)
{
    switch (kind) {
      case ProtocolKind::Rb:           return "RB";
      case ProtocolKind::Rwb:          return "RWB";
      case ProtocolKind::WriteOnce:    return "WriteOnce";
      case ProtocolKind::WriteThrough: return "WriteThrough";
      case ProtocolKind::CmStar:       return "CmStar";
    }
    return "?";
}

ProtocolKind
parseProtocolKind(const std::string &name)
{
    for (ProtocolKind kind : allProtocolKinds()) {
        if (name == toString(kind))
            return kind;
    }
    ddc_fatal("unknown protocol name: ", name);
}

std::unique_ptr<Protocol>
makeProtocol(ProtocolKind kind, int rwb_writes_to_local)
{
    switch (kind) {
      case ProtocolKind::Rb:
        return std::make_unique<RbProtocol>();
      case ProtocolKind::Rwb:
        return std::make_unique<RwbProtocol>(rwb_writes_to_local);
      case ProtocolKind::WriteOnce:
        return std::make_unique<GoodmanProtocol>();
      case ProtocolKind::WriteThrough:
        return std::make_unique<WriteThroughProtocol>();
      case ProtocolKind::CmStar:
        return std::make_unique<CmStarProtocol>();
    }
    ddc_panic("unhandled ProtocolKind");
}

std::vector<ProtocolKind>
allProtocolKinds()
{
    return {ProtocolKind::Rb, ProtocolKind::Rwb, ProtocolKind::WriteOnce,
            ProtocolKind::WriteThrough, ProtocolKind::CmStar};
}

} // namespace ddc
