#include "trace/synthetic.hh"

#include "base/logging.hh"

namespace ddc {

namespace {

/** Private regions are 1 MiW apart; shared lives above all of them. */
constexpr Addr kPeRegionBytes = Addr{1} << 20;
constexpr Addr kLocalOffset = Addr{1} << 16;
constexpr Addr kSharedRegion = Addr{1} << 40;

/** Next deterministic data value: 1, 2, 3, ... (wraps well below the
 *  reserved invalidate encoding). */
Word
nextValue(Word &counter)
{
    counter = counter % (kMaxDataValue / 2) + 1;
    return counter;
}

} // namespace

Addr
codeBase(PeId pe)
{
    return static_cast<Addr>(pe) * kPeRegionBytes;
}

Addr
localBase(PeId pe)
{
    return static_cast<Addr>(pe) * kPeRegionBytes + kLocalOffset;
}

Addr
sharedBase()
{
    return kSharedRegion;
}

CmStarAppParams
cmStarApplicationA()
{
    CmStarAppParams params;
    params.local_write_fraction = 0.08;
    params.shared_fraction = 0.05;
    return params;
}

CmStarAppParams
cmStarApplicationB()
{
    CmStarAppParams params;
    params.local_write_fraction = 0.067;
    params.shared_fraction = 0.10;
    return params;
}

Trace
makeCmStarTrace(const CmStarAppParams &params, int num_pes,
                std::size_t refs_per_pe, std::uint64_t seed)
{
    ddc_assert(num_pes > 0, "need at least one PE");
    ddc_assert(params.local_write_fraction + params.shared_fraction < 1.0,
               "reference-mix fractions exceed 1");

    Trace trace(num_pes);
    Rng rng(seed);
    Word value_counter = 0;

    // Three-tier working-set sampler: contiguous hot / mid / cold
    // regions, so a cache at least as large as a tier holds it without
    // conflict misses (the knee of the Table 1-1 curve).
    auto tiered = [&](std::uint64_t hot, std::uint64_t mid,
                      std::uint64_t footprint, Addr rotation) {
        double pick = rng.nextDouble();
        std::uint64_t offset;
        if (pick < params.hot_fraction) {
            offset = rng.nextBelow(hot);
        } else if (pick < params.hot_fraction + params.mid_fraction) {
            offset = hot + rng.nextBelow(mid);
        } else {
            offset = rng.nextBelow(footprint);
        }
        return (offset + rotation) % footprint;
    };

    for (PeId pe = 0; pe < num_pes; pe++) {
        // Per-PE rotation decorrelates the PEs' hot addresses so they
        // do not all conflict-map to the same cache lines.
        Addr code_rot = rng.nextBelow(params.code_footprint);
        Addr local_rot = rng.nextBelow(params.local_footprint);
        double repeat_p = params.burst_length <= 1.0
                              ? 0.0 : 1.0 - 1.0 / params.burst_length;
        Addr code_last = codeBase(pe);
        Addr local_last = localBase(pe);
        auto code_addr = [&] {
            if (!rng.chance(repeat_p)) {
                code_last = codeBase(pe) +
                            tiered(params.code_hot_words,
                                   params.code_mid_words,
                                   params.code_footprint, code_rot);
            }
            return code_last;
        };
        auto local_addr = [&] {
            if (!rng.chance(repeat_p)) {
                local_last = localBase(pe) +
                             tiered(params.local_hot_words,
                                    params.local_mid_words,
                                    params.local_footprint, local_rot);
            }
            return local_last;
        };
        for (std::size_t i = 0; i < refs_per_pe; i++) {
            MemRef ref;
            double pick = rng.nextDouble();
            if (pick < params.local_write_fraction) {
                ref.op = CpuOp::Write;
                ref.cls = DataClass::Local;
                ref.addr = local_addr();
                ref.data = nextValue(value_counter);
            } else if (pick <
                       params.local_write_fraction + params.shared_fraction) {
                ref.cls = DataClass::Shared;
                ref.addr = sharedBase() +
                           rng.nextBelow(params.shared_footprint);
                if (rng.chance(params.shared_read_fraction)) {
                    ref.op = CpuOp::Read;
                } else {
                    ref.op = CpuOp::Write;
                    ref.data = nextValue(value_counter);
                }
            } else if (rng.chance(params.code_fraction)) {
                ref.op = CpuOp::Read;
                ref.cls = DataClass::Code;
                ref.addr = code_addr();
            } else {
                ref.op = CpuOp::Read;
                ref.cls = DataClass::Local;
                ref.addr = local_addr();
            }
            trace.append(pe, ref);
        }
    }
    return trace;
}

Trace
makeUniformRandomTrace(int num_pes, std::size_t refs_per_pe,
                       std::uint64_t footprint, double write_fraction,
                       double ts_fraction, std::uint64_t seed)
{
    ddc_assert(num_pes > 0, "need at least one PE");
    ddc_assert(footprint > 0, "need a positive footprint");
    ddc_assert(write_fraction + ts_fraction <= 1.0,
               "op-mix fractions exceed 1");

    Trace trace(num_pes);
    Rng rng(seed);
    Word value_counter = 0;

    for (PeId pe = 0; pe < num_pes; pe++) {
        for (std::size_t i = 0; i < refs_per_pe; i++) {
            MemRef ref;
            ref.cls = DataClass::Shared;
            ref.addr = sharedBase() + rng.nextBelow(footprint);
            double pick = rng.nextDouble();
            if (pick < write_fraction) {
                ref.op = CpuOp::Write;
                ref.data = nextValue(value_counter);
            } else if (pick < write_fraction + ts_fraction) {
                ref.op = CpuOp::TestAndSet;
                ref.data = nextValue(value_counter);
            } else {
                ref.op = CpuOp::Read;
            }
            trace.append(pe, ref);
        }
    }
    return trace;
}

Trace
makeArrayInitTrace(int num_pes, std::uint64_t elements_per_pe)
{
    ddc_assert(num_pes > 0, "need at least one PE");
    Trace trace(num_pes);
    Word value_counter = 0;
    for (PeId pe = 0; pe < num_pes; pe++) {
        Addr base = sharedBase() +
                    static_cast<Addr>(pe) * elements_per_pe;
        for (std::uint64_t i = 0; i < elements_per_pe; i++) {
            MemRef ref;
            ref.op = CpuOp::Write;
            ref.cls = DataClass::Shared;
            ref.addr = base + i;
            ref.data = nextValue(value_counter);
            trace.append(pe, ref);
        }
    }
    return trace;
}

Trace
makeProducerConsumerTrace(int num_pes, std::uint64_t buffer_words,
                          int rounds, int reads_per_round)
{
    ddc_assert(num_pes >= 2, "producer/consumer needs >= 2 PEs");
    Trace trace(num_pes);
    Word value_counter = 0;
    for (int round = 0; round < rounds; round++) {
        for (std::uint64_t w = 0; w < buffer_words; w++) {
            MemRef ref;
            ref.op = CpuOp::Write;
            ref.cls = DataClass::Shared;
            ref.addr = sharedBase() + w;
            ref.data = nextValue(value_counter);
            trace.append(0, ref);
        }
        for (PeId pe = 1; pe < num_pes; pe++) {
            for (int r = 0; r < reads_per_round; r++) {
                for (std::uint64_t w = 0; w < buffer_words; w++) {
                    MemRef ref;
                    ref.op = CpuOp::Read;
                    ref.cls = DataClass::Shared;
                    ref.addr = sharedBase() + w;
                    trace.append(pe, ref);
                }
            }
        }
    }
    return trace;
}

Trace
makeMigratoryTrace(int num_pes, std::uint64_t record_words, int rounds)
{
    ddc_assert(num_pes > 0, "need at least one PE");
    Trace trace(num_pes);
    Word value_counter = 0;
    for (int round = 0; round < rounds; round++) {
        for (PeId pe = 0; pe < num_pes; pe++) {
            for (std::uint64_t w = 0; w < record_words; w++) {
                MemRef read;
                read.op = CpuOp::Read;
                read.cls = DataClass::Shared;
                read.addr = sharedBase() + w;
                trace.append(pe, read);

                MemRef write = read;
                write.op = CpuOp::Write;
                write.data = nextValue(value_counter);
                trace.append(pe, write);
            }
        }
    }
    return trace;
}

Trace
makeSequentialWalkTrace(int num_pes, std::uint64_t words, int passes,
                        int write_every)
{
    ddc_assert(num_pes > 0, "need at least one PE");
    ddc_assert(words > 0, "need a non-empty region");
    Trace trace(num_pes);
    Word value_counter = 0;
    for (PeId pe = 0; pe < num_pes; pe++) {
        int count = 0;
        for (int pass = 0; pass < passes; pass++) {
            for (std::uint64_t w = 0; w < words; w++) {
                MemRef ref;
                ref.addr = localBase(pe) + w;
                ref.cls = DataClass::Local;
                count++;
                if (write_every > 0 && count % write_every == 0) {
                    ref.op = CpuOp::Write;
                    ref.data = nextValue(value_counter);
                } else {
                    ref.op = CpuOp::Read;
                }
                trace.append(pe, ref);
            }
        }
    }
    return trace;
}

Trace
makeFalseSharingTrace(int num_pes, int rounds)
{
    ddc_assert(num_pes > 0, "need at least one PE");
    Trace trace(num_pes);
    Word value_counter = 0;
    for (PeId pe = 0; pe < num_pes; pe++) {
        Addr addr = sharedBase() + static_cast<Addr>(pe);
        for (int round = 0; round < rounds; round++) {
            MemRef write;
            write.op = CpuOp::Write;
            write.cls = DataClass::Shared;
            write.addr = addr;
            write.data = nextValue(value_counter);
            trace.append(pe, write);

            MemRef read = write;
            read.op = CpuOp::Read;
            read.data = 0;
            trace.append(pe, read);
        }
    }
    return trace;
}

Trace
makeClusteredTrace(int num_clusters, int pes_per_cluster,
                   std::size_t refs_per_pe,
                   double cluster_local_fraction, double write_fraction,
                   std::uint64_t seed)
{
    ddc_assert(num_clusters > 0 && pes_per_cluster > 0,
               "need at least one cluster and one PE per cluster");
    const std::uint64_t region_words = 24;
    int num_pes = num_clusters * pes_per_cluster;
    Trace trace(num_pes);
    Rng rng(seed);
    Word value_counter = 0;

    Addr global_region = sharedBase() + (Addr{1} << 20);
    for (PeId pe = 0; pe < num_pes; pe++) {
        int cluster = pe / pes_per_cluster;
        Addr cluster_region = sharedBase() +
                              static_cast<Addr>(cluster) * 1024;
        for (std::size_t i = 0; i < refs_per_pe; i++) {
            MemRef ref;
            ref.cls = DataClass::Shared;
            Addr base = rng.chance(cluster_local_fraction)
                            ? cluster_region : global_region;
            ref.addr = base + rng.nextBelow(region_words);
            if (rng.chance(write_fraction)) {
                ref.op = CpuOp::Write;
                ref.data = nextValue(value_counter);
            } else {
                ref.op = CpuOp::Read;
            }
            trace.append(pe, ref);
        }
    }
    return trace;
}

Trace
makeHotSpotTrace(int num_pes, int attempts, int spins)
{
    ddc_assert(num_pes > 0, "need at least one PE");
    Trace trace(num_pes);
    const Addr lock = sharedBase();
    for (PeId pe = 0; pe < num_pes; pe++) {
        for (int a = 0; a < attempts; a++) {
            for (int s = 0; s < spins; s++) {
                MemRef spin;
                spin.op = CpuOp::Read;
                spin.cls = DataClass::Shared;
                spin.addr = lock;
                trace.append(pe, spin);
            }
            MemRef ts;
            ts.op = CpuOp::TestAndSet;
            ts.cls = DataClass::Shared;
            ts.addr = lock;
            ts.data = 1;
            trace.append(pe, ts);
        }
    }
    return trace;
}

} // namespace ddc
