/**
 * @file
 * Observability subsystem tests: category parsing, the Chrome
 * trace-event writer (well-formedness, track metadata, sorted
 * timestamps, balanced B/E pairs), the counter sampler, the lock
 * episode tracker, the first-System-wins trace claim, and the
 * end-to-end --histograms / --sample-every paths through a System.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/simulator.hh"
#include "exp/json.hh"
#include "obs/recorder.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "sim/system.hh"
#include "sync/workload.hh"
#include "trace/synthetic.hh"

namespace ddc {
namespace {

using obs::Category;
using obs::TraceEvent;
using obs::TraceSink;

TEST(Categories, ParseListAndAll)
{
    EXPECT_EQ(obs::parseCategories("all"), obs::kAllCategories);
    EXPECT_EQ(obs::parseCategories("bus"),
              static_cast<std::uint32_t>(Category::Bus));
    EXPECT_EQ(obs::parseCategories("bus,state,lock"),
              static_cast<std::uint32_t>(Category::Bus) |
                  static_cast<std::uint32_t>(Category::State) |
                  static_cast<std::uint32_t>(Category::Lock));
    EXPECT_EQ(obs::parseCategories("bus,state,lock,miss,quiesce,dir"),
              obs::kAllCategories);
}

TEST(Categories, KernelIsOptInOnly)
{
    // The kernel self-profile is host-dependent (wall-clock args,
    // lane layout), so "all" must not include it: an --trace-out run
    // without --trace-categories=kernel keeps the byte-identical-
    // across---shards guarantee.
    auto kernel = obs::parseCategories("kernel");
    EXPECT_NE(kernel, 0u);
    EXPECT_EQ(kernel & obs::kAllCategories, 0u);
    EXPECT_EQ(obs::parseCategories("dir,kernel"),
              static_cast<std::uint32_t>(Category::Dir) |
                  static_cast<std::uint32_t>(Category::Kernel));
}

TEST(Categories, ParseRejectsUnknownToken)
{
    std::string error;
    EXPECT_EQ(obs::parseCategories("bus,bogus,lock", &error), 0u);
    EXPECT_EQ(error, "bogus");
    EXPECT_EQ(obs::parseCategories("", &error), 0u);
}

TEST(Categories, NamesRoundTrip)
{
    auto mask = obs::parseCategories("state,miss");
    EXPECT_EQ(obs::parseCategories(obs::categoryNames(mask)), mask);
    EXPECT_EQ(obs::categoryNames(obs::kAllCategories),
              "bus,state,lock,miss,quiesce,dir");
}

TEST(TraceSinkTest, CategoryFilterIsBitmask)
{
    TraceSink sink(obs::parseCategories("bus,lock"));
    EXPECT_TRUE(sink.enabled(Category::Bus));
    EXPECT_TRUE(sink.enabled(Category::Lock));
    EXPECT_FALSE(sink.enabled(Category::State));
    EXPECT_FALSE(sink.enabled(Category::Quiesce));
}

/** Write the sink's document and parse it back. */
exp::Json
writtenDocument(const TraceSink &sink)
{
    std::ostringstream os;
    sink.write(os);
    exp::Json document;
    EXPECT_TRUE(exp::Json::parse(os.str(), document)) << os.str();
    return document;
}

TEST(TraceSinkTest, WritesWellFormedChromeTrace)
{
    TraceSink sink(obs::kAllCategories);

    TraceEvent begin;
    begin.ts = 10;
    begin.name = "read_miss";
    begin.phase = 'B';
    begin.tid = 2;
    begin.addr = 0x40;
    begin.has_addr = true;
    sink.push(begin);

    TraceEvent complete;
    complete.ts = 11;
    complete.dur = 3;
    complete.name = "BusRead";
    complete.phase = 'X';
    complete.track = obs::kTrackBuses;
    complete.value = 2;
    complete.value_name = "issuer";
    sink.push(complete);

    TraceEvent end = begin;
    end.ts = 14;
    end.phase = 'E';
    sink.push(end);

    auto document = writtenDocument(sink);
    ASSERT_FALSE(document.isNull());
    EXPECT_EQ(document.find("displayTimeUnit")->asString(), "ms");

    const exp::Json *events = document.find("traceEvents");
    ASSERT_NE(events, nullptr);

    // Metadata names both referenced tracks; real events carry pid,
    // tid, and their args.
    int metadata = 0, spans = 0, completes = 0;
    for (std::size_t i = 0; i < events->size(); i++) {
        const exp::Json &event = events->at(i);
        auto phase = event.find("ph")->asString();
        if (phase == "M") {
            metadata++;
            continue;
        }
        if (phase == "B" || phase == "E")
            spans++;
        if (phase == "X") {
            completes++;
            EXPECT_EQ(event.find("dur")->asInt(), 3);
            EXPECT_EQ(event.find("args")->find("issuer")->asInt(), 2);
        }
    }
    EXPECT_GE(metadata, 4); // 2 process_name + 2 thread_name
    EXPECT_EQ(spans, 2);
    EXPECT_EQ(completes, 1);
}

TEST(TraceSinkTest, SortsByTimestampAndBalancesSpans)
{
    TraceSink sink(obs::kAllCategories);
    // Out-of-order pushes plus a span left open at the end.
    for (Cycle ts : {Cycle{30}, Cycle{10}, Cycle{20}}) {
        TraceEvent event;
        event.ts = ts;
        event.name = "instant";
        event.phase = 'i';
        sink.push(event);
    }
    TraceEvent open;
    open.ts = 15;
    open.name = "spin";
    open.phase = 'B';
    open.track = obs::kTrackLocks;
    open.tid = 1;
    sink.push(open);

    auto document = writtenDocument(sink);
    const exp::Json *events = document.find("traceEvents");
    ASSERT_NE(events, nullptr);

    std::int64_t last_ts = -1;
    std::map<std::pair<std::int64_t, std::int64_t>, int> depth;
    for (std::size_t i = 0; i < events->size(); i++) {
        const exp::Json &event = events->at(i);
        auto phase = event.find("ph")->asString();
        if (phase == "M")
            continue;
        std::int64_t ts = event.find("ts")->asInt();
        EXPECT_GE(ts, last_ts) << "timestamps must be non-decreasing";
        last_ts = ts;
        auto key = std::make_pair(event.find("pid")->asInt(),
                                  event.find("tid")->asInt());
        if (phase == "B")
            depth[key]++;
        if (phase == "E") {
            depth[key]--;
            EXPECT_GE(depth[key], 0) << "E without matching B";
        }
    }
    for (const auto &[key, open_spans] : depth)
        EXPECT_EQ(open_spans, 0) << "unbalanced span on a track";
}

TEST(TraceSinkTest, WriteFileIsIdempotentAndReportsFailure)
{
    std::string path = "obs_test_sink.json";
    {
        TraceSink sink(obs::kAllCategories, path);
        TraceEvent event;
        event.name = "instant";
        sink.push(event);
        EXPECT_TRUE(sink.writeFile());
        EXPECT_FALSE(sink.writeFile()) << "second write must no-op";
    }
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    exp::Json document;
    EXPECT_TRUE(exp::Json::parse(buffer.str(), document));
    std::remove(path.c_str());

    TraceSink pathless(obs::kAllCategories);
    EXPECT_FALSE(pathless.writeFile());
}

TEST(CounterSamplerTest, SamplesOnGridAndRealignsAfterSkip)
{
    obs::CounterSampler sampler(100);
    std::uint64_t counter = 0;
    sampler.addColumn("counter", [&](Cycle) { return counter; });

    EXPECT_TRUE(sampler.due(0));
    sampler.sample(0);
    EXPECT_FALSE(sampler.due(99));
    counter = 7;
    EXPECT_TRUE(sampler.due(100));
    sampler.sample(100);
    // A quiescent skip jumped past several grid points: one row is
    // recorded and the schedule realigns to the next multiple.
    counter = 50;
    EXPECT_TRUE(sampler.due(470));
    sampler.sample(470);
    EXPECT_FALSE(sampler.due(499));
    EXPECT_TRUE(sampler.due(500));

    const auto &series = sampler.series();
    EXPECT_EQ(series.interval, 100u);
    ASSERT_EQ(series.columns.size(), 1u);
    EXPECT_EQ(series.columns[0], "counter");
    ASSERT_EQ(series.rows.size(), 3u);
    EXPECT_EQ(series.rows[0].cycle, 0u);
    EXPECT_EQ(series.rows[1].values[0], 7u);
    EXPECT_EQ(series.rows[2].cycle, 470u);
    EXPECT_EQ(series.rows[2].values[0], 50u);
}

TEST(RecorderTest, LockEpisodesFeedHistograms)
{
    // Events land on two shard lanes (as two buses would record
    // them); the replay must merge them by cycle before running the
    // episode state machine.
    obs::Recorder recorder(nullptr, true, 0, 2);
    ASSERT_TRUE(recorder.wantsLockEvents());
    auto *lane0 = recorder.lockLane(0);
    auto *lane1 = recorder.lockLane(1);
    ASSERT_NE(lane0, nullptr);
    ASSERT_NE(lane1, nullptr);

    // PE 0 wins immediately: acquire latency 0, no handoff.
    lane0->attempt(0, 0x100, 10, true);
    // PE 1 spins from cycle 12 and wins at 30: latency 18.
    lane1->attempt(1, 0x100, 12, false);
    lane1->attempt(1, 0x100, 20, false);
    lane0->release(0, 0x100, 25);
    lane1->attempt(1, 0x100, 30, true);

    auto *metrics = recorder.metrics();
    ASSERT_NE(metrics, nullptr);
    const auto &acquire = metrics->lock_acquire;
    EXPECT_EQ(acquire.count(), 2u);
    EXPECT_EQ(acquire.min(), 0u);
    EXPECT_EQ(acquire.max(), 18u);

    // Handoff: release at 25 -> acquire at 30.
    const auto &handoff = metrics->lock_handoff;
    EXPECT_EQ(handoff.count(), 1u);
    EXPECT_EQ(handoff.max(), 5u);

    // Writes to an address that never carried an RMW are not lock
    // releases; metrics() recomputes the merged view idempotently.
    lane0->release(0, 0x999, 40);
    metrics = recorder.metrics();
    EXPECT_EQ(metrics->lock_handoff.count(), 1u);
    EXPECT_EQ(metrics->lock_acquire.count(), 2u);
}

TEST(RecorderTest, MakeRecorderIsNullWhenNothingEnabled)
{
    obs::setTraceOutput("");
    obs::setHistogramsEnabled(false);
    obs::setSampleInterval(0);
    EXPECT_EQ(obs::makeRecorder(false, 0), nullptr);
    EXPECT_NE(obs::makeRecorder(true, 0), nullptr);
    EXPECT_NE(obs::makeRecorder(false, 100), nullptr);
}

TEST(RecorderTest, FirstRecorderClaimsTraceOutput)
{
    obs::setTraceOutput("obs_test_claim.json",
                        obs::parseCategories("bus"));
    auto first = obs::makeRecorder(false, 0);
    auto second = obs::makeRecorder(false, 0);
    ASSERT_NE(first, nullptr);
    ASSERT_NE(first->trace(Category::Bus), nullptr);
    EXPECT_EQ(first->trace(Category::State), nullptr)
        << "category filter must apply";
    // The claim is first-System-wins: a second recorder in the same
    // process (a parallel worker) must not open the same file.
    EXPECT_TRUE(second == nullptr ||
                second->trace(Category::Bus) == nullptr);
    obs::setTraceOutput(""); // do not leave the file behind
    first->sink()->writeFile();
    std::remove("obs_test_claim.json");
}

TEST(ObsSystem, HistogramsCollectEndToEnd)
{
    auto trace = makeUniformRandomTrace(4, 1500, 64, 0.3, 0.05, 5);
    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 64;
    config.protocol = ProtocolKind::Rb;
    config.histograms = true;

    System system(config);
    system.loadTrace(trace);
    system.run();

    auto *observability = system.observability();
    ASSERT_NE(observability, nullptr);
    auto *metrics = observability->metrics();
    ASSERT_NE(metrics, nullptr);
    EXPECT_GT(metrics->miss_service.count(), 0u);
    // Every bus-serviced miss sampled a wait; misses satisfied by a
    // broadcast fill finish without one, so bus_wait trails.
    EXPECT_GT(metrics->bus_wait.count(), 0u);
    EXPECT_LE(metrics->bus_wait.count(),
              metrics->miss_service.count());
    EXPECT_GT(metrics->miss_service.max(), 0u);
    EXPECT_GT(metrics->write_gap.count(), 0u);
}

TEST(ObsSystem, LockHistogramsThroughWorkload)
{
    sync::LockExperimentConfig config;
    config.num_pes = 4;
    config.lock = sync::LockKind::TestAndTestAndSet;
    config.protocol = ProtocolKind::Rwb;
    config.acquisitions_per_pe = 4;
    config.cs_increments = 2;
    config.histograms = true;

    auto result = sync::runLockExperiment(config);
    ASSERT_TRUE(result.completed);
    ASSERT_TRUE(result.has_metrics);
    // Every acquisition (4 PEs x 4) lands in lock_acquire.
    EXPECT_EQ(result.metrics.lock_acquire.count(), 16u);
    // The lock is contended: someone spun, and hand-offs happened.
    EXPECT_GT(result.metrics.lock_acquire.max(), 0u);
    EXPECT_GT(result.metrics.lock_handoff.count(), 0u);
}

TEST(ObsSystem, SamplerCollectsSeriesEndToEnd)
{
    auto trace = makeUniformRandomTrace(4, 2000, 64, 0.3, 0.05, 7);
    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 64;
    config.sample_every = 100;

    System system(config);
    system.loadTrace(trace);
    system.run();

    auto *observability = system.observability();
    ASSERT_NE(observability, nullptr);
    auto *sampler = observability->sampler();
    ASSERT_NE(sampler, nullptr);
    const auto &series = sampler->series();
    EXPECT_EQ(series.interval, 100u);
    EXPECT_GT(series.rows.size(), 2u);

    // The census columns partition the cache: NP + I + R + L + F...
    // sums to lines x PEs in every row.
    std::size_t first_tag = series.columns.size();
    for (std::size_t c = 0; c < series.columns.size(); c++) {
        if (series.columns[c].rfind("tags.", 0) == 0) {
            first_tag = c;
            break;
        }
    }
    ASSERT_LT(first_tag, series.columns.size());
    for (const auto &row : series.rows) {
        std::uint64_t total = 0;
        for (std::size_t c = first_tag; c < row.values.size(); c++)
            total += row.values[c];
        EXPECT_EQ(total, 64u * 4u);
    }

    // Cumulative columns never decrease.
    std::size_t refs_col = 0;
    for (std::size_t c = 0; c < series.columns.size(); c++) {
        if (series.columns[c] == "refs")
            refs_col = c;
    }
    std::uint64_t last = 0;
    for (const auto &row : series.rows) {
        EXPECT_GE(row.values[refs_col], last);
        last = row.values[refs_col];
    }
}

TEST(ObsSystem, TracedSystemEmitsPerPeAndBusTracks)
{
    obs::setTraceOutput("obs_test_system.json");
    {
        auto trace = makeProducerConsumerTrace(4, 16, 10, 2);
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 64;
        config.protocol = ProtocolKind::Rwb;
        System system(config);
        system.loadTrace(trace);
        system.run();
        auto *observability = system.observability();
        ASSERT_NE(observability, nullptr);
        EXPECT_NE(observability->trace(Category::Bus), nullptr);
        EXPECT_GT(observability->trace(Category::Bus)->size(), 0u);
    } // System destruction writes the file.
    obs::setTraceOutput("");

    std::ifstream in("obs_test_system.json");
    ASSERT_TRUE(in.good()) << "trace file must exist after the run";
    std::stringstream buffer;
    buffer << in.rdbuf();
    exp::Json document;
    ASSERT_TRUE(exp::Json::parse(buffer.str(), document));
    std::remove("obs_test_system.json");

    const exp::Json *events = document.find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool saw_pe_track = false, saw_bus_track = false, saw_state = false;
    for (std::size_t i = 0; i < events->size(); i++) {
        const exp::Json &event = events->at(i);
        if (event.find("ph")->asString() == "M")
            continue;
        auto pid = event.find("pid")->asInt();
        saw_pe_track |= pid == obs::kTrackPes;
        saw_bus_track |= pid == obs::kTrackBuses;
        const std::string name = event.find("name")->asString();
        saw_state |= name.find("->") != std::string::npos;
    }
    EXPECT_TRUE(saw_pe_track);
    EXPECT_TRUE(saw_bus_track);
    EXPECT_TRUE(saw_state) << "state-transition instants expected";
}

} // namespace
} // namespace ddc
