/**
 * @file
 * Quickstart: build a 4-PE shared-bus machine with the RB scheme,
 * watch the dynamic classification of one shared variable, run a
 * random workload with the consistency checker on, and print the
 * statistics.
 *
 *   ./quickstart
 */

#include <iostream>

#include "core/simulator.hh"
#include "sim/scenario.hh"
#include "trace/synthetic.hh"

using namespace ddc;

int
main()
{
    std::cout << "=== ddcache quickstart ===\n\n";

    // --- 1. Watch one variable change configuration dynamically. ----
    std::cout << "1. Dynamic classification of a shared variable X\n"
              << "   (RB scheme, 3 PEs; the row shows each cache's\n"
              << "   state(value) for X and the memory value)\n\n";

    Scenario scenario(ProtocolKind::Rb, 3);
    const Addr X = 42;

    scenario.read(0, X);
    scenario.read(1, X);
    std::cout << "   PE0 and PE1 read X        -> " << scenario.row(X)
              << "   (shared configuration)\n";

    scenario.write(2, X, 7);
    std::cout << "   PE2 writes X = 7          -> " << scenario.row(X)
              << "   (local to PE2)\n";

    scenario.write(2, X, 8);
    std::cout << "   PE2 writes X = 8 again    -> " << scenario.row(X)
              << "   (no bus traffic!)\n";

    Word seen = scenario.read(0, X);
    std::cout << "   PE0 reads X (gets " << seen << ")     -> "
              << scenario.row(X)
              << "   (owner supplied, back to shared)\n\n";

    // --- 2. Run a whole workload with consistency checking. ---------
    std::cout << "2. Random 4-PE workload, serial-consistency checked\n\n";

    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 256;
    config.protocol = ProtocolKind::Rb;

    auto trace = makeUniformRandomTrace(/*num_pes=*/4, /*refs_per_pe=*/5000,
                                        /*footprint=*/64,
                                        /*write_fraction=*/0.3,
                                        /*ts_fraction=*/0.05, /*seed=*/1);
    auto summary = runTrace(config, trace, /*check_consistency=*/true);

    std::cout << "   " << describe(summary) << "\n"
              << "   every read observed the latest write: "
              << (summary.consistent ? "yes" : "NO - BUG") << "\n\n";

    // --- 3. Compare the schemes on the same workload. ----------------
    std::cout << "3. Same workload under every scheme "
              << "(bus transactions per reference)\n\n";
    for (auto kind : allProtocolKinds()) {
        config.protocol = kind;
        auto run = runTrace(config, trace);
        std::cout << "   " << toString(kind) << ": "
                  << run.bus_per_ref << "\n";
    }
    std::cout << "\nDone. See examples/spinlock_contention.cpp, "
              << "examples/array_init.cpp,\nexamples/producer_consumer.cpp "
              << "and examples/bandwidth_planning.cpp for the\n"
              << "domain scenarios from the paper.\n";
    return 0;
}
