/**
 * @file
 * ddcsim — command-line front end to the ddcache simulator.
 *
 * Runs a memory-reference trace (from a file or a built-in synthetic
 * workload) on a configured machine and reports the results:
 *
 *   ddcsim --workload producer_consumer --protocol RWB --pes 8 --check
 *   ddcsim --trace refs.ddct --protocol RB --lines 1024 --stats
 *   ddcsim --workload cmstar_a --save-trace refs.ddct
 *   ddcsim --workload cmstar_a --json results.json
 *
 * Flat-machine runs go through the experiment engine (src/exp), so
 * the engine flags --jobs N and --json PATH work here exactly as in
 * the bench binaries.  Run with --help for the full option list.
 */

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "base/types.hh"
#include "core/simulator.hh"
#include "exp/session.hh"
#include "hier/hier_system.hh"
#include "verify/consistency.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

void
usage(std::ostream &os)
{
    os <<
        "usage: ddcsim [options] (--trace FILE | --workload NAME)\n"
        "\n"
        "machine options:\n"
        "  --protocol P     RB | RWB | WriteOnce | WriteThrough | CmStar\n"
        "                   (default RB)\n"
        "  --pes N          number of processing elements (default 4)\n"
        "  --lines N        cache lines per PE (default 1024)\n"
        "  --block W        words per cache block (default 1)\n"
        "  --ways N         set associativity (default 1)\n"
        "  --latency L      extra bus cycles per memory transaction\n"
        "                   (default 0, the paper's unified cycle)\n"
        "  --buses K        interleaved shared buses (default 1)\n"
        "  --clusters C     run the two-level hierarchical machine\n"
        "                   (recursive RB) with C clusters of\n"
        "                   --pes PEs each\n"
        "  --global G       global interconnect of the hierarchical\n"
        "                   machine: snoop (default, one snooping\n"
        "                   bus) | directory (address-interleaved\n"
        "                   home nodes; scales past 64 clusters)\n"
        "  --homes H        home nodes of the directory fabric\n"
        "                   (default 1; needs --global directory)\n"
        "  --rwb-k K        RWB writes-to-local threshold (default 2)\n"
        "  --arbiter A      RoundRobin | FixedPriority | Random\n"
        "\n"
        "workload options:\n"
        "  --trace FILE     replay a ddctrace file\n"
        "  --workload NAME  random | array_init | producer_consumer |\n"
        "                   migratory | hot_spot | false_sharing |\n"
        "                   walk | cmstar_a | cmstar_b\n"
        "  --refs N         references per PE for synthetic workloads\n"
        "                   (default 10000)\n"
        "  --seed S         RNG seed (default 1)\n"
        "  --save-trace F   write the generated trace to F and exit\n"
        "\n"
        "output options:\n"
        "  --check          verify serial consistency (records the log)\n"
        "  --stats          dump all counters\n"
        "  --jobs N         experiment-engine worker threads (flat runs)\n"
        "  --json PATH      write structured results as JSON\n"
        "  --timing         include wall_time_ms / sim_time_ms /\n"
        "                   sim_cycles_per_sec / skipped_cycles /\n"
        "                   skip_fraction / snoop_visits in the JSON\n"
        "                   (host-dependent values)\n"
        "  --no-skip        disable quiescent-cycle skipping (A/B\n"
        "                   baseline; results are byte-identical, the\n"
        "                   run is just slower)\n"
        "  --no-snoop-filter  disable the sharer-indexed snoop filter\n"
        "                   (A/B baseline; results are byte-identical,\n"
        "                   only snoop_visits moves)\n"
        "  --shards N       host threads a hierarchical run ticks its\n"
        "                   clusters on (default 1; results are\n"
        "                   byte-identical for every value)\n"
        "  --no-lookahead   barrier sharded runs once per cycle instead\n"
        "                   of batching multi-cycle lookahead windows\n"
        "                   (A/B baseline; results are byte-identical,\n"
        "                   the run is just slower)\n"
        "\n"
        "observability options:\n"
        "  --trace-out FILE  write a Chrome trace-event JSON of the run\n"
        "                   (load in Perfetto / chrome://tracing)\n"
        "  --trace-categories LIST\n"
        "                   comma-separated: bus,state,lock,miss,quiesce\n"
        "                   or \"all\" (default all; needs --trace-out)\n"
        "  --histograms     collect latency histograms (miss service,\n"
        "                   bus wait, lock acquisition, ...) and emit\n"
        "                   them in the --json output\n"
        "  --sample-every N  sample counters every N cycles into a\n"
        "                   per-run time series in the --json output\n"
        "  --help           this text\n";
}

struct Options
{
    SystemConfig config;
    int clusters = 0; // > 0 selects the hierarchical machine
    hier::GlobalKind global = hier::GlobalKind::Snoop;
    int homes = 1;
    std::string trace_file;
    std::string workload;
    std::string save_trace;
    std::size_t refs = 10000;
    std::uint64_t seed = 1;
    bool check = false;
    bool dump_stats = false;
};

bool
parseArgs(int argc, char **argv, Options &options)
{
    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << "ddcsim: " << argv[i] << " needs a value\n";
            return nullptr;
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        const char *value = nullptr;
        if (arg == "--help") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--check") {
            options.check = true;
        } else if (arg == "--stats") {
            options.dump_stats = true;
        } else if (arg == "--protocol") {
            if (!(value = need_value(i)))
                return false;
            options.config.protocol = parseProtocolKind(value);
        } else if (arg == "--pes") {
            if (!(value = need_value(i)))
                return false;
            options.config.num_pes = std::atoi(value);
        } else if (arg == "--lines") {
            if (!(value = need_value(i)))
                return false;
            options.config.cache_lines =
                static_cast<std::size_t>(std::atoll(value));
        } else if (arg == "--block") {
            if (!(value = need_value(i)))
                return false;
            options.config.block_words =
                static_cast<std::size_t>(std::atoll(value));
        } else if (arg == "--ways") {
            if (!(value = need_value(i)))
                return false;
            options.config.ways =
                static_cast<std::size_t>(std::atoll(value));
        } else if (arg == "--latency") {
            if (!(value = need_value(i)))
                return false;
            options.config.memory_latency =
                static_cast<std::size_t>(std::atoll(value));
        } else if (arg == "--buses") {
            if (!(value = need_value(i)))
                return false;
            options.config.num_buses = std::atoi(value);
        } else if (arg == "--clusters") {
            if (!(value = need_value(i)))
                return false;
            options.clusters = std::atoi(value);
        } else if (arg == "--global") {
            if (!(value = need_value(i)))
                return false;
            std::string name = value;
            if (name == "snoop") {
                options.global = hier::GlobalKind::Snoop;
            } else if (name == "directory") {
                options.global = hier::GlobalKind::Directory;
            } else {
                std::cerr << "ddcsim: unknown global interconnect "
                          << name << "\n";
                return false;
            }
        } else if (arg == "--homes") {
            if (!(value = need_value(i)))
                return false;
            options.homes = std::atoi(value);
            if (options.homes < 1) {
                std::cerr << "ddcsim: --homes needs a positive count, "
                             "got " << value << "\n";
                return false;
            }
        } else if (arg == "--rwb-k") {
            if (!(value = need_value(i)))
                return false;
            options.config.rwb_writes_to_local = std::atoi(value);
        } else if (arg == "--arbiter") {
            if (!(value = need_value(i)))
                return false;
            std::string name = value;
            if (name == "RoundRobin") {
                options.config.arbiter = ArbiterKind::RoundRobin;
            } else if (name == "FixedPriority") {
                options.config.arbiter = ArbiterKind::FixedPriority;
            } else if (name == "Random") {
                options.config.arbiter = ArbiterKind::Random;
            } else {
                std::cerr << "ddcsim: unknown arbiter " << name << "\n";
                return false;
            }
        } else if (arg == "--trace") {
            if (!(value = need_value(i)))
                return false;
            options.trace_file = value;
        } else if (arg == "--workload") {
            if (!(value = need_value(i)))
                return false;
            options.workload = value;
        } else if (arg == "--refs") {
            if (!(value = need_value(i)))
                return false;
            options.refs = static_cast<std::size_t>(std::atoll(value));
        } else if (arg == "--seed") {
            if (!(value = need_value(i)))
                return false;
            options.seed = static_cast<std::uint64_t>(std::atoll(value));
        } else if (arg == "--save-trace") {
            if (!(value = need_value(i)))
                return false;
            options.save_trace = value;
        } else {
            std::cerr << "ddcsim: unknown option " << arg << "\n";
            return false;
        }
    }
    if (options.trace_file.empty() == options.workload.empty()) {
        std::cerr << "ddcsim: give exactly one of --trace / --workload\n";
        return false;
    }
    return true;
}

bool
buildWorkload(const Options &options, Trace &trace)
{
    int pes = options.clusters > 0
                  ? options.clusters * options.config.num_pes
                  : options.config.num_pes;
    std::size_t refs = options.refs;
    const std::string &name = options.workload;

    if (name == "random") {
        trace = makeUniformRandomTrace(pes, refs, 64, 0.3, 0.05,
                                       options.seed);
    } else if (name == "array_init") {
        trace = makeArrayInitTrace(pes, refs);
    } else if (name == "producer_consumer") {
        trace = makeProducerConsumerTrace(pes, 16,
                                          static_cast<int>(refs / 64) + 1,
                                          2);
    } else if (name == "migratory") {
        trace = makeMigratoryTrace(pes, 8,
                                   static_cast<int>(refs / 16) + 1);
    } else if (name == "hot_spot") {
        trace = makeHotSpotTrace(pes, static_cast<int>(refs / 9) + 1, 8);
    } else if (name == "false_sharing") {
        trace = makeFalseSharingTrace(pes, static_cast<int>(refs / 2) + 1);
    } else if (name == "walk") {
        // Read-only private streaming that fits L1 after the cold
        // pass: the hit-dominated pattern where the sharded kernel's
        // lookahead windows actually batch barriers (a saturated
        // global bus pins the window at one cycle).
        trace = makeSequentialWalkTrace(pes, 128,
                                        static_cast<int>(refs / 128) + 1,
                                        0);
    } else if (name == "cmstar_a") {
        trace = makeCmStarTrace(cmStarApplicationA(), pes, refs,
                                options.seed);
    } else if (name == "cmstar_b") {
        trace = makeCmStarTrace(cmStarApplicationB(), pes, refs,
                                options.seed);
    } else {
        std::cerr << "ddcsim: unknown workload " << name << "\n";
        return false;
    }
    return true;
}

/** The classic one-line run summary, rebuilt from a RunResult. */
std::string
describeResult(const exp::RunResult &result)
{
    bool completed = result.status == RunStatus::Finished;
    std::ostringstream os;
    os << (completed ? "completed" : "TIMED OUT") << " in "
       << result.cycles << " cycles; " << result.total_refs << " refs; "
       << result.bus_transactions << " bus transactions ("
       << result.metric("bus_per_ref") << " per ref); miss ratio "
       << result.metric("miss_ratio");
    if (!result.consistent)
        os << "; INCONSISTENT";
    return os.str();
}

/**
 * Structured results for a hierarchical run.  Every field is
 * lane-invariant — CI diffs the --shards 1 and --shards 4 files —
 * so kernel facts that depend on the lane count (barrier epochs,
 * lookahead windows) stay on stdout only.
 */
bool
writeHierJson(const std::string &path, const hier::HierConfig &config,
              const hier::HierSystem &system)
{
    exp::Json json = exp::Json::object();
    json["machine"] = exp::Json(std::string("hierarchical"));
    json["protocol"] =
        exp::Json(std::string(toString(config.protocol)));
    json["clusters"] =
        exp::Json(static_cast<std::uint64_t>(config.num_clusters));
    json["pes_per_cluster"] = exp::Json(
        static_cast<std::uint64_t>(config.pes_per_cluster));
    json["global"] = exp::Json(std::string(toString(config.global)));
    json["status"] = exp::Json(std::string(
        system.allDone() ? "finished" : "timed_out"));
    json["cycles"] =
        exp::Json(static_cast<std::uint64_t>(system.now()));
    json["global_bus_ops"] =
        exp::Json(system.globalBusTransactions());
    json["cluster_bus_ops"] =
        exp::Json(system.clusterBusTransactions());
    if (const auto *fabric = system.directoryFabric()) {
        json["home_nodes"] =
            exp::Json(static_cast<std::uint64_t>(config.home_nodes));
        double mean = fabric->meanHomeMessages();
        if (mean > 0.0) {
            json["hot_home_skew"] = exp::Json(
                static_cast<double>(fabric->maxHomeMessages()) / mean);
        }
    }
    if (auto *observability = system.observability()) {
        if (const auto *metrics = observability->metrics())
            json["histograms"] = exp::histogramsJson(*metrics);
        if (auto *sampler = observability->sampler())
            json["samples"] = exp::samplesJson(sampler->series());
        // Host-dependent by design; rides the --profile flag only, so
        // the default JSON stays lane- and host-invariant.
        if (const auto *profile = observability->profile()) {
            json["tick_phase_ms"] = exp::Json(profile->kernel_tick_ms);
            json["barrier_wait_ms"] =
                exp::Json(profile->kernel_barrier_ms);
            if (system.directoryFabric()) {
                json["route_phase_ms"] =
                    exp::Json(profile->fabric_route_ms);
                json["serve_phase_ms"] =
                    exp::Json(profile->fabric_serve_ms);
            }
        }
    }
    std::ofstream out(path);
    if (!out)
        return false;
    json.dump(out);
    out << "\n";
    return out.good();
}

} // namespace

int
main(int argc, char **argv)
{
    auto session_options = exp::parseSessionArgs(argc, argv);
    Options options;
    if (!parseArgs(argc, argv, options)) {
        usage(std::cerr);
        return 1;
    }

    Trace trace;
    if (!options.trace_file.empty()) {
        std::ifstream input(options.trace_file);
        if (!input || !trace.load(input)) {
            std::cerr << "ddcsim: cannot read trace " << options.trace_file
                      << "\n";
            return 1;
        }
    } else if (!buildWorkload(options, trace)) {
        return 1;
    }

    if (!options.save_trace.empty()) {
        std::ofstream output(options.save_trace);
        if (!output) {
            std::cerr << "ddcsim: cannot write " << options.save_trace
                      << "\n";
            return 1;
        }
        trace.save(output);
        std::cout << "wrote " << trace.totalRefs() << " refs ("
                  << trace.numPes() << " PEs) to " << options.save_trace
                  << "\n";
        return 0;
    }

    if (options.clusters > 0) {
        hier::HierConfig config;
        config.num_clusters = options.clusters;
        config.pes_per_cluster = options.config.num_pes;
        config.cache_lines = options.config.cache_lines;
        config.protocol = options.config.protocol;
        config.rwb_writes_to_local = options.config.rwb_writes_to_local;
        config.arbiter = options.config.arbiter;
        config.record_log = options.check;
        config.histograms = session_options.histograms;
        config.global = options.global;
        config.home_nodes = options.homes;

        hier::HierSystem system(config);
        system.loadTrace(trace);
        system.run();
        bool consistent = true;
        if (options.check)
            consistent = checkSerialConsistency(system.log()).consistent;

        std::cout << "hierarchical " << toString(config.protocol)
                  << ", " << options.clusters
                  << " clusters x " << config.pes_per_cluster << " PEs, "
                  << config.cache_lines << " L1 lines, global "
                  << toString(config.global);
        if (config.global == hier::GlobalKind::Directory)
            std::cout << " (" << config.home_nodes << " homes)";
        std::cout << "\n"
                  << (system.allDone() ? "completed" : "TIMED OUT")
                  << " in " << system.now() << " cycles; "
                  << system.globalBusTransactions()
                  << " global bus ops; " << system.clusterBusTransactions()
                  << " cluster bus ops";
        // Sharded runs barrier once per lookahead window, not once per
        // cycle; the epoch count is what CI asserts stays below the
        // cycle count on hit-dominated workloads.
        if (system.barrierEpochs() > 0) {
            std::ostringstream window;
            window << system.meanLookaheadWindow();
            std::cout << "; " << system.barrierEpochs()
                      << " barrier epochs (mean window "
                      << window.str() << ")";
        }
        std::cout << "\n";
        if (options.check) {
            std::cout << "serial consistency: "
                      << (consistent ? "OK" : "VIOLATED") << "\n";
        }
        if (options.dump_stats)
            std::cout << system.counters().report();
        if (!session_options.json_path.empty() &&
            !writeHierJson(session_options.json_path, config, system)) {
            std::cerr << "ddcsim: cannot write "
                      << session_options.json_path << "\n";
            return 1;
        }
        return (!system.allDone() || !consistent) ? 1 : 0;
    }

    exp::Session session(session_options);
    exp::Experiment spec("ddcsim", "one CLI-configured trace run");
    {
        SystemConfig config = options.config;
        bool check = options.check;
        exp::ParamList params{
            {"protocol", std::string(toString(config.protocol))},
            {"pes", std::to_string(config.num_pes)},
        };
        if (!options.workload.empty())
            params.emplace_back("workload", options.workload);
        spec.addRun(params, [config, trace, check]() {
            exp::TraceRun run;
            run.config = config;
            run.trace = trace;
            run.check_consistency = check;
            return run;
        });
    }
    const auto &result = session.run(spec)[0];

    std::cout << "protocol " << toString(options.config.protocol) << ", "
              << options.config.num_pes << " PEs, "
              << options.config.cache_lines << " lines x "
              << options.config.block_words << " words, "
              << options.config.num_buses << " bus(es)\n"
              << describeResult(result) << "\n";
    if (options.check) {
        std::cout << "serial consistency: "
                  << (result.consistent ? "OK" : "VIOLATED") << "\n";
    }
    if (options.dump_stats)
        std::cout << result.counters.report();
    if (!session.writeJson()) {
        std::cerr << "ddcsim: cannot write " << session_options.json_path
                  << "\n";
        return 1;
    }

    bool failed = result.status != RunStatus::Finished ||
                  (options.check && !result.consistent);
    return failed ? 1 : 0;
}
