#include "exp/session.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "base/logging.hh"
#include "sim/system.hh"

namespace ddc {
namespace exp {

SessionOptions
parseSessionArgs(int &argc, char **argv)
{
    SessionOptions options;
    int out = 1;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--timing") {
            options.timing = true;
        } else if (arg == "--no-skip") {
            options.no_skip = true;
            setQuiescentSkipEnabled(false);
        } else if (arg == "--no-snoop-filter") {
            options.no_snoop_filter = true;
            setSnoopFilterEnabled(false);
        } else if (arg == "--jobs" || arg == "--json") {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": " << arg << " needs a value\n";
                std::exit(1);
            }
            const char *value = argv[++i];
            if (arg == "--jobs") {
                options.jobs = std::atoi(value);
                if (options.jobs < 1) {
                    std::cerr << argv[0] << ": --jobs needs a positive "
                              << "integer, got " << value << "\n";
                    std::exit(1);
                }
            } else {
                options.json_path = value;
            }
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
    argv[argc] = nullptr;
    return options;
}

Session::Session(SessionOptions options) : opts(std::move(options)) {}

const std::vector<RunResult> &
Session::run(const Experiment &experiment)
{
    RunnerOptions runner;
    runner.jobs = opts.jobs;
    collected.push_back({experiment.name(), experiment.description(),
                         runExperiment(experiment, runner)});
    return collected.back().results;
}

Json
Session::toJson() const
{
    Json json = Json::object();
    json["schema"] = Json(std::int64_t{4});
    Json experiments = Json::array();
    for (const auto &entry : collected) {
        Json experiment = Json::object();
        experiment["name"] = Json(entry.name);
        experiment["description"] = Json(entry.description);
        Json runs = Json::array();
        for (const auto &result : entry.results)
            runs.push(result.toJson(opts.timing));
        experiment["runs"] = std::move(runs);
        experiments.push(std::move(experiment));
    }
    json["experiments"] = std::move(experiments);
    return json;
}

bool
Session::writeJson() const
{
    if (opts.json_path.empty())
        return true;
    std::ofstream out(opts.json_path);
    if (!out)
        return false;
    toJson().dump(out);
    out << "\n";
    return out.good();
}

} // namespace exp
} // namespace ddc
