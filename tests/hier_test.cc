/**
 * @file
 * Tests of the hierarchical machine (Section 8's extension): basic
 * cross-cluster coherence, traffic filtering, ownership migration,
 * synchronization across clusters, and randomized consistency.
 */

#include <gtest/gtest.h>

#include "hier/hier_system.hh"
#include "sync/programs.hh"
#include "trace/synthetic.hh"
#include "verify/consistency.hh"

namespace ddc {
namespace hier {
namespace {

HierConfig
smallConfig(int clusters = 2, int pes = 2)
{
    HierConfig config;
    config.num_clusters = clusters;
    config.pes_per_cluster = pes;
    config.cache_lines = 32;
    config.record_log = true;
    return config;
}

/** Run a trace to completion; asserts it finishes. */
void
runTrace(HierSystem &system, const Trace &trace)
{
    system.loadTrace(trace);
    system.run(1'000'000);
    ASSERT_TRUE(system.allDone()) << "hierarchical machine deadlocked";
}

TEST(Hier, WritePropagatesAcrossClusters)
{
    HierSystem system(smallConfig());
    Trace trace(4);
    trace.append(0, {CpuOp::Write, 10, 42, DataClass::Shared}); // cluster 0
    for (int i = 0; i < 20; i++)
        trace.append(3, {CpuOp::Read, 10, 0, DataClass::Shared}); // cl. 1
    runTrace(system, trace);

    EXPECT_EQ(system.coherentValue(10), 42u);
    // The reader's final copy agrees.
    if (system.lineState(3, 10).present())
        EXPECT_EQ(system.cacheValue(3, 10), 42u);
    auto report = checkSerialConsistency(system.log());
    EXPECT_TRUE(report.consistent) << report.first_error;
}

TEST(Hier, ClusterOwnershipAbsorbsLocalWrites)
{
    HierSystem system(smallConfig());
    Trace trace(4);
    // PE0 writes the same word many times: first write acquires global
    // ownership, the rest are silent (L1 Local) or cluster-internal.
    for (int i = 0; i < 50; i++)
        trace.append(0, {CpuOp::Write, 20, static_cast<Word>(i + 1),
                         DataClass::Shared});
    runTrace(system, trace);

    EXPECT_EQ(system.coherentValue(20), 50u);
    EXPECT_TRUE(system.clusterCache(0).owns(20));
    // Exactly one global transaction (the ownership acquisition).
    EXPECT_EQ(system.globalCounters().get("bus.write"), 1u);
}

TEST(Hier, IntraClusterSharingStaysOffTheGlobalBus)
{
    HierSystem system(smallConfig(2, 2));
    Trace trace(4);
    // PEs 0 and 1 (same cluster) ping-pong a word.
    trace.append(0, {CpuOp::Write, 30, 1, DataClass::Shared});
    for (int i = 0; i < 20; i++) {
        trace.append(1, {CpuOp::Read, 30, 0, DataClass::Shared});
        trace.append(0, {CpuOp::Read, 30, 0, DataClass::Shared});
    }
    runTrace(system, trace);

    // One global acquisition; all the reads were served inside the
    // cluster (cluster-bus reads + L1 hits).
    EXPECT_LE(system.globalBusTransactions(), 3u);
    EXPECT_TRUE(checkSerialConsistency(system.log()).consistent);
}

TEST(Hier, OwnershipMigratesBetweenClusters)
{
    HierSystem system(smallConfig());
    Trace trace(4);
    trace.append(0, {CpuOp::Write, 40, 1, DataClass::Shared}); // cluster 0
    trace.append(2, {CpuOp::Write, 40, 2, DataClass::Shared}); // cluster 1
    trace.append(0, {CpuOp::Read, 40, 0, DataClass::Shared});
    runTrace(system, trace);

    EXPECT_EQ(system.coherentValue(40), 2u);
    EXPECT_FALSE(system.clusterCache(0).owns(40));
    auto report = checkSerialConsistency(system.log());
    EXPECT_TRUE(report.consistent) << report.first_error;
}

TEST(Hier, DirtyL1SuppliesRemoteCluster)
{
    HierSystem system(smallConfig());
    Trace trace(4);
    // Two writes leave PE0's L1 dirty Local (second write is silent).
    trace.append(0, {CpuOp::Write, 50, 1, DataClass::Shared});
    trace.append(0, {CpuOp::Write, 50, 2, DataClass::Shared});
    // A PE in the other cluster reads: the kill/supply chain must
    // source the L1's value 2, not the cluster cache's stale 1.
    trace.append(2, {CpuOp::Read, 50, 0, DataClass::Shared});
    runTrace(system, trace);

    EXPECT_EQ(system.memoryValue(50), 2u);
    auto report = checkSerialConsistency(system.log());
    EXPECT_TRUE(report.consistent) << report.first_error;
}

TEST(Hier, TestAndSetSerializesGlobally)
{
    HierSystem system(smallConfig());
    Trace trace(4);
    // All four PEs (both clusters) TS the same lock once.
    for (PeId pe = 0; pe < 4; pe++)
        trace.append(pe, {CpuOp::TestAndSet, 60, 1, DataClass::Shared});
    runTrace(system, trace);

    // Exactly one TS succeeded.
    std::size_t successes = 0;
    for (const auto &entry : system.log().all()) {
        if (entry.op == CpuOp::TestAndSet && entry.ts_success)
            successes++;
    }
    EXPECT_EQ(successes, 1u);
    EXPECT_EQ(system.memoryValue(60), 1u);
    EXPECT_TRUE(checkSerialConsistency(system.log()).consistent);
}

TEST(Hier, CrossClusterSpinlockProgramsKeepMutualExclusion)
{
    HierConfig config = smallConfig(2, 2);
    HierSystem system(config);
    const Addr lock = sharedBase();
    const Addr counter = sharedBase() + 1;
    const int acquisitions = 5;
    const int increments = 3;
    for (PeId pe = 0; pe < 4; pe++) {
        sync::LockProgramParams params;
        params.kind = sync::LockKind::TestAndTestAndSet;
        params.lock_addr = lock;
        params.counter_addr = counter;
        params.acquisitions = acquisitions;
        params.cs_increments = increments;
        system.setProgram(pe, sync::makeLockProgram(params));
    }
    system.run(2'000'000);
    ASSERT_TRUE(system.allDone()) << "spinlock deadlocked across clusters";
    EXPECT_EQ(system.coherentValue(counter),
              static_cast<Word>(4 * acquisitions * increments));
    EXPECT_TRUE(checkSerialConsistency(system.log()).consistent);
}

TEST(Hier, TwoPhaseLockAcrossClusters)
{
    HierSystem system(smallConfig());
    // PE0 (cluster 0) read-locks a word; PE2 (cluster 1) tries to
    // write it, which must wait for the unlock.
    ProgramBuilder b0;
    system.setProgram(0, b0.loadImm(1, 70)
                             .loadImm(2, 5)
                             .loadLocked(3, 1)
                             .nop().nop().nop().nop().nop().nop()
                             .nop().nop().nop().nop().nop().nop()
                             .storeUnlock(1, 2) // writes 5
                             .halt()
                             .build());
    ProgramBuilder b1;
    system.setProgram(2, b1.loadImm(1, 70)
                             .loadImm(2, 9)
                             .nop().nop().nop().nop()
                             .store(1, 2) // must land after the unlock
                             .halt()
                             .build());
    system.setProgram(1, Program{});
    system.setProgram(3, Program{});
    system.run(100'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(system.coherentValue(70), 9u);
}

TEST(Hier, IntraClusterLockQueueCannotDeadlock)
{
    // Regression for forward-queue rotation: PE0 takes a two-phase
    // lock; PE1 (same cluster) blocks on its own ReadLock, which sits
    // at the front of the cluster's forward queue NACKing; PE0's
    // unlock is queued behind it.  Without rotation the unlock never
    // reaches the global bus and the machine livelocks.
    HierSystem system(smallConfig(2, 2));
    ProgramBuilder b0;
    system.setProgram(0, b0.loadImm(1, 80)
                             .loadImm(2, 7)
                             .loadLocked(3, 1)
                             .nop().nop().nop().nop().nop().nop()
                             .storeUnlock(1, 2)
                             .halt()
                             .build());
    ProgramBuilder b1;
    system.setProgram(1, b1.loadImm(1, 80)
                             .loadImm(2, 9)
                             .nop().nop()
                             .loadLocked(3, 1) // blocks until PE0 unlocks
                             .storeUnlock(1, 2)
                             .halt()
                             .build());
    system.setProgram(2, Program{});
    system.setProgram(3, Program{});
    system.run(100'000);
    ASSERT_TRUE(system.allDone()) << "intra-cluster lock deadlock";
    EXPECT_EQ(system.coherentValue(80), 9u);
    EXPECT_GT(system.clusterCounters(0).get("hier.forward_rotate"), 0u);
}

TEST(Hier, TsSpinlockProgramsAcrossClusters)
{
    // Plain TS (not TTS): every spin is a global RMW, the worst case
    // for the hierarchy; mutual exclusion must still hold.
    HierSystem system(smallConfig(2, 2));
    const Addr lock = sharedBase();
    const Addr counter = sharedBase() + 1;
    for (PeId pe = 0; pe < 4; pe++) {
        sync::LockProgramParams params;
        params.kind = sync::LockKind::TestAndSet;
        params.lock_addr = lock;
        params.counter_addr = counter;
        params.acquisitions = 4;
        params.cs_increments = 2;
        system.setProgram(pe, sync::makeLockProgram(params));
    }
    system.run(2'000'000);
    ASSERT_TRUE(system.allDone()) << "TS spinlock deadlocked";
    EXPECT_EQ(system.coherentValue(counter), static_cast<Word>(4 * 4 * 2));
    EXPECT_TRUE(checkSerialConsistency(system.log()).consistent);
}

TEST(Hier, BarrierProgramsAcrossClusters)
{
    HierSystem system(smallConfig(2, 2));
    const Addr lock = sharedBase() + 16;
    const Addr count = sharedBase() + 17;
    const Addr sense = sharedBase() + 18;
    for (PeId pe = 0; pe < 4; pe++) {
        system.setProgram(pe, sync::makeBarrierProgram(lock, count, sense,
                                                       4, 4));
    }
    system.run(2'000'000);
    ASSERT_TRUE(system.allDone()) << "barrier deadlocked across clusters";
    EXPECT_TRUE(checkSerialConsistency(system.log()).consistent);
}

TEST(Hier, DeterministicAcrossRuns)
{
    auto trace = makeUniformRandomTrace(8, 300, 16, 0.35, 0.1, 99);
    std::vector<Cycle> cycles;
    for (int run = 0; run < 2; run++) {
        HierSystem system(smallConfig(4, 2));
        system.loadTrace(trace);
        system.run(2'000'000);
        ASSERT_TRUE(system.allDone());
        cycles.push_back(system.now());
    }
    EXPECT_EQ(cycles[0], cycles[1]);
}

class HierProperty
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>>
{
};

TEST_P(HierProperty, RandomTracesAreSeriallyConsistent)
{
    auto [clusters, pes, seed] = GetParam();
    HierConfig config;
    config.num_clusters = clusters;
    config.pes_per_cluster = pes;
    config.cache_lines = 16;
    config.record_log = true;

    HierSystem system(config);
    auto trace = makeUniformRandomTrace(clusters * pes, 400, 12, 0.35,
                                        0.15, seed);
    system.loadTrace(trace);
    system.run(2'000'000);
    ASSERT_TRUE(system.allDone()) << "deadlock/livelock";

    auto report = checkSerialConsistency(system.log());
    EXPECT_TRUE(report.consistent) << report.first_error;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierProperty,
    ::testing::Values(std::make_tuple(2, 2, 7001u),
                      std::make_tuple(2, 4, 7002u),
                      std::make_tuple(4, 2, 7003u),
                      std::make_tuple(4, 4, 7004u),
                      std::make_tuple(3, 3, 7005u),
                      std::make_tuple(8, 2, 7006u)),
    [](const auto &info) {
        return std::to_string(std::get<0>(info.param)) + "x" +
               std::to_string(std::get<1>(info.param));
    });

TEST(Hier, WorkloadsRunConsistently)
{
    struct Case
    {
        const char *name;
        Trace trace;
    };
    std::vector<Case> cases;
    cases.push_back({"array_init", makeArrayInitTrace(8, 64)});
    cases.push_back({"producer_consumer",
                     makeProducerConsumerTrace(8, 8, 4, 2)});
    cases.push_back({"migratory", makeMigratoryTrace(8, 4, 6)});
    cases.push_back({"hot_spot", makeHotSpotTrace(8, 6, 4)});

    for (auto &test_case : cases) {
        HierConfig config = smallConfig(4, 2);
        HierSystem system(config);
        system.loadTrace(test_case.trace);
        system.run(2'000'000);
        ASSERT_TRUE(system.allDone()) << test_case.name;
        auto report = checkSerialConsistency(system.log());
        EXPECT_TRUE(report.consistent)
            << test_case.name << ": " << report.first_error;
    }
}

TEST(Hier, InvariantsHoldAfterRandomRuns)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        HierSystem system(smallConfig(3, 2));
        auto trace = makeUniformRandomTrace(6, 500, 16, 0.4, 0.1, seed);
        system.loadTrace(trace);
        system.run(2'000'000);
        ASSERT_TRUE(system.allDone());

        std::vector<Addr> addrs;
        for (Addr a = 0; a < 16; a++)
            addrs.push_back(sharedBase() + a);
        auto report = checkHierarchyInvariants(system, addrs);
        EXPECT_TRUE(report.ok)
            << "seed " << seed << ": " << report.first_error;
    }
}

TEST(Hier, InvariantsHoldAfterClusteredWorkload)
{
    HierSystem system(smallConfig(4, 2));
    auto trace = makeClusteredTrace(4, 2, 1000, 0.8, 0.3, 5);
    system.loadTrace(trace);
    system.run(2'000'000);
    ASSERT_TRUE(system.allDone());

    std::vector<Addr> addrs;
    for (int c = 0; c < 4; c++) {
        for (Addr a = 0; a < 24; a++)
            addrs.push_back(sharedBase() + static_cast<Addr>(c) * 1024 + a);
    }
    for (Addr a = 0; a < 24; a++)
        addrs.push_back(sharedBase() + (Addr{1} << 20) + a);
    auto report = checkHierarchyInvariants(system, addrs);
    EXPECT_TRUE(report.ok) << report.first_error;
}

TEST(HierRwb, UpdateBroadcastWorksWithinClusters)
{
    HierConfig config = smallConfig(2, 2);
    config.protocol = ProtocolKind::Rwb;
    HierSystem system(config);

    Trace trace(4);
    // PE0 writes once; PE1 (same cluster) holds a copy and must be
    // *updated* (RWB), not invalidated.
    trace.append(1, {CpuOp::Read, 5, 0, DataClass::Shared});
    trace.append(1, {CpuOp::Read, 5, 0, DataClass::Shared});
    for (int i = 0; i < 6; i++)
        trace.append(1, {CpuOp::Read, 5, 0, DataClass::Shared});
    trace.append(0, {CpuOp::Write, 5, 7, DataClass::Shared});
    for (int i = 0; i < 20; i++)
        trace.append(1, {CpuOp::Read, 5, 0, DataClass::Shared});
    system.loadTrace(trace);
    system.run(1'000'000);
    ASSERT_TRUE(system.allDone());

    EXPECT_TRUE(checkSerialConsistency(system.log()).consistent);
    // PE1's final copy carries the written value.
    if (system.lineState(1, 5).present())
        EXPECT_EQ(system.cacheValue(1, 5), 7u);
}

TEST(HierRwb, CrossClusterWriteInvalidatesRemoteCopies)
{
    HierConfig config = smallConfig(2, 2);
    config.protocol = ProtocolKind::Rwb;
    HierSystem system(config);

    Trace trace(4);
    trace.append(2, {CpuOp::Read, 6, 0, DataClass::Shared}); // cluster 1
    trace.append(0, {CpuOp::Write, 6, 9, DataClass::Shared}); // cluster 0
    trace.append(2, {CpuOp::Read, 6, 0, DataClass::Shared});
    system.loadTrace(trace);
    system.run(1'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_TRUE(checkSerialConsistency(system.log()).consistent);
    EXPECT_EQ(system.coherentValue(6), 9u);
}

class HierRwbProperty
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>>
{
};

TEST_P(HierRwbProperty, RandomTracesAreSeriallyConsistent)
{
    auto [clusters, pes, seed] = GetParam();
    HierConfig config;
    config.num_clusters = clusters;
    config.pes_per_cluster = pes;
    config.cache_lines = 16;
    config.protocol = ProtocolKind::Rwb;
    config.record_log = true;

    HierSystem system(config);
    auto trace = makeUniformRandomTrace(clusters * pes, 400, 12, 0.35,
                                        0.15, seed);
    system.loadTrace(trace);
    system.run(2'000'000);
    ASSERT_TRUE(system.allDone()) << "deadlock/livelock";

    auto report = checkSerialConsistency(system.log());
    EXPECT_TRUE(report.consistent) << report.first_error;

    std::vector<Addr> addrs;
    for (Addr a = 0; a < 12; a++)
        addrs.push_back(sharedBase() + a);
    auto invariants = checkHierarchyInvariants(system, addrs);
    EXPECT_TRUE(invariants.ok) << invariants.first_error;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HierRwbProperty,
    ::testing::Values(std::make_tuple(2, 2, 8001u),
                      std::make_tuple(2, 4, 8002u),
                      std::make_tuple(4, 2, 8003u),
                      std::make_tuple(4, 4, 8004u)),
    [](const auto &info) {
        return std::to_string(std::get<0>(info.param)) + "x" +
               std::to_string(std::get<1>(info.param));
    });

TEST(HierRwb, SpinlocksKeepMutualExclusion)
{
    HierConfig config = smallConfig(2, 2);
    config.protocol = ProtocolKind::Rwb;
    HierSystem system(config);
    for (PeId pe = 0; pe < 4; pe++) {
        sync::LockProgramParams params;
        params.kind = sync::LockKind::TestAndTestAndSet;
        params.lock_addr = sharedBase();
        params.counter_addr = sharedBase() + 1;
        params.acquisitions = 5;
        params.cs_increments = 3;
        system.setProgram(pe, sync::makeLockProgram(params));
    }
    system.run(2'000'000);
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(system.coherentValue(sharedBase() + 1),
              static_cast<Word>(4 * 5 * 3));
    EXPECT_TRUE(checkSerialConsistency(system.log()).consistent);
}

TEST(Hier, RejectsUnsupportedProtocols)
{
    HierConfig config;
    config.protocol = ProtocolKind::WriteOnce;
    EXPECT_DEATH(HierSystem{config}, "RB and RWB");
}

TEST(Hier, InvariantCheckerCatchesCorruption)
{
    HierSystem system(smallConfig(2, 2));
    Trace trace(4);
    trace.append(0, {CpuOp::Write, 90, 5, DataClass::Shared});
    for (int i = 0; i < 10; i++)
        trace.append(2, {CpuOp::Read, 90, 0, DataClass::Shared});
    runTrace(system, trace);

    ASSERT_TRUE(checkHierarchyInvariants(system, {90}).ok);
    // Corrupt global memory: live copies now disagree with it.
    system.pokeMemory(90, 999);
    auto report = checkHierarchyInvariants(system, {90});
    EXPECT_FALSE(report.ok);
    EXPECT_NE(report.first_error.find("disagrees"), std::string::npos)
        << report.first_error;
}

TEST(Hier, GlobalTrafficFilteredForClusterLocalData)
{
    // Each PE works on its own shared-region slice (cluster-private in
    // practice): after warm-up, the global bus is quiet.
    HierConfig config = smallConfig(4, 2);
    HierSystem system(config);
    Trace trace(8);
    for (PeId pe = 0; pe < 8; pe++) {
        Addr base = sharedBase() + static_cast<Addr>(pe) * 4;
        for (int i = 0; i < 100; i++) {
            trace.append(pe, {CpuOp::Write, base + (i % 4),
                              static_cast<Word>(i + 1),
                              DataClass::Shared});
            trace.append(pe, {CpuOp::Read, base + (i % 4), 0,
                              DataClass::Shared});
        }
    }
    system.loadTrace(trace);
    system.run(2'000'000);
    ASSERT_TRUE(system.allDone());

    // 8 PEs x 4 words = 32 ownership acquisitions; everything else
    // stays inside the clusters.
    EXPECT_LE(system.globalBusTransactions(), 40u);
    EXPECT_GT(system.clusterBusTransactions(),
              system.globalBusTransactions());
    EXPECT_TRUE(checkSerialConsistency(system.log()).consistent);
}

} // namespace
} // namespace hier
} // namespace ddc
