/**
 * @file
 * Global-interconnect scaling bench: snooping bus vs directory fabric
 * on the hierarchical machine from 64 to 8192 PEs, not a paper
 * reproduction.
 *
 * One family: the Section 8 clustered workload replayed on machines
 * of 2, 8, 32, 128, and 256 clusters x 32 PEs, once with the snooping
 * global bus (--global snoop) and once with the directory fabric
 * (--global directory, homes scaling with the cluster count).  Both
 * arms of a point replay the identical trace; the 256-cluster
 * (8192-PE) point runs directory-only — its snooping arm would be
 * O(clusters) per broadcast and minutes of wall clock for a number
 * the 128-cluster row already demonstrates.  Three effects drive the
 * crossover the table shows:
 *
 *  - sim cycles: the snooping bus grants once per cycle machine-wide,
 *    the fabric once per home per cycle, so directory-mode runs
 *    finish in far fewer simulated cycles at scale;
 *  - global visits: a snoop broadcast costs O(clusters) per
 *    transaction (the sharer index must revert past 64 clusters — see
 *    Bus::snoopFilterFallbacks), a directory transaction O(sharers);
 *  - host wall clock: both of the above are host work, so the wall
 *    clock follows.  The route/serve columns split the fabric's own
 *    tick cost (DirectoryFabric phase timing) out of the wall clock.
 *
 * At 2 clusters the directory runs with one home and is byte-
 * identical to the snooping bus by contract (cycles and txns equal in
 * the table); the win appears as the cluster count grows.
 *
 * Like perf_parallel this binary's output is host-dependent by
 * design: it forces --timing on.  Methodology (EXPERIMENTS.md):
 * measure on a Release build with --jobs 1.
 */

#include "bench_common.hh"

#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "hier/hier_system.hh"
#include "obs/recorder.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

constexpr int kPesPerCluster = 32;

/** One cluster-count point of the sweep. */
struct Point
{
    int clusters;
    /** Whether the snooping arm runs (off at the largest scale). */
    bool snoop_arm;
};

const Point kPoints[] = {
    {2, true}, {8, true}, {32, true}, {128, true}, {256, false},
};

/** Timing reps per point (the table keeps the best). */
constexpr std::size_t kReps = 2;
constexpr std::size_t kRefsPerPe = 200;
constexpr double kClusterLocalFraction = 0.8;
constexpr double kWriteFraction = 0.3;

/** Home nodes for a cluster count (1 at the equivalence point). */
int
homesFor(int clusters)
{
    return clusters >= 4 ? clusters / 4 : 1;
}

std::string
perMega(double per_sec)
{
    if (per_sec <= 0.0)
        return "-";
    return stats::Table::num(per_sec / 1e6, 2);
}

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Perf: global interconnect at scale -- snooping bus vs\n"
        "directory fabric on the hierarchical machine (32 PEs per\n"
        "cluster, Section 8 clustered workload, identical traces per\n"
        "point; the 8192-PE point is directory-only).  Wall-clock,\n"
        "route and serve columns are machine-dependent; cycle, visit\n"
        "and table columns are deterministic.\n\n";

    // Traces are generated up front: point lambdas run inside the
    // timed region.
    std::vector<Trace> traces;
    for (const Point &point : kPoints) {
        traces.push_back(makeClusteredTrace(
            point.clusters, kPesPerCluster, kRefsPerPe,
            kClusterLocalFraction, kWriteFraction, 7));
    }

    exp::Experiment spec(
        "perf_directory_scaling",
        "Snooping global bus vs directory home nodes, 64 to 8192 PEs "
        "(2..256 clusters x 32 PEs) on the clustered workload; "
        "directory arms use clusters/4 home nodes (1 at 2 clusters, "
        "where the two modes are byte-identical by contract); the "
        "256-cluster point runs the directory arm only");

    /** Flat result index where each (point, mode) arm's reps start. */
    std::vector<std::size_t> armFirst;
    std::size_t next = 0;
    for (std::size_t p = 0; p < std::size(kPoints); p++) {
        const Point &point = kPoints[p];
        const Trace &trace = traces[p];
        for (int mode = 0; mode < 2; mode++) {
            bool directory = mode == 1;
            if (!directory && !point.snoop_arm) {
                armFirst.push_back(static_cast<std::size_t>(-1));
                continue;
            }
            armFirst.push_back(next);
            for (std::size_t rep = 0; rep < kReps; rep++) {
                exp::ParamList params = {
                    {"clusters", std::to_string(point.clusters)},
                    {"global", directory ? "directory" : "snoop"},
                    {"rep", std::to_string(rep)},
                };
                int clusters = point.clusters;
                spec.addCustom(params, [clusters, directory, &trace]() {
                    hier::HierConfig config;
                    config.num_clusters = clusters;
                    config.pes_per_cluster = kPesPerCluster;
                    config.cache_lines = 256;
                    config.protocol = ProtocolKind::Rb;
                    if (directory) {
                        config.global = hier::GlobalKind::Directory;
                        config.home_nodes = homesFor(clusters);
                    }
                    hier::HierSystem system(config);
                    system.loadTrace(trace);
                    exp::RunResult result;
                    result.cycles = system.run();
                    result.skipped_cycles = system.skippedCycles();
                    result.bus_transactions =
                        system.globalBusTransactions();
                    result.snoop_visits = system.globalVisits();
                    result.snoop_filter_fallbacks =
                        system.snoopFilterFallbacks();
                    if (auto *fabric = system.directoryFabric()) {
                        result.directory_blocks =
                            fabric->directoryBlocks();
                        result.directory_max_load_factor =
                            fabric->maxLoadFactor();
                        result.setMetric("route_phase_ms",
                                         fabric->routePhaseMs());
                        result.setMetric("serve_phase_ms",
                                         fabric->servePhaseMs());
                        // Hot-home skew: peak over mean per-home
                        // message count (1.0 = perfectly balanced).
                        double mean = fabric->meanHomeMessages();
                        if (mean > 0.0) {
                            result.setMetric(
                                "hot_home_skew",
                                static_cast<double>(
                                    fabric->maxHomeMessages()) /
                                    mean);
                        }
                        // Home service-latency percentiles need the
                        // histogram lanes (--histograms).
                        if (auto *observability = system.observability()) {
                            if (auto *metrics = observability->metrics()) {
                                const auto &hs = metrics->home_service;
                                if (hs.count() > 0) {
                                    result.setMetric(
                                        "home_latency_p50",
                                        hs.percentile(0.50));
                                    result.setMetric(
                                        "home_latency_p90",
                                        hs.percentile(0.90));
                                    result.setMetric(
                                        "home_latency_p99",
                                        hs.percentile(0.99));
                                }
                            }
                        }
                    }
                    return result;
                });
                next++;
            }
        }
    }
    const auto &results = session.run(spec);

    // Best rep (highest sim rate) of the arm starting at flat index
    // @p first; reps are contiguous by construction.
    auto bestRep = [&results](std::size_t first) -> const auto & {
        const auto *best = &results[first];
        for (std::size_t r = 1; r < kReps; r++) {
            const auto &rep = results[first + r];
            if (rep.sim_cycles_per_sec > best->sim_cycles_per_sec)
                best = &rep;
        }
        return *best;
    };

    Table table("Global interconnect scaling: clustered workload, RB, "
                "32 PEs/cluster, 200 refs/PE, best of 2 reps");
    table.setHeader({"PEs", "global", "homes", "cycles", "global txns",
                     "global visits", "visits/txn", "wall ms",
                     "route ms", "serve ms", "dir blocks", "max LF",
                     "Mcycles/s"});
    for (std::size_t p = 0; p < std::size(kPoints); p++) {
        const Point &point = kPoints[p];
        for (int mode = 0; mode < 2; mode++) {
            std::size_t first = armFirst[p * 2 +
                                         static_cast<std::size_t>(mode)];
            if (first == static_cast<std::size_t>(-1))
                continue;
            const auto &best = bestRep(first);
            bool directory = mode == 1;
            double per_txn =
                best.bus_transactions > 0
                    ? static_cast<double>(best.snoop_visits) /
                          static_cast<double>(best.bus_transactions)
                    : 0.0;
            table.addRow(
                {std::to_string(point.clusters * kPesPerCluster),
                 directory ? "directory" : "snoop",
                 directory ? std::to_string(homesFor(point.clusters))
                           : "-",
                 std::to_string(best.cycles),
                 std::to_string(best.bus_transactions),
                 std::to_string(best.snoop_visits),
                 Table::num(per_txn, 1),
                 Table::num(best.wall_time_ms, 2),
                 directory
                     ? Table::num(best.metric("route_phase_ms"), 2)
                     : "-",
                 directory
                     ? Table::num(best.metric("serve_phase_ms"), 2)
                     : "-",
                 directory ? std::to_string(best.directory_blocks)
                           : "-",
                 directory
                     ? Table::num(best.directory_max_load_factor, 2)
                     : "-",
                 perMega(best.sim_cycles_per_sec)});
        }
    }
    std::cout << table.render() << "\n";
}

/** Wall-clock rate of one 1024-PE run per global-interconnect mode. */
void
BM_GlobalInterconnect(benchmark::State &state)
{
    constexpr int kClusters = 32;
    bool directory = state.range(0) != 0;
    auto trace = makeClusteredTrace(kClusters, kPesPerCluster, 50,
                                    kClusterLocalFraction,
                                    kWriteFraction, 7);
    double cycles = 0.0;
    for (auto _ : state) {
        hier::HierConfig config;
        config.num_clusters = kClusters;
        config.pes_per_cluster = kPesPerCluster;
        config.cache_lines = 256;
        config.protocol = ProtocolKind::Rb;
        if (directory) {
            config.global = hier::GlobalKind::Directory;
            config.home_nodes = homesFor(kClusters);
        }
        hier::HierSystem system(config);
        system.loadTrace(trace);
        cycles += static_cast<double>(system.run());
    }
    state.counters["sim_cycles_per_sec"] =
        benchmark::Counter(cycles, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GlobalInterconnect)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

// Not DDC_BENCH_MAIN: this bench measures the simulator itself, so it
// forces --timing on -- its JSON is host-dependent on purpose.
int
main(int argc, char **argv)
{
    auto options = ddc::exp::parseSessionArgs(argc, argv);
    options.timing = true;
    // The route/serve phase-split columns come from the fabric's
    // profile; force it on like --timing -- this bench's output is
    // host-dependent on purpose.
    options.profile = true;
    ddc::obs::setPhaseProfilingEnabled(true);
    ddc::exp::Session session(options);
    printReproduction(session);
    std::cout.flush();
    if (!session.writeJson()) {
        std::cerr << argv[0] << ": cannot write " << options.json_path
                  << "\n";
        return 1;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
