/**
 * @file
 * Ablation A5: block size (assumption 7, quantified).
 *
 * "Our choice of set size and block size of one has two motivations.
 * First, a high cache hit ratio may not always result in good
 * performance ... Secondly, shared data appears to have different, if
 * any, notions of locality.  There is no reason to suspect that
 * nearby address of shared variables will be used by the same
 * processor at the same time."  (Section 2.)
 *
 * We hold cache capacity constant in words and sweep the block size
 * over three reference patterns: a sequential private walk (spatial
 * locality rewards big blocks), word-granular false sharing (big
 * blocks create invalidation ping-pong between unrelated PEs), and
 * the Cm*-style mixed application.  Reported: miss ratio, bus
 * occupancy (block transfers hold the bus for B cycles), and total
 * cycles.
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

struct Row
{
    double miss_ratio;
    std::uint64_t bus_busy;
    Cycle cycles;
};

Row
measure(const Trace &trace, std::size_t block, std::size_t capacity_words,
        ProtocolKind kind)
{
    SystemConfig config;
    config.num_pes = trace.numPes();
    config.cache_lines = capacity_words / block;
    config.block_words = block;
    config.protocol = kind;
    auto summary = runTrace(config, trace);
    return {summary.miss_ratio,
            summary.counters.get("bus.busy_cycles"), summary.cycles};
}

void
printReproduction()
{
    using stats::Table;

    std::cout <<
        "Ablation A5: cache block size (assumption 7)\n"
        "(RB scheme, capacity fixed at 1024 words per cache; block\n"
        "transfers occupy the bus for B cycles)\n\n";

    struct Workload
    {
        const char *name;
        Trace trace;
    };
    std::vector<Workload> workloads;
    workloads.push_back({"sequential_private_walk",
                         makeSequentialWalkTrace(4, 512, 4, 7)});
    workloads.push_back({"false_sharing",
                         makeFalseSharingTrace(4, 256)});
    workloads.push_back({"cmstar_mix",
                         makeCmStarTrace(cmStarApplicationA(), 4, 20000,
                                         5)});

    for (const auto &workload : workloads) {
        Table table(std::string("Workload: ") + workload.name);
        table.setHeader({"block words", "miss ratio", "bus busy cycles",
                         "total cycles"});
        for (std::size_t block : {1u, 2u, 4u, 8u}) {
            auto row = measure(workload.trace, block, 1024,
                               ProtocolKind::Rb);
            table.addRow({std::to_string(block),
                          Table::num(row.miss_ratio, 4),
                          std::to_string(row.bus_busy),
                          std::to_string(row.cycles)});
        }
        std::cout << table.render() << "\n";
    }
    std::cout <<
        "Expected shape: on the private sequential walk, larger blocks\n"
        "cut the miss ratio ~1/B (prefetching) at constant bus\n"
        "occupancy.  On falsely-shared data, larger blocks multiply\n"
        "bus traffic and runtime: unrelated PEs invalidate each other\n"
        "through shared blocks.  On the mixed application the wins and\n"
        "losses nearly cancel -- supporting the paper's choice of one-\n"
        "word blocks for a shared-data-caching machine.\n\n";
}

void
BM_BlockSweep(benchmark::State &state)
{
    auto block = static_cast<std::size_t>(state.range(0));
    auto trace = makeCmStarTrace(cmStarApplicationA(), 4, 8000, 5);
    for (auto _ : state) {
        auto row = measure(trace, block, 1024, ProtocolKind::Rb);
        benchmark::DoNotOptimize(row.cycles);
    }
}
BENCHMARK(BM_BlockSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
