/**
 * @file
 * A private per-PE cache: direct-mapped, with the paper's one-word
 * blocks by default (Section 2, assumption 7) and optional multi-word
 * blocks for the assumption-7 ablation.
 *
 * The cache owns tag/state/value storage and *executes* whatever the
 * configured Protocol decides.  A CPU access either completes locally
 * in the same cycle (hit) or becomes the cache's single pending bus
 * operation, which may take up to three sequential bus transactions:
 *
 *   Writeback  - evict a dirty victim occupying the target line,
 *   Fill       - fetch the target block before a write-class
 *                transaction, when blocks are multi-word and the
 *                block is not resident (write-allocate needs the
 *                block's other words),
 *   Flush      - write back the target word/block itself before an
 *                RMW-class transaction that takes its input from
 *                memory,
 *   Main       - the protocol-chosen transaction for the access.
 *
 * Preconditions of the earlier phases can be erased (or re-created)
 * by snooped transactions, so the whole plan is lazily re-validated
 * each time the bus polls hasRequest(); a pending read whose line was
 * refilled by a snooped broadcast completes without ever using the
 * bus — the RWB scheme's "data can be fetched from any cache".
 */

#ifndef DDC_SIM_CACHE_HH
#define DDC_SIM_CACHE_HH

#include <vector>

#include "base/types.hh"
#include "core/protocol.hh"
#include "sim/bus.hh"
#include "sim/clock.hh"
#include "sim/exec_log.hh"
#include "stats/counter.hh"
#include "trace/trace.hh"

namespace ddc {

/** One direct-mapped private cache (or one bank of a multi-bus set). */
class Cache : public BusClient
{
  public:
    /** Outcome of a CPU access. */
    struct AccessResult
    {
        bool complete = false;
        Word value = 0;
        bool ts_success = false;
    };

    /**
     * @param pe Owning PE.
     * @param num_lines Number of lines (> 0); capacity in words is
     *        num_lines * block_words.
     * @param protocol Coherence policy (shared, not owned).
     * @param clock Shared cycle counter.
     * @param stats Counter set receiving cache.* statistics.
     * @param log Optional serial execution log for consistency checks.
     * @param block_words Words per block (paper default: 1).
     * @param ways Set associativity (paper default: 1, direct-mapped);
     *        must divide num_lines.  Replacement within a set is LRU.
     */
    Cache(PeId pe, std::size_t num_lines, const Protocol &protocol,
          const Clock &clock, stats::CounterSet &stats,
          ExecutionLog *log = nullptr, std::size_t block_words = 1,
          std::size_t ways = 1);

    /** Attach to @p bus (must be called exactly once before use). */
    void connectBus(Bus &bus);

    /**
     * Issue a CPU access.  Returns complete=true for hits; otherwise
     * the access is pending (at most one at a time) and the caller
     * polls takeCompletion() on subsequent cycles.
     */
    AccessResult cpuAccess(const MemRef &ref);

    /** True while an access is outstanding. */
    bool busy() const { return pending.active; }

    /**
     * Monotonic id of the most recent cpuAccess.  A component that
     * completes this cache's request out-of-band (the hierarchical
     * cluster cache) records it to detect abandoned operations.
     */
    std::uint64_t accessId() const { return accessCounter; }

    /** True when a previously pending access has completed. */
    bool hasCompletion() const { return completionReady; }

    /** Retrieve (and consume) the completed access's result. */
    AccessResult takeCompletion();

    /** Coherence state this cache holds for @p addr's block. */
    LineState lineState(Addr addr) const;

    /** Cached value for @p addr (0 when not present). */
    Word lineValue(Addr addr) const;

    /** Number of lines. */
    std::size_t numLines() const { return lines.size(); }

    /** Words per block. */
    std::size_t blockWords() const { return blockSize; }

    /** Set associativity. */
    std::size_t numWays() const { return ways; }

    // BusClient interface.
    bool hasRequest() override;
    BusRequest currentRequest() override;
    void requestComplete(const BusResult &result) override;
    bool wouldSupply(Addr addr, Word &value) override;
    std::vector<Word> supplyBlock(Addr addr) override;
    void observe(const BusTransaction &txn) override;
    void supplied(Addr addr) override;
    PeId peId() const override { return pe; }

  private:
    /** Storage for one line (one block). */
    struct Line
    {
        /** Block base address (valid when state is not NotPresent). */
        Addr base = 0;
        std::vector<Word> data;
        LineState state{};
        /** LRU stamp (updated on CPU use and install). */
        std::uint64_t last_use = 0;
    };

    /** Phases of a pending access. */
    enum class Phase { Writeback, Fill, Flush, Main };

    /** The (single) outstanding access. */
    struct PendingOp
    {
        bool active = false;
        MemRef ref{};
        CpuReaction reaction{};
        Phase phase = Phase::Main;
        /** Line index reserved for this access (stable across phases). */
        std::size_t way_index = 0;
    };

    Addr blockBase(Addr addr) const;

    /** First line index of @p addr's set. */
    std::size_t setBase(Addr addr) const;

    /** The way of @p addr's set holding its tag, or nullptr. */
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    /**
     * The line a (re)fill of @p addr will use: the tag-matching way
     * when one exists (even Invalid, so a set never holds duplicate
     * tags), else an empty way, else the LRU way.
     */
    Line &victimLine(Addr addr);

    /** The line reserved for the pending access. */
    Line &pendingLine();
    const Line &pendingLine() const;

    /** True when @p line holds the block containing @p addr. */
    bool holdsBlock(const Line &line, Addr addr) const;

    /** State of @p line as seen for @p addr (NotPresent on tag miss). */
    LineState stateFor(const Line &line, Addr addr) const;

    /** Choose the next phase for the current pending reaction. */
    Phase computePhase() const;

    /**
     * Re-derive the reaction and phase from the current line state;
     * completes the access locally if a snooped broadcast already
     * satisfied it.
     */
    void revalidatePending();

    /** Finish the pending access with @p result and log the commit. */
    void finish(const AccessResult &result);

    /** Record the commit of @p ref in the serial execution log. */
    void logCommit(const MemRef &ref, const AccessResult &result);

    PeId pe;
    const Protocol &protocol;
    const Clock &clock;
    stats::CounterSet &stats;
    ExecutionLog *log;
    std::size_t blockSize;
    std::size_t ways;
    std::uint64_t lruClock = 0;
    Bus *bus = nullptr;

    std::vector<Line> lines;
    PendingOp pending;
    std::uint64_t accessCounter = 0;
    bool completionReady = false;
    AccessResult completion{};
};

} // namespace ddc

#endif // DDC_SIM_CACHE_HH
