/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include "stats/counter.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace ddc {
namespace stats {
namespace {

TEST(CounterSet, StartsEmpty)
{
    CounterSet counters;
    EXPECT_EQ(counters.get("anything"), 0u);
    EXPECT_FALSE(counters.has("anything"));
    EXPECT_TRUE(counters.names().empty());
}

TEST(CounterSet, AddAccumulates)
{
    CounterSet counters;
    counters.add("bus.read");
    counters.add("bus.read", 4);
    EXPECT_EQ(counters.get("bus.read"), 5u);
    EXPECT_TRUE(counters.has("bus.read"));
}

TEST(CounterSet, RatioHandlesZeroDenominator)
{
    CounterSet counters;
    counters.add("hits", 3);
    EXPECT_DOUBLE_EQ(counters.ratio("hits", "none"), 0.0);
    counters.add("total", 6);
    EXPECT_DOUBLE_EQ(counters.ratio("hits", "total"), 0.5);
}

TEST(CounterSet, SumPrefix)
{
    CounterSet counters;
    counters.add("cache.read_miss.Code", 2);
    counters.add("cache.read_miss.Local", 3);
    counters.add("cache.read_hit.Code", 100);
    counters.add("cache.read_missX", 50); // prefix match, counted
    EXPECT_EQ(counters.sumPrefix("cache.read_miss."), 5u);
    EXPECT_EQ(counters.sumPrefix("cache.read_miss"), 55u);
    EXPECT_EQ(counters.sumPrefix("nothing."), 0u);
}

TEST(CounterSet, ClearKeepsNamesZeroesValues)
{
    CounterSet counters;
    counters.add("a", 7);
    counters.clear();
    EXPECT_EQ(counters.get("a"), 0u);
    EXPECT_TRUE(counters.has("a"));
}

TEST(CounterSet, MergeAddsMatchingCounters)
{
    CounterSet a;
    CounterSet b;
    a.add("x", 1);
    b.add("x", 2);
    b.add("y", 3);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 3u);
    EXPECT_EQ(a.get("y"), 3u);
}

TEST(CounterSet, NamesSortedAndNonZeroOnly)
{
    CounterSet counters;
    counters.add("zeta", 1);
    counters.add("alpha", 1);
    counters.add("mid", 0);
    auto names = counters.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "zeta");
}

TEST(CounterSet, ReportContainsNonZeroEntries)
{
    CounterSet counters;
    counters.add("bus.read", 12);
    auto report = counters.report();
    EXPECT_NE(report.find("bus.read = 12"), std::string::npos);
}

TEST(CounterId, InvalidByDefault)
{
    CounterId id;
    EXPECT_FALSE(id.valid());
}

TEST(CounterId, HandleAndNameKeyedAddsHitTheSameCounter)
{
    CounterSet counters;
    CounterId read = counters.intern("bus.read");
    EXPECT_TRUE(read.valid());
    counters.add(read);
    counters.add("bus.read", 4);
    counters.add(read, 2);
    EXPECT_EQ(counters.get("bus.read"), 7u);
    EXPECT_EQ(counters.get(read), 7u);
}

TEST(CounterId, InterningIsIdempotent)
{
    CounterSet counters;
    CounterId first = counters.intern("cache.refs");
    counters.add("cache.refs", 3);
    CounterId again = counters.intern("cache.refs");
    counters.add(again, 2);
    EXPECT_EQ(counters.get(first), 5u);
}

TEST(CounterId, ZeroValuedHandlesStayOutOfNamesAndReport)
{
    // Components intern every handle at construction; names that
    // never fire must not leak into names()/report()/sumPrefix.
    CounterSet counters;
    counters.intern("bus.nack");
    CounterId read = counters.intern("bus.read");
    counters.add(read, 9);
    auto names = counters.names();
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "bus.read");
    EXPECT_EQ(counters.report().find("bus.nack"), std::string::npos);
    EXPECT_EQ(counters.sumPrefix("bus."), 9u);
}

TEST(CounterId, HandleAddsSurviveClearAndMerge)
{
    CounterSet a;
    CounterId x = a.intern("x");
    a.add(x, 7);
    a.clear();
    EXPECT_EQ(a.get(x), 0u);
    a.add(x, 2);

    CounterSet b;
    b.add("x", 1);
    b.add("y", 5);
    a.merge(b);
    EXPECT_EQ(a.get(x), 3u);
    EXPECT_EQ(a.get("y"), 5u);
}

TEST(Histogram, TracksCountSumMinMaxMean)
{
    Histogram histogram(8, 10);
    histogram.sample(5);
    histogram.sample(15);
    histogram.sample(100);
    EXPECT_EQ(histogram.count(), 3u);
    EXPECT_EQ(histogram.sum(), 120u);
    EXPECT_EQ(histogram.min(), 5u);
    EXPECT_EQ(histogram.max(), 100u);
    EXPECT_DOUBLE_EQ(histogram.mean(), 40.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram histogram(4, 10); // buckets [0,10) .. [30,40) + overflow
    histogram.sample(0);
    histogram.sample(9);
    histogram.sample(35);
    histogram.sample(1000);
    EXPECT_EQ(histogram.bucketCount(0), 2u);
    EXPECT_EQ(histogram.bucketCount(3), 1u);
    EXPECT_EQ(histogram.bucketCount(4), 1u); // overflow
}

TEST(Histogram, PercentileAtBucketGranularity)
{
    Histogram histogram(10, 1);
    for (int i = 0; i < 100; i++)
        histogram.sample(static_cast<std::uint64_t>(i % 5));
    EXPECT_LE(histogram.percentile(0.5), 4u);
    EXPECT_EQ(histogram.percentile(1.0), 4u);
}

TEST(Histogram, EmptyIsSafe)
{
    Histogram histogram;
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.min(), 0u);
    EXPECT_EQ(histogram.max(), 0u);
    EXPECT_DOUBLE_EQ(histogram.mean(), 0.0);
    EXPECT_EQ(histogram.percentile(0.5), 0u);
    EXPECT_EQ(histogram.percentile(0.0), 0u);
    EXPECT_EQ(histogram.percentile(1.0), 0u);
}

TEST(Histogram, PercentileFractionBounds)
{
    Histogram histogram(10, 10);
    for (int i = 0; i < 100; i++)
        histogram.sample(static_cast<std::uint64_t>(i));
    // fraction <= 0 is the smallest sample, not a bucket edge.
    EXPECT_EQ(histogram.percentile(0.0), 0u);
    EXPECT_EQ(histogram.percentile(-3.0), 0u);
    // fraction >= 1 clamps to 1 and resolves to the largest sample.
    EXPECT_EQ(histogram.percentile(1.0), 99u);
    EXPECT_EQ(histogram.percentile(7.0), 99u);
    // Interior percentiles report the holding bucket's upper edge:
    // the 50th sample (value 49) lives in [40, 50), upper edge 49.
    EXPECT_EQ(histogram.percentile(0.5), 49u);
    EXPECT_EQ(histogram.percentile(0.9), 89u);
}

TEST(Histogram, PercentileSingleSampleClampsToObservedRange)
{
    // One sample of 5 with width 4 lands in bucket [4, 8); every
    // percentile must report 5 (the sample), not the bucket edge 7.
    Histogram histogram(4, 4);
    histogram.sample(5);
    EXPECT_EQ(histogram.percentile(0.0), 5u);
    EXPECT_EQ(histogram.percentile(0.001), 5u);
    EXPECT_EQ(histogram.percentile(0.5), 5u);
    EXPECT_EQ(histogram.percentile(1.0), 5u);
}

TEST(Histogram, PercentileBucketBoundaries)
{
    // Samples exactly on bucket edges: 10 is the first value of
    // bucket [10, 20), so every percentile of an all-10 histogram is
    // the clamped upper edge 10 — never 19 and never bucket 0's edge.
    Histogram histogram(4, 10);
    for (int i = 0; i < 8; i++)
        histogram.sample(10);
    EXPECT_EQ(histogram.percentile(0.5), 10u);
    EXPECT_EQ(histogram.percentile(1.0), 10u);
    // Mixed edges: four 9s (bucket 0) and four 10s (bucket 1).  The
    // median rank (4) resolves within bucket 0, whose upper edge is
    // exactly 9; anything above resolves to bucket 1, clamped to 10.
    Histogram edges(4, 10);
    for (int i = 0; i < 4; i++) {
        edges.sample(9);
        edges.sample(10);
    }
    EXPECT_EQ(edges.percentile(0.5), 9u);
    EXPECT_EQ(edges.percentile(0.75), 10u);
}

TEST(Histogram, PercentileOverflowHeavy)
{
    // Overflow bucket has no finite upper edge, so percentiles that
    // land there report max().  One in-range sample keeps the low
    // percentiles finite and bucket-resolved.
    Histogram histogram(2, 10); // [0,10) [10,20) + overflow
    histogram.sample(3);
    for (int i = 0; i < 9; i++)
        histogram.sample(500 + i);
    EXPECT_EQ(histogram.percentile(0.05), 9u); // bucket 0 upper edge
    EXPECT_EQ(histogram.percentile(0.5), 508u);
    EXPECT_EQ(histogram.percentile(0.99), 508u);
    EXPECT_EQ(histogram.percentile(1.0), 508u);
    EXPECT_EQ(histogram.max(), 508u);
}

TEST(Histogram, BucketWidthAccessor)
{
    Histogram histogram(8, 10);
    EXPECT_EQ(histogram.bucketWidth(), 10u);
    EXPECT_EQ(Histogram().bucketWidth(), 1u);
}

TEST(Histogram, ClearResets)
{
    Histogram histogram(4, 1);
    histogram.sample(2);
    histogram.clear();
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.bucketCount(2), 0u);
}

TEST(Table, RendersHeaderAndRows)
{
    Table table("Caption");
    table.setHeader({"A", "B"});
    table.addRow({"1", "22"});
    table.addRow({"333", "4"});
    auto text = table.render();
    EXPECT_NE(text.find("Caption"), std::string::npos);
    EXPECT_NE(text.find("A"), std::string::npos);
    EXPECT_NE(text.find("333"), std::string::npos);
    EXPECT_EQ(table.numRows(), 2u);
}

TEST(Table, NumericFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, RaggedRowsArePadded)
{
    Table table;
    table.setHeader({"A", "B", "C"});
    table.addRow({"only"});
    auto text = table.render();
    EXPECT_NE(text.find("only"), std::string::npos);
}

TEST(Table, SeparatorDoesNotCountAsRow)
{
    Table table;
    table.addRow({"x"});
    table.addSeparator();
    table.addRow({"y"});
    EXPECT_EQ(table.numRows(), 2u);
}

} // namespace
} // namespace stats
} // namespace ddc
