/**
 * @file
 * The directory fabric: the hierarchical machine's global
 * interconnect at scale.
 *
 * Replaces the snooping global Bus with H address-interleaved home
 * nodes (block b is served by home b mod H; a shift-free mask when H
 * is a power of two).  Clusters attach and arm requests exactly as on
 * the bus; each cycle the fabric routes every pending request to its
 * block's home by address (the side-effect-free BusClient::pendingAddr
 * hook), and every home independently arbitrates and serves one
 * request.  All per-transaction work is addressed through directory
 * state — owner forwards and sharer deliveries — so cost per
 * transaction is O(sharers), and fabric memory is O(blocks held) +
 * O(clusters), never O(clusters) *per block* and never O(PEs).
 *
 * The per-cycle hot path is O(armed), not O(clients): the serial
 * phase keeps a dense ascending list of armed clients (rebuilt from
 * the per-client armed slots whenever an arm event was published,
 * lazily compacted otherwise), and only the homes that actually
 * received a request this cycle are ticked — the rest are idle-
 * accounted in one batched counter add, which is byte-identical to
 * ticking each of them because every home interns the same
 * "bus.idle_cycles" handle in the shared counter set.
 *
 * Determinism and equivalence:
 *  - The armed list is ascending and touched homes are served in
 *    ascending id order on the serial shard, so requester collection,
 *    arbiter streams, and cross-home delivery order are byte-
 *    identical to the dense scan — and identical across --shards
 *    values exactly like the snooping configuration.  (Homes must
 *    stay in the serial phase: the snooping bus commits
 *    supply/kill/deliver atomically within a cycle, and parallel home
 *    ticks could not preserve the cross-home delivery order that
 *    clusters observe.)
 *  - With H = 1 the fabric reduces to the snooping global bus
 *    cycle-for-cycle: same requester collection, same arbiter
 *    stream, same memory/lock semantics, same counter family —
 *    deliveries reach only recorded sharers, which is unobservable
 *    because non-holders treat a snoop as a no-op.  The equivalence
 *    suite (tests/dir_equivalence_test.cc) pins this.
 *
 * Request arming is the one cross-shard edge, with the same
 * per-client slot + relaxed atomic count contract as
 * Bus::setRequestArmed; armEvents is a second relaxed atomic in the
 * same contract class (bumped only on disarmed->armed transitions,
 * read only on the serial shard) that tells the routing pass when its
 * dense list went stale.  The edge is lookahead-window-aware: the
 * kernel sizes a multi-cycle window so any arm posted inside it lands
 * on the window's last cycle, which keeps the fabric's next tick —
 * the barrier after the window — exactly one cycle behind the arm,
 * as in a cycle-per-barrier run; arms that were already visible pull
 * nextEventCycle() to now and cap the window at one cycle.
 *
 * Quiescence contract: after a routing pass that posted nothing, the
 * fabric reports kNever until the next arm event — a client that is
 * armed but has no pending request must announce new work through
 * setRequestArmed (ClusterCache does: its armed flag tracks
 * "forwards pending" exactly, so a false hasRequest() poll disarms it
 * inside the same call).
 */

#ifndef DDC_DIR_FABRIC_HH
#define DDC_DIR_FABRIC_HH

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "base/types.hh"
#include "dir/home_node.hh"
#include "obs/recorder.hh"
#include "sim/fabric.hh"

namespace ddc {
namespace dir {

/** Address-interleaved home-node interconnect (global level). */
class DirectoryFabric : public GlobalFabric, public Tickable
{
  public:
    /**
     * @param home_nodes Number of home nodes (>= 1).
     * @param arbiter_seed Base seed; home h arbitrates with seed
     *        @p arbiter_seed + h, so home 0 matches the snooping
     *        global bus.
     * @param stats Shared global counter set (see HomeNode).
     */
    DirectoryFabric(int home_nodes, ArbiterKind arbiter_kind,
                    std::uint64_t arbiter_seed,
                    stats::CounterSet &stats);

    // ---- GlobalFabric ---------------------------------------------
    int attach(BusClient *client) override;
    void setRequestArmed(int client, bool is_armed) override;
    std::size_t blockWords() const override { return 1; }

    // ---- Tickable -------------------------------------------------
    /**
     * Advance one cycle: route every armed pending request to its
     * home, then tick the touched homes in ascending order (at most
     * one new transaction per home per cycle) and idle-account the
     * rest in one batch.
     */
    void tick() override;

    /**
     * @p now while any client is armed AND the fabric may have work:
     * either an arm event arrived since the last routing pass, or
     * that pass posted at least one request.  kNever otherwise —
     * in particular when every armed client polled "no request" last
     * cycle, so the quiescent-skip engine engages (see the
     * quiescence contract in the file header).
     */
    Cycle
    nextEventCycle(Cycle now) const override
    {
        if (armedClients() == 0)
            return kNever;
        if (armEvents.load(std::memory_order_relaxed) != seenArmEvents)
            return now;
        return lastRoutingPosted > 0 ? now : kNever;
    }

    /** Account @p count quiescent cycles (idle at every home). */
    void skipCycles(Cycle count) override;

    // ---- Topology & inspection ------------------------------------
    int numHomes() const { return static_cast<int>(homes.size()); }

    /** The home node serving @p addr. */
    int
    homeOf(Addr addr) const
    {
        if (homesPow2)
            return static_cast<int>(addr & homeMask);
        return static_cast<int>(addr %
                                static_cast<Addr>(homes.size()));
    }

    HomeNode &home(int h) { return *homes[static_cast<std::size_t>(h)]; }
    const HomeNode &
    home(int h) const
    {
        return *homes[static_cast<std::size_t>(h)];
    }

    /** Global memory's value of @p addr (routed to its home bank). */
    Word memoryValue(Addr addr) const;

    /** Overwrite home memory directly (fault-injection hook). */
    void pokeMemory(Addr addr, Word value);

    /**
     * Point-to-point messages sent so far (owner forwards + sharer
     * deliveries); the directory-mode analogue of Bus::snoopVisits,
     * and — like it — plain bookkeeping, not a CounterSet statistic.
     */
    std::uint64_t messageVisits() const { return visitCount; }

    /** Blocks with directory state, summed across homes. */
    std::size_t directoryBlocks() const;

    /**
     * Highest load factor any home's flat-map state table (directory
     * entries or memory bank) ever reached — the table-health metric
     * surfaced per run alongside directoryBlocks().
     */
    double maxLoadFactor() const;

    std::size_t
    armedClients() const
    {
        return armedCount.load(std::memory_order_relaxed);
    }

    // ---- Observability ---------------------------------------------
    /**
     * Attach observability: dir-category trace + directory
     * histograms for every home (all serial-phase, shard 0), plus
     * request-latency tracking stamped by the routing pass.
     * @p recorder may be null.  Call after every cluster attached.
     */
    void setObserver(obs::Recorder *recorder, const Clock *clock);

    /**
     * Route the host phase split (route vs serve wall ms) into
     * @p profile's fabric_route_ms / fabric_serve_ms; chrono calls
     * only when non-null (off by default).
     */
    void setProfile(obs::PhaseProfile *profile)
    {
        this->profile = profile;
    }

    /** Wall time spent routing requests to homes, in milliseconds. */
    double
    routePhaseMs() const
    {
        return profile ? profile->fabric_route_ms : 0.0;
    }

    /** Wall time spent serving touched homes, in milliseconds. */
    double
    servePhaseMs() const
    {
        return profile ? profile->fabric_serve_ms : 0.0;
    }

    /** Largest per-home message count (hot-home skew numerator). */
    std::uint64_t maxHomeMessages() const;

    /** Mean per-home message count (hot-home skew denominator). */
    double meanHomeMessages() const;

  private:
    std::vector<std::unique_ptr<HomeNode>> homes;
    std::vector<BusClient *> clients;
    /** Per-client armed slots (see Bus::setRequestArmed). */
    std::vector<char> armed;
    std::atomic<std::size_t> armedCount{0};
    /**
     * Generation counter of disarmed->armed transitions (attach
     * included); relaxed, single-reader on the serial shard.  The
     * routing pass rebuilds armedList when it observes a new value.
     */
    std::atomic<std::uint64_t> armEvents{0};
    /** armEvents value the routing pass last synchronized with. */
    std::uint64_t seenArmEvents = 0;
    /**
     * Dense ascending list of (possibly stale) armed clients; stale
     * entries are compacted away during the routing walk, fresh arms
     * trigger a full rebuild (amortized O(1) per arm event).
     */
    std::vector<int> armedList;
    /** Homes with a non-empty inbox this cycle (ticked in id order). */
    std::vector<int> touchedHomes;
    /** Requests posted by the most recent routing pass. */
    std::size_t lastRoutingPosted = 0;
    /** True when the home count is a power of two (mask routing). */
    bool homesPow2;
    /** homes.size() - 1 when homesPow2. */
    Addr homeMask;
    stats::CounterSet &stats;
    /** Shared "bus.idle_cycles" handle for batched idle accounting. */
    stats::CounterId statIdle;
    std::uint64_t visitCount = 0;
    /** Host phase-split accumulator (null = profiling off). */
    obs::PhaseProfile *profile = nullptr;
    /** Shared per-home observability context (see HomeObs). */
    HomeObs homeObs;
    /** Per-client first-routed cycle (home_service latency). */
    std::vector<Cycle> requestStart;
};

} // namespace dir
} // namespace ddc

#endif // DDC_DIR_FABRIC_HH
