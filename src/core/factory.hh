/**
 * @file
 * Protocol factory: construct any scheme by name.
 */

#ifndef DDC_CORE_FACTORY_HH
#define DDC_CORE_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/protocol.hh"

namespace ddc {

/** Identifier of a coherence scheme. */
enum class ProtocolKind
{
    Rb,           //!< the paper's RB scheme
    Rwb,          //!< the paper's RWB scheme
    WriteOnce,    //!< Goodman's write-once baseline
    WriteThrough, //!< write-through-invalidate baseline
    CmStar,       //!< Table 1-1's code+local-only policy
};

/** Printable name of a ProtocolKind. */
std::string_view toString(ProtocolKind kind);

/** Parse a protocol name ("RB", "RWB", ...); fatal() on unknown names. */
ProtocolKind parseProtocolKind(const std::string &name);

/**
 * Build a protocol.
 *
 * @param kind Which scheme.
 * @param rwb_writes_to_local RWB's k (ignored by the other schemes).
 */
std::unique_ptr<Protocol> makeProtocol(ProtocolKind kind,
                                       int rwb_writes_to_local = 2);

/** All protocol kinds, for sweeping comparisons. */
std::vector<ProtocolKind> allProtocolKinds();

} // namespace ddc

#endif // DDC_CORE_FACTORY_HH
