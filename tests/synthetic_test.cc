/** @file Unit tests for the synthetic workload generators. */

#include <gtest/gtest.h>

#include "trace/synthetic.hh"

namespace ddc {
namespace {

TEST(Regions, AreDisjointPerPe)
{
    EXPECT_NE(codeBase(0), codeBase(1));
    EXPECT_NE(localBase(0), localBase(1));
    EXPECT_LT(codeBase(0), localBase(0));
    EXPECT_GT(sharedBase(), localBase(63));
}

TEST(CmStarTrace, Deterministic)
{
    auto params = cmStarApplicationA();
    auto a = makeCmStarTrace(params, 2, 500, 99);
    auto b = makeCmStarTrace(params, 2, 500, 99);
    EXPECT_EQ(a, b);
}

TEST(CmStarTrace, DifferentSeedsDiffer)
{
    auto params = cmStarApplicationA();
    auto a = makeCmStarTrace(params, 2, 500, 1);
    auto b = makeCmStarTrace(params, 2, 500, 2);
    EXPECT_NE(a, b);
}

TEST(CmStarTrace, MixRoughlyMatchesParams)
{
    auto params = cmStarApplicationB(); // 6.7% local writes, 10% shared
    const std::size_t refs = 20000;
    auto trace = makeCmStarTrace(params, 1, refs, 7);

    std::size_t local_writes = 0;
    std::size_t shared = 0;
    for (const auto &ref : trace.stream(0)) {
        if (ref.op == CpuOp::Write && ref.cls == DataClass::Local)
            local_writes++;
        if (ref.cls == DataClass::Shared)
            shared++;
    }
    EXPECT_NEAR(static_cast<double>(local_writes) / refs, 0.067, 0.01);
    EXPECT_NEAR(static_cast<double>(shared) / refs, 0.10, 0.01);
}

TEST(CmStarTrace, AddressesStayInTheRightRegions)
{
    auto params = cmStarApplicationA();
    auto trace = makeCmStarTrace(params, 2, 2000, 5);
    for (PeId pe = 0; pe < 2; pe++) {
        for (const auto &ref : trace.stream(pe)) {
            switch (ref.cls) {
              case DataClass::Code:
                EXPECT_GE(ref.addr, codeBase(pe));
                EXPECT_LT(ref.addr, codeBase(pe) + params.code_footprint);
                break;
              case DataClass::Local:
                EXPECT_GE(ref.addr, localBase(pe));
                EXPECT_LT(ref.addr, localBase(pe) + params.local_footprint);
                break;
              case DataClass::Shared:
                EXPECT_GE(ref.addr, sharedBase());
                EXPECT_LT(ref.addr,
                          sharedBase() + params.shared_footprint);
                break;
            }
        }
    }
}

TEST(CmStarTrace, CodeReferencesAreReadOnly)
{
    auto trace = makeCmStarTrace(cmStarApplicationA(), 2, 5000, 3);
    for (PeId pe = 0; pe < 2; pe++) {
        for (const auto &ref : trace.stream(pe)) {
            if (ref.cls == DataClass::Code) {
                EXPECT_EQ(ref.op, CpuOp::Read);
            }
        }
    }
}

TEST(UniformRandomTrace, OpMixRespected)
{
    const std::size_t refs = 20000;
    auto trace = makeUniformRandomTrace(1, refs, 16, 0.3, 0.1, 11);
    std::size_t writes = 0;
    std::size_t ts = 0;
    for (const auto &ref : trace.stream(0)) {
        writes += ref.op == CpuOp::Write;
        ts += ref.op == CpuOp::TestAndSet;
        EXPECT_GE(ref.addr, sharedBase());
        EXPECT_LT(ref.addr, sharedBase() + 16);
    }
    EXPECT_NEAR(static_cast<double>(writes) / refs, 0.3, 0.02);
    EXPECT_NEAR(static_cast<double>(ts) / refs, 0.1, 0.02);
}

TEST(ArrayInitTrace, EachElementWrittenOnceDisjoint)
{
    auto trace = makeArrayInitTrace(3, 10);
    EXPECT_EQ(trace.totalRefs(), 30u);
    for (PeId pe = 0; pe < 3; pe++) {
        Addr expected = sharedBase() + static_cast<Addr>(pe) * 10;
        for (const auto &ref : trace.stream(pe)) {
            EXPECT_EQ(ref.op, CpuOp::Write);
            EXPECT_EQ(ref.addr, expected);
            expected++;
        }
    }
}

TEST(ProducerConsumerTrace, ProducerWritesConsumersRead)
{
    auto trace = makeProducerConsumerTrace(3, 4, 2, 1);
    for (const auto &ref : trace.stream(0))
        EXPECT_EQ(ref.op, CpuOp::Write);
    for (PeId pe = 1; pe < 3; pe++) {
        for (const auto &ref : trace.stream(pe))
            EXPECT_EQ(ref.op, CpuOp::Read);
    }
    // Producer: rounds * buffer_words; consumers: rounds * reads * words.
    EXPECT_EQ(trace.stream(0).size(), 8u);
    EXPECT_EQ(trace.stream(1).size(), 8u);
}

TEST(MigratoryTrace, AlternatesReadWrite)
{
    auto trace = makeMigratoryTrace(2, 3, 2);
    for (PeId pe = 0; pe < 2; pe++) {
        const auto &stream = trace.stream(pe);
        ASSERT_EQ(stream.size(), 12u); // rounds * words * 2
        for (std::size_t i = 0; i < stream.size(); i += 2) {
            EXPECT_EQ(stream[i].op, CpuOp::Read);
            EXPECT_EQ(stream[i + 1].op, CpuOp::Write);
            EXPECT_EQ(stream[i].addr, stream[i + 1].addr);
        }
    }
}

TEST(HotSpotTrace, SpinsThenTestAndSets)
{
    auto trace = makeHotSpotTrace(2, 3, 4);
    const auto &stream = trace.stream(0);
    ASSERT_EQ(stream.size(), 15u); // attempts * (spins + 1)
    for (std::size_t i = 0; i < stream.size(); i++) {
        EXPECT_EQ(stream[i].addr, sharedBase());
        if (i % 5 == 4) {
            EXPECT_EQ(stream[i].op, CpuOp::TestAndSet);
        } else {
            EXPECT_EQ(stream[i].op, CpuOp::Read);
        }
    }
}

TEST(SequentialWalkTrace, SweepsInAddressOrder)
{
    auto trace = makeSequentialWalkTrace(2, 16, 2, 4);
    ASSERT_EQ(trace.stream(0).size(), 32u);
    for (PeId pe = 0; pe < 2; pe++) {
        const auto &stream = trace.stream(pe);
        int writes = 0;
        for (std::size_t i = 0; i < stream.size(); i++) {
            EXPECT_EQ(stream[i].addr, localBase(pe) + (i % 16));
            writes += stream[i].op == CpuOp::Write;
        }
        EXPECT_EQ(writes, 8); // every 4th of 32
    }
}

TEST(SequentialWalkTrace, ZeroWriteEveryMeansReadsOnly)
{
    auto trace = makeSequentialWalkTrace(1, 8, 1, 0);
    for (const auto &ref : trace.stream(0))
        EXPECT_EQ(ref.op, CpuOp::Read);
}

TEST(FalseSharingTrace, EachPeOwnsOneAdjacentWord)
{
    auto trace = makeFalseSharingTrace(3, 4);
    for (PeId pe = 0; pe < 3; pe++) {
        const auto &stream = trace.stream(pe);
        ASSERT_EQ(stream.size(), 8u);
        for (std::size_t i = 0; i < stream.size(); i++) {
            EXPECT_EQ(stream[i].addr, sharedBase() + static_cast<Addr>(pe));
            EXPECT_EQ(stream[i].op,
                      i % 2 == 0 ? CpuOp::Write : CpuOp::Read);
        }
    }
}

TEST(ClusteredTrace, LocalityFractionRespected)
{
    const std::size_t refs = 20000;
    auto trace = makeClusteredTrace(2, 2, refs, 0.8, 0.3, 5);
    ASSERT_EQ(trace.numPes(), 4);
    Addr global_region = sharedBase() + (Addr{1} << 20);
    for (PeId pe = 0; pe < 4; pe++) {
        int cluster = pe / 2;
        Addr cluster_region = sharedBase() +
                              static_cast<Addr>(cluster) * 1024;
        std::size_t local = 0;
        for (const auto &ref : trace.stream(pe)) {
            if (ref.addr >= cluster_region &&
                ref.addr < cluster_region + 24) {
                local++;
            } else {
                EXPECT_GE(ref.addr, global_region);
                EXPECT_LT(ref.addr, global_region + 24);
            }
        }
        EXPECT_NEAR(static_cast<double>(local) / refs, 0.8, 0.02);
    }
}

TEST(ClusteredTrace, ExtremesAreAllLocalOrAllGlobal)
{
    auto all_local = makeClusteredTrace(2, 1, 500, 1.0, 0.5, 9);
    Addr global_region = sharedBase() + (Addr{1} << 20);
    for (const auto &ref : all_local.stream(0))
        EXPECT_LT(ref.addr, global_region);

    auto all_global = makeClusteredTrace(2, 1, 500, 0.0, 0.5, 9);
    for (const auto &ref : all_global.stream(1))
        EXPECT_GE(ref.addr, global_region);
}

TEST(Generators, NoReservedValuesEmitted)
{
    auto trace = makeUniformRandomTrace(2, 5000, 8, 0.5, 0.2, 21);
    for (PeId pe = 0; pe < 2; pe++) {
        for (const auto &ref : trace.stream(pe))
            EXPECT_LE(ref.data, kMaxDataValue);
    }
}

} // namespace
} // namespace ddc
