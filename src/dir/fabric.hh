/**
 * @file
 * The directory fabric: the hierarchical machine's global
 * interconnect at scale.
 *
 * Replaces the snooping global Bus with H address-interleaved home
 * nodes (block b is served by home b mod H).  Clusters attach and
 * arm requests exactly as on the bus; each cycle the fabric routes
 * every pending request to its block's home by address (the
 * side-effect-free BusClient::pendingAddr hook), and every home
 * independently arbitrates and serves one request.  All per-
 * transaction work is addressed through directory state — owner
 * forwards and sharer deliveries — so cost per transaction is
 * O(sharers), and fabric memory is O(blocks held) + O(clusters),
 * never O(clusters) *per block* and never O(PEs).
 *
 * Determinism and equivalence:
 *  - Homes are ticked in ascending id order on the serial shard, so
 *    a run is byte-identical across --shards values exactly like the
 *    snooping configuration.  (Homes must stay in the serial phase:
 *    the snooping bus commits supply/kill/deliver atomically within
 *    a cycle, and parallel home ticks could not preserve the
 *    cross-home delivery order that clusters observe.)
 *  - With H = 1 the fabric reduces to the snooping global bus
 *    cycle-for-cycle: same requester collection, same arbiter
 *    stream, same memory/lock semantics, same counter family —
 *    deliveries reach only recorded sharers, which is unobservable
 *    because non-holders treat a snoop as a no-op.  The equivalence
 *    suite (tests/dir_equivalence_test.cc) pins this.
 *
 * Request arming is the one cross-shard edge, with the same
 * per-client slot + relaxed atomic count contract as
 * Bus::setRequestArmed.
 */

#ifndef DDC_DIR_FABRIC_HH
#define DDC_DIR_FABRIC_HH

#include <atomic>
#include <memory>
#include <vector>

#include "base/types.hh"
#include "dir/home_node.hh"
#include "sim/fabric.hh"

namespace ddc {
namespace dir {

/** Address-interleaved home-node interconnect (global level). */
class DirectoryFabric : public GlobalFabric, public Tickable
{
  public:
    /**
     * @param home_nodes Number of home nodes (>= 1).
     * @param arbiter_seed Base seed; home h arbitrates with seed
     *        @p arbiter_seed + h, so home 0 matches the snooping
     *        global bus.
     * @param stats Shared global counter set (see HomeNode).
     */
    DirectoryFabric(int home_nodes, ArbiterKind arbiter_kind,
                    std::uint64_t arbiter_seed,
                    stats::CounterSet &stats);

    // ---- GlobalFabric ---------------------------------------------
    int attach(BusClient *client) override;
    void setRequestArmed(int client, bool is_armed) override;
    std::size_t blockWords() const override { return 1; }

    // ---- Tickable -------------------------------------------------
    /**
     * Advance one cycle: route every armed pending request to its
     * home, then tick the homes in ascending order (at most one new
     * transaction per home per cycle).
     */
    void tick() override;

    /**
     * @p now while any client is armed, kNever otherwise (home
     * memory is passive and homes hold no multi-cycle transfers).
     */
    Cycle
    nextEventCycle(Cycle now) const override
    {
        return armedClients() > 0 ? now : kNever;
    }

    /** Account @p count quiescent cycles (idle at every home). */
    void skipCycles(Cycle count) override;

    // ---- Topology & inspection ------------------------------------
    int numHomes() const { return static_cast<int>(homes.size()); }

    /** The home node serving @p addr. */
    int
    homeOf(Addr addr) const
    {
        return static_cast<int>(addr %
                                static_cast<Addr>(homes.size()));
    }

    HomeNode &home(int h) { return *homes[static_cast<std::size_t>(h)]; }
    const HomeNode &
    home(int h) const
    {
        return *homes[static_cast<std::size_t>(h)];
    }

    /** Global memory's value of @p addr (routed to its home bank). */
    Word memoryValue(Addr addr) const;

    /** Overwrite home memory directly (fault-injection hook). */
    void pokeMemory(Addr addr, Word value);

    /**
     * Point-to-point messages sent so far (owner forwards + sharer
     * deliveries); the directory-mode analogue of Bus::snoopVisits,
     * and — like it — plain bookkeeping, not a CounterSet statistic.
     */
    std::uint64_t messageVisits() const { return visitCount; }

    /** Blocks with directory state, summed across homes. */
    std::size_t directoryBlocks() const;

    std::size_t
    armedClients() const
    {
        return armedCount.load(std::memory_order_relaxed);
    }

  private:
    std::vector<std::unique_ptr<HomeNode>> homes;
    std::vector<BusClient *> clients;
    /** Per-client armed slots (see Bus::setRequestArmed). */
    std::vector<char> armed;
    std::atomic<std::size_t> armedCount{0};
    std::uint64_t visitCount = 0;
};

} // namespace dir
} // namespace ddc

#endif // DDC_DIR_FABRIC_HH
