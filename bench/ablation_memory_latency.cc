/**
 * @file
 * Ablation A7: memory latency (assumption 5 relaxed).
 *
 * The paper unifies the bus, cache, and PE cycles ("The bus cycle
 * time is no faster than the cache cycle time").  Real main memories
 * are slower; this ablation holds every transaction on the bus for
 * extra memory-latency cycles and shows (a) the saturation knee of
 * Section 7 moving in proportionally (effective bus bandwidth is
 * 1/(1+L) transactions per cycle) and (b) cache hit rates mattering
 * more: the schemes that keep references out of the bus win by a
 * growing margin.
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

const int kPeCounts[] = {1, 2, 4, 8, 16};
const std::size_t kKneeLatencies[] = {0, 1, 3, 7};
const std::size_t kSchemeLatencies[] = {0, 7};

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Ablation A7: memory latency (extra bus-occupancy cycles per\n"
        "memory-touching transaction; 0 = the paper's unified cycle)\n\n";

    // (a) Saturation knee vs latency: per-PE throughput on the
    // Cm*-mix workload.
    exp::ParamGrid knee_grid;
    {
        std::vector<std::string> pes;
        for (int m : kPeCounts)
            pes.push_back(std::to_string(m));
        knee_grid.axis("pes", pes);
        knee_grid.axis("latency", {"0", "1", "3", "7"});
    }
    exp::Experiment knee_spec("ablation_memory_latency_knee",
                              "A7a: saturation knee vs memory latency "
                              "on the Cm*-mix workload (RB)");
    knee_spec.addGrid(knee_grid, [knee_grid](std::size_t flat) {
        auto indices = knee_grid.indicesAt(flat);
        int m = kPeCounts[indices[0]];
        exp::TraceRun run;
        run.config.num_pes = m;
        run.config.cache_lines = 1024;
        run.config.protocol = ProtocolKind::Rb;
        run.config.memory_latency = kKneeLatencies[indices[1]];
        run.trace = makeCmStarTrace(cmStarApplicationA(), m, 3000, 7);
        return run;
    });
    const auto &knee_results = session.run(knee_spec);

    Table knee("(a) refs/cycle/PE on the Cm*-mix workload (RB)");
    knee.setHeader({"PEs", "L=0", "L=1", "L=3", "L=7"});
    std::size_t flat = 0;
    for (int m : kPeCounts) {
        std::vector<std::string> row{std::to_string(m)};
        for (std::size_t l = 0; l < 4; l++, flat++) {
            const auto &result = knee_results[flat];
            row.push_back(Table::num(
                static_cast<double>(result.total_refs) /
                    static_cast<double>(result.cycles) / m, 3));
        }
        knee.addRow(row);
    }
    std::cout << knee.render() << "\n";

    // (b) Scheme comparison at high latency: producer/consumer.
    auto kinds = allProtocolKinds();
    exp::ParamGrid scheme_grid;
    {
        std::vector<std::string> protocols;
        for (auto kind : kinds)
            protocols.push_back(std::string(toString(kind)));
        scheme_grid.axis("protocol", protocols);
        scheme_grid.axis("latency", {"0", "7"});
    }
    exp::Experiment scheme_spec("ablation_memory_latency_schemes",
                                "A7b: scheme slowdown at high memory "
                                "latency on producer/consumer");
    scheme_spec.addGrid(scheme_grid, [scheme_grid, kinds](std::size_t flat) {
        auto indices = scheme_grid.indicesAt(flat);
        exp::TraceRun run;
        run.config.num_pes = 4;
        run.config.cache_lines = 256;
        run.config.protocol = kinds[indices[0]];
        run.config.memory_latency = kSchemeLatencies[indices[1]];
        run.trace = makeProducerConsumerTrace(4, 16, 16, 2);
        return run;
    });
    const auto &scheme_results = session.run(scheme_spec);

    Table schemes("(b) cycles on producer/consumer (4 PEs), by scheme");
    schemes.setHeader({"scheme", "L=0", "L=7", "slowdown"});
    flat = 0;
    for (auto kind : kinds) {
        const auto &at_zero = scheme_results[flat++];
        const auto &at_seven = scheme_results[flat++];
        schemes.addRow({std::string(toString(kind)),
                        std::to_string(at_zero.cycles),
                        std::to_string(at_seven.cycles),
                        Table::num(static_cast<double>(at_seven.cycles) /
                                       static_cast<double>(at_zero.cycles),
                                   2) + "x"});
    }
    std::cout << schemes.render() << "\n";
    std::cout <<
        "Expected shape: (a) the knee moves from ~4 PEs at L=0 toward\n"
        "1-2 PEs at L=7 (the bus serves 1/(1+L) transactions/cycle);\n"
        "(b) slow memory amplifies every bus transaction, so the\n"
        "update-broadcasting RWB (fewest transactions) degrades least\n"
        "and the uncached CmStar baseline degrades most.\n\n";
}

void
BM_MemoryLatencySweep(benchmark::State &state)
{
    auto latency = static_cast<std::size_t>(state.range(0));
    auto trace = makeCmStarTrace(cmStarApplicationA(), 8, 2000, 7);
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = 8;
        config.cache_lines = 1024;
        config.protocol = ProtocolKind::Rb;
        config.memory_latency = latency;
        auto summary = runTrace(config, trace);
        benchmark::DoNotOptimize(summary.cycles);
    }
}
BENCHMARK(BM_MemoryLatencySweep)->Arg(0)->Arg(3)->Arg(7)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
