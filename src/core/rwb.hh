/**
 * @file
 * The RWB (Read and Write Broadcast) cache scheme — Section 5 /
 * Figure 5-1.
 *
 * RWB extends RB: caches also latch the data portion of bus writes,
 * so a write to a variable in the shared configuration *updates* every
 * interested cache instead of invalidating it.  A new First-write (F)
 * state and a Bus Invalidate (BI) signal implement the return to the
 * local configuration: only after the same PE writes k times with no
 * intervening bus-visible reference by another PE (k = 2 in the paper,
 * generalized per its footnote 6) does the writer broadcast BI, enter
 * Local, and silence further writes.
 *
 * The paper encodes BI by reserving one data value; our bus carries BI
 * as a distinct op code whose data payload still updates memory, which
 * is what the paper's Figure 6-3 shows (memory holds the released
 * lock's value immediately after the BI-generating release write).
 */

#ifndef DDC_CORE_RWB_HH
#define DDC_CORE_RWB_HH

#include "core/protocol.hh"

namespace ddc {

/** The paper's RWB scheme, parameterized by the writes-to-local k. */
class RwbProtocol : public Protocol
{
  public:
    /**
     * @param writes_to_local Number of uninterrupted writes by one PE
     *        after which the variable is assumed local (paper: 2).
     */
    explicit RwbProtocol(int writes_to_local = 2);

    std::string_view name() const override { return "RWB"; }
    bool broadcastsWrites() const override { return true; }

    CpuReaction onCpuAccess(LineState state, CpuOp op,
                            DataClass cls) const override;
    LineState afterBusOp(LineState state, BusOp op,
                         bool rmw_success) const override;
    SnoopReaction onSnoop(LineState state, BusOp op) const override;
    LineState afterSupply(LineState state) const override;
    bool needsWriteback(LineState state) const override;

    /** The configured k. */
    int writesToLocal() const { return k; }

  private:
    int k;
};

} // namespace ddc

#endif // DDC_CORE_RWB_HH
