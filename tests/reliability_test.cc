/**
 * @file
 * Tests of the replication/reliability extension (Section 8 future
 * work): replica censuses, memory-fault recovery from cache copies,
 * and the RWB > RB replication claim of Section 5.
 */

#include <gtest/gtest.h>

#include "reliability/replication.hh"
#include "sim/scenario.hh"
#include "trace/synthetic.hh"

namespace ddc {
namespace reliability {
namespace {

/** Build a system, run a trace, return it for inspection. */
std::unique_ptr<System>
runSystem(ProtocolKind protocol, const Trace &trace, int num_pes = 4)
{
    SystemConfig config;
    config.num_pes = num_pes;
    config.cache_lines = 128;
    config.protocol = protocol;
    auto system = std::make_unique<System>(config);
    system->loadTrace(trace);
    system->run();
    EXPECT_TRUE(system->allDone());
    return system;
}

TEST(Replication, SharedConfigurationCountsMemoryAndCaches)
{
    // Three readers of one word: memory + 3 cache copies = 4.
    Trace trace(3);
    trace.append(0, {CpuOp::Write, sharedBase(), 9, DataClass::Shared});
    for (PeId pe = 0; pe < 3; pe++) {
        for (int i = 0; i < 20; i++)
            trace.append(pe, {CpuOp::Read, sharedBase(), 0,
                              DataClass::Shared});
    }
    auto system = runSystem(ProtocolKind::Rb, trace, 3);
    auto report = measureReplication(*system, {sharedBase()});
    EXPECT_EQ(report.addresses, 1u);
    EXPECT_EQ(report.total_copies, 4u);
    EXPECT_EQ(report.redundant, 1u);
    EXPECT_EQ(report.memory_fault_recoverable, 1u);
}

TEST(Replication, LocalConfigurationHasOneCopy)
{
    // Two writes by one PE leave the word Local there (memory stale).
    Trace trace(2);
    trace.append(0, {CpuOp::Write, sharedBase(), 1, DataClass::Shared});
    trace.append(0, {CpuOp::Write, sharedBase(), 2, DataClass::Shared});
    auto system = runSystem(ProtocolKind::Rb, trace, 2);
    ASSERT_EQ(system->lineState(0, sharedBase()).tag, LineTag::Local);

    auto report = measureReplication(*system, {sharedBase()});
    EXPECT_EQ(report.total_copies, 1u);
    EXPECT_EQ(report.redundant, 0u);
    // A memory fault is moot: the owner's copy is the datum.
    EXPECT_EQ(report.memory_fault_recoverable, 1u);
}

TEST(Replication, UntouchedWordHasOnlyMemory)
{
    Trace trace(1);
    auto system = runSystem(ProtocolKind::Rb, trace, 1);
    auto report = measureReplication(*system, {sharedBase() + 7});
    EXPECT_EQ(report.total_copies, 1u);
    EXPECT_EQ(report.memory_fault_recoverable, 0u);
}

TEST(Recovery, RepairsMemoryFromCacheCopy)
{
    Trace trace(2);
    trace.append(0, {CpuOp::Write, sharedBase(), 5, DataClass::Shared});
    for (int i = 0; i < 10; i++)
        trace.append(1, {CpuOp::Read, sharedBase(), 0, DataClass::Shared});
    auto system = runSystem(ProtocolKind::Rb, trace, 2);
    ASSERT_EQ(system->memoryValue(sharedBase()), 5u);

    system->pokeMemory(sharedBase(), 999);
    ASSERT_EQ(system->memoryValue(sharedBase()), 999u);
    EXPECT_TRUE(recoverMemoryWord(*system, sharedBase()));
    EXPECT_EQ(system->memoryValue(sharedBase()), 5u);
}

TEST(Recovery, FailsWithNoReplica)
{
    Trace trace(1);
    auto system = runSystem(ProtocolKind::Rb, trace, 1);
    Addr lonely = sharedBase() + 3;
    system->pokeMemory(lonely, 42);
    EXPECT_FALSE(recoverMemoryWord(*system, lonely));
}

TEST(Recovery, DirtyOwnerMakesMemoryFaultMoot)
{
    Trace trace(2);
    trace.append(0, {CpuOp::Write, sharedBase(), 1, DataClass::Shared});
    trace.append(0, {CpuOp::Write, sharedBase(), 2, DataClass::Shared});
    auto system = runSystem(ProtocolKind::Rb, trace, 2);

    system->pokeMemory(sharedBase(), 777);
    EXPECT_TRUE(recoverMemoryWord(*system, sharedBase()));
    // The datum is still intact in the owner's cache.
    EXPECT_EQ(system->coherentValue(sharedBase()), 2u);
}

TEST(Campaign, DeterministicAndBounded)
{
    auto trace = makeProducerConsumerTrace(4, 16, 8, 2);
    auto system_a = runSystem(ProtocolKind::Rwb, trace);
    auto system_b = runSystem(ProtocolKind::Rwb, trace);

    std::vector<Addr> addrs;
    for (Addr a = 0; a < 16; a++)
        addrs.push_back(sharedBase() + a);

    Rng rng_a(7);
    Rng rng_b(7);
    auto result_a = runMemoryFaultCampaign(*system_a, addrs, 200, rng_a);
    auto result_b = runMemoryFaultCampaign(*system_b, addrs, 200, rng_b);
    EXPECT_EQ(result_a.faults_injected, 200u);
    EXPECT_EQ(result_a.recovered, result_b.recovered);
    EXPECT_LE(result_a.recovered, result_a.faults_injected);
}

TEST(Campaign, RecoveryRestoresExactValue)
{
    auto trace = makeProducerConsumerTrace(3, 8, 4, 2);
    auto system = runSystem(ProtocolKind::Rwb, trace, 3);

    std::vector<Addr> addrs;
    std::vector<Word> truth;
    for (Addr a = 0; a < 8; a++) {
        addrs.push_back(sharedBase() + a);
        truth.push_back(system->coherentValue(sharedBase() + a));
    }
    Rng rng(3);
    runMemoryFaultCampaign(*system, addrs, 100, rng);
    for (std::size_t i = 0; i < addrs.size(); i++)
        EXPECT_EQ(system->coherentValue(addrs[i]), truth[i]);
}

TEST(Replication, RwbKeepsMoreCopiesThanRb)
{
    // Section 5: RWB's write broadcast leaves updated copies alive
    // where RB leaves invalidated ones.
    auto trace = makeProducerConsumerTrace(4, 16, 8, 2);
    auto rb = runSystem(ProtocolKind::Rb, trace);
    auto rwb = runSystem(ProtocolKind::Rwb, trace);

    std::vector<Addr> addrs;
    for (Addr a = 0; a < 16; a++)
        addrs.push_back(sharedBase() + a);

    auto rb_report = measureReplication(*rb, addrs);
    auto rwb_report = measureReplication(*rwb, addrs);
    EXPECT_GE(rwb_report.meanCopies(), rb_report.meanCopies());
    EXPECT_GE(rwb_report.redundantFraction(),
              rb_report.redundantFraction());
}

TEST(Replication, ScenarioLevelRwbVsRbAfterOneWrite)
{
    // Precise version: after writer updates a word three readers hold,
    // RWB has 4 correct cache copies + memory; RB has 1 + memory.
    for (auto kind : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        Scenario scenario(kind, 4);
        for (PeId pe = 1; pe < 4; pe++)
            scenario.read(pe, 0);
        scenario.write(0, 0, 7);
        int present = 0;
        for (PeId pe = 0; pe < 4; pe++)
            present += scenario.state(pe, 0).present();
        if (kind == ProtocolKind::Rb) {
            EXPECT_EQ(present, 1);
        } else {
            EXPECT_EQ(present, 4);
        }
    }
}

} // namespace
} // namespace reliability
} // namespace ddc
