#include "stats/histogram.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"

namespace ddc {
namespace stats {

Histogram::Histogram(std::size_t num_buckets, std::uint64_t bucket_width)
    : buckets(num_buckets + 1, 0), width(bucket_width)
{
    ddc_assert(num_buckets >= 1, "histogram needs at least one bucket");
    ddc_assert(bucket_width >= 1, "bucket width must be positive");
}

void
Histogram::sample(std::uint64_t value)
{
    std::size_t index = static_cast<std::size_t>(value / width);
    if (index >= buckets.size() - 1)
        index = buckets.size() - 1;
    buckets[index]++;

    if (sampleCount == 0) {
        sampleMin = value;
        sampleMax = value;
    } else {
        sampleMin = std::min(sampleMin, value);
        sampleMax = std::max(sampleMax, value);
    }
    sampleCount++;
    sampleSum += value;
}

double
Histogram::mean() const
{
    if (sampleCount == 0)
        return 0.0;
    return static_cast<double>(sampleSum) / static_cast<double>(sampleCount);
}

std::uint64_t
Histogram::bucketCount(std::size_t index) const
{
    ddc_assert(index < buckets.size(), "bucket index out of range");
    return buckets[index];
}

std::uint64_t
Histogram::percentile(double fraction) const
{
    if (sampleCount == 0)
        return 0;
    if (fraction <= 0.0)
        return sampleMin;
    fraction = std::min(fraction, 1.0);
    // Nearest-rank at bucket granularity: find the bucket holding the
    // target-th sample.  The rank rounds to nearest but is at least 1
    // so tiny fractions still resolve to a populated bucket instead of
    // falling through an empty bucket 0.
    std::uint64_t target = static_cast<std::uint64_t>(
        fraction * static_cast<double>(sampleCount) + 0.5);
    target = std::max<std::uint64_t>(target, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); i++) {
        seen += buckets[i];
        if (seen >= target) {
            if (i == buckets.size() - 1)
                return sampleMax;
            // Upper edge of the bucket, clamped to the observed range
            // so the answer is always a value that could have been
            // sampled (e.g. one sample of 5 with width 4 reports 5,
            // not the bucket edge 7).
            return std::clamp((i + 1) * width - 1, sampleMin,
                              sampleMax);
        }
    }
    return sampleMax;
}

void
Histogram::merge(const Histogram &other)
{
    ddc_assert(buckets.size() == other.buckets.size() &&
                   width == other.width,
               "merging histograms with different geometry");
    if (other.sampleCount == 0)
        return;
    for (std::size_t i = 0; i < buckets.size(); i++)
        buckets[i] += other.buckets[i];
    if (sampleCount == 0) {
        sampleMin = other.sampleMin;
        sampleMax = other.sampleMax;
    } else {
        sampleMin = std::min(sampleMin, other.sampleMin);
        sampleMax = std::max(sampleMax, other.sampleMax);
    }
    sampleCount += other.sampleCount;
    sampleSum += other.sampleSum;
}

void
Histogram::clear()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    sampleCount = 0;
    sampleSum = 0;
    sampleMin = 0;
    sampleMax = 0;
}

std::string
Histogram::render() const
{
    std::ostringstream os;
    os << "samples=" << sampleCount << " mean=" << mean()
       << " min=" << min() << " max=" << max() << "\n";
    for (std::size_t i = 0; i < buckets.size(); i++) {
        if (buckets[i] == 0)
            continue;
        if (i == buckets.size() - 1) {
            os << "  [" << i * width << ", inf)";
        } else {
            os << "  [" << i * width << ", " << (i + 1) * width << ")";
        }
        os << " : " << buckets[i] << "\n";
    }
    return os.str();
}

} // namespace stats
} // namespace ddc
