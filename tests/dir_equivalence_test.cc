/**
 * @file
 * Snooping-bus vs directory-fabric equivalence suite for the
 * hierarchical machine's global interconnect.
 *
 * The directory contract (DESIGN.md) says that with one home node the
 * fabric is cycle-for-cycle, counter-for-counter identical to the
 * snooping global bus: same requester collection, same arbiter
 * stream, same memory/lock semantics, same bus.* counter family —
 * deliveries reach only recorded sharers, which is unobservable
 * because a cluster without an entry treats a snoop as a no-op.  So
 * every run below must agree on the final cycle count, the run
 * status, the execution log, and the merged counter report, with the
 * directory's own dir.* message counters the one permitted addition
 * (stripped before comparison).  On top of that, directory-mode runs
 * must be byte-identical across shard counts and stay serially
 * consistent with many homes.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "hier/hier_system.hh"
#include "sync/programs.hh"
#include "trace/synthetic.hh"
#include "verify/consistency.hh"

namespace ddc {
namespace hier {
namespace {

/** Everything observable from one run, for byte-wise comparison. */
struct Observed
{
    Cycle cycles = 0;
    RunStatus status = RunStatus::Finished;
    std::string counters;
    std::vector<LogEntry> log;
    std::uint64_t global_txns = 0;
};

/**
 * Drop the dir.* lines from a counter report: the directory's
 * point-to-point message counters have no snooping-bus analogue and
 * are the one permitted difference between the two modes.
 */
std::string
stripDirCounters(const std::string &report)
{
    std::istringstream in(report);
    std::string out, line;
    while (std::getline(in, line)) {
        if (line.rfind("dir.", 0) == 0)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

void
expectIdentical(const Observed &snoop, const Observed &directory)
{
    EXPECT_EQ(snoop.cycles, directory.cycles);
    EXPECT_EQ(snoop.status, directory.status);
    EXPECT_EQ(snoop.counters, directory.counters);
    EXPECT_EQ(snoop.global_txns, directory.global_txns);
    ASSERT_EQ(snoop.log.size(), directory.log.size());
    for (std::size_t i = 0; i < snoop.log.size(); i++) {
        const LogEntry &a = snoop.log[i];
        const LogEntry &b = directory.log[i];
        EXPECT_EQ(a.seq, b.seq) << "log entry " << i;
        EXPECT_EQ(a.cycle, b.cycle) << "log entry " << i;
        EXPECT_EQ(a.pe, b.pe) << "log entry " << i;
        EXPECT_EQ(a.op, b.op) << "log entry " << i;
        EXPECT_EQ(a.addr, b.addr) << "log entry " << i;
        EXPECT_EQ(a.value, b.value) << "log entry " << i;
        EXPECT_EQ(a.stored, b.stored) << "log entry " << i;
        EXPECT_EQ(a.ts_success, b.ts_success) << "log entry " << i;
    }
}

Observed
observeTrace(HierConfig config, const Trace &trace)
{
    config.record_log = true;
    HierSystem system(config);
    system.loadTrace(trace);
    Observed seen;
    seen.cycles = system.run();
    seen.status = system.runStatus();
    seen.counters = stripDirCounters(system.counters().report());
    seen.log = system.log().all();
    seen.global_txns = system.globalBusTransactions();
    if (config.global == GlobalKind::Directory) {
        // Non-vacuity: the directory path actually ran.
        const auto *fabric = system.directoryFabric();
        EXPECT_NE(fabric, nullptr) << "directory fabric not built";
        if (fabric != nullptr) {
            EXPECT_EQ(fabric->numHomes(), config.home_nodes);
            EXPECT_GT(fabric->directoryBlocks(), 0u);
        }
    } else {
        EXPECT_EQ(system.directoryFabric(), nullptr);
    }
    return seen;
}

/** Run @p trace in both global modes (one home) and compare. */
void
checkTrace(HierConfig config, const Trace &trace)
{
    config.global = GlobalKind::Snoop;
    config.home_nodes = 1;
    Observed snoop = observeTrace(config, trace);
    config.global = GlobalKind::Directory;
    Observed directory = observeTrace(config, trace);
    expectIdentical(snoop, directory);
    // Non-vacuous: cross-cluster traffic actually happened.
    EXPECT_GT(snoop.global_txns, 0u);
}

TEST(DirEquivalence, RandomTracesAcrossProtocols)
{
    auto trace = makeUniformRandomTrace(8, 1500, 64, 0.3, 0.05, 11);
    for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        HierConfig config;
        config.num_clusters = 4;
        config.pes_per_cluster = 2;
        config.cache_lines = 64;
        config.protocol = protocol;
        checkTrace(config, trace);
    }
}

TEST(DirEquivalence, OwnershipMigrationExercisesTheKillPath)
{
    // Producer/consumer ping-pongs ownership between clusters, so the
    // owner-forward (kill/supply) path runs constantly; the directory
    // owner must name the same supplier the snooping scan finds.
    auto trace = makeProducerConsumerTrace(8, 32, 20, 2);
    for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        HierConfig config;
        config.num_clusters = 4;
        config.pes_per_cluster = 2;
        config.cache_lines = 128;
        config.protocol = protocol;
        checkTrace(config, trace);
    }
}

TEST(DirEquivalence, RandomArbiterKeepsRngStream)
{
    // Home 0 arbitrates with seed arbiter_seed + 0, so the one-home
    // fabric must draw the exact RNG stream of the snooping bus.
    auto trace = makeHotSpotTrace(8, 400, 8);
    HierConfig config;
    config.num_clusters = 4;
    config.pes_per_cluster = 2;
    config.cache_lines = 64;
    config.arbiter = ArbiterKind::Random;
    config.arbiter_seed = 99;
    checkTrace(config, trace);
}

TEST(DirEquivalence, QuiescentSkipIsUnobservableInDirectoryMode)
{
    // The fabric's nextEventCycle/skipCycles pair must make skipping
    // invisible, idle counters included, exactly like the bus's.
    auto trace = makeUniformRandomTrace(8, 800, 64, 0.3, 0.05, 17);
    HierConfig config;
    config.num_clusters = 4;
    config.pes_per_cluster = 2;
    config.cache_lines = 64;
    config.global = GlobalKind::Directory;
    config.home_nodes = 3;

    config.skip_quiescent = true;
    Observed skipping = observeTrace(config, trace);
    config.skip_quiescent = false;
    Observed ticking = observeTrace(config, trace);
    expectIdentical(skipping, ticking);
}

TEST(DirEquivalence, Pow2HomeRoutingAndQuiescentSkipMatchTicking)
{
    // A power-of-two home count takes the mask routing fast path, and
    // the fabric reports kNever after a routing pass that posted
    // nothing (the quiescent-routing contract) — both must be
    // unobservable: a skipping pow2-homes run must match the ticking
    // run counter-for-counter, and both must match the snooping bus
    // at H=1 via checkTrace on the same trace.
    auto trace = makeProducerConsumerTrace(8, 48, 25, 3);
    HierConfig config;
    config.num_clusters = 4;
    config.pes_per_cluster = 2;
    config.cache_lines = 64;
    checkTrace(config, trace);

    config.global = GlobalKind::Directory;
    config.home_nodes = 4; // pow2: homeOf is addr & 3
    config.skip_quiescent = true;
    Observed skipping = observeTrace(config, trace);
    config.skip_quiescent = false;
    Observed ticking = observeTrace(config, trace);
    expectIdentical(skipping, ticking);
}

TEST(DirEquivalence, LockProgramsMatchAcrossModes)
{
    // Spin locks through real PE programs: the two-phase RMW NACK and
    // retry discipline must serialize identically in both modes.
    const Addr lock = sharedBase();
    const Addr counter = sharedBase() + 1;
    const int acquisitions = 4;
    const int increments = 3;

    for (auto kind : {sync::LockKind::TestAndSet,
                      sync::LockKind::TestAndTestAndSet}) {
        Observed seen[2];
        for (int mode = 0; mode < 2; mode++) {
            HierConfig config;
            config.num_clusters = 4;
            config.pes_per_cluster = 2;
            config.cache_lines = 64;
            config.record_log = true;
            config.global = mode == 0 ? GlobalKind::Snoop
                                      : GlobalKind::Directory;
            HierSystem system(config);
            for (PeId pe = 0; pe < system.numPes(); pe++) {
                sync::LockProgramParams params;
                params.kind = kind;
                params.lock_addr = lock;
                params.counter_addr = counter;
                params.acquisitions = acquisitions;
                params.cs_increments = increments;
                system.setProgram(pe, sync::makeLockProgram(params));
            }
            seen[mode].cycles = system.run(2'000'000);
            seen[mode].status = system.runStatus();
            seen[mode].counters =
                stripDirCounters(system.counters().report());
            seen[mode].log = system.log().all();
            seen[mode].global_txns = system.globalBusTransactions();
            // Mutual exclusion held: every increment landed.  (The
            // machine's latest value — the last owner may not have
            // written home memory back.)
            EXPECT_EQ(system.coherentValue(counter),
                      static_cast<Word>(system.numPes() * acquisitions *
                                        increments));
            EXPECT_TRUE(
                checkSerialConsistency(system.log()).consistent);
        }
        expectIdentical(seen[0], seen[1]);
    }
}

TEST(DirEquivalence, ShardCountIsUnobservable)
{
    // Homes live on the serial shard; cluster shards only arm
    // requests across the boundary.  Results must be byte-identical
    // however many worker lanes tick the clusters.
    auto trace = makeUniformRandomTrace(16, 2000, 96, 0.3, 0.05, 29);
    HierConfig config;
    config.num_clusters = 8;
    config.pes_per_cluster = 2;
    config.cache_lines = 64;
    config.global = GlobalKind::Directory;
    config.home_nodes = 4;

    std::string reports[2];
    Cycle cycles[2] = {0, 0};
    int lanes[2] = {1, 4};
    for (int i = 0; i < 2; i++) {
        config.shards = lanes[i];
        HierSystem system(config);
        system.loadTrace(trace);
        cycles[i] = system.run();
        EXPECT_EQ(system.runStatus(), RunStatus::Finished);
        // Full report, dir.* included: sharding may not move even a
        // message counter.
        reports[i] = system.counters().report();
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(reports[0], reports[1]);
}

TEST(DirEquivalence, ManyHomesStaySeriallyConsistent)
{
    // More homes than divide the address range evenly; grants happen
    // concurrently across homes, which must not break coherence.
    const std::size_t addr_range = 48;
    auto trace = makeUniformRandomTrace(16, 2500, addr_range, 0.35,
                                        0.05, 43);
    HierConfig config;
    config.num_clusters = 8;
    config.pes_per_cluster = 2;
    config.cache_lines = 64;
    config.record_log = true;
    config.global = GlobalKind::Directory;
    config.home_nodes = 5;

    HierSystem system(config);
    system.loadTrace(trace);
    system.run();
    ASSERT_TRUE(system.allDone()) << "directory machine deadlocked";

    auto report = checkSerialConsistency(system.log());
    EXPECT_TRUE(report.consistent) << report.first_error;

    std::vector<Addr> addrs;
    for (Addr a = 0; a < addr_range; a++)
        addrs.push_back(a);
    auto invariants = checkHierarchyInvariants(system, addrs);
    EXPECT_TRUE(invariants.ok) << invariants.first_error;

    // The memory bound: directory state exists only for blocks some
    // cluster actually touched.
    ASSERT_NE(system.directoryFabric(), nullptr);
    EXPECT_LE(system.directoryFabric()->directoryBlocks(), addr_range);
    EXPECT_GT(system.directoryFabric()->messageVisits(), 0u);
}

} // namespace
} // namespace hier
} // namespace ddc
