/**
 * @file
 * Vocabulary types shared by every ddcache layer.
 *
 * The simulated machine follows the assumptions of Rudolph & Segall,
 * "Dynamic Decentralized Cache Schemes for MIMD Parallel Processors"
 * (CMU-CS-84-139, ISCA 1984), Section 2: a logically single shared bus,
 * one private cache per processing element, direct-mapped caches with a
 * one-word block size, and a bus cycle that is no faster than the cache
 * or PE cycle (so everything advances on a single global cycle).
 */

#ifndef DDC_BASE_TYPES_HH
#define DDC_BASE_TYPES_HH

#include <cstdint>
#include <string_view>

namespace ddc {

/** Word address of a single shared-memory word (block size is one word). */
using Addr = std::uint64_t;

/** Contents of one memory word. */
using Word = std::uint64_t;

/** Global simulation cycle counter. */
using Cycle = std::uint64_t;

/** Identifier of a processing element / private cache (0-based). */
using PeId = int;

/** PeId value meaning "no PE" (e.g. a bus transaction issued by memory). */
inline constexpr PeId kNoPe = -1;

/**
 * Largest data value a program may store.
 *
 * The paper implements the RWB Bus Invalidate signal "by reserving one
 * value from the range of values assumed by any data word" (Section 5).
 * We reserve the all-ones word; stores of the reserved value are rejected
 * by the memory model so the encoding stays unambiguous.
 */
inline constexpr Word kReservedInvalidateValue = ~Word{0};

/** Largest value a well-formed program may write to memory. */
inline constexpr Word kMaxDataValue = kReservedInvalidateValue - 1;

/**
 * Coherence tag state of one cache line.
 *
 * NotPresent models the paper's NP extension of the product machine
 * (Section 4): the address does not currently occupy its cache line.
 * FirstWrite exists only in the RWB scheme (Section 5); Reserved and
 * Dirty exist only in the Goodman write-once baseline.
 */
enum class LineTag : std::uint8_t {
    NotPresent,
    Invalid,
    Readable,
    Local,
    FirstWrite,
    Valid,     //!< baseline protocols: present and clean
    Reserved,  //!< Goodman write-once: written through exactly once
    Dirty,     //!< Goodman write-once: written locally more than once
};

/** Printable name of a LineTag ("NP", "I", "R", "L", "F", ...). */
std::string_view toString(LineTag tag);

/** Kind of reference a processing element issues to its cache. */
enum class CpuOp : std::uint8_t {
    Read,
    Write,
    /**
     * Atomic test-and-set: one indivisible bus transaction that reads
     * the current value and conditionally stores a new one when the old
     * value is zero.  The paper treats a failing TS "as a non-cachable
     * read" and a succeeding TS "as a write" (Section 6.1) and our bus
     * implements exactly that duality.
     */
    TestAndSet,
    /**
     * First half of the paper's general two-phase read-modify-write:
     * a bus read that locks the memory word.  Bus writes to a locked
     * word by other PEs fail and retry until the owner unlocks.
     */
    ReadLock,
    /** Second half of the two-phase RMW: write the word and unlock. */
    WriteUnlock,
};

/** Printable name of a CpuOp. */
std::string_view toString(CpuOp op);

/**
 * Kind of transaction placed on the shared bus.
 *
 * Rmw is the bus image of CpuOp::TestAndSet.  Invalidate is the RWB
 * scheme's dedicated Bus Invalidate (BI) signal.  ReadLock/WriteUnlock
 * implement the general two-phase read-modify-write the paper sketches
 * for the RB scheme ("read with lock" ... "write-with-unlock").
 */
enum class BusOp : std::uint8_t {
    Read,
    Write,
    Invalidate,
    Rmw,
    ReadLock,
    WriteUnlock,
};

/** Printable name of a BusOp. */
std::string_view toString(BusOp op);

/**
 * Software-visible classification of a memory reference.
 *
 * The RB/RWB schemes are transparent and ignore this; it exists so the
 * Cm*-style baseline (Table 1-1) can restrict caching to code and local
 * data, and so statistics can be broken down the way the paper reports
 * them.
 */
enum class DataClass : std::uint8_t {
    Code,    //!< instruction fetch / read-only
    Local,   //!< private to one PE
    Shared,  //!< potentially referenced by several PEs
};

/** Printable name of a DataClass. */
std::string_view toString(DataClass cls);

} // namespace ddc

#endif // DDC_BASE_TYPES_HH
