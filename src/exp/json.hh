/**
 * @file
 * Minimal JSON document model for experiment results.
 *
 * The experiment engine emits structured results (results.json) next
 * to the ASCII tables, and the test suite round-trips them; this is a
 * small ordered JSON value with deterministic serialization so a
 * parallel run's output is byte-identical to a serial run's.  Object
 * keys keep insertion order; doubles print with the shortest
 * representation that round-trips, so dump(parse(dump(x))) == dump(x).
 */

#ifndef DDC_EXP_JSON_HH
#define DDC_EXP_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ddc {
namespace exp {

/** An ordered, deterministic JSON value. */
class Json
{
  public:
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    /** A null value. */
    Json() = default;
    Json(bool value) : kind_(Kind::Bool), bool_(value) {}
    Json(std::int64_t value) : kind_(Kind::Int), int_(value) {}
    Json(std::uint64_t value);
    Json(int value) : Json(static_cast<std::int64_t>(value)) {}
    Json(double value) : kind_(Kind::Double), double_(value) {}
    Json(std::string value)
        : kind_(Kind::String), string_(std::move(value))
    {}
    Json(const char *value) : Json(std::string(value)) {}
    Json(std::string_view value) : Json(std::string(value)) {}

    /** An empty array value. */
    static Json array() { return Json(Kind::Array); }
    /** An empty object value. */
    static Json object() { return Json(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    bool asBool() const;
    /** Integer value (Int only). */
    std::int64_t asInt() const;
    /** Numeric value (Int or Double). */
    double asDouble() const;
    const std::string &asString() const;

    /** Array: append an element. */
    void push(Json value);
    /** Array or Object: number of elements. */
    std::size_t size() const;
    /** Array: element @p index. */
    const Json &at(std::size_t index) const;

    /** Object: fetch-or-insert member @p key (keeps insertion order). */
    Json &operator[](const std::string &key);
    /** Object: member @p key, or nullptr when absent. */
    const Json *find(const std::string &key) const;
    /** Object: ordered members. */
    const std::vector<std::pair<std::string, Json>> &items() const;

    /** Serialize (2-space indent, deterministic). */
    std::string dump() const;
    void dump(std::ostream &os) const;

    /**
     * Parse a complete JSON document.
     * @return false on malformed input (@p out left null).
     */
    static bool parse(std::string_view text, Json &out);

  private:
    explicit Json(Kind kind) : kind_(kind) {}
    void dumpTo(std::ostream &os, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

} // namespace exp
} // namespace ddc

#endif // DDC_EXP_JSON_HH
