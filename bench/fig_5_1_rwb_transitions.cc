/**
 * @file
 * Figure 5-1 reproduction: the RWB scheme's state transition diagram
 * (with the First-write state and the Bus Invalidate signal), printed
 * as a transition table generated from the shipped protocol object,
 * followed by dispatch and update-broadcast microbenchmarks.
 */

#include "bench_common.hh"

#include <iostream>
#include <sstream>

#include "core/rwb.hh"
#include "sim/scenario.hh"
#include "stats/table.hh"
#include "verify/product_machine.hh"

namespace {

using namespace ddc;

std::string
cpuEffect(const RwbProtocol &rwb, LineState state, CpuOp op)
{
    auto reaction = rwb.onCpuAccess(state, op, DataClass::Shared);
    if (!reaction.needs_bus)
        return std::string(toString(reaction.next)) + " (in cache)";
    std::string bus{toString(reaction.bus_op)};
    LineState next = rwb.afterBusOp(state, reaction.bus_op, true);
    return std::string(toString(next)) + " (" + bus + ")";
}

std::string
snoopEffect(const RwbProtocol &rwb, LineState state, BusOp op)
{
    auto reaction = rwb.onSnoop(state, op);
    if (reaction.supply)
        return "interrupt BR, supply data, -> R";
    std::string result{toString(reaction.next)};
    if (reaction.snarf)
        result += " (snarf data)";
    return result;
}

/** Build the whole Figure 5-1 reproduction as one custom point. */
exp::RunResult
measure()
{
    using stats::Table;
    RwbProtocol rwb; // k = 2 as in the paper
    std::ostringstream os;

    os <<
        "Figure 5-1: state transition diagram for each cache entry,\n"
        "RWB scheme (generated from the implementation; k = 2)\n"
        "Legend: CW/CR = CPU write/read, BW/BR = bus write/read,\n"
        "BI = bus invalidate; modifiers: 1 = generate BW, 2 = interrupt\n"
        "BR and supply data, 3 = generate BR, 4 = generate BI\n\n";

    const LineState states[] = {{LineTag::Invalid, 0},
                                {LineTag::Readable, 0},
                                {LineTag::FirstWrite, 1},
                                {LineTag::Local, 0},
                                {LineTag::NotPresent, 0}};

    Table table;
    table.setHeader({"State", "CR", "CW", "BR", "BW", "BI"});
    for (auto state : states) {
        table.addRow({toString(state), cpuEffect(rwb, state, CpuOp::Read),
                      cpuEffect(rwb, state, CpuOp::Write),
                      snoopEffect(rwb, state, BusOp::Read),
                      snoopEffect(rwb, state, BusOp::Write),
                      snoopEffect(rwb, state, BusOp::Invalidate)});
    }
    os << table.render() << "\n";
    os <<
        "Key differences from RB (Figure 3-1): a snooped BW *updates*\n"
        "every copy (snarf -> R) instead of invalidating; the first\n"
        "write enters F, and only the k-th uninterrupted write by the\n"
        "same PE broadcasts BI and claims Local.  Every edge is unit-\n"
        "tested in tests/protocol_rwb_test.cc and model-checked in\n"
        "tests/product_machine_test.cc (k = 1..4).\n\n";

    auto check = checkProductMachine(rwb, 3);
    os << "Section 4 lemma check (3 caches, exhaustive: "
       << check.states_explored << " states): "
       << (check.ok ? "PASS" : "FAIL") << "\n"
       << "Reachable configurations (sorted tag multisets):\n";
    for (const auto &config : check.configurations)
        os << "  [" << config << "]\n";
    os <<
        "The intermediate F configurations (one F, rest R/I/NP) join\n"
        "the lemma's local- and shared-type configurations; no\n"
        "configuration ever holds two owners or a stale live copy.\n\n";

    exp::RunResult result;
    result.rendered = os.str();
    result.setMetric("states_explored",
                     static_cast<double>(check.states_explored));
    result.setMetric("lemma_ok", check.ok ? 1.0 : 0.0);
    return result;
}

void
printReproduction(exp::Session &session)
{
    exp::Experiment spec("fig_5_1_rwb_transitions",
                         "Figure 5-1: RWB transition table and Section 4 "
                         "lemma check, generated from the code");
    spec.addCustom({{"scheme", "RWB"}}, measure);
    const auto &results = session.run(spec);
    std::cout << results[0].rendered;
}

void
BM_RwbCpuDispatch(benchmark::State &state)
{
    RwbProtocol rwb;
    LineState line{LineTag::FirstWrite, 1};
    for (auto _ : state) {
        auto reaction = rwb.onCpuAccess(line, CpuOp::Write,
                                        DataClass::Shared);
        benchmark::DoNotOptimize(reaction);
    }
}
BENCHMARK(BM_RwbCpuDispatch);

void
BM_RwbSnoopDispatch(benchmark::State &state)
{
    RwbProtocol rwb;
    LineState line{LineTag::Readable, 0};
    for (auto _ : state) {
        auto reaction = rwb.onSnoop(line, BusOp::Write);
        benchmark::DoNotOptimize(reaction);
    }
}
BENCHMARK(BM_RwbSnoopDispatch);

/**
 * The update-broadcast path: one writer, N snarfing readers.  Under
 * RWB the readers' next reads are cache hits; this measures the cost
 * of the whole write-broadcast round.
 */
void
BM_RwbWriteBroadcast(benchmark::State &state)
{
    auto readers = static_cast<int>(state.range(0));
    Scenario scenario(ProtocolKind::Rwb, readers + 1);
    for (PeId pe = 0; pe <= readers; pe++)
        scenario.read(pe, 0);
    Word value = 1;
    for (auto _ : state) {
        scenario.write(0, 0, value);
        value = value % 1000 + 1;
        for (PeId pe = 1; pe <= readers; pe++)
            benchmark::DoNotOptimize(scenario.read(pe, 0));
    }
}
BENCHMARK(BM_RwbWriteBroadcast)->Arg(1)->Arg(3)->Arg(7);

/** The BI fast path: second write of a streak (k = 2). */
void
BM_RwbBusInvalidate(benchmark::State &state)
{
    Scenario scenario(ProtocolKind::Rwb, 2);
    scenario.read(1, 0);
    Word value = 1;
    for (auto _ : state) {
        scenario.read(1, 0);           // bring PE1 back in
        scenario.write(0, 0, value);   // BW -> F
        scenario.write(0, 0, value);   // BI -> L
        value = value % 1000 + 1;
    }
}
BENCHMARK(BM_RwbBusInvalidate);

} // namespace

DDC_BENCH_MAIN(printReproduction)
