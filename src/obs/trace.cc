#include "obs/trace.hh"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <ostream>
#include <tuple>
#include <utility>

namespace ddc {
namespace obs {

namespace {

struct CategoryName
{
    std::string_view name;
    Category category;
};

constexpr CategoryName kCategoryNames[] = {
    {"bus", Category::Bus},
    {"state", Category::State},
    {"lock", Category::Lock},
    {"miss", Category::Miss},
    {"quiesce", Category::Quiesce},
    {"dir", Category::Dir},
    {"kernel", Category::Kernel},
};

/** Minimal JSON string escaping; names are ASCII by construction. */
void
writeJsonString(std::ostream &os, std::string_view s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default: os << c;
        }
    }
    os << '"';
}

void
writeMetadata(std::ostream &os, std::int32_t pid, std::int32_t tid,
              const char *key, const std::string &value, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "    {\"name\": \"" << key << "\", \"ph\": \"M\", \"pid\": "
       << pid << ", \"tid\": " << tid << ", \"args\": {\"name\": ";
    writeJsonString(os, value);
    os << "}}";
}

const char *
trackName(std::int32_t track)
{
    switch (track) {
      case kTrackPes: return "PEs";
      case kTrackBuses: return "Buses";
      case kTrackLocks: return "Locks";
      case kTrackSim: return "Sim";
      case kTrackHomes: return "Homes";
      case kTrackKernel: return "Kernel";
      default: return "Track";
    }
}

const char *
tidPrefix(std::int32_t track)
{
    switch (track) {
      case kTrackPes: return "pe";
      case kTrackBuses: return "bus";
      case kTrackLocks: return "pe";
      case kTrackSim: return "sim";
      case kTrackHomes: return "home";
      case kTrackKernel: return "lane";
      default: return "t";
    }
}

bool
isQuiesceSpan(const TraceEvent &event)
{
    return event.phase == 'X' && event.track == kTrackSim &&
           event.name == "quiesce";
}

} // namespace

std::uint32_t
parseCategories(std::string_view list, std::string *error)
{
    std::uint32_t mask = 0;
    while (!list.empty()) {
        auto comma = list.find(',');
        std::string_view token = list.substr(0, comma);
        list = comma == std::string_view::npos
                   ? std::string_view{}
                   : list.substr(comma + 1);
        if (token.empty())
            continue;
        if (token == "all") {
            mask |= kAllCategories;
            continue;
        }
        bool found = false;
        for (const auto &entry : kCategoryNames) {
            if (token == entry.name) {
                mask |= static_cast<std::uint32_t>(entry.category);
                found = true;
                break;
            }
        }
        if (!found) {
            if (error)
                *error = std::string(token);
            return 0;
        }
    }
    return mask;
}

std::string
categoryNames(std::uint32_t mask)
{
    std::string names;
    for (const auto &entry : kCategoryNames) {
        if (!(mask & static_cast<std::uint32_t>(entry.category)))
            continue;
        if (!names.empty())
            names += ',';
        names += entry.name;
    }
    return names;
}

TraceSink::TraceSink(std::uint32_t categories, std::string path)
    : mask(categories), outPath(std::move(path))
{
    lanes.push_back(std::make_unique<TraceBuffer>());
}

TraceSink::~TraceSink()
{
    const bool pending = !written && !outPath.empty();
    if (!writeFile() && pending)
        std::cerr << "warning: could not write trace file '" << outPath
                  << "'\n";
}

TraceBuffer *
TraceSink::buffer(std::size_t index)
{
    while (lanes.size() <= index)
        lanes.push_back(std::make_unique<TraceBuffer>());
    return lanes[index].get();
}

TraceBuffer *
TraceSink::newBuffer()
{
    lanes.push_back(std::make_unique<TraceBuffer>());
    return lanes.back().get();
}

std::size_t
TraceSink::size() const
{
    std::size_t total = 0;
    for (const auto &lane : lanes)
        total += lane->size();
    return total;
}

void
TraceSink::write(std::ostream &os) const
{
    // Merge the per-shard buffers deterministically: concatenate in
    // buffer order, then stable-sort by (ts, track, tid).  Chrome
    // requires a non-decreasing timestamp stream; the track tiebreak
    // fixes the cross-buffer interleave so the merge does not depend
    // on how shards were spread over worker lanes, and same-key
    // events keep buffer order (a B at cycle t sorts before its
    // same-cycle E because its single writing buffer emitted it
    // first).
    std::vector<TraceEvent> merged;
    merged.reserve(size());
    for (const auto &lane : lanes) {
        merged.insert(merged.end(), lane->entries().begin(),
                      lane->entries().end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return std::tie(a.ts, a.track, a.tid) <
                                std::tie(b.ts, b.track, b.tid);
                     });

    // Coalesce abutting quiescent-skip spans into maximal
    // machine-quiescent intervals.  The sequential kernel and the
    // lookahead-window kernel skip the same quiescent cycle set but
    // chop it at different boundaries (window edges, sampler
    // clamps); gluing [a,b)+[b,c) -> [a,c) makes the written trace
    // independent of that chopping.
    std::size_t out = 0;
    std::size_t last_quiesce = merged.size();
    for (std::size_t i = 0; i < merged.size(); ++i) {
        if (isQuiesceSpan(merged[i]) && last_quiesce < out &&
            merged[last_quiesce].ts + merged[last_quiesce].dur ==
                merged[i].ts) {
            merged[last_quiesce].dur += merged[i].dur;
            continue;
        }
        if (isQuiesceSpan(merged[i]))
            last_quiesce = out;
        if (out != i)
            merged[out] = merged[i];
        ++out;
    }
    merged.resize(out);

    os << "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n";

    // Name every track that carries events so Perfetto shows
    // "PEs/pe 0", "Buses/bus 1", ... instead of bare numbers.
    std::vector<std::pair<std::int32_t, std::int32_t>> tracks;
    for (const TraceEvent &event : merged)
        tracks.emplace_back(event.track, event.tid);
    std::sort(tracks.begin(), tracks.end());
    tracks.erase(std::unique(tracks.begin(), tracks.end()),
                 tracks.end());

    bool first = true;
    std::int32_t named_pid = -1;
    for (const auto &[pid, tid] : tracks) {
        if (pid != named_pid) {
            writeMetadata(os, pid, 0, "process_name",
                          trackName(pid), first);
            named_pid = pid;
        }
        writeMetadata(os, pid, tid, "thread_name",
                      std::string(tidPrefix(pid)) + " " +
                          std::to_string(tid),
                      first);
    }

    // Track span depth per (pid, tid) so unmatched B events can be
    // closed at the end of the stream (balanced-pair guarantee).
    std::vector<std::pair<std::pair<std::int32_t, std::int32_t>,
                          int>> depth;
    auto depthOf = [&](std::int32_t pid, std::int32_t tid) -> int & {
        for (auto &entry : depth) {
            if (entry.first.first == pid && entry.first.second == tid)
                return entry.second;
        }
        depth.push_back({{pid, tid}, 0});
        return depth.back().second;
    };

    Cycle max_ts = 0;
    for (const TraceEvent &event : merged) {
        max_ts = std::max(max_ts, event.ts + event.dur);
        if (event.phase == 'B')
            ++depthOf(event.track, event.tid);
        else if (event.phase == 'E')
            --depthOf(event.track, event.tid);

        if (!first)
            os << ",\n";
        first = false;
        os << "    {\"name\": ";
        writeJsonString(os, event.name);
        os << ", \"ph\": \"" << event.phase << "\", \"ts\": "
           << event.ts;
        if (event.phase == 'X')
            os << ", \"dur\": " << event.dur;
        if (event.phase == 'i')
            os << ", \"s\": \"t\"";
        os << ", \"pid\": " << event.track << ", \"tid\": "
           << event.tid;
        bool has_args = event.detail || event.has_addr ||
                        event.value_name;
        if (has_args) {
            os << ", \"args\": {";
            bool first_arg = true;
            if (event.detail) {
                os << "\"detail\": ";
                writeJsonString(os, event.detail);
                first_arg = false;
            }
            if (event.has_addr) {
                if (!first_arg)
                    os << ", ";
                os << "\"addr\": " << event.addr;
                first_arg = false;
            }
            if (event.value_name) {
                if (!first_arg)
                    os << ", ";
                os << '"' << event.value_name
                   << "\": " << event.value;
            }
            os << '}';
        }
        os << '}';
    }

    for (const auto &entry : depth) {
        for (int i = 0; i < entry.second; ++i) {
            if (!first)
                os << ",\n";
            first = false;
            os << "    {\"name\": \"unclosed\", \"ph\": \"E\", "
                  "\"ts\": "
               << max_ts << ", \"pid\": " << entry.first.first
               << ", \"tid\": " << entry.first.second << '}';
        }
    }

    os << "\n  ]\n}\n";
}

bool
TraceSink::writeFile()
{
    if (written || outPath.empty())
        return false;
    written = true;
    std::ofstream out(outPath);
    if (!out)
        return false;
    write(out);
    return static_cast<bool>(out);
}

} // namespace obs
} // namespace ddc
