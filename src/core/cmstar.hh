/**
 * @file
 * The Cm* cache-emulation policy behind Table 1-1.
 *
 * Raskin's Cm* experiments [RAS78] considered "only code and local
 * data ... cachable and a write-through policy was adopted for local
 * data.  Thus writes to local data were counted as cache misses ...
 * All references to shared (non-code) data also caused a cache miss."
 * (Section 1.)  This policy reproduces those rules: shared references
 * always use the bus and never allocate; local writes write through;
 * code/local reads cache normally.  No coherence actions are needed
 * because nothing shared is ever cached.
 */

#ifndef DDC_CORE_CMSTAR_HH
#define DDC_CORE_CMSTAR_HH

#include "core/protocol.hh"

namespace ddc {

/** The Cm*-style code+local-only caching policy of Table 1-1. */
class CmStarProtocol : public Protocol
{
  public:
    std::string_view name() const override { return "CmStar"; }
    bool broadcastsWrites() const override { return false; }

    CpuReaction onCpuAccess(LineState state, CpuOp op,
                            DataClass cls) const override;
    LineState afterBusOp(LineState state, BusOp op,
                         bool rmw_success) const override;
    SnoopReaction onSnoop(LineState state, BusOp op) const override;
    LineState afterSupply(LineState state) const override;
    bool needsWriteback(LineState state) const override;
};

} // namespace ddc

#endif // DDC_CORE_CMSTAR_HH
