/**
 * @file
 * Spinlock contention (the Section 6 hot spot): M PEs run real
 * PE programs contending for one lock, with plain Test-and-Set vs
 * Test-and-Test-and-Set, under RB and RWB.  Prints a scaling table
 * and verifies mutual exclusion via the shared counter.
 *
 *   ./spinlock_contention
 */

#include <iostream>

#include "stats/table.hh"
#include "sync/analysis.hh"
#include "sync/workload.hh"

using namespace ddc;

int
main()
{
    std::cout << "=== Spinlock contention: TS vs TTS ===\n\n"
              << "Each PE acquires the lock 8 times; each critical\n"
              << "section makes 8 increments of a shared counter.  A\n"
              << "final counter below PEs*8*8 would mean mutual\n"
              << "exclusion was broken (it never is).\n\n";

    for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        stats::Table table(std::string("Scheme: ") +
                           std::string(toString(protocol)));
        table.setHeader({"PEs", "lock", "cycles", "bus ops",
                         "bus ops/acq", "failed TS", "counter ok"});
        for (int m : {1, 2, 4, 8, 16}) {
            for (auto lock : {sync::LockKind::TestAndSet,
                              sync::LockKind::TestAndTestAndSet}) {
                sync::LockExperimentConfig config;
                config.num_pes = m;
                config.lock = lock;
                config.protocol = protocol;
                config.acquisitions_per_pe = 8;
                config.cs_increments = 8;
                auto result = sync::runLockExperiment(config);

                table.addRow(
                    {std::to_string(m),
                     std::string(sync::toString(lock)),
                     std::to_string(result.cycles),
                     std::to_string(result.bus_transactions),
                     stats::Table::num(result.bus_per_acquisition, 1),
                     std::to_string(result.rmw_failures),
                     result.counter_value == result.expected_counter
                         ? "yes" : "NO (BUG)"});
            }
            table.addSeparator();
        }
        std::cout << table.render() << "\n";
    }

    std::cout << "Reading the table: TS failed attempts (and with them\n"
              << "bus ops per acquisition) explode with contention;\n"
              << "TTS spins in the caches, so its failed-TS column\n"
              << "stays near zero and traffic stays flat -- Section 6's\n"
              << "claim, on real instruction streams.\n\n";

    // Fairness and latency distributions for one contended setup.
    std::cout << "=== Lock behaviour, 8 PEs, TTS on RB ===\n\n";
    sync::LockExperimentConfig config;
    config.num_pes = 8;
    config.lock = sync::LockKind::TestAndTestAndSet;
    config.protocol = ProtocolKind::Rb;
    config.acquisitions_per_pe = 8;
    config.cs_increments = 8;
    config.record_log = true;

    std::unique_ptr<System> system;
    sync::runLockExperiment(config, &system);
    auto analysis = sync::analyzeLock(system->log(), sync::lockAddr(), 8);

    std::cout << "acquisitions: " << analysis.acquisitions
              << ", failed attempts: " << analysis.failed_attempts
              << "\nfairness index (1.0 = perfectly fair): "
              << stats::Table::num(analysis.fairnessIndex(), 3)
              << "\nhold cycles: mean "
              << stats::Table::num(analysis.hold_cycles.mean(), 1)
              << ", max " << analysis.hold_cycles.max()
              << "\nhandoff cycles: mean "
              << stats::Table::num(analysis.handoff_cycles.mean(), 1)
              << ", max " << analysis.handoff_cycles.max() << "\n";
    return 0;
}
