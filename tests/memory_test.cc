/** @file Unit tests for the main-memory bank and its word locks. */

#include <gtest/gtest.h>

#include "sim/memory.hh"

namespace ddc {
namespace {

class MemoryTest : public ::testing::Test
{
  protected:
    stats::CounterSet stats;
    Memory memory{stats};
};

TEST_F(MemoryTest, UninitializedReadsZero)
{
    EXPECT_EQ(memory.read(12345), 0u);
    EXPECT_EQ(memory.peek(999), 0u);
}

TEST_F(MemoryTest, WriteThenRead)
{
    memory.write(7, 42);
    EXPECT_EQ(memory.read(7), 42u);
    EXPECT_EQ(memory.peek(7), 42u);
}

TEST_F(MemoryTest, DistinctAddressesIndependent)
{
    memory.write(1, 10);
    memory.write(2, 20);
    EXPECT_EQ(memory.read(1), 10u);
    EXPECT_EQ(memory.read(2), 20u);
}

TEST_F(MemoryTest, CountsReadsAndWrites)
{
    memory.read(1);
    memory.read(1);
    memory.write(1, 5);
    EXPECT_EQ(stats.get("memory.read"), 2u);
    EXPECT_EQ(stats.get("memory.write"), 1u);
}

TEST_F(MemoryTest, PeekDoesNotCount)
{
    memory.peek(1);
    EXPECT_EQ(stats.get("memory.read"), 0u);
}

TEST_F(MemoryTest, RejectsReservedValue)
{
    EXPECT_DEATH(memory.write(1, kReservedInvalidateValue), "reserved");
}

TEST_F(MemoryTest, LockBlocksOthersOnly)
{
    memory.lock(5, 0);
    EXPECT_TRUE(memory.locked(5));
    EXPECT_TRUE(memory.lockedByOther(5, 1));
    EXPECT_FALSE(memory.lockedByOther(5, 0));
    EXPECT_FALSE(memory.lockedByOther(6, 1));
}

TEST_F(MemoryTest, UnlockReleases)
{
    memory.lock(5, 2);
    memory.unlock(5, 2);
    EXPECT_FALSE(memory.locked(5));
    EXPECT_FALSE(memory.lockedByOther(5, 0));
}

TEST_F(MemoryTest, UnlockByNonOwnerDies)
{
    memory.lock(5, 2);
    EXPECT_DEATH(memory.unlock(5, 3), "unlock");
}

TEST_F(MemoryTest, RelockBySameOwnerAllowed)
{
    memory.lock(5, 1);
    memory.lock(5, 1);
    EXPECT_TRUE(memory.locked(5));
}

TEST_F(MemoryTest, LockByOtherDies)
{
    memory.lock(5, 1);
    EXPECT_DEATH(memory.lock(5, 2), "lock");
}

} // namespace
} // namespace ddc
