/**
 * @file
 * Goodman's write-once scheme [GOO83] — the paper's baseline.
 *
 * "Our scheme is in many ways an extension of the one presented by
 * Goodman.  The Goodman scheme may be classified as 'event
 * broadcasting', whereas in our proposed schemes events and data
 * values are broadcast." (Section 1.)  Concretely: no read broadcast
 * (only the requester installs the value of a bus read) and no write
 * broadcast; the first write writes through once (Reserved), further
 * writes stay in the cache (Dirty) until a snooped read forces a
 * supply.  With the paper's one-word blocks a write miss simply writes
 * through and reserves the line.
 */

#ifndef DDC_CORE_GOODMAN_HH
#define DDC_CORE_GOODMAN_HH

#include "core/protocol.hh"

namespace ddc {

/** Goodman's write-once protocol on one-word blocks. */
class GoodmanProtocol : public Protocol
{
  public:
    std::string_view name() const override { return "WriteOnce"; }
    bool broadcastsWrites() const override { return false; }

    CpuReaction onCpuAccess(LineState state, CpuOp op,
                            DataClass cls) const override;
    LineState afterBusOp(LineState state, BusOp op,
                         bool rmw_success) const override;
    SnoopReaction onSnoop(LineState state, BusOp op) const override;
    LineState afterSupply(LineState state) const override;
    bool needsWriteback(LineState state) const override;
};

} // namespace ddc

#endif // DDC_CORE_GOODMAN_HH
