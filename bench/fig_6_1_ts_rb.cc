/**
 * @file
 * Figure 6-1 reproduction: synchronization with Test-and-Set under
 * the RB scheme — the per-cache state/value table for lock S as three
 * PEs contend, including the hot-spot property (spinning TS attempts
 * generate bus traffic on every try).
 */

#include "bench_common.hh"

#include <iostream>
#include <sstream>

#include "sim/scenario.hh"
#include "stats/table.hh"
#include "sync/workload.hh"

namespace {

using namespace ddc;

constexpr Addr S = 0;

/** Run the Figure 6-1 scenario and render its table. */
exp::RunResult
measure()
{
    using stats::Table;
    std::ostringstream os;

    os <<
        "Figure 6-1: synchronization with Test-and-Set, RB scheme\n"
        "(three PEs, lock word S; each row is the cache state/value of\n"
        "S per PE and the memory value, exactly as in the paper)\n\n";

    Scenario scenario(ProtocolKind::Rb, 3);
    Table table;
    table.setHeader({"P1 Cache", "P2 Cache", "Pm Cache", "S",
                     "Observation"});

    auto emit = [&](const char *what) {
        std::vector<std::string> row;
        for (PeId pe = 0; pe < 3; pe++) {
            LineState line = scenario.state(pe, S);
            std::string cell{toString(line)};
            cell += "(";
            cell += line.present() ? std::to_string(scenario.value(pe, S))
                                   : "-";
            cell += ")";
            row.push_back(cell);
        }
        row.push_back(std::to_string(scenario.memoryValue(S)));
        row.push_back(what);
        table.addRow(row);
    };

    for (PeId pe = 0; pe < 3; pe++)
        scenario.read(pe, S);
    emit("Initial state");

    scenario.testAndSet(1, S);
    emit("P2 locks S");

    auto before = scenario.busTransactions();
    scenario.testAndSet(0, S);
    scenario.testAndSet(2, S);
    auto spin_traffic = scenario.busTransactions() - before;
    emit("Others try to get S (Bus Traffic)");

    scenario.write(1, S, 0);
    emit("P2 releases S");

    scenario.testAndSet(0, S);
    emit("P1 gets the S");

    scenario.testAndSet(1, S);
    scenario.testAndSet(2, S);
    emit("Others try to get S");

    os << table.render() << "\n";
    os << "Hot spot: the two failed TS attempts while P2 held the\n"
       << "lock cost " << spin_traffic
       << " bus transactions (every unsuccessful attempt pays;\n"
       << "compare Figure 6-2, where TTS spins cost zero).\n\n";

    exp::RunResult result;
    result.rendered = os.str();
    result.bus_transactions = scenario.busTransactions();
    result.setMetric("spin_traffic",
                     static_cast<double>(spin_traffic));
    return result;
}

void
printReproduction(exp::Session &session)
{
    exp::Experiment spec("fig_6_1_ts_rb",
                         "Figure 6-1: Test-and-Set on RB, per-cache "
                         "state table and spin bus traffic");
    spec.addCustom({{"lock", "TS"}, {"scheme", "RB"}}, measure);
    const auto &results = session.run(spec);
    std::cout << results[0].rendered;
}

/** Wall-clock cost of simulating the full TS contention workload. */
void
BM_TsLockContention(benchmark::State &state)
{
    auto num_pes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sync::LockExperimentConfig config;
        config.num_pes = num_pes;
        config.lock = sync::LockKind::TestAndSet;
        config.protocol = ProtocolKind::Rb;
        config.acquisitions_per_pe = 16;
        config.cs_increments = 4;
        auto result = sync::runLockExperiment(config);
        benchmark::DoNotOptimize(result.cycles);
    }
}
BENCHMARK(BM_TsLockContention)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/** Simulated bus transactions per acquisition, reported as a counter. */
void
BM_TsBusPerAcquisition(benchmark::State &state)
{
    auto num_pes = static_cast<int>(state.range(0));
    double bus_per_acq = 0.0;
    for (auto _ : state) {
        sync::LockExperimentConfig config;
        config.num_pes = num_pes;
        config.lock = sync::LockKind::TestAndSet;
        config.protocol = ProtocolKind::Rb;
        config.acquisitions_per_pe = 16;
        auto result = sync::runLockExperiment(config);
        bus_per_acq = result.bus_per_acquisition;
    }
    state.counters["bus_per_acquisition"] = bus_per_acq;
}
BENCHMARK(BM_TsBusPerAcquisition)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
