/**
 * @file
 * Named statistics counters.
 *
 * A CounterSet is a flat registry of named 64-bit event counters plus
 * derived ratio queries.  Every simulator component owns (or shares) a
 * CounterSet; benches and tests read the counters back by name.
 */

#ifndef DDC_STATS_COUNTER_HH
#define DDC_STATS_COUNTER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ddc {
namespace stats {

/**
 * A registry of named monotonically increasing event counters.
 *
 * Counters are created on first use and iterate in lexicographic name
 * order so reports are stable across runs.
 */
class CounterSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void add(const std::string &name, std::uint64_t delta = 1);

    /** Value of @p name, or zero when the counter never fired. */
    std::uint64_t get(const std::string &name) const;

    /** True when @p name has been created. */
    bool has(const std::string &name) const;

    /**
     * Ratio get(numerator) / get(denominator).
     * @return 0.0 when the denominator is zero.
     */
    double ratio(const std::string &numerator,
                 const std::string &denominator) const;

    /** Sum of all counters whose name starts with @p prefix. */
    std::uint64_t sumPrefix(const std::string &prefix) const;

    /** Reset every counter to zero (names are kept). */
    void clear();

    /** Merge another set into this one, adding matching counters. */
    void merge(const CounterSet &other);

    /** Names with non-zero values, sorted. */
    std::vector<std::string> names() const;

    /** Multi-line "name = value" report of all non-zero counters. */
    std::string report() const;

  private:
    std::map<std::string, std::uint64_t> counters;
};

} // namespace stats
} // namespace ddc

#endif // DDC_STATS_COUNTER_HH
