/**
 * @file
 * The hierarchical machine (Section 8's research direction): clusters
 * of PEs on cluster buses, cluster caches on a global bus, RB applied
 * recursively.  Shows how cluster caches absorb cluster-local sharing
 * and how the machine behaves when sharing crosses clusters,
 * including cross-cluster spinlocks.
 *
 *   ./hierarchical_machine
 */

#include <iostream>

#include "hier/hier_system.hh"
#include "stats/table.hh"
#include "sync/programs.hh"
#include "trace/synthetic.hh"
#include "verify/consistency.hh"

using namespace ddc;

int
main()
{
    std::cout << "=== Hierarchical machine: 4 clusters x 4 PEs ===\n\n";

    // --- 1. Locality sweep: what reaches the global bus? ----------
    std::cout << "1. Clustered-sharing workload, locality swept\n\n";
    stats::Table table;
    table.setHeader({"cluster-local", "cycles", "global bus ops",
                     "cluster bus ops", "absorbed reads",
                     "absorbed writes"});
    for (double locality : {0.0, 0.5, 0.95}) {
        hier::HierConfig config;
        config.num_clusters = 4;
        config.pes_per_cluster = 4;
        config.cache_lines = 256;
        config.record_log = true;

        hier::HierSystem system(config);
        auto trace = makeClusteredTrace(4, 4, 2000, locality, 0.3, 11);
        system.loadTrace(trace);
        system.run();
        if (!system.allDone() ||
            !checkSerialConsistency(system.log()).consistent) {
            std::cerr << "hierarchical run failed\n";
            return 1;
        }

        std::uint64_t absorbed_reads = 0;
        std::uint64_t absorbed_writes = 0;
        for (int c = 0; c < 4; c++) {
            absorbed_reads +=
                system.clusterCounters(c).get("hier.absorbed.read");
            absorbed_writes +=
                system.clusterCounters(c).get("hier.absorbed.write");
        }
        table.addRow({stats::Table::num(locality, 2),
                      std::to_string(system.now()),
                      std::to_string(system.globalBusTransactions()),
                      std::to_string(system.clusterBusTransactions()),
                      std::to_string(absorbed_reads),
                      std::to_string(absorbed_writes)});
    }
    std::cout << table.render() << "\n";

    // --- 2. A cross-cluster spinlock still works. -------------------
    std::cout << "2. Cross-cluster TTS spinlock (16 PEs, 4 clusters)\n\n";
    hier::HierConfig config;
    config.num_clusters = 4;
    config.pes_per_cluster = 4;
    config.cache_lines = 256;
    config.record_log = true;

    hier::HierSystem system(config);
    const Addr lock = sharedBase();
    const Addr counter = sharedBase() + 1;
    for (PeId pe = 0; pe < 16; pe++) {
        sync::LockProgramParams params;
        params.kind = sync::LockKind::TestAndTestAndSet;
        params.lock_addr = lock;
        params.counter_addr = counter;
        params.acquisitions = 4;
        params.cs_increments = 4;
        system.setProgram(pe, sync::makeLockProgram(params));
    }
    system.run();
    bool counter_ok = system.coherentValue(counter) == 16u * 4u * 4u;
    bool consistent = checkSerialConsistency(system.log()).consistent;
    std::cout << "   completed in " << system.now() << " cycles; "
              << system.globalBusTransactions() << " global / "
              << system.clusterBusTransactions()
              << " cluster bus ops\n"
              << "   mutual exclusion: " << (counter_ok ? "OK" : "BROKEN")
              << ", serial consistency: " << (consistent ? "OK" : "BROKEN")
              << "\n\n"
              << "The lock word migrates between clusters through global\n"
              << "RMWs; the TTS spins still run inside the L1s, so even\n"
              << "with 16 contenders the global bus sees only the\n"
              << "acquisition/release traffic.\n";
    return counter_ok && consistent ? 0 : 1;
}
