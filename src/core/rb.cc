#include "core/rb.hh"

#include "base/logging.hh"

namespace ddc {

CpuReaction
RbProtocol::onCpuAccess(LineState state, CpuOp op, DataClass cls) const
{
    (void)cls; // The scheme is transparent: classification is dynamic.

    CpuReaction reaction;
    switch (op) {
      case CpuOp::Read:
        if (state.tag == LineTag::Readable || state.tag == LineTag::Local) {
            // Hit: return the cached value, no state change.
            reaction.next = state;
            return reaction;
        }
        // Miss (I or NP): fetch over the bus; afterBusOp lands in R.
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Read;
        return reaction;

      case CpuOp::Write:
        if (state.tag == LineTag::Local) {
            // The variable is already local to this PE: pure cache write.
            reaction.next = state;
            reaction.update_value = true;
            return reaction;
        }
        // R, I, or NP: write through the bus (the bus write doubles as
        // the invalidation broadcast); afterBusOp lands in L.
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Write;
        return reaction;

      case CpuOp::TestAndSet:
        // Always a serialized bus RMW, regardless of cached state; the
        // cache flushes first when memoryMayBeStale(state).
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Rmw;
        return reaction;

      case CpuOp::ReadLock:
        // "The initial read-with-lock does not reference the value in
        // the cache" (Section 3).
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::ReadLock;
        return reaction;

      case CpuOp::WriteUnlock:
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::WriteUnlock;
        return reaction;
    }
    ddc_panic("unhandled CpuOp");
}

LineState
RbProtocol::afterBusOp(LineState state, BusOp op, bool rmw_success) const
{
    (void)state;
    switch (op) {
      case BusOp::Read:
      case BusOp::ReadLock:
        return {LineTag::Readable, 0};
      case BusOp::Write:
      case BusOp::WriteUnlock:
        return {LineTag::Local, 0};
      case BusOp::Rmw:
        // Success acts as a write (local configuration), failure as a
        // non-cachable read whose broadcast lands everyone in R.
        return rmw_success ? LineState{LineTag::Local, 0}
                           : LineState{LineTag::Readable, 0};
      case BusOp::Invalidate:
        break; // RB never issues BI.
    }
    ddc_panic("RB completed unexpected bus op");
}

SnoopReaction
RbProtocol::onSnoop(LineState state, BusOp op) const
{
    SnoopReaction reaction;
    reaction.next = state;

    switch (op) {
      case BusOp::Read:
        switch (state.tag) {
          case LineTag::Local:
            // Interrupt the read and supply the latest value; the
            // supplier then holds a memory-consistent copy (R).
            reaction.supply = true;
            return reaction;
          case LineTag::Invalid:
            // Read broadcast: latch the value flowing past on the bus.
            reaction.next = {LineTag::Readable, 0};
            reaction.snarf = true;
            return reaction;
          case LineTag::Readable:
          case LineTag::NotPresent:
            return reaction; // No effect.
          default:
            break;
        }
        break;

      case BusOp::Write:
        switch (state.tag) {
          case LineTag::Readable:
          case LineTag::Local:
            // Another PE wrote: our copy is now stale.
            reaction.next = {LineTag::Invalid, 0};
            return reaction;
          case LineTag::Invalid:
          case LineTag::NotPresent:
            return reaction;
          default:
            break;
        }
        break;

      case BusOp::Invalidate:
        // Defensive: RB has no BI signal, but invalidation is always a
        // safe reaction.
        if (state.tag != LineTag::NotPresent)
            reaction.next = {LineTag::Invalid, 0};
        return reaction;

      default:
        break;
    }
    ddc_panic("RB snooped unexpected bus op / state combination");
}

LineState
RbProtocol::afterSupply(LineState state) const
{
    ddc_assert(state.tag == LineTag::Local,
               "only a Local line can supply data");
    return {LineTag::Readable, 0};
}

bool
RbProtocol::needsWriteback(LineState state) const
{
    // Only Local lines can diverge from memory (Section 3: "Only those
    // overwritten items that are tagged local need to be written back").
    return state.tag == LineTag::Local;
}

} // namespace ddc
