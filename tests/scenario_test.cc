/** @file Tests of the scripted Scenario rig itself. */

#include <gtest/gtest.h>

#include "sim/scenario.hh"
#include "verify/consistency.hh"

namespace ddc {
namespace {

TEST(Scenario, ReadReturnsWrittenValue)
{
    Scenario scenario(ProtocolKind::Rb, 2);
    scenario.write(0, 10, 42);
    EXPECT_EQ(scenario.read(1, 10), 42u);
}

TEST(Scenario, TestAndSetSemantics)
{
    Scenario scenario(ProtocolKind::Rb, 2);
    auto first = scenario.testAndSet(0, 5, 7);
    EXPECT_TRUE(first.ts_success);
    EXPECT_EQ(first.value, 0u);
    auto second = scenario.testAndSet(1, 5, 9);
    EXPECT_FALSE(second.ts_success);
    EXPECT_EQ(second.value, 7u);
}

TEST(Scenario, RowFormatsLikeThePaper)
{
    Scenario scenario(ProtocolKind::Rb, 3);
    scenario.write(1, 0, 1);
    auto row = scenario.row(0);
    EXPECT_NE(row.find("L(1)"), std::string::npos) << row;
    EXPECT_NE(row.find("NP(-)"), std::string::npos) << row;
    EXPECT_NE(row.find("| S=1"), std::string::npos) << row;
}

TEST(Scenario, LogIsSeriallyConsistent)
{
    Scenario scenario(ProtocolKind::Rwb, 3);
    for (int i = 0; i < 20; i++) {
        scenario.write(i % 3, static_cast<Addr>(i % 5),
                       static_cast<Word>(i + 1));
        scenario.read((i + 1) % 3, static_cast<Addr>(i % 5));
    }
    auto report = checkSerialConsistency(scenario.log());
    EXPECT_TRUE(report.consistent) << report.first_error;
}

TEST(Scenario, BusTransactionCountMonotonic)
{
    Scenario scenario(ProtocolKind::Rb, 2);
    auto t0 = scenario.busTransactions();
    scenario.write(0, 1, 2);
    auto t1 = scenario.busTransactions();
    EXPECT_GT(t1, t0);
    scenario.write(0, 1, 3); // Local: silent
    EXPECT_EQ(scenario.busTransactions(), t1);
}

TEST(Scenario, HonorsRwbKParameter)
{
    Scenario scenario(ProtocolKind::Rwb, 2, 16, /*k=*/3);
    scenario.write(0, 0, 1);
    scenario.write(0, 0, 2);
    EXPECT_EQ(scenario.state(0, 0).tag, LineTag::FirstWrite);
    scenario.write(0, 0, 3);
    EXPECT_EQ(scenario.state(0, 0).tag, LineTag::Local);
}

} // namespace
} // namespace ddc
