/**
 * @file
 * Property-based tests: for every protocol, any random multi-PE
 * reference stream must (a) complete, (b) produce a serially
 * consistent execution (Section 4's theorem), and (c) end in a state
 * satisfying the configuration lemma.  Parameterized over protocol,
 * seed, PE count, and contention level.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "trace/synthetic.hh"
#include "verify/consistency.hh"

namespace ddc {
namespace {

struct PropertyCase
{
    ProtocolKind protocol;
    int num_pes;
    std::uint64_t footprint; // smaller => more contention
    std::uint64_t seed;
};

class RandomTraceProperty : public ::testing::TestWithParam<PropertyCase>
{
};

TEST_P(RandomTraceProperty, SeriallyConsistentAndLemmaAbiding)
{
    const auto &param = GetParam();

    SystemConfig config;
    config.num_pes = param.num_pes;
    config.cache_lines = 32; // small cache: plenty of evictions
    config.protocol = param.protocol;
    config.record_log = true;

    auto trace = makeUniformRandomTrace(param.num_pes, 600,
                                        param.footprint, 0.35, 0.15,
                                        param.seed);
    System system(config);
    system.loadTrace(trace);
    system.run();
    ASSERT_TRUE(system.allDone());

    auto serial = checkSerialConsistency(system.log());
    EXPECT_TRUE(serial.consistent) << serial.first_error;

    std::vector<Addr> addrs;
    for (Addr a = 0; a < param.footprint; a++)
        addrs.push_back(sharedBase() + a);
    auto lemma = checkConfigurationLemma(system, addrs);
    EXPECT_TRUE(lemma.consistent) << lemma.first_error;
}

std::vector<PropertyCase>
propertyCases()
{
    std::vector<PropertyCase> cases;
    std::uint64_t seed = 1000;
    for (auto protocol : allProtocolKinds()) {
        for (int num_pes : {2, 4, 7}) {
            // footprint 4: extreme contention; footprint 64: eviction-
            // heavy (footprint > 32 cache lines).
            for (std::uint64_t footprint : {4u, 16u, 64u})
                cases.push_back({protocol, num_pes, footprint, seed++});
        }
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTraceProperty, ::testing::ValuesIn(propertyCases()),
    [](const auto &info) {
        const auto &param = info.param;
        return std::string(toString(param.protocol)) + "_" +
               std::to_string(param.num_pes) + "pes_" +
               std::to_string(param.footprint) + "words_" +
               std::to_string(param.seed);
    });

/** RWB's k parameter must not affect correctness, only traffic. */
class RwbKProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RwbKProperty, ConsistentForAnyK)
{
    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 32;
    config.protocol = ProtocolKind::Rwb;
    config.rwb_writes_to_local = GetParam();

    auto trace = makeUniformRandomTrace(4, 800, 12, 0.4, 0.1, 77);
    auto summary = runTrace(config, trace, /*check_consistency=*/true);
    ASSERT_TRUE(summary.completed);
    EXPECT_TRUE(summary.consistent);
}

INSTANTIATE_TEST_SUITE_P(KSweep, RwbKProperty,
                         ::testing::Values(1, 2, 3, 5, 8));

/** Arbitration policy must not affect correctness. */
class ArbiterProperty : public ::testing::TestWithParam<ArbiterKind>
{
};

TEST_P(ArbiterProperty, ConsistentUnderAnyArbitration)
{
    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 32;
    config.protocol = ProtocolKind::Rb;
    config.arbiter = GetParam();

    auto trace = makeUniformRandomTrace(4, 600, 8, 0.4, 0.15, 88);
    auto summary = runTrace(config, trace, /*check_consistency=*/true);
    ASSERT_TRUE(summary.completed);
    EXPECT_TRUE(summary.consistent);
}

INSTANTIATE_TEST_SUITE_P(Arbiters, ArbiterProperty,
                         ::testing::Values(ArbiterKind::RoundRobin,
                                           ArbiterKind::FixedPriority,
                                           ArbiterKind::Random),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });

/** All workload generators must run consistently on the real schemes. */
TEST(WorkloadProperty, AllGeneratorsConsistentOnRbAndRwb)
{
    std::vector<std::pair<std::string, Trace>> workloads;
    workloads.emplace_back("array_init", makeArrayInitTrace(4, 64));
    workloads.emplace_back("producer_consumer",
                           makeProducerConsumerTrace(4, 8, 4, 2));
    workloads.emplace_back("migratory", makeMigratoryTrace(4, 4, 6));
    workloads.emplace_back("hot_spot", makeHotSpotTrace(4, 8, 4));
    workloads.emplace_back(
        "cmstar_a", makeCmStarTrace(cmStarApplicationA(), 4, 500, 3));

    for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        for (const auto &[name, trace] : workloads) {
            SystemConfig config;
            config.num_pes = 4;
            config.cache_lines = 64;
            config.protocol = protocol;
            auto summary = runTrace(config, trace, true);
            EXPECT_TRUE(summary.completed)
                << name << " on " << toString(protocol);
            EXPECT_TRUE(summary.consistent)
                << name << " on " << toString(protocol);
        }
    }
}

} // namespace
} // namespace ddc
