/**
 * @file
 * Phased parallel computation: "The behavior of a parallel
 * computation can be characterized as a series of parallel actions
 * alternated by phases of communication and/or synchronization."
 * (Section 6.)  Every PE runs a real barrier program (TTS lock +
 * central counter + sense-reversing flag) between compute phases;
 * we verify all PEs stay in lock step and show how barrier cost
 * scales with the PE count under each scheme.
 *
 *   ./barrier_phases
 */

#include <iostream>

#include "stats/table.hh"
#include "sync/programs.hh"
#include "sync/workload.hh"
#include "trace/synthetic.hh"

using namespace ddc;

int
main()
{
    std::cout << "=== Sense-reversing barrier across compute phases ===\n\n"
              << "Each PE executes 8 barrier episodes; the barrier is\n"
              << "built from the paper's own primitives (TTS spin lock,\n"
              << "shared counter, sense flag) as a real PE program.\n\n";

    stats::Table table;
    table.setHeader({"PEs", "scheme", "total cycles", "cycles/episode"});
    for (int num_pes : {2, 4, 8, 16}) {
        for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb,
                              ProtocolKind::WriteOnce}) {
            Cycle cycles = sync::runBarrierExperiment(num_pes, 8,
                                                      protocol);
            if (cycles == 0) {
                std::cerr << "barrier deadlocked with " << num_pes
                          << " PEs under " << toString(protocol) << "\n";
                return 1;
            }
            table.addRow({std::to_string(num_pes),
                          std::string(toString(protocol)),
                          std::to_string(cycles),
                          stats::Table::num(
                              static_cast<double>(cycles) / 8.0, 0)});
        }
        table.addSeparator();
    }
    std::cout << table.render() << "\n";
    std::cout
        << "The TTS-based barrier keeps all spinning inside the private\n"
        << "caches, so the per-episode cost grows roughly linearly in\n"
        << "the PE count (the serialized arrivals), not quadratically\n"
        << "as a TS hot spot would.\n";
    return 0;
}
