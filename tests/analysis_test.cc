/**
 * @file
 * Tests of the lock-behaviour analysis (sync/analysis.hh) and the
 * memory-latency knob.
 */

#include <gtest/gtest.h>

#include "sync/analysis.hh"
#include "sync/workload.hh"
#include "trace/synthetic.hh"

namespace ddc {
namespace sync {
namespace {

LogEntry
tsEntry(PeId pe, Addr addr, Cycle cycle, bool success)
{
    LogEntry entry;
    entry.pe = pe;
    entry.addr = addr;
    entry.cycle = cycle;
    entry.op = CpuOp::TestAndSet;
    entry.ts_success = success;
    entry.value = success ? 0 : 1;
    entry.stored = 1;
    return entry;
}

LogEntry
writeEntry(PeId pe, Addr addr, Cycle cycle, Word value)
{
    LogEntry entry;
    entry.pe = pe;
    entry.addr = addr;
    entry.cycle = cycle;
    entry.op = CpuOp::Write;
    entry.value = value;
    return entry;
}

TEST(LockAnalysis, CountsAcquisitionsAndFailures)
{
    ExecutionLog log;
    log.append(tsEntry(0, 5, 10, true));
    log.append(tsEntry(1, 5, 12, false));
    log.append(tsEntry(1, 5, 14, false));
    log.append(writeEntry(0, 5, 20, 0));   // release
    log.append(tsEntry(1, 5, 24, true));
    log.append(writeEntry(1, 5, 30, 0));

    auto analysis = analyzeLock(log, 5, 2);
    EXPECT_EQ(analysis.acquisitions, 2u);
    EXPECT_EQ(analysis.failed_attempts, 2u);
    EXPECT_EQ(analysis.per_pe[0], 1u);
    EXPECT_EQ(analysis.per_pe[1], 1u);
}

TEST(LockAnalysis, HoldAndHandoffCycles)
{
    ExecutionLog log;
    log.append(tsEntry(0, 5, 10, true));
    log.append(writeEntry(0, 5, 25, 0));  // held 15 cycles
    log.append(tsEntry(1, 5, 31, true));  // handoff 6 cycles
    log.append(writeEntry(1, 5, 40, 0));  // held 9 cycles

    auto analysis = analyzeLock(log, 5, 2);
    EXPECT_EQ(analysis.hold_cycles.count(), 2u);
    EXPECT_EQ(analysis.hold_cycles.sum(), 24u);
    EXPECT_EQ(analysis.handoff_cycles.count(), 1u);
    EXPECT_EQ(analysis.handoff_cycles.sum(), 6u);
}

TEST(LockAnalysis, IgnoresOtherAddressesAndNonZeroWrites)
{
    ExecutionLog log;
    log.append(tsEntry(0, 5, 10, true));
    log.append(writeEntry(0, 9, 12, 0));  // other address
    log.append(writeEntry(1, 5, 14, 7));  // not a release (non-zero)
    log.append(writeEntry(0, 5, 16, 7));  // holder writes non-zero: no
    log.append(writeEntry(0, 5, 18, 0));  // the actual release
    auto analysis = analyzeLock(log, 5, 2);
    EXPECT_EQ(analysis.hold_cycles.count(), 1u);
    EXPECT_EQ(analysis.hold_cycles.sum(), 8u);
}

TEST(LockAnalysis, FairnessIndexExtremes)
{
    LockAnalysis fair;
    fair.per_pe = {5, 5, 5, 5};
    EXPECT_NEAR(fair.fairnessIndex(), 1.0, 1e-9);

    LockAnalysis unfair;
    unfair.per_pe = {20, 0, 0, 0};
    EXPECT_NEAR(unfair.fairnessIndex(), 0.25, 1e-9);

    LockAnalysis empty;
    empty.per_pe = {0, 0};
    EXPECT_NEAR(empty.fairnessIndex(), 1.0, 1e-9);
}

TEST(LockAnalysis, EndToEndFromLockExperiment)
{
    LockExperimentConfig config;
    config.num_pes = 4;
    config.lock = LockKind::TestAndTestAndSet;
    config.protocol = ProtocolKind::Rb;
    config.acquisitions_per_pe = 6;
    config.cs_increments = 3;
    config.record_log = true;

    std::unique_ptr<System> system;
    auto result = runLockExperiment(config, &system);
    ASSERT_TRUE(result.completed);

    auto analysis = analyzeLock(system->log(), lockAddr(), 4);
    EXPECT_EQ(analysis.acquisitions, 24u); // 4 PEs x 6
    for (auto count : analysis.per_pe)
        EXPECT_EQ(count, 6u);
    EXPECT_NEAR(analysis.fairnessIndex(), 1.0, 1e-9);
    EXPECT_EQ(analysis.hold_cycles.count(), 24u);
    EXPECT_GT(analysis.hold_cycles.mean(), 0.0);
}

TEST(MemoryLatency, StretchesRuntimeWithoutBreakingConsistency)
{
    auto trace = makeUniformRandomTrace(4, 400, 16, 0.4, 0.1, 55);
    Cycle base_cycles = 0;
    for (std::size_t latency : {0u, 3u}) {
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 64;
        config.memory_latency = latency;
        config.protocol = ProtocolKind::Rb;
        config.record_log = true;

        System system(config);
        system.loadTrace(trace);
        system.run();
        ASSERT_TRUE(system.allDone());
        if (latency == 0) {
            base_cycles = system.now();
        } else {
            EXPECT_GT(system.now(), base_cycles * 2);
            EXPECT_GT(system.counters().get("bus.transfer_cycles"), 0u);
        }
    }
}

TEST(MemoryLatency, HitsAreUnaffected)
{
    SystemConfig config;
    config.num_pes = 1;
    config.cache_lines = 16;
    config.memory_latency = 10;
    config.protocol = ProtocolKind::Rb;

    Trace trace(1);
    trace.append(0, {CpuOp::Write, 3, 1, DataClass::Shared});
    for (int i = 0; i < 50; i++)
        trace.append(0, {CpuOp::Read, 3, 0, DataClass::Shared});

    System system(config);
    system.loadTrace(trace);
    system.run();
    ASSERT_TRUE(system.allDone());
    // One slow write-through + 50 one-cycle hits: well under the cost
    // of 51 slow transactions.
    EXPECT_LT(system.now(), 80u);
}

} // namespace
} // namespace sync
} // namespace ddc
