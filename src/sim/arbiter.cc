#include "sim/arbiter.hh"

#include "base/logging.hh"

namespace ddc {

std::string_view
toString(ArbiterKind kind)
{
    switch (kind) {
      case ArbiterKind::RoundRobin:    return "RoundRobin";
      case ArbiterKind::FixedPriority: return "FixedPriority";
      case ArbiterKind::Random:        return "Random";
    }
    return "?";
}

namespace {

/** Rotating-priority arbitration; guarantees progress for every client. */
class RoundRobinArbiter : public Arbiter
{
  public:
    int
    pick(const std::vector<int> &requesters) override
    {
        ddc_assert(!requesters.empty(), "arbiter invoked with no requests");
        // Grant the smallest index strictly greater than the previous
        // grant, wrapping around.
        for (int index : requesters) {
            if (index > last) {
                last = index;
                return index;
            }
        }
        last = requesters.front();
        return last;
    }

  private:
    int last = -1;
};

/** Lowest index always wins; can starve high-index clients. */
class FixedPriorityArbiter : public Arbiter
{
  public:
    int
    pick(const std::vector<int> &requesters) override
    {
        ddc_assert(!requesters.empty(), "arbiter invoked with no requests");
        return requesters.front();
    }
};

/** Uniform random grant; starvation-free in expectation. */
class RandomArbiter : public Arbiter
{
  public:
    explicit RandomArbiter(std::uint64_t seed) : rng(seed) {}

    int
    pick(const std::vector<int> &requesters) override
    {
        ddc_assert(!requesters.empty(), "arbiter invoked with no requests");
        return requesters[rng.nextBelow(requesters.size())];
    }

  private:
    Rng rng;
};

} // namespace

std::unique_ptr<Arbiter>
makeArbiter(ArbiterKind kind, std::uint64_t seed)
{
    switch (kind) {
      case ArbiterKind::RoundRobin:
        return std::make_unique<RoundRobinArbiter>();
      case ArbiterKind::FixedPriority:
        return std::make_unique<FixedPriorityArbiter>();
      case ArbiterKind::Random:
        return std::make_unique<RandomArbiter>(seed);
    }
    ddc_panic("unhandled ArbiterKind");
}

} // namespace ddc
