#include "hier/cluster_cache.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ddc {
namespace hier {

ClusterCache::ClusterCache(int cluster_id, stats::CounterSet &stats)
    : clusterId(cluster_id), stats(stats)
{
    statForwardCancelled = stats.intern("hier.forward_cancelled");
    statDroppedReadCompletion =
        stats.intern("hier.dropped_read_completion");
    statPull = stats.intern("hier.pull");
    statForwardResolvedLocally =
        stats.intern("hier.forward_resolved_locally");
    statFlush = stats.intern("hier.flush");
    statGlobalInvalidation = stats.intern("hier.global_invalidation");
    statSupply = stats.intern("hier.supply");
    statForwardRotate = stats.intern("hier.forward_rotate");
    statDownwardBroadcast = stats.intern("hier.downward_broadcast");
    statAbsorbedRead = stats.intern("hier.absorbed.read");
    statAbsorbedWrite = stats.intern("hier.absorbed.write");
    for (auto op : {BusOp::Read, BusOp::Write, BusOp::Invalidate,
                    BusOp::Rmw, BusOp::ReadLock, BusOp::WriteUnlock}) {
        statForwardOp[static_cast<std::size_t>(op)] = stats.intern(
            "hier.forward." + std::string(toString(op)));
    }
}

void
ClusterCache::connectGlobal(GlobalFabric &fabric)
{
    ddc_assert(global == nullptr,
               "cluster already on a global interconnect");
    ddc_assert(fabric.blockWords() == 1,
               "the hierarchical machine uses one-word blocks");
    global = &fabric;
    clientIndex = fabric.attach(this);
    // No forwards can be queued yet; re-armed as they arrive.
    fabric.setRequestArmed(clientIndex, false);
}

void
ClusterCache::updateArmed()
{
    if (global != nullptr)
        global->setRequestArmed(clientIndex, !forwards.empty());
}

void
ClusterCache::addChild(Cache *child)
{
    ddc_assert(child != nullptr, "null child cache");
    ddc_assert(child->blockWords() == 1,
               "the hierarchical machine uses one-word blocks");
    children.push_back(child);
    childByPe[child->peId()] = child;
}

bool
ClusterCache::owns(Addr addr) const
{
    const Entry *entry = entries.lookup(addr);
    return entry != nullptr && entry->tag == LineTag::Local;
}

bool
ClusterCache::holds(Addr addr) const
{
    return entries.contains(addr);
}

Word
ClusterCache::value(Addr addr) const
{
    const Entry *entry = entries.lookup(addr);
    return entry == nullptr ? 0 : entry->value;
}

// ---- Forwarding machinery ---------------------------------------------

void
ClusterCache::enqueueForward(BusOp op, Addr addr, Word data, PeId pe)
{
    for (const Forward &forward : forwards) {
        if (forward.origin == pe)
            return; // One outstanding global op per PE.
    }
    Cache *const *child = childByPe.lookup(pe);
    ddc_assert(child != nullptr, "forward from an unknown PE ", pe);

    Forward forward;
    forward.op = op;
    forward.addr = addr;
    forward.data = data;
    forward.origin = pe;
    forward.origin_child = *child;
    forward.child_access = (*child)->accessId();
    forwards.push_back(forward);
    updateArmed();
    stats.add(statForwardOp[static_cast<std::size_t>(op)]);
}

void
ClusterCache::cancelForward(PeId pe)
{
    // The cluster bus is about to service this PE's operation locally
    // (a sibling's forward acquired ownership first, or the block
    // arrived meanwhile), so a queued global forward for it is stale.
    // Between bus ticks no forward is mid-flight, so erasing the front
    // is safe too.
    for (auto it = forwards.begin(); it != forwards.end(); ++it) {
        if (it->origin == pe) {
            if (it == forwards.begin())
                flushing = false;
            forwards.erase(it);
            updateArmed();
            stats.add(statForwardCancelled);
            return;
        }
    }
}

void
ClusterCache::deliverToChild(const Forward &forward,
                             const BusResult &result)
{
    Cache *child = forward.origin_child;
    if (child->busy() && child->accessId() == forward.child_access) {
        child->requestComplete(result);
    } else {
        ddc_assert(forward.op == BusOp::Read,
                   "a non-read forward was abandoned by its L1");
        stats.add(statDroppedReadCompletion);
    }
}

void
ClusterCache::resolvePendingLocally()
{
    // Queue rotation (NACK handling) and sibling forwards can make an
    // already-queued forward serviceable inside the cluster: a read
    // whose word arrived meanwhile, or a write to a word the cluster
    // now owns.  Serving it locally keeps it off the global bus and,
    // crucially, keeps a global read from bypassing cluster ownership.
    for (auto it = forwards.begin(); it != forwards.end();) {
        Entry *entry = entries.lookup(it->addr);
        bool resolved = false;

        if (it->op == BusOp::Read && entry != nullptr) {
            Word value = entry->value;
            for (Cache *child : children) {
                Word child_value = 0;
                if (child != it->origin_child &&
                    child->wouldSupply(it->addr, child_value)) {
                    entry->value = child_value;
                    child->supplied(it->addr);
                    stats.add(statPull);
                    value = child_value;
                    break;
                }
            }
            deliverToChild(*it, {value, false, {}});
            resolved = true;
        } else if ((it->op == BusOp::Write ||
                    it->op == BusOp::Invalidate) &&
                   entry != nullptr &&
                   entry->tag == LineTag::Local) {
            entry->value = it->data;
            // Preserve the op downward: a BI must invalidate the
            // sibling copies, a plain write updates them (RWB).
            forwardDown({it->op, it->addr, it->data, -1, {}});
            deliverToChild(*it, {it->data, false, {}});
            resolved = true;
        }

        if (resolved) {
            if (it == forwards.begin())
                flushing = false;
            it = forwards.erase(it);
            updateArmed();
            stats.add(statForwardResolvedLocally);
        } else {
            ++it;
        }
    }
}

// ---- Global-bus client side ---------------------------------------------

bool
ClusterCache::hasRequest()
{
    resolvePendingLocally();
    return !forwards.empty();
}

BusRequest
ClusterCache::currentRequest()
{
    ddc_assert(!forwards.empty(), "no pending forward");
    const Forward &front = forwards.front();

    // RMW-class operations take their input from global memory; if
    // this cluster owns the word, its (latest) value goes back first.
    // A sibling L1 may have dirtied the word since the forward was
    // queued; pull its value (and demote it) before flushing.
    bool rmw_like = front.op == BusOp::Rmw || front.op == BusOp::ReadLock;
    if (rmw_like && owns(front.addr)) {
        for (Cache *child : children) {
            Word child_value = 0;
            if (child->wouldSupply(front.addr, child_value)) {
                entries[front.addr].value = child_value;
                child->supplied(front.addr);
                stats.add(statPull);
                break;
            }
        }
        flushing = true;
        // writeback: the directory must not record this publish as an
        // ownership acquisition (the snooping bus ignores the flag).
        return {BusOp::Write, front.addr, entries[front.addr].value,
                false, {}, true};
    }
    flushing = false;
    return {front.op, front.addr, front.data, false, {}};
}

Addr
ClusterCache::pendingAddr() const
{
    // Side-effect-free routing hook for the directory fabric.  The
    // front forward's address is the request's address even while
    // flushing: the pre-flush write targets the same word.
    ddc_assert(!forwards.empty(), "pendingAddr without a forward");
    return forwards.front().addr;
}

void
ClusterCache::requestComplete(const BusResult &result)
{
    ddc_assert(!forwards.empty(), "completion without a forward");
    Forward front = forwards.front();

    if (flushing) {
        // The pre-flush write went out: global memory is current, the
        // cluster demotes to Readable, and the real op goes next.
        entries[front.addr].tag = LineTag::Readable;
        flushing = false;
        stats.add(statFlush);
        return;
    }
    forwards.pop_front();
    updateArmed();

    // Apply the global RB completion to the cluster-level entry and
    // forward the effective broadcast to the children: the global bus
    // skipped us as issuer, but our L1s must snoop the event in the
    // very cycle it commits (the buses form one logical broadcast
    // medium).
    BusTransaction down;
    down.addr = front.addr;
    down.issuer = -1;
    switch (front.op) {
      case BusOp::Read:
      case BusOp::ReadLock:
        entries[front.addr] = {LineTag::Readable, result.data};
        down.op = BusOp::Read;
        down.data = result.data;
        break;
      case BusOp::Write:
      case BusOp::WriteUnlock:
        entries[front.addr] = {LineTag::Local, front.data};
        down.op = BusOp::Write;
        down.data = front.data;
        break;
      case BusOp::Invalidate:
        // A forwarded BI: the cluster takes ownership and the signal
        // invalidates (never updates) every other copy, downward too.
        entries[front.addr] = {LineTag::Local, front.data};
        down.op = BusOp::Invalidate;
        down.data = front.data;
        break;
      case BusOp::Rmw:
        if (result.rmw_success) {
            entries[front.addr] = {LineTag::Local, front.data};
            down.op = BusOp::Write;
            down.data = front.data;
        } else {
            entries[front.addr] = {LineTag::Readable, result.data};
            down.op = BusOp::Read;
            down.data = result.data;
        }
        break;
    }
    forwardDown(down);

    // Complete the originating L1 at the global commit instant, so
    // the serial position of its access is the global transaction's.
    deliverToChild(front, result);
}

bool
ClusterCache::wouldSupply(Addr addr, Word &out)
{
    const Entry *entry = entries.lookup(addr);
    if (entry == nullptr || entry->tag != LineTag::Local)
        return false;

    // The latest value is the dirty child's if one exists, else ours.
    pendingSupplyChild = nullptr;
    for (Cache *child : children) {
        Word child_value = 0;
        if (child->wouldSupply(addr, child_value)) {
            pendingSupplyChild = child;
            out = child_value;
            return true;
        }
    }
    out = entry->value;
    return true;
}

void
ClusterCache::observe(const BusTransaction &txn)
{
    Entry *entry = entries.lookup(txn.addr);
    if (entry == nullptr)
        return; // Inclusion: no child can hold it either.

    switch (txn.op) {
      case BusOp::Read:
        // Another cluster read the word; our copy stays valid (it
        // cannot be Local here — a Local entry would have supplied).
        ddc_assert(entry->tag != LineTag::Local,
                   "global read proceeded past a Local cluster entry");
        entry->value = txn.data;
        forwardDown(txn); // read broadcast refills Invalid L1 copies
        return;

      case BusOp::Write:
      case BusOp::Invalidate: {
        // Another cluster wrote: every copy in this cluster dies.
        // The downward broadcast is always an *invalidation*: the
        // cluster entry is gone, so update-snarfing L1s (RWB) must
        // not keep live copies inclusion no longer covers.
        entries.erase(txn.addr);
        stats.add(statGlobalInvalidation);
        BusTransaction down = txn;
        down.op = BusOp::Invalidate;
        forwardDown(down);
        return;
      }

      default:
        break;
    }
    ddc_panic("cluster cache snooped unexpected bus op");
}

void
ClusterCache::supplied(Addr addr)
{
    Entry *entry = entries.lookup(addr);
    ddc_assert(entry != nullptr && entry->tag == LineTag::Local,
               "supplied() without global ownership");
    stats.add(statSupply);
    if (pendingSupplyChild != nullptr) {
        Word child_value = 0;
        bool still = pendingSupplyChild->wouldSupply(addr, child_value);
        ddc_assert(still, "supply child vanished mid-cycle");
        entry->value = child_value;
        pendingSupplyChild->supplied(addr);
        pendingSupplyChild = nullptr;
    }
    // The supplied value now matches global memory.
    entry->tag = LineTag::Readable;
}

void
ClusterCache::requestNacked()
{
    // The front forward is blocked (e.g. a TS on a word another PE
    // holds locked).  Rotate so a forward that would unblock it — the
    // holder's unlock may be queued right behind — gets its turn.
    flushing = false;
    if (forwards.size() > 1) {
        std::rotate(forwards.begin(), forwards.begin() + 1,
                    forwards.end());
        stats.add(statForwardRotate);
    }
}

PeId
ClusterCache::peId() const
{
    // Global lock bookkeeping must see the originating PE so that
    // cross-cluster two-phase RMWs pair up correctly.
    if (!forwards.empty())
        return forwards.front().origin;
    return -1000 - clusterId;
}

void
ClusterCache::forwardDown(const BusTransaction &txn)
{
    stats.add(statDownwardBroadcast);
    for (Cache *child : children)
        child->observe(txn);
}

// ---- Cluster-bus memory side ---------------------------------------------

bool
ClusterCache::tryRead(Addr addr, PeId pe, Word &data)
{
    const Entry *entry = entries.lookup(addr);
    if (entry != nullptr) {
        // A dirty child would have killed the read before it got
        // here, so our copy is the cluster's latest.
        stats.add(statAbsorbedRead);
        cancelForward(pe);
        data = entry->value;
        return true;
    }
    enqueueForward(BusOp::Read, addr, 0, pe);
    return false;
}

bool
ClusterCache::tryReadBlock(Addr base, std::size_t words, PeId pe,
                           std::vector<Word> &block)
{
    (void)base;
    (void)words;
    (void)pe;
    (void)block;
    ddc_panic("hierarchical machine uses one-word blocks");
}

bool
ClusterCache::tryWrite(Addr addr, PeId pe, Word data)
{
    Entry *entry = entries.lookup(addr);
    if (entry != nullptr && entry->tag == LineTag::Local) {
        // The cluster owns the word: the write is cluster-internal.
        stats.add(statAbsorbedWrite);
        cancelForward(pe);
        entry->value = data;
        return true;
    }
    enqueueForward(BusOp::Write, addr, data, pe);
    return false;
}

bool
ClusterCache::tryInvalidate(Addr addr, PeId pe, Word data)
{
    Entry *entry = entries.lookup(addr);
    if (entry != nullptr && entry->tag == LineTag::Local) {
        // Cluster-internal BI: the bus broadcasts the Invalidate to
        // the sibling L1s; we just absorb the data.
        stats.add(statAbsorbedWrite);
        cancelForward(pe);
        entry->value = data;
        return true;
    }
    enqueueForward(BusOp::Invalidate, addr, data, pe);
    return false;
}

bool
ClusterCache::tryWriteBlock(Addr base, PeId pe,
                            const std::vector<Word> &block)
{
    (void)base;
    (void)pe;
    (void)block;
    ddc_panic("hierarchical machine uses one-word blocks");
}

bool
ClusterCache::tryRmw(Addr addr, PeId pe, Word set_value, Word &old,
                     bool &success)
{
    (void)old;
    (void)success;
    enqueueForward(BusOp::Rmw, addr, set_value, pe);
    return false;
}

bool
ClusterCache::tryReadLock(Addr addr, PeId pe, Word &data)
{
    (void)data;
    enqueueForward(BusOp::ReadLock, addr, 0, pe);
    return false;
}

bool
ClusterCache::tryWriteUnlock(Addr addr, PeId pe, Word data)
{
    enqueueForward(BusOp::WriteUnlock, addr, data, pe);
    return false;
}

void
ClusterCache::acceptSupply(Addr addr, Word data)
{
    // A dirty child supplied a cluster-bus read.  We are the cluster
    // bus's "memory": absorb the latest value.  The cluster keeps
    // global ownership (global memory is still stale).
    Entry *entry = entries.lookup(addr);
    ddc_assert(entry != nullptr && entry->tag == LineTag::Local,
               "cluster-level supply without global ownership");
    entry->value = data;
}

void
ClusterCache::acceptSupplyBlock(Addr base, const std::vector<Word> &block)
{
    (void)base;
    (void)block;
    ddc_panic("hierarchical machine uses one-word blocks");
}

} // namespace hier
} // namespace ddc
