/**
 * @file
 * Edge-case tests: the run facade's derived metrics, processor
 * register bounds, CacheSet assertions, execution-log field
 * semantics, and describe() rendering.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace ddc {
namespace {

TEST(Facade, MissRatioCountsBusNeedingRefs)
{
    // One PE: write (miss), then 9 reads (1 miss + 8 hits).
    Trace trace(1);
    trace.append(0, {CpuOp::Write, 5, 1, DataClass::Shared});
    for (int i = 0; i < 9; i++)
        trace.append(0, {CpuOp::Read, 5, 0, DataClass::Shared});

    SystemConfig config;
    config.num_pes = 1;
    config.protocol = ProtocolKind::Rb;
    auto summary = runTrace(config, trace);
    ASSERT_TRUE(summary.completed);
    // Write misses + nothing else: RB read after own write hits (L).
    EXPECT_DOUBLE_EQ(summary.miss_ratio, 0.1);
    EXPECT_EQ(summary.bus_transactions, 1u);
}

TEST(Facade, DescribeMentionsInconsistency)
{
    RunSummary summary;
    summary.completed = true;
    summary.consistent = false;
    auto text = describe(summary);
    EXPECT_NE(text.find("INCONSISTENT"), std::string::npos);
}

TEST(Facade, DescribeMentionsTimeout)
{
    RunSummary summary;
    summary.completed = false;
    EXPECT_NE(describe(summary).find("TIMED OUT"), std::string::npos);
}

TEST(Facade, EmptyTraceCompletesImmediately)
{
    SystemConfig config;
    config.num_pes = 2;
    Trace trace(2);
    auto summary = runTrace(config, trace);
    EXPECT_TRUE(summary.completed);
    EXPECT_EQ(summary.total_refs, 0u);
    EXPECT_DOUBLE_EQ(summary.bus_per_ref, 0.0);
}

TEST(Processor, RegisterBoundsChecked)
{
    SystemConfig config;
    config.num_pes = 1;
    System system(config);
    ProgramBuilder builder;
    system.setProgram(0, builder.halt().build());
    EXPECT_DEATH(system.processor(0).reg(kNumRegs), "register");
    EXPECT_DEATH(system.processor(0).setReg(-1, 0), "register");
}

TEST(Processor, SetRegSeedsArguments)
{
    SystemConfig config;
    config.num_pes = 1;
    System system(config);
    ProgramBuilder builder;
    system.setProgram(0, builder.addImm(2, 1, 5).halt().build());
    system.processor(0).setReg(1, 100);
    system.run();
    EXPECT_EQ(system.processor(0).reg(2), 105u);
}

TEST(CacheSet, RejectsOverlappingAccesses)
{
    SystemConfig config;
    config.num_pes = 1;
    System system(config);
    // Drive the cache directly through a second CacheSet-style check:
    // issuing through the system is covered elsewhere; here we check
    // the processor interface can't double-issue (assert in Cache).
    Trace trace(1);
    trace.append(0, {CpuOp::Read, 1, 0, DataClass::Shared});
    system.loadTrace(trace);
    system.run();
    EXPECT_TRUE(system.allDone());
}

TEST(ExecLog, TsFieldsRecorded)
{
    SystemConfig config;
    config.num_pes = 1;
    config.record_log = true;
    Trace trace(1);
    trace.append(0, {CpuOp::TestAndSet, 9, 7, DataClass::Shared});
    trace.append(0, {CpuOp::TestAndSet, 9, 8, DataClass::Shared});
    System system(config);
    system.loadTrace(trace);
    system.run();

    ASSERT_EQ(system.log().size(), 2u);
    const auto &first = system.log().all()[0];
    EXPECT_TRUE(first.ts_success);
    EXPECT_EQ(first.value, 0u);
    EXPECT_EQ(first.stored, 7u);
    const auto &second = system.log().all()[1];
    EXPECT_FALSE(second.ts_success);
    EXPECT_EQ(second.value, 7u);
}

TEST(ExecLog, CyclesAreMonotonicPerPe)
{
    SystemConfig config;
    config.num_pes = 4;
    config.record_log = true;
    auto trace = makeUniformRandomTrace(4, 200, 8, 0.4, 0.1, 31);
    System system(config);
    system.loadTrace(trace);
    system.run();

    std::vector<Cycle> last(4, 0);
    for (const auto &entry : system.log().all()) {
        ASSERT_GE(entry.cycle, last[static_cast<std::size_t>(entry.pe)]);
        last[static_cast<std::size_t>(entry.pe)] = entry.cycle;
    }
}

TEST(SystemConfigValidation, BadConfigsDie)
{
    {
        SystemConfig config;
        config.num_pes = 0;
        EXPECT_DEATH(System{config}, "at least one PE");
    }
    {
        SystemConfig config;
        config.cache_lines = 0;
        EXPECT_DEATH(System{config}, "cache line");
    }
    {
        SystemConfig config;
        config.num_buses = 0;
        EXPECT_DEATH(System{config}, "bus");
    }
}

} // namespace
} // namespace ddc
