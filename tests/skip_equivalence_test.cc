/**
 * @file
 * Skip-on vs skip-off equivalence suite for the quiescent-cycle skip
 * engine (next-event time advance).
 *
 * The engine's contract is that fast-forwarding a quiescent interval
 * is *unobservable*: every counter, every execution-log entry (cycle
 * stamps included), the final cycle count, and the serialized JSON
 * must be byte-identical with skipping on or off — including under
 * the Random arbiter, whose RNG stream must not shift, and for
 * timed-out runs, which must report the wall cycle the budget expired
 * at, not the last cycle actually ticked.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/simulator.hh"
#include "exp/runner.hh"
#include "hier/hier_system.hh"
#include "sim/system.hh"
#include "sync/workload.hh"
#include "trace/synthetic.hh"

namespace ddc {
namespace {

/** Everything observable from one run, for byte-wise comparison. */
struct Observed
{
    Cycle cycles = 0;
    RunStatus status = RunStatus::Finished;
    Cycle skipped = 0;
    std::string counters;
    std::vector<LogEntry> log;
};

void
expectIdentical(const Observed &with_skip, const Observed &no_skip)
{
    EXPECT_EQ(no_skip.skipped, 0u);
    EXPECT_EQ(with_skip.cycles, no_skip.cycles);
    EXPECT_EQ(with_skip.status, no_skip.status);
    EXPECT_EQ(with_skip.counters, no_skip.counters);
    ASSERT_EQ(with_skip.log.size(), no_skip.log.size());
    for (std::size_t i = 0; i < with_skip.log.size(); i++) {
        const LogEntry &a = with_skip.log[i];
        const LogEntry &b = no_skip.log[i];
        EXPECT_EQ(a.seq, b.seq) << "log entry " << i;
        EXPECT_EQ(a.cycle, b.cycle) << "log entry " << i;
        EXPECT_EQ(a.pe, b.pe) << "log entry " << i;
        EXPECT_EQ(a.op, b.op) << "log entry " << i;
        EXPECT_EQ(a.addr, b.addr) << "log entry " << i;
        EXPECT_EQ(a.value, b.value) << "log entry " << i;
        EXPECT_EQ(a.stored, b.stored) << "log entry " << i;
        EXPECT_EQ(a.ts_success, b.ts_success) << "log entry " << i;
    }
}

Observed
observeFlat(SystemConfig config, const Trace &trace,
            Cycle max_cycles = System::kDefaultMaxCycles)
{
    config.record_log = true;
    System system(config);
    system.loadTrace(trace);
    Observed seen;
    seen.cycles = system.run(max_cycles);
    seen.status = system.runStatus();
    seen.skipped = system.skippedCycles();
    seen.counters = system.counters().report();
    seen.log = system.log().all();
    return seen;
}

/** Run the same flat config with and without skipping and compare. */
Observed
checkFlat(SystemConfig config, const Trace &trace,
          Cycle max_cycles = System::kDefaultMaxCycles)
{
    config.skip_quiescent = true;
    Observed with_skip = observeFlat(config, trace, max_cycles);
    config.skip_quiescent = false;
    Observed no_skip = observeFlat(config, trace, max_cycles);
    expectIdentical(with_skip, no_skip);
    return with_skip;
}

const ProtocolKind kProtocols[] = {
    ProtocolKind::WriteThrough, ProtocolKind::WriteOnce, ProtocolKind::Rb,
    ProtocolKind::Rwb};

TEST(SkipEquivalence, FlatMemoryLatencyAllProtocols)
{
    auto trace = makeUniformRandomTrace(4, 1500, 64, 0.3, 0.05, 11);
    for (auto protocol : kProtocols) {
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 64;
        config.protocol = protocol;
        config.memory_latency = 16;
        Observed seen = checkFlat(config, trace);
        // Non-vacuous: with 16-cycle transfers the machine spends
        // most of its time quiescent, so the engine must engage.
        EXPECT_GT(seen.skipped, 0u)
            << "skip never engaged for " << toString(protocol);
    }
}

TEST(SkipEquivalence, FlatRandomArbiterKeepsRngStream)
{
    // The hinge case: RandomArbiter draws one RNG value per grant, so
    // a skipped interval must consume no randomness at all or every
    // later grant (and with it every counter) shifts.
    auto trace = makeHotSpotTrace(8, 300, 8);
    for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        SystemConfig config;
        config.num_pes = 8;
        config.cache_lines = 128;
        config.protocol = protocol;
        config.memory_latency = 8;
        config.arbiter = ArbiterKind::Random;
        config.arbiter_seed = 99;
        Observed seen = checkFlat(config, trace);
        EXPECT_GT(seen.skipped, 0u);
    }
}

TEST(SkipEquivalence, FlatBlockTransfersAndMultibus)
{
    auto trace = makeUniformRandomTrace(4, 1200, 128, 0.4, 0.1, 23);
    {
        // Multi-word blocks: a block transfer streams block_words +
        // latency cycles, all skippable when every PE is stalled.
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 32;
        config.block_words = 4;
        config.protocol = ProtocolKind::Rb;
        config.memory_latency = 12;
        Observed seen = checkFlat(config, trace);
        EXPECT_GT(seen.skipped, 0u);
    }
    {
        // Two interleaved buses: a skip must clear *both* buses'
        // grant windows, and idle accounting stays per-bus.
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 64;
        config.num_buses = 2;
        config.protocol = ProtocolKind::WriteOnce;
        config.memory_latency = 16;
        checkFlat(config, trace);
    }
}

TEST(SkipEquivalence, FlatZeroLatencyStaysIdentical)
{
    // The paper's unified cycle: transfers never stream, so a skip
    // can only fire in the (unreachable) all-blocked case; the engine
    // must be a strict no-op here.
    auto trace = makeCmStarTrace(cmStarApplicationA(), 4, 2000, 7);
    SystemConfig config;
    config.num_pes = 4;
    Observed seen = checkFlat(config, trace);
    EXPECT_EQ(seen.skipped, 0u);
}

TEST(SkipEquivalence, TimedOutRunReportsWallCycle)
{
    // The budget expires mid-quiescent-interval: the skip engine must
    // clamp its jump to the budget and report the wall cycle, exactly
    // like the baseline that ticked up to it.
    auto trace = makeHotSpotTrace(4, 400, 8);
    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 64;
    config.protocol = ProtocolKind::Rb;
    config.memory_latency = 64;
    Observed seen = checkFlat(config, trace, 100);
    EXPECT_EQ(seen.status, RunStatus::TimedOut);
    EXPECT_EQ(seen.cycles, 100u);
    EXPECT_GT(seen.skipped, 0u);
}

TEST(SkipEquivalence, TimedOutRunResultJsonIsIdentical)
{
    // Same through the experiment engine: RunResult.cycles carries
    // the wall cycle and the default (no --timing) JSON payload is
    // byte-identical with skipping on or off.
    auto trace = makeHotSpotTrace(4, 400, 8);
    exp::TraceRun run;
    run.trace = trace;
    run.config.num_pes = 4;
    run.config.cache_lines = 64;
    run.config.memory_latency = 64;
    run.max_cycles = 100;

    run.config.skip_quiescent = true;
    exp::RunResult with_skip = exp::executeTraceRun(run);
    run.config.skip_quiescent = false;
    exp::RunResult no_skip = exp::executeTraceRun(run);

    EXPECT_EQ(with_skip.status, RunStatus::TimedOut);
    EXPECT_EQ(with_skip.cycles, 100u);
    EXPECT_GT(with_skip.skipped_cycles, 0u);
    EXPECT_EQ(no_skip.skipped_cycles, 0u);
    EXPECT_EQ(with_skip.toJson(false).dump(), no_skip.toJson(false).dump());
}

TEST(SkipEquivalence, LockWorkloadsViaProcessWideSwitch)
{
    // Processor agents (spin loops are real work, never skipped) and
    // the --no-skip escape hatch: runLockExperiment builds its System
    // internally, so only the process-wide switch can reach it.
    for (auto lock : {sync::LockKind::TestAndSet,
                      sync::LockKind::TestAndTestAndSet}) {
        sync::LockExperimentConfig config;
        config.num_pes = 8;
        config.lock = lock;
        config.protocol = ProtocolKind::Rb;
        config.acquisitions_per_pe = 4;
        config.cs_increments = 4;
        config.memory_latency = 16;
        config.record_log = true;

        std::unique_ptr<System> with_skip_system;
        auto with_skip = sync::runLockExperiment(config,
                                                 &with_skip_system);

        setQuiescentSkipEnabled(false);
        std::unique_ptr<System> no_skip_system;
        auto no_skip = sync::runLockExperiment(config, &no_skip_system);
        setQuiescentSkipEnabled(true);

        EXPECT_EQ(no_skip.skipped_cycles, 0u);
        EXPECT_EQ(no_skip_system->skippedCycles(), 0u);
        EXPECT_EQ(with_skip.cycles, no_skip.cycles);
        EXPECT_EQ(with_skip.counter_value, no_skip.counter_value);
        EXPECT_EQ(with_skip.bus_transactions, no_skip.bus_transactions);
        EXPECT_EQ(with_skip.rmw_attempts, no_skip.rmw_attempts);
        EXPECT_EQ(with_skip.rmw_failures, no_skip.rmw_failures);
        EXPECT_TRUE(with_skip.completed);
        EXPECT_EQ(with_skip_system->counters().report(),
                  no_skip_system->counters().report());
        // TS spinners stall on the bus RMW, so transfers leave the
        // whole machine quiescent; pure TTS spinning is cache-hit
        // work and must never be skipped.
        if (lock == sync::LockKind::TestAndSet)
            EXPECT_GT(with_skip.skipped_cycles, 0u);
    }
}

/** Observe one hierarchical run (skip toggled per-config). */
Observed
observeHier(hier::HierConfig config, const Trace &trace,
            bool skip_quiescent)
{
    config.record_log = true;
    config.skip_quiescent = skip_quiescent;
    hier::HierSystem system(config);
    system.loadTrace(trace);
    Observed seen;
    seen.cycles = system.run();
    seen.status = system.runStatus();
    seen.skipped = system.skippedCycles();
    seen.counters = system.counters().report();
    seen.log = system.log().all();
    return seen;
}

TEST(SkipEquivalence, HierarchicalMachine)
{
    // All hierarchy buses run the unified cycle, so skips essentially
    // never engage — but the engine is wired identically and must
    // stay unobservable here too (Rb and Rwb L1 schemes).
    auto trace = makeUniformRandomTrace(8, 800, 64, 0.3, 0.05, 17);
    for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        hier::HierConfig config;
        config.num_clusters = 4;
        config.pes_per_cluster = 2;
        config.cache_lines = 64;
        config.protocol = protocol;
        expectIdentical(observeHier(config, trace, true),
                        observeHier(config, trace, false));
    }
}

} // namespace
} // namespace ddc
