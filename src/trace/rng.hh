/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in ddcache flows through Rng so that a given
 * configuration + seed reproduces bit-identical statistics on any
 * platform.  The generator is xoshiro256** seeded via SplitMix64.
 */

#ifndef DDC_TRACE_RNG_HH
#define DDC_TRACE_RNG_HH

#include <cstdint>
#include <vector>

namespace ddc {

/**
 * A small, fast, seedable PRNG (xoshiro256**).
 *
 * Not cryptographic; plenty for workload synthesis.
 */
class Rng
{
  public:
    /** Seed deterministically from a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) ; @p bound must be positive. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability @p p. */
    bool chance(double p);

    /**
     * Sample an index from a discrete distribution given by
     * non-negative @p weights (need not be normalized).
     */
    std::size_t nextWeighted(const std::vector<double> &weights);

    /**
     * Sample from a bounded geometric-like distribution over
     * [0, bound): P(k) proportional to decay^k.  Used to model
     * LRU-stack-distance locality in synthetic address streams.
     */
    std::uint64_t nextGeometric(double decay, std::uint64_t bound);

  private:
    std::uint64_t state[4];
};

/**
 * A counter-based random stream: draw number i is a pure function of
 * (stream seed, i), with no evolving hidden state beyond the draw
 * counter itself.
 *
 * This is the per-shard stream type of the parallel kernel (see
 * DESIGN.md, "The kernel and shard contract"): because a draw depends
 * only on the stream seed and the draw index, two runs that partition
 * the machine into different shard counts — or interleave shard
 * execution differently across host threads — observe identical
 * values, and one shard can never consume (or shift) another shard's
 * randomness.  The mixer is the SplitMix64 finalizer over
 * seed + (i + 1) * golden-gamma, the same expansion Rng seeds with.
 */
class StreamRng
{
  public:
    /** Stream over @p stream_seed; draws start at index 0. */
    explicit StreamRng(std::uint64_t stream_seed)
        : seed(stream_seed)
    {}

    /** The stream of shard @p shard_id under machine seed @p seed. */
    static StreamRng
    forShard(std::uint64_t seed, std::uint64_t shard_id)
    {
        return StreamRng(seed ^ shard_id);
    }

    /** Draw @p draw of this stream (order-independent, const). */
    std::uint64_t at(std::uint64_t draw) const;

    /** Next sequential draw (at(counter), then counter++). */
    std::uint64_t
    next()
    {
        return at(counter++);
    }

    /** Uniform integer in [0, bound); @p bound must be positive. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Draws taken so far via next(). */
    std::uint64_t drawsTaken() const { return counter; }

    /** The stream seed (shard streams: machine seed ^ shard id). */
    std::uint64_t streamSeed() const { return seed; }

  private:
    std::uint64_t seed;
    std::uint64_t counter = 0;
};

/**
 * Zipf(s) sampler over [0, n) with a precomputed inverse CDF.
 *
 * Valid for any exponent s >= 0 (s == 0 degenerates to uniform);
 * sampling is O(log n) via binary search.
 */
class ZipfSampler
{
  public:
    /**
     * @param s Zipf exponent (>= 0).
     * @param n Support size (> 0); index 0 is the most popular item.
     */
    ZipfSampler(double s, std::uint64_t n);

    /** Draw one sample using @p rng. */
    std::uint64_t sample(Rng &rng) const;

    /** Support size. */
    std::uint64_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

} // namespace ddc

#endif // DDC_TRACE_RNG_HH
