/**
 * @file
 * Figure 6-2 reproduction: synchronization with Test-and-Test-and-Set
 * under the RB scheme — unsuccessful attempts spin in the caches and
 * generate no bus traffic.
 */

#include "bench_common.hh"

#include <iostream>
#include <sstream>

#include "sim/scenario.hh"
#include "stats/table.hh"
#include "sync/workload.hh"

namespace {

using namespace ddc;

constexpr Addr S = 0;

/** Run the Figure 6-2 scenario and render its table. */
exp::RunResult
measure()
{
    using stats::Table;
    std::ostringstream os;

    os <<
        "Figure 6-2: synchronization with Test-and-Test-and-Set,\n"
        "RB scheme (three PEs, lock word S)\n\n";

    Scenario scenario(ProtocolKind::Rb, 3);
    Table table;
    table.setHeader({"P1 Cache", "P2 Cache", "Pm Cache", "S",
                     "Observation"});

    auto emit = [&](const std::string &what) {
        std::vector<std::string> row;
        for (PeId pe = 0; pe < 3; pe++) {
            LineState line = scenario.state(pe, S);
            std::string cell{toString(line)};
            cell += "(";
            cell += line.present() ? std::to_string(scenario.value(pe, S))
                                   : "-";
            cell += ")";
            row.push_back(cell);
        }
        row.push_back(std::to_string(scenario.memoryValue(S)));
        row.push_back(what);
        table.addRow(row);
    };

    for (PeId pe = 0; pe < 3; pe++)
        scenario.read(pe, S);
    emit("Initial state");

    // P2: test (cache hit, sees 0), then TS.
    scenario.read(1, S);
    scenario.testAndSet(1, S);
    emit("P2 locks S");

    // Others' first test refills every cache...
    scenario.read(0, S);
    scenario.read(2, S);
    // ...then the spins are pure cache hits.
    auto before = scenario.busTransactions();
    for (int spin = 0; spin < 32; spin++) {
        scenario.read(0, S);
        scenario.read(2, S);
    }
    auto spin_traffic = scenario.busTransactions() - before;
    emit("Others try to get S (No Bus Traffic) (Load from Caches)");

    scenario.write(1, S, 0);
    emit("P2 releases S");

    scenario.read(0, S);
    emit("A Bus Read to S");

    scenario.testAndSet(0, S);
    emit("P1 gets the S");

    scenario.read(1, S);
    scenario.read(2, S);
    emit("Others try to get S");

    os << table.render() << "\n";
    os << "64 spin reads while the lock was held generated "
       << spin_traffic << " bus transactions.\n"
       << "The TTS spin runs entirely inside the private caches;\n"
       << "only the release/re-acquire sequence touches the bus.\n\n";

    exp::RunResult result;
    result.rendered = os.str();
    result.bus_transactions = scenario.busTransactions();
    result.setMetric("spin_traffic",
                     static_cast<double>(spin_traffic));
    return result;
}

void
printReproduction(exp::Session &session)
{
    exp::Experiment spec("fig_6_2_tts_rb",
                         "Figure 6-2: Test-and-Test-and-Set on RB, "
                         "per-cache state table and spin bus traffic");
    spec.addCustom({{"lock", "TTS"}, {"scheme", "RB"}}, measure);
    const auto &results = session.run(spec);
    std::cout << results[0].rendered;
}

void
BM_TtsLockContention(benchmark::State &state)
{
    auto num_pes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sync::LockExperimentConfig config;
        config.num_pes = num_pes;
        config.lock = sync::LockKind::TestAndTestAndSet;
        config.protocol = ProtocolKind::Rb;
        config.acquisitions_per_pe = 16;
        config.cs_increments = 4;
        auto result = sync::runLockExperiment(config);
        benchmark::DoNotOptimize(result.cycles);
    }
}
BENCHMARK(BM_TtsLockContention)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_TtsBusPerAcquisition(benchmark::State &state)
{
    auto num_pes = static_cast<int>(state.range(0));
    double bus_per_acq = 0.0;
    for (auto _ : state) {
        sync::LockExperimentConfig config;
        config.num_pes = num_pes;
        config.lock = sync::LockKind::TestAndTestAndSet;
        config.protocol = ProtocolKind::Rb;
        config.acquisitions_per_pe = 16;
        auto result = sync::runLockExperiment(config);
        bus_per_acq = result.bus_per_acquisition;
    }
    state.counters["bus_per_acquisition"] = bus_per_acq;
}
BENCHMARK(BM_TtsBusPerAcquisition)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
