/**
 * @file
 * Per-System observability recorder plus the process-wide opt-in
 * configuration the session flags set (--trace-out,
 * --trace-categories, --histograms, --sample-every).
 *
 * A System asks makeRecorder() for a Recorder at construction; the
 * result is null when nothing is enabled, and components then cache
 * null sink/metrics pointers — the zero-overhead-when-off contract.
 * The trace output file is claimed by the first System that asks for
 * it (one file, one run); parallel experiment workers therefore
 * trace exactly one run instead of interleaving into one file.
 */

#ifndef DDC_OBS_RECORDER_HH
#define DDC_OBS_RECORDER_HH

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"

namespace ddc {
namespace obs {

/**
 * Set the process-wide trace destination (--trace-out /
 * --trace-categories).  Re-arms the first-System-wins claim, so
 * tests can trace several successive Systems.  An empty @p path
 * disables tracing.
 */
void setTraceOutput(std::string path,
                    std::uint32_t categories = kAllCategories);

/** Process-wide --histograms flag (ORed with SystemConfig's). */
void setHistogramsEnabled(bool enabled);
bool histogramsEnabled();

/** Process-wide --sample-every interval; 0 disables sampling. */
void setSampleInterval(Cycle every);
Cycle sampleInterval();

/**
 * One System's observability state: the trace sink (if this System
 * won the claim), the histogram bundle, the counter sampler, and the
 * lock acquire/release/spin episode tracker fed by the Bus.
 */
class Recorder
{
  public:
    Recorder(std::unique_ptr<TraceSink> trace_sink, bool histograms,
             Cycle sample_every);

    /** Sink for @p category, or null when not traced. */
    TraceSink *
    trace(Category category)
    {
        return sink && sink->enabled(category) ? sink.get()
                                               : nullptr;
    }

    /** Histogram bundle, or null when --histograms is off. */
    RunMetrics *metrics() { return runMetrics.get(); }

    /** Counter sampler, or null when --sample-every is off. */
    CounterSampler *sampler() { return counterSampler.get(); }

    /** True when the Bus should report lock events at all. */
    bool
    wantsLockEvents()
    {
        return runMetrics != nullptr ||
               trace(Category::Lock) != nullptr;
    }

    /**
     * An RMW reached the bus for @p addr.  A failed attempt opens
     * (or extends) a spin episode; a successful one closes it,
     * samples lock_acquire, and — when a release was seen since the
     * last acquire — samples lock_handoff.
     */
    void lockAttempt(PeId pe, Addr addr, Cycle now, bool success);

    /**
     * A write completed to @p addr.  Ignored unless @p addr has
     * carried an RMW before (i.e. it behaves like a lock word).
     */
    void lockRelease(PeId pe, Addr addr, Cycle now);

  private:
    std::unique_ptr<TraceSink> sink;
    std::unique_ptr<RunMetrics> runMetrics;
    std::unique_ptr<CounterSampler> counterSampler;

    /** Addresses that have carried an RMW (lock-word heuristic). */
    std::unordered_set<Addr> knownLocks;
    /** Open spin episodes: (pe, lock addr) -> first-failure cycle. */
    std::map<std::pair<PeId, Addr>, Cycle> spinning;
    /** Pending hand-offs: lock addr -> release cycle. */
    std::unordered_map<Addr, Cycle> lastRelease;
};

/**
 * Build the Recorder for a System given its per-config histogram
 * flag and sampling interval (0 = use the process-wide interval).
 * @return null when no observability feature is enabled.
 */
std::unique_ptr<Recorder> makeRecorder(bool config_histograms,
                                       Cycle config_sample_every);

} // namespace obs
} // namespace ddc

#endif // DDC_OBS_RECORDER_HH
