/**
 * @file
 * Exhaustive product-machine verification (Section 4, executable).
 *
 * The paper proves consistency by examining the product of the N
 * per-cache finite state automata plus the memory.  This checker does
 * that examination mechanically against the *shipped* Protocol
 * implementation: it explores, by breadth-first search, every state
 * reachable for a single address under every interleaving of
 * bus-atomic events (cache hits, bus reads with and without a
 * supplier, bus writes, bus invalidates, test-and-sets resolved both
 * ways, flushes, and evictions with and without write-back), checking
 * at every step:
 *
 *   1. the configuration lemma — at most one dirty owner; when an
 *      owner exists all other copies are dead;
 *   2. the latest-value invariant — the owner (or, with no owner,
 *      memory and every live copy) holds the latest written value;
 *   3. the theorem — every completed read returns the latest value.
 *
 * Data values are abstracted to a single bit per copy ("is this the
 * latest version?"), which is exact for these invariants: writes mint
 * a fresh version and every stale copy is detectable.
 */

#ifndef DDC_VERIFY_PRODUCT_MACHINE_HH
#define DDC_VERIFY_PRODUCT_MACHINE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/protocol.hh"

namespace ddc {

/** What event classes the exploration includes. */
struct ProductCheckOptions
{
    bool with_test_and_set = true;
    bool with_evictions = true;
    /** Abort exploration beyond this many states (safety net). */
    std::size_t max_states = 2'000'000;
};

/** Outcome of a product-machine exploration. */
struct ProductCheckResult
{
    bool ok = true;
    std::size_t states_explored = 0;
    std::size_t transitions_taken = 0;
    /** Description of the violating state/event (when !ok). */
    std::string error;
    /**
     * The distinct reachable *configurations* (Section 3's term): the
     * multiset of per-cache tags, canonically sorted, e.g. "I I L" or
     * "R R R".  The configuration lemma says only local-type and
     * shared-type configurations appear; this list makes that
     * inspectable.
     */
    std::vector<std::string> configurations;
};

/**
 * Exhaustively explore the @p num_caches product machine of
 * @p protocol and check the Section 4 invariants.
 */
ProductCheckResult checkProductMachine(const Protocol &protocol,
                                       int num_caches,
                                       const ProductCheckOptions &options =
                                           {});

} // namespace ddc

#endif // DDC_VERIFY_PRODUCT_MACHINE_HH
