#!/usr/bin/env bash
# Build everything, run the full test suite, and regenerate every
# paper table/figure + ablation, capturing the outputs the way
# EXPERIMENTS.md documents them.
#
#   scripts/reproduce_all.sh [build-dir]

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -G Ninja -S "$repo_root"
cmake --build "$build_dir"

ctest --test-dir "$build_dir" --output-on-failure 2>&1 \
    | tee "$repo_root/test_output.txt"

: > "$repo_root/bench_output.txt"
for bench in "$build_dir"/bench/*; do
    [ -x "$bench" ] || continue
    echo "===== $(basename "$bench") =====" >> "$repo_root/bench_output.txt"
    "$bench" >> "$repo_root/bench_output.txt" 2>&1
done

echo "Done: test_output.txt, bench_output.txt"
