#include "core/protocol.hh"

#include <string>

namespace ddc {

std::string
toString(const LineState &state)
{
    std::string result{ddc::toString(state.tag)};
    if (state.tag == LineTag::FirstWrite && state.streak > 1)
        result += std::to_string(static_cast<int>(state.streak));
    return result;
}

} // namespace ddc
