/**
 * @file
 * Section 7 reproduction: shared-bus bandwidth.
 *
 * The paper's model: SBB >= m * x / h, with the worked example
 * 1/h = 10%, m = 128, x = 1 MACS  =>  SBB = 12.8 MACS.
 *
 * We print that analytic table, then cross-check the model against
 * the simulator: per-PE bus-transaction rates measured on a Cm*-mix
 * workload under the RB scheme, swept over the PE count, showing
 * where the single bus saturates (utilization -> 1, per-PE throughput
 * collapsing).
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

const int kPeCounts[] = {1, 2, 4, 8, 16, 32, 64};

void
printAnalyticModel()
{
    using stats::Table;

    std::cout <<
        "Section 7: required shared-bus bandwidth  SBB >= m * x / h\n"
        "(x = accesses/second per PE in MACS, 1/h = cache miss ratio,\n"
        "m = number of PEs on the shared bus)\n\n";

    Table table("Analytic model (x = 1 MACS)");
    table.setHeader({"miss ratio 1/h", "m (PEs)", "required SBB (MACS)"});
    for (double miss : {0.05, 0.10, 0.20}) {
        for (int m : {32, 64, 128, 256}) {
            table.addRow({Table::num(miss, 2), std::to_string(m),
                          Table::num(m * 1.0 * miss, 1)});
        }
        table.addSeparator();
    }
    std::cout << table.render();
    std::cout << "\nPaper's example: 1/h = 10%, m = 128, x = 1 MACS  =>  "
              << "SBB = " << 128 * 1.0 * 0.10 << " MACS\n\n";
}

void
printMeasuredSweep(exp::Session &session)
{
    using stats::Table;

    exp::ParamGrid grid;
    {
        std::vector<std::string> labels;
        for (int m : kPeCounts)
            labels.push_back(std::to_string(m));
        grid.axis("pes", labels);
    }

    exp::Experiment spec("sec_7_bus_bandwidth",
                         "Section 7: single-bus saturation sweep over "
                         "the PE count (RB, Cm*-mix)");
    spec.addGrid(grid, [](std::size_t flat) {
        const std::size_t refs_per_pe = 4000;
        int num_pes = kPeCounts[flat];
        exp::TraceRun run;
        run.config.num_pes = num_pes;
        run.config.cache_lines = 1024;
        run.config.protocol = ProtocolKind::Rb;
        run.trace = makeCmStarTrace(cmStarApplicationA(), num_pes,
                                    refs_per_pe, 7);
        return run;
    });
    const auto &results = session.run(spec);

    Table table("Measured on the simulator (RB scheme, Cm*-mix "
                "workload, 1024-word caches, single bus)");
    table.setHeader({"PEs", "bus ops/ref (=1/h)", "bus utilization",
                     "refs/cycle/PE", "model: m/h"});
    for (std::size_t i = 0; i < results.size(); i++) {
        const auto &result = results[i];
        int m = kPeCounts[i];
        double bus_per_ref = result.metric("bus_per_ref");
        double utilization =
            static_cast<double>(result.bus_transactions) /
            static_cast<double>(result.cycles);
        double refs_per_cycle_per_pe =
            static_cast<double>(result.total_refs) /
            static_cast<double>(result.cycles) / m;
        table.addRow({std::to_string(m), Table::num(bus_per_ref, 3),
                      Table::num(utilization, 3),
                      Table::num(refs_per_cycle_per_pe, 3),
                      Table::num(m * bus_per_ref, 2)});
    }
    std::cout << table.render();
    std::cout <<
        "\nReading: one bus serves one transaction per cycle, so the bus\n"
        "saturates when m * (bus ops/ref) approaches 1 ref/cycle of\n"
        "demand - exactly the paper's SBB >= m*x/h with SBB fixed at one\n"
        "transaction/cycle.  Past saturation, per-PE throughput falls as\n"
        "1/m while utilization pins at ~1.\n\n";
}

void
printReproduction(exp::Session &session)
{
    printAnalyticModel();
    printMeasuredSweep(session);
}

void
BM_BandwidthSweep(benchmark::State &state)
{
    auto num_pes = static_cast<int>(state.range(0));
    auto trace = makeCmStarTrace(cmStarApplicationA(), num_pes, 2000, 7);
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = num_pes;
        config.cache_lines = 1024;
        config.protocol = ProtocolKind::Rb;
        auto summary = runTrace(config, trace);
        benchmark::DoNotOptimize(summary.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            num_pes * 2000);
}
BENCHMARK(BM_BandwidthSweep)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
