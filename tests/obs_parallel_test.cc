/**
 * @file
 * Shard-safe observability suite.
 *
 * Two contracts, on top of the observe-only guarantee that
 * trace_determinism_test pins for single-lane runs:
 *
 *  1. Observability no longer pins a machine to one lane: a traced
 *     or histogrammed hierarchical run uses exactly the worker lanes
 *     it was configured with (only record_log still forces one lane,
 *     because the serial execution log is one shared stream).
 *  2. The lane count stays invisible: the merged trace file written
 *     by a --shards 4 run is byte-for-byte identical to the
 *     --shards 1 file, and every simulation-observable quantity of a
 *     traced+histogrammed+sampled run matches the untraced run at
 *     every lane count — for the snooping and the directory global
 *     interconnect.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hier/hier_system.hh"
#include "obs/recorder.hh"
#include "trace/synthetic.hh"

namespace ddc {
namespace {

/**
 * Per-test trace file: ctest runs each TEST as its own process, in
 * parallel, in one working directory — a shared name would race.
 */
std::string
tracePath()
{
    return std::string("obs_parallel_") +
           ::testing::UnitTest::GetInstance()
               ->current_test_info()
               ->name() +
           ".json";
}

/** Hierarchical config the suite shares (8 clusters x 2 PEs). */
hier::HierConfig
baseConfig(bool directory)
{
    hier::HierConfig config;
    config.num_clusters = 8;
    config.pes_per_cluster = 2;
    config.cache_lines = 64;
    config.protocol = ProtocolKind::Rb;
    if (directory) {
        config.global = hier::GlobalKind::Directory;
        config.home_nodes = 4;
    }
    return config;
}

/** Everything simulation-observable from one run. */
struct Observed
{
    Cycle cycles = 0;
    RunStatus status = RunStatus::Finished;
    Cycle skipped = 0;
    std::string counters;
};

/** Run once; when traced, return the written trace file's bytes. */
Observed
observe(hier::HierConfig config, const Trace &trace, int shards,
        bool observed, std::string *trace_bytes = nullptr)
{
    config.shards = shards;
    config.histograms = observed;
    if (observed) {
        obs::setTraceOutput(tracePath().c_str());
        obs::setSampleInterval(64);
    }
    Observed seen;
    {
        hier::HierSystem system(config);
        system.loadTrace(trace);
        seen.cycles = system.run();
        seen.status = system.runStatus();
        seen.skipped = system.skippedCycles();
        seen.counters = system.counters().report();
        if (observed) {
            // The tentpole regression: the recorder must not have
            // pinned the kernel to one lane.
            EXPECT_EQ(system.workerLanes(), shards)
                << "observability pinned a " << shards << "-lane run";
            EXPECT_NE(system.observability(), nullptr);
        }
    } // Destruction writes the trace file.
    if (observed) {
        obs::setTraceOutput("");
        obs::setSampleInterval(0);
        if (trace_bytes) {
            std::ifstream in(tracePath(), std::ios::binary);
            EXPECT_TRUE(in.good()) << "trace file must exist";
            std::stringstream buffer;
            buffer << in.rdbuf();
            *trace_bytes = buffer.str();
        }
        std::remove(tracePath().c_str());
    }
    return seen;
}

void
expectIdentical(const Observed &a, const Observed &b,
                const std::string &label)
{
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.status, b.status) << label;
    EXPECT_EQ(a.skipped, b.skipped) << label;
    EXPECT_EQ(a.counters, b.counters) << label;
}

TEST(ObsParallel, ObservedRunsKeepTheirLanes)
{
    // --histograms --shards 4 must genuinely run on 4 lanes; before
    // the per-shard streams, an attached recorder forced one.
    auto trace = makeUniformRandomTrace(16, 400, 64, 0.3, 0.05, 11);
    hier::HierConfig config = baseConfig(false);
    config.shards = 4;
    config.histograms = true;
    {
        hier::HierSystem system(config);
        system.loadTrace(trace);
        EXPECT_EQ(system.workerLanes(), 4);
        system.run();
    }
    // record_log is not an observability path: the serial execution
    // log is one shared stream and still pins the run.
    config.record_log = true;
    {
        hier::HierSystem system(config);
        EXPECT_EQ(system.workerLanes(), 1);
    }
}

TEST(ObsParallel, TraceFileByteIdenticalAcrossShards)
{
    for (bool directory : {false, true}) {
        auto trace = makeUniformRandomTrace(16, 600, 64, 0.3, 0.05,
                                            directory ? 29 : 17);
        hier::HierConfig config = baseConfig(directory);
        std::string label = directory ? "directory" : "snoop";

        std::string baseline_bytes;
        Observed baseline = observe(config, trace, 1, true,
                                    &baseline_bytes);
        ASSERT_FALSE(baseline_bytes.empty()) << label;
        for (int shards : {2, 4}) {
            std::string bytes;
            Observed run = observe(config, trace, shards, true, &bytes);
            expectIdentical(baseline, run,
                            label + " shards " +
                                std::to_string(shards));
            // Not EXPECT_EQ on the strings: traces run to megabytes,
            // and a failure message quoting both would drown the run.
            std::size_t mismatch = std::min(baseline_bytes.size(),
                                            bytes.size());
            for (std::size_t i = 0; i < mismatch; i++) {
                if (baseline_bytes[i] != bytes[i]) {
                    mismatch = i;
                    break;
                }
            }
            EXPECT_TRUE(baseline_bytes == bytes)
                << label << ": merged --shards " << shards
                << " trace must equal the --shards 1 file "
                << "byte-for-byte (sizes " << baseline_bytes.size()
                << " vs " << bytes.size() << ", first difference at "
                << "byte " << mismatch << ")";
        }
    }
}

TEST(ObsParallel, ObservedRunMatchesUntracedAtEveryLaneCount)
{
    for (bool directory : {false, true}) {
        auto trace = makeUniformRandomTrace(16, 600, 64, 0.35, 0.1,
                                            directory ? 43 : 31);
        hier::HierConfig config = baseConfig(directory);
        std::string label = directory ? "directory" : "snoop";

        Observed plain = observe(config, trace, 1, false);
        for (int shards : {1, 2, 4}) {
            expectIdentical(plain,
                            observe(config, trace, shards, true),
                            label + " observed shards " +
                                std::to_string(shards));
        }
    }
}

TEST(ObsParallel, DirectoryHistogramsCollectAcrossLanes)
{
    // The directory instrumentation itself: home-service latencies,
    // acks per invalidate, and the sampler-fed occupancy histogram
    // collect identically at 1 and 4 lanes.
    auto trace = makeUniformRandomTrace(16, 800, 64, 0.4, 0.15, 53);
    hier::HierConfig config = baseConfig(true);
    config.histograms = true;
    obs::setSampleInterval(64);

    std::vector<std::string> reports;
    for (int shards : {1, 4}) {
        config.shards = shards;
        hier::HierSystem system(config);
        system.loadTrace(trace);
        system.run();
        auto *observability = system.observability();
        ASSERT_NE(observability, nullptr);
        auto *metrics = observability->metrics();
        ASSERT_NE(metrics, nullptr);
        EXPECT_GT(metrics->home_service.count(), 0u);
        EXPECT_GT(metrics->dir_occupancy.count(), 0u);
        std::ostringstream report;
        report << metrics->home_service.count() << ' '
               << metrics->home_service.mean() << ' '
               << metrics->acks_per_inval.count() << ' '
               << metrics->acks_per_inval.mean() << ' '
               << metrics->dir_occupancy.count() << ' '
               << metrics->dir_occupancy.mean();
        reports.push_back(report.str());
        // Hot-home skew reads are always-on and lane-invariant too.
        auto *fabric = system.directoryFabric();
        ASSERT_NE(fabric, nullptr);
        EXPECT_GE(fabric->maxHomeMessages(),
                  static_cast<std::uint64_t>(
                      fabric->meanHomeMessages()));
    }
    obs::setSampleInterval(0);
    EXPECT_EQ(reports[0], reports[1]);
}

} // namespace
} // namespace ddc
