/**
 * @file
 * The coherence-protocol policy interface.
 *
 * A Protocol is pure policy for a single cache line ("address line" in
 * the paper's terms): it maps (current line state, event) to (next line
 * state, actions).  The cache substrate executes the actions; the bus
 * serializes transactions.  Crucially, the product-machine model
 * checker in src/verify drives these same Protocol objects, so the
 * consistency proof of Section 4 is checked against the shipped
 * implementation rather than a re-transcription of the state diagram.
 *
 * Events a protocol sees:
 *  - a CPU access from its own PE (onCpuAccess);
 *  - completion of its own bus transaction (afterBusOp);
 *  - a snooped transaction issued by another cache (onSnoop);
 *  - being chosen to supply data for a killed bus read (afterSupply);
 *  - eviction (needsWriteback decides whether a write-back is due).
 *
 * The bus resolves conditional transactions before snoop delivery:
 * protocols never snoop BusOp::Rmw / ReadLock / WriteUnlock — they see
 * the effective BusOp::Read or BusOp::Write (plus BusOp::Invalidate for
 * the RWB scheme's BI signal).
 */

#ifndef DDC_CORE_PROTOCOL_HH
#define DDC_CORE_PROTOCOL_HH

#include <cstdint>
#include <string_view>

#include "base/types.hh"

namespace ddc {

/**
 * Coherence state of one cache line.
 *
 * @c streak counts consecutive writes by the owning PE with no
 * intervening bus-visible reference by another PE; only the RWB scheme
 * uses it (its First-write state generalized to the paper's footnote-6
 * "at least k uninterrupted writes" rule).
 */
struct LineState
{
    LineTag tag = LineTag::NotPresent;
    std::uint8_t streak = 0;

    bool operator==(const LineState &other) const = default;

    /** True when this line currently holds a copy of its address. */
    bool
    present() const
    {
        return tag != LineTag::NotPresent && tag != LineTag::Invalid;
    }
};

/** Render a LineState as e.g. "R" or "F1". */
std::string toString(const LineState &state);

/** Reaction of a protocol to a CPU access. */
struct CpuReaction
{
    /** True when the access needs a bus transaction to complete. */
    bool needs_bus = false;
    /** Which transaction to issue (valid when needs_bus). */
    BusOp bus_op = BusOp::Read;
    /** Next state when the access completes locally (hit). */
    LineState next{};
    /** Hit-write: store the CPU's data into the cached line. */
    bool update_value = false;
    /**
     * Install the line when the bus transaction completes.  The
     * Cm*-style baseline sets this false for shared data, which is
     * never cached (Table 1-1's emulation rule).
     */
    bool allocate = true;
};

/** Reaction of a protocol to a snooped bus transaction. */
struct SnoopReaction
{
    /** Next state of the snooping line. */
    LineState next{};
    /** Latch the transaction's data value into the line. */
    bool snarf = false;
    /**
     * Kill the transaction and supply this line's value via a bus
     * write (the Local-state intervention of the RB scheme).  Only
     * meaningful for snooped reads.
     */
    bool supply = false;
};

/**
 * Abstract decentralized cache-coherence scheme.
 *
 * Implementations are stateless policy objects (all per-line state
 * lives in LineState), so one Protocol instance serves every line of
 * every cache.
 */
class Protocol
{
  public:
    virtual ~Protocol() = default;

    /** Short scheme name, e.g. "RB". */
    virtual std::string_view name() const = 0;

    /**
     * True when the scheme latches the data portion of bus writes
     * (the defining difference between RWB and RB, Section 5).
     */
    virtual bool broadcastsWrites() const = 0;

    /**
     * React to a CPU access.
     *
     * @param state Current state of the addressed line (for the
     *              accessed address; NotPresent if another address
     *              occupies the line).
     * @param op The CPU operation.
     * @param cls Software data classification (transparent schemes
     *            ignore it; the Cm* baseline keys off it).
     */
    virtual CpuReaction onCpuAccess(LineState state, CpuOp op,
                                    DataClass cls) const = 0;

    /**
     * State after this cache's own bus transaction completed.
     *
     * @param state State when the transaction was issued.
     * @param op The transaction that completed.
     * @param rmw_success For BusOp::Rmw: whether the test succeeded
     *                    (write semantics) or failed (read semantics).
     */
    virtual LineState afterBusOp(LineState state, BusOp op,
                                 bool rmw_success) const = 0;

    /**
     * React to another cache's transaction for an address this line
     * holds.  @p op is the effective operation: Read, Write, or
     * Invalidate.
     */
    virtual SnoopReaction onSnoop(LineState state, BusOp op) const = 0;

    /**
     * State after this line killed a bus read and supplied its value
     * (always Readable in the paper's schemes: the supplied value now
     * matches memory).
     */
    virtual LineState afterSupply(LineState state) const = 0;

    /** Does eviction of a line in @p state require a bus write-back? */
    virtual bool needsWriteback(LineState state) const = 0;

    /**
     * May memory hold a stale value while a line is in @p state?  When
     * true, the cache flushes (bus-writes) the line before issuing an
     * Rmw or ReadLock for the same address, since those transactions
     * take their input from memory.
     */
    virtual bool
    memoryMayBeStale(LineState state) const
    {
        return needsWriteback(state);
    }
};

} // namespace ddc

#endif // DDC_CORE_PROTOCOL_HH
