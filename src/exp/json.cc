#include "exp/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>

#include "base/logging.hh"

namespace ddc {
namespace exp {

Json::Json(std::uint64_t value) : kind_(Kind::Int)
{
    ddc_assert(value <= static_cast<std::uint64_t>(
                            std::numeric_limits<std::int64_t>::max()),
               "counter value too large for JSON integer");
    int_ = static_cast<std::int64_t>(value);
}

bool
Json::asBool() const
{
    ddc_assert(kind_ == Kind::Bool, "JSON value is not a bool");
    return bool_;
}

std::int64_t
Json::asInt() const
{
    ddc_assert(kind_ == Kind::Int, "JSON value is not an integer");
    return int_;
}

double
Json::asDouble() const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    ddc_assert(kind_ == Kind::Double, "JSON value is not a number");
    return double_;
}

const std::string &
Json::asString() const
{
    ddc_assert(kind_ == Kind::String, "JSON value is not a string");
    return string_;
}

void
Json::push(Json value)
{
    ddc_assert(kind_ == Kind::Array, "JSON value is not an array");
    array_.push_back(std::move(value));
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    ddc_panic("JSON value has no size");
}

const Json &
Json::at(std::size_t index) const
{
    ddc_assert(kind_ == Kind::Array, "JSON value is not an array");
    ddc_assert(index < array_.size(), "JSON array index out of range");
    return array_[index];
}

Json &
Json::operator[](const std::string &key)
{
    ddc_assert(kind_ == Kind::Object, "JSON value is not an object");
    for (auto &[name, value] : object_) {
        if (name == key)
            return value;
    }
    object_.emplace_back(key, Json());
    return object_.back().second;
}

const Json *
Json::find(const std::string &key) const
{
    ddc_assert(kind_ == Kind::Object, "JSON value is not an object");
    for (const auto &[name, value] : object_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const std::vector<std::pair<std::string, Json>> &
Json::items() const
{
    ddc_assert(kind_ == Kind::Object, "JSON value is not an object");
    return object_;
}

namespace {

/** Escape and quote @p text as a JSON string literal. */
void
dumpString(std::ostream &os, const std::string &text)
{
    os << '"';
    for (unsigned char c : text) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (c < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                os << buffer;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

/** Shortest decimal representation of @p value that round-trips. */
std::string
dumpDouble(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buffer[64];
    for (int precision = 1; precision <= 17; precision++) {
        std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
        if (std::strtod(buffer, nullptr) == value)
            break;
    }
    // Keep the number a JSON double on re-parse (avoid "1" for 1.0).
    std::string text = buffer;
    if (text.find_first_of(".eEn") == std::string::npos)
        text += ".0";
    return text;
}

void
indentTo(std::ostream &os, int depth)
{
    for (int i = 0; i < depth * 2; i++)
        os << ' ';
}

} // namespace

void
Json::dumpTo(std::ostream &os, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::Int:
        os << int_;
        break;
      case Kind::Double:
        os << dumpDouble(double_);
        break;
      case Kind::String:
        dumpString(os, string_);
        break;
      case Kind::Array:
        if (array_.empty()) {
            os << "[]";
            break;
        }
        os << "[\n";
        for (std::size_t i = 0; i < array_.size(); i++) {
            indentTo(os, depth + 1);
            array_[i].dumpTo(os, depth + 1);
            os << (i + 1 < array_.size() ? ",\n" : "\n");
        }
        indentTo(os, depth);
        os << ']';
        break;
      case Kind::Object:
        if (object_.empty()) {
            os << "{}";
            break;
        }
        os << "{\n";
        for (std::size_t i = 0; i < object_.size(); i++) {
            indentTo(os, depth + 1);
            dumpString(os, object_[i].first);
            os << ": ";
            object_[i].second.dumpTo(os, depth + 1);
            os << (i + 1 < object_.size() ? ",\n" : "\n");
        }
        indentTo(os, depth);
        os << '}';
        break;
    }
}

void
Json::dump(std::ostream &os) const
{
    dumpTo(os, 0);
}

std::string
Json::dump() const
{
    std::ostringstream os;
    dump(os);
    return os.str();
}

namespace {

/** Recursive-descent JSON parser over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text(text) {}

    bool
    parseDocument(Json &out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        return pos == text.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            pos++;
        }
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            pos++;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text.substr(pos, word.size()) == word) {
            pos += word.size();
            return true;
        }
        return false;
    }

    bool
    parseValue(Json &out)
    {
        if (pos >= text.size())
            return false;
        switch (text[pos]) {
          case 'n':
            out = Json();
            return consumeWord("null");
          case 't':
            out = Json(true);
            return consumeWord("true");
          case 'f':
            out = Json(false);
            return consumeWord("false");
          case '"':
            return parseString(out);
          case '[':
            return parseArray(out);
          case '{':
            return parseObject(out);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseHex4(unsigned &out)
    {
        out = 0;
        for (int i = 0; i < 4; i++) {
            if (pos >= text.size())
                return false;
            char c = text[pos++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return false;
        }
        return true;
    }

    bool
    parseString(Json &out)
    {
        std::string result;
        if (!parseRawString(result))
            return false;
        out = Json(std::move(result));
        return true;
    }

    bool
    parseRawString(std::string &result)
    {
        if (!consume('"'))
            return false;
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                result += c;
                continue;
            }
            if (pos >= text.size())
                return false;
            char escape = text[pos++];
            switch (escape) {
              case '"': result += '"'; break;
              case '\\': result += '\\'; break;
              case '/': result += '/'; break;
              case 'b': result += '\b'; break;
              case 'f': result += '\f'; break;
              case 'n': result += '\n'; break;
              case 'r': result += '\r'; break;
              case 't': result += '\t'; break;
              case 'u': {
                unsigned code = 0;
                if (!parseHex4(code))
                    return false;
                // Encode the code point as UTF-8 (no surrogate pairs;
                // our emitter only writes \u for control characters).
                if (code < 0x80) {
                    result += static_cast<char>(code);
                } else if (code < 0x800) {
                    result += static_cast<char>(0xc0 | (code >> 6));
                    result += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    result += static_cast<char>(0xe0 | (code >> 12));
                    result +=
                        static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    result += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return false;
            }
        }
        return false;
    }

    bool
    parseNumber(Json &out)
    {
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            pos++;
        bool is_double = false;
        while (pos < text.size()) {
            char c = text[pos];
            if (c >= '0' && c <= '9') {
                pos++;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_double = is_double || c == '.' || c == 'e' || c == 'E';
                pos++;
            } else {
                break;
            }
        }
        if (pos == start)
            return false;
        std::string token(text.substr(start, pos - start));
        if (is_double) {
            out = Json(std::strtod(token.c_str(), nullptr));
        } else {
            out = Json(static_cast<std::int64_t>(
                std::strtoll(token.c_str(), nullptr, 10)));
        }
        return true;
    }

    bool
    parseArray(Json &out)
    {
        if (!consume('['))
            return false;
        out = Json::array();
        skipSpace();
        if (consume(']'))
            return true;
        while (true) {
            Json element;
            skipSpace();
            if (!parseValue(element))
                return false;
            out.push(std::move(element));
            skipSpace();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    parseObject(Json &out)
    {
        if (!consume('{'))
            return false;
        out = Json::object();
        skipSpace();
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            std::string key;
            if (!parseRawString(key))
                return false;
            skipSpace();
            if (!consume(':'))
                return false;
            skipSpace();
            Json value;
            if (!parseValue(value))
                return false;
            out[key] = std::move(value);
            skipSpace();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    std::string_view text;
    std::size_t pos = 0;
};

} // namespace

bool
Json::parse(std::string_view text, Json &out)
{
    out = Json();
    Parser parser(text);
    if (parser.parseDocument(out))
        return true;
    out = Json();
    return false;
}

} // namespace exp
} // namespace ddc
