/**
 * @file
 * Extension E1: the hierarchical machine (Section 8's "how to extend
 * our scheme to hierarchical structures more amiable to large scale
 * parallel processing", implemented as recursive RB in src/hier).
 *
 * We run the same clustered-sharing workload on (a) the flat
 * single-bus machine and (b) the hierarchical machine, sweeping the
 * fraction of references that are cluster-local.  The metric that
 * decides scalability is the traffic on the *bottleneck* bus: the one
 * bus of the flat machine vs the global bus of the hierarchy.  The
 * more locality, the more the cluster caches absorb, pushing the
 * saturation knee out — the paper's motivation for hierarchy.
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "hier/hier_system.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"
#include "verify/consistency.hh"

namespace {

using namespace ddc;

struct Point
{
    Cycle cycles;
    std::uint64_t bottleneck_bus_ops;
    std::uint64_t cluster_bus_ops; // hierarchy only
};

Point
runFlat(const Trace &trace)
{
    SystemConfig config;
    config.num_pes = trace.numPes();
    config.cache_lines = 256;
    config.protocol = ProtocolKind::Rb;
    System system(config);
    system.loadTrace(trace);
    system.run();
    return {system.now(), system.totalBusTransactions(), 0};
}

Point
runHier(const Trace &trace, int clusters, int pes_per_cluster,
        ProtocolKind protocol = ProtocolKind::Rb)
{
    hier::HierConfig config;
    config.num_clusters = clusters;
    config.pes_per_cluster = pes_per_cluster;
    config.cache_lines = 256;
    config.protocol = protocol;
    hier::HierSystem system(config);
    system.loadTrace(trace);
    system.run();
    return {system.now(), system.globalBusTransactions(),
            system.clusterBusTransactions()};
}

void
printReproduction()
{
    using stats::Table;

    const int clusters = 8;
    const int pes_per_cluster = 4;
    const std::size_t refs = 2000;

    std::cout <<
        "Extension E1: hierarchical machine (recursive RB), " << clusters
        << " clusters x " << pes_per_cluster << " PEs = "
        << clusters * pes_per_cluster << " PEs total\n"
        "Same workload on the flat single-bus machine vs the two-level\n"
        "hierarchy, sweeping the cluster-locality of shared data.\n\n";

    Table table;
    table.setHeader({"cluster-local", "flat cycles", "flat bus ops",
                     "hier cycles", "global bus ops", "cluster bus ops",
                     "global reduction"});
    for (double locality : {0.0, 0.5, 0.9, 0.99}) {
        auto trace = makeClusteredTrace(clusters, pes_per_cluster, refs,
                                        locality, 0.3, 77);
        auto flat = runFlat(trace);
        auto hierarchical = runHier(trace, clusters, pes_per_cluster);
        table.addRow(
            {Table::num(locality, 2), std::to_string(flat.cycles),
             std::to_string(flat.bottleneck_bus_ops),
             std::to_string(hierarchical.cycles),
             std::to_string(hierarchical.bottleneck_bus_ops),
             std::to_string(hierarchical.cluster_bus_ops),
             Table::num(static_cast<double>(flat.bottleneck_bus_ops) /
                            static_cast<double>(
                                hierarchical.bottleneck_bus_ops),
                        1) +
                 "x"});
    }
    std::cout << table.render();

    // The L1 scheme inside the clusters: RB vs RWB.
    Table schemes("\nL1 scheme within clusters (0.9 cluster-local "
                  "workload)");
    schemes.setHeader({"L1 scheme", "cycles", "global bus ops",
                       "cluster bus ops"});
    {
        auto trace = makeClusteredTrace(clusters, pes_per_cluster, refs,
                                        0.9, 0.3, 77);
        for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
            auto point = runHier(trace, clusters, pes_per_cluster,
                                 protocol);
            schemes.addRow({std::string(toString(protocol)),
                            std::to_string(point.cycles),
                            std::to_string(point.bottleneck_bus_ops),
                            std::to_string(point.cluster_bus_ops)});
        }
    }
    std::cout << schemes.render();
    std::cout <<
        "\nReading: the flat machine funnels every transaction through\n"
        "one bus; the hierarchy serializes only cross-cluster events\n"
        "globally.  As cluster locality grows, the global-bus demand\n"
        "collapses (the 'global reduction' column) and the hierarchy\n"
        "finishes sooner despite its extra level - the scaling path\n"
        "Section 8 asks for.  Consistency is checked by the same serial\n"
        "checker as the flat machine (tests/hier_test.cc).\n\n";
}

void
BM_HierVsFlat(benchmark::State &state)
{
    bool hierarchical = state.range(0) == 1;
    auto trace = makeClusteredTrace(8, 4, 1000, 0.9, 0.3, 77);
    for (auto _ : state) {
        if (hierarchical) {
            auto point = runHier(trace, 8, 4);
            benchmark::DoNotOptimize(point.cycles);
        } else {
            auto point = runFlat(trace);
            benchmark::DoNotOptimize(point.cycles);
        }
    }
    state.SetLabel(hierarchical ? "hierarchical" : "flat");
}
BENCHMARK(BM_HierVsFlat)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/** Simulated completion cycles, as counters. */
void
BM_HierSimulatedCycles(benchmark::State &state)
{
    auto locality = static_cast<double>(state.range(0)) / 100.0;
    auto trace = makeClusteredTrace(8, 4, 1000, locality, 0.3, 77);
    double flat_cycles = 0.0;
    double hier_cycles = 0.0;
    for (auto _ : state) {
        flat_cycles = static_cast<double>(runFlat(trace).cycles);
        hier_cycles = static_cast<double>(runHier(trace, 8, 4).cycles);
    }
    state.counters["flat_cycles"] = flat_cycles;
    state.counters["hier_cycles"] = hier_cycles;
}
BENCHMARK(BM_HierSimulatedCycles)->Arg(0)->Arg(90)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
