#include "sim/isa.hh"

#include "base/logging.hh"

namespace ddc {

std::string_view
toString(Opcode op)
{
    switch (op) {
      case Opcode::Nop:             return "Nop";
      case Opcode::Halt:            return "Halt";
      case Opcode::LoadImm:         return "LoadImm";
      case Opcode::Move:            return "Move";
      case Opcode::Load:            return "Load";
      case Opcode::Store:           return "Store";
      case Opcode::TestAndSet:      return "TestAndSet";
      case Opcode::LoadLocked:      return "LoadLocked";
      case Opcode::StoreUnlock:     return "StoreUnlock";
      case Opcode::Add:             return "Add";
      case Opcode::Sub:             return "Sub";
      case Opcode::AddImm:          return "AddImm";
      case Opcode::BranchIfZero:    return "BranchIfZero";
      case Opcode::BranchIfNotZero: return "BranchIfNotZero";
      case Opcode::Jump:            return "Jump";
    }
    return "?";
}

ProgramBuilder &
ProgramBuilder::emit(Instruction instruction)
{
    ddc_assert(instruction.dst >= 0 && instruction.dst < kNumRegs &&
               instruction.a >= 0 && instruction.a < kNumRegs &&
               instruction.b >= 0 && instruction.b < kNumRegs,
               "register index out of range");
    program.push_back(instruction);
    return *this;
}

ProgramBuilder &
ProgramBuilder::nop()
{
    return emit({Opcode::Nop, 0, 0, 0, 0, DataClass::Shared});
}

ProgramBuilder &
ProgramBuilder::halt()
{
    return emit({Opcode::Halt, 0, 0, 0, 0, DataClass::Shared});
}

ProgramBuilder &
ProgramBuilder::loadImm(int dst, std::int64_t imm)
{
    return emit({Opcode::LoadImm, dst, 0, 0, imm, DataClass::Shared});
}

ProgramBuilder &
ProgramBuilder::move(int dst, int a)
{
    return emit({Opcode::Move, dst, a, 0, 0, DataClass::Shared});
}

ProgramBuilder &
ProgramBuilder::load(int dst, int addr_reg, std::int64_t offset,
                     DataClass cls)
{
    return emit({Opcode::Load, dst, addr_reg, 0, offset, cls});
}

ProgramBuilder &
ProgramBuilder::store(int addr_reg, int src_reg, std::int64_t offset,
                      DataClass cls)
{
    return emit({Opcode::Store, 0, addr_reg, src_reg, offset, cls});
}

ProgramBuilder &
ProgramBuilder::testAndSet(int dst, int addr_reg, int set_reg,
                           std::int64_t offset)
{
    return emit({Opcode::TestAndSet, dst, addr_reg, set_reg, offset,
                 DataClass::Shared});
}

ProgramBuilder &
ProgramBuilder::loadLocked(int dst, int addr_reg, std::int64_t offset)
{
    return emit({Opcode::LoadLocked, dst, addr_reg, 0, offset,
                 DataClass::Shared});
}

ProgramBuilder &
ProgramBuilder::storeUnlock(int addr_reg, int src_reg, std::int64_t offset)
{
    return emit({Opcode::StoreUnlock, 0, addr_reg, src_reg, offset,
                 DataClass::Shared});
}

ProgramBuilder &
ProgramBuilder::add(int dst, int a, int b)
{
    return emit({Opcode::Add, dst, a, b, 0, DataClass::Shared});
}

ProgramBuilder &
ProgramBuilder::sub(int dst, int a, int b)
{
    return emit({Opcode::Sub, dst, a, b, 0, DataClass::Shared});
}

ProgramBuilder &
ProgramBuilder::addImm(int dst, int a, std::int64_t imm)
{
    return emit({Opcode::AddImm, dst, a, 0, imm, DataClass::Shared});
}

ProgramBuilder &
ProgramBuilder::label(const std::string &name)
{
    ddc_assert(labels.find(name) == labels.end(),
               "duplicate label: ", name);
    labels[name] = program.size();
    return *this;
}

ProgramBuilder &
ProgramBuilder::branchIfZero(int a, const std::string &target)
{
    fixups.emplace_back(program.size(), target);
    return emit({Opcode::BranchIfZero, 0, a, 0, 0, DataClass::Shared});
}

ProgramBuilder &
ProgramBuilder::branchIfNotZero(int a, const std::string &target)
{
    fixups.emplace_back(program.size(), target);
    return emit({Opcode::BranchIfNotZero, 0, a, 0, 0, DataClass::Shared});
}

ProgramBuilder &
ProgramBuilder::jump(const std::string &target)
{
    fixups.emplace_back(program.size(), target);
    return emit({Opcode::Jump, 0, 0, 0, 0, DataClass::Shared});
}

Program
ProgramBuilder::build()
{
    for (const auto &[index, name] : fixups) {
        auto it = labels.find(name);
        if (it == labels.end())
            ddc_fatal("undefined label: ", name);
        program[index].imm = static_cast<std::int64_t>(it->second);
    }
    fixups.clear();
    return program;
}

} // namespace ddc
