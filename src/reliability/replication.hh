/**
 * @file
 * Replication-based memory reliability (the paper's Section 8 future
 * work: "the exploitation of replicated values in the various caches
 * to improve the reliability of the memory", foreshadowed in Section
 * 5: "if the value of a variable is corrupted while in memory or in
 * some cache, there is a higher probability that some cache contains
 * a correct copy" under RWB).
 *
 * Two facilities:
 *  - measurement: how many independent correct copies of each live
 *    word exist right now (memory + caches), per scheme;
 *  - fault injection + recovery: corrupt a memory word (as a detected
 *    fault, e.g. a parity error) and repair it from a clean cache
 *    copy, or scrub a corrupted cache line by invalidating it so the
 *    next reference refetches.
 */

#ifndef DDC_RELIABILITY_REPLICATION_HH
#define DDC_RELIABILITY_REPLICATION_HH

#include <cstdint>
#include <vector>

#include "sim/system.hh"
#include "trace/rng.hh"

namespace ddc {
namespace reliability {

/** Replication census of a set of addresses on a live machine. */
struct ReplicationReport
{
    /** Addresses inspected. */
    std::size_t addresses = 0;
    /** Sum over addresses of correct-copy counts (memory included). */
    std::uint64_t total_copies = 0;
    /**
     * Addresses whose latest value survives a single-location fault:
     * at least two independent correct copies exist.
     */
    std::size_t redundant = 0;
    /** Addresses recoverable after a *memory* fault specifically. */
    std::size_t memory_fault_recoverable = 0;

    /** Mean correct copies per address. */
    double
    meanCopies() const
    {
        return addresses == 0
                   ? 0.0
                   : static_cast<double>(total_copies) /
                         static_cast<double>(addresses);
    }

    /** Fraction of addresses with >= 2 correct copies. */
    double
    redundantFraction() const
    {
        return addresses == 0
                   ? 0.0
                   : static_cast<double>(redundant) /
                         static_cast<double>(addresses);
    }

    /** Fraction recoverable after a memory-word fault. */
    double
    memoryFaultRecoverableFraction() const
    {
        return addresses == 0
                   ? 0.0
                   : static_cast<double>(memory_fault_recoverable) /
                         static_cast<double>(addresses);
    }
};

/**
 * Count the correct copies of each address in @p addrs.
 *
 * A copy is correct when it holds the machine's latest value of the
 * word (System::coherentValue).  Memory counts as a copy when no
 * dirty owner exists; every present cache line holding the latest
 * value counts as one.
 */
ReplicationReport measureReplication(const System &system,
                                     const std::vector<Addr> &addrs);

/**
 * Repair a detected memory fault at @p addr from cache replicas.
 *
 * Scans the caches for a clean copy holding the pre-fault value and
 * writes it back into memory.  (A dirty owner makes the memory value
 * irrelevant — the owner's copy *is* the datum — so that case also
 * reports success without touching memory.)
 *
 * @return true when the fault was repaired (or moot), false when the
 *         word's latest value existed only in the (now corrupt)
 *         memory.
 */
bool recoverMemoryWord(System &system, Addr addr);

/** Outcome of a randomized fault-injection campaign. */
struct FaultCampaignResult
{
    std::size_t faults_injected = 0;
    std::size_t recovered = 0;

    double
    recoveryRate() const
    {
        return faults_injected == 0
                   ? 0.0
                   : static_cast<double>(recovered) /
                         static_cast<double>(faults_injected);
    }
};

/**
 * Inject @p faults single-word memory corruptions at random live
 * addresses from @p addrs and attempt recovery from cache replicas.
 * Each fault is repaired (or declared lost) before the next one, so
 * faults are independent single-fault events.
 */
FaultCampaignResult runMemoryFaultCampaign(System &system,
                                           const std::vector<Addr> &addrs,
                                           std::size_t faults, Rng &rng);

} // namespace reliability
} // namespace ddc

#endif // DDC_RELIABILITY_REPLICATION_HH
