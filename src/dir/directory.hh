/**
 * @file
 * Per-home directory: one entry per block any cluster currently holds.
 *
 * Every cluster-cache entry for an address is created by that
 * cluster's own completion on the global fabric and erased only by a
 * delivered write/invalidate — both of which pass through the block's
 * home — so the directory's sharer sets track the set of holding
 * clusters *exactly*, not conservatively.  The owner field mirrors
 * the recursive-RB Local tag: the one cluster whose copy may be newer
 * than home memory (-1 when home memory is current).
 *
 * Memory is O(blocks with at least one holder) + O(sharers) per
 * entry; nothing here scales with the total cluster or PE count.
 *
 * Entries live in a FlatMap (base/flat_map.hh): every directory
 * lookup on the fabric's per-transaction path is a linear probe over
 * flat slots, not an unordered_map pointer chase.
 */

#ifndef DDC_DIR_DIRECTORY_HH
#define DDC_DIR_DIRECTORY_HH

#include "base/flat_map.hh"
#include "base/types.hh"
#include "dir/sharer_set.hh"

namespace ddc {
namespace dir {

/** Directory state of one block. */
struct DirEntry
{
    /** Cluster whose copy may be dirty (-1 = home memory current). */
    int owner = -1;
    /** Clusters holding an entry for the block (owner included). */
    SharerSet sharers;
};

/** Block-state map of one home node. */
class Directory
{
  public:
    /** Entry for @p addr, default-constructed on first touch. */
    DirEntry &ensure(Addr addr) { return entries.findOrInsert(addr); }

    /** Entry for @p addr, or null when no cluster holds it. */
    DirEntry *lookup(Addr addr) { return entries.lookup(addr); }

    const DirEntry *
    lookup(Addr addr) const
    {
        return entries.lookup(addr);
    }

    /** Blocks with directory state (the memory-bound denominator). */
    std::size_t blocks() const { return entries.size(); }

    /** Highest load factor the entry table ever reached. */
    double peakLoadFactor() const { return entries.peakLoadFactor(); }

  private:
    FlatMap<Addr, DirEntry> entries;
};

} // namespace dir
} // namespace ddc

#endif // DDC_DIR_DIRECTORY_HH
