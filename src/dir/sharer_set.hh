/**
 * @file
 * Compact sharer set for directory entries.
 *
 * The common case — a block shared by a handful of the first 64
 * clusters — costs one 64-bit bitmap word.  Clusters with ids past 63
 * (a 4096-PE machine at 32 PEs/cluster has 128 clusters) overflow
 * into a sorted vector, so membership stays exact at any scale and
 * iteration stays ascending (the delivery order every fabric walk
 * relies on for determinism).  Memory is O(sharers actually present),
 * never O(total clusters).
 */

#ifndef DDC_DIR_SHARER_SET_HH
#define DDC_DIR_SHARER_SET_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace ddc {
namespace dir {

/** Set of cluster ids sharing one block (bitmap + sorted overflow). */
class SharerSet
{
  public:
    /** Ids representable in the bitmap word. */
    static constexpr int kBitmapIds = 64;

    /** Insert @p id; returns true when it was not already present. */
    bool
    add(int id)
    {
        ddc_assert(id >= 0, "negative sharer id ", id);
        if (id < kBitmapIds) {
            std::uint64_t bit = std::uint64_t{1} << id;
            if (bitmap & bit)
                return false;
            bitmap |= bit;
            return true;
        }
        auto it = std::lower_bound(overflow.begin(), overflow.end(), id);
        if (it != overflow.end() && *it == id)
            return false;
        overflow.insert(it, id);
        return true;
    }

    /** Remove @p id; returns true when it was present. */
    bool
    remove(int id)
    {
        if (id < 0)
            return false;
        if (id < kBitmapIds) {
            std::uint64_t bit = std::uint64_t{1} << id;
            if (!(bitmap & bit))
                return false;
            bitmap &= ~bit;
            return true;
        }
        auto it = std::lower_bound(overflow.begin(), overflow.end(), id);
        if (it == overflow.end() || *it != id)
            return false;
        overflow.erase(it);
        return true;
    }

    bool
    contains(int id) const
    {
        if (id < 0)
            return false;
        if (id < kBitmapIds)
            return (bitmap & (std::uint64_t{1} << id)) != 0;
        return std::binary_search(overflow.begin(), overflow.end(), id);
    }

    std::size_t
    count() const
    {
        return static_cast<std::size_t>(std::popcount(bitmap)) +
               overflow.size();
    }

    bool empty() const { return bitmap == 0 && overflow.empty(); }

    /** Any sharer past the bitmap (id >= kBitmapIds)? */
    bool overflowed() const { return !overflow.empty(); }

    /** Visit every sharer in ascending id order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::uint64_t mask = bitmap; mask != 0; mask &= mask - 1)
            fn(std::countr_zero(mask));
        for (int id : overflow)
            fn(id);
    }

    void
    clear()
    {
        bitmap = 0;
        overflow.clear();
    }

  private:
    std::uint64_t bitmap = 0;
    /** Sorted ids >= kBitmapIds. */
    std::vector<int> overflow;
};

} // namespace dir
} // namespace ddc

#endif // DDC_DIR_SHARER_SET_HH
