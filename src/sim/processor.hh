/**
 * @file
 * A processing element executing a Program through its cache.
 *
 * One instruction per cycle; memory instructions stall the PE until
 * the cache completes them (Section 2, assumption 5 unifies the PE,
 * cache, and bus cycles).
 */

#ifndef DDC_SIM_PROCESSOR_HH
#define DDC_SIM_PROCESSOR_HH

#include "sim/agent.hh"
#include "sim/isa.hh"
#include "stats/counter.hh"

namespace ddc {

/** A PE interpreting the mini-ISA of sim/isa.hh. */
class Processor : public Agent
{
  public:
    /**
     * @param pe This PE's id.
     * @param caches The PE's cache banks.
     * @param program Code to run.
     * @param stats Counter set receiving pe.* statistics.
     */
    Processor(PeId pe, CacheSet caches, Program program,
              stats::CounterSet &stats);

    void tick() override;
    bool done() const override { return halted; }

    /**
     * A PE executing instructions is runnable every cycle (spin loops
     * are real work: they retire instructions and touch the cache);
     * only a PE stalled on an outstanding cache miss whose completion
     * has not yet arrived is event-free until the bus delivers it.
     */
    Cycle
    nextEventCycle(Cycle now) const override
    {
        return waiting && !caches.hasCompletion() ? kNever : now;
    }

    void skipCycles(Cycle count) override;

    /** Current register value. */
    Word reg(int index) const;

    /** Set a register (e.g. to pass arguments before running). */
    void setReg(int index, Word value);

    /** Instructions retired. */
    std::uint64_t instructionsRetired() const { return retired; }

    /** Cycles spent stalled on memory. */
    std::uint64_t stallCycles() const { return stalls; }

  private:
    /** Execute the instruction at pc (pc already validated). */
    void execute(const Instruction &instruction);

    /** Issue a memory access; stall when it does not complete. */
    void issueMemory(const Instruction &instruction, const MemRef &ref);

    PeId pe;
    CacheSet caches;
    Program program;
    stats::CounterSet &stats;
    /** Handles interned once at construction (per-cycle adds). */
    stats::CounterId statStallCycles, statInstructions;

    Word regs[kNumRegs] = {};
    std::size_t pc = 0;
    bool halted = false;
    bool waiting = false;
    /** Destination register of the stalled load-class instruction. */
    int waitingDst = -1;
    std::uint64_t retired = 0;
    std::uint64_t stalls = 0;
};

} // namespace ddc

#endif // DDC_SIM_PROCESSOR_HH
