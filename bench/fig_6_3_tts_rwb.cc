/**
 * @file
 * Figure 6-3 reproduction: Test-and-Test-and-Set under the RWB
 * scheme — the successful TS broadcasts its data, so the waiters'
 * caches are updated (R) rather than invalidated, and spins cost
 * nothing from the very first attempt.
 */

#include "bench_common.hh"

#include <iostream>
#include <sstream>

#include "sim/scenario.hh"
#include "stats/table.hh"
#include "sync/workload.hh"

namespace {

using namespace ddc;

constexpr Addr S = 0;

/** Run the Figure 6-3 scenario and render its table. */
exp::RunResult
measure()
{
    using stats::Table;
    std::ostringstream os;

    os <<
        "Figure 6-3: synchronization with Test-and-Test-and-Set,\n"
        "RWB scheme (three PEs, lock word S)\n\n";

    Scenario scenario(ProtocolKind::Rwb, 3);
    Table table;
    table.setHeader({"P1 Cache", "P2 Cache", "Pm Cache", "S",
                     "Observation"});

    auto emit = [&](const std::string &what) {
        std::vector<std::string> row;
        for (PeId pe = 0; pe < 3; pe++) {
            LineState line = scenario.state(pe, S);
            std::string cell{toString(line)};
            // Figure 6-3 prints F without its streak index.
            if (line.tag == LineTag::FirstWrite)
                cell = "F";
            cell += "(";
            cell += line.present() ? std::to_string(scenario.value(pe, S))
                                   : "-";
            cell += ")";
            row.push_back(cell);
        }
        row.push_back(std::to_string(scenario.memoryValue(S)));
        row.push_back(what);
        table.addRow(row);
    };

    for (PeId pe = 0; pe < 3; pe++)
        scenario.read(pe, S);
    emit("Initial state");

    scenario.read(1, S);
    scenario.testAndSet(1, S);
    emit("P2 locks S");

    // No invalidation happened: spins hit immediately, no refill read.
    auto before = scenario.busTransactions();
    for (int spin = 0; spin < 32; spin++) {
        scenario.read(0, S);
        scenario.read(2, S);
    }
    auto spin_traffic = scenario.busTransactions() - before;
    emit("Others try to get S (No Bus Traffic) (Load from Caches)");

    scenario.write(1, S, 0);
    emit("P2 releases S");

    scenario.read(0, S);
    emit("A Bus Read to S");

    scenario.testAndSet(0, S);
    emit("P1 gets the S");

    scenario.read(1, S);
    scenario.read(2, S);
    emit("Others try to get S");

    os << table.render() << "\n";
    os << "64 spin reads while the lock was held generated "
       << spin_traffic << " bus transactions.\n"
       << "vs Figure 6-2 (RB): the acquire itself causes no\n"
       << "invalidation (waiters go R(1), not I), so the waiters\n"
       << "never even pay the one refill read RB pays.\n\n";

    exp::RunResult result;
    result.rendered = os.str();
    result.bus_transactions = scenario.busTransactions();
    result.setMetric("spin_traffic",
                     static_cast<double>(spin_traffic));
    return result;
}

/**
 * Lock-latency distributions: Test-and-Set vs Test-and-Test-and-Set
 * on RWB, from the observability histograms (forced on for this
 * point, independent of --histograms).  Spinning cost shows up as
 * the lock_acquire tail: plain TS pays a bus RMW per spin, so its
 * p90/p99 inflate, while TTS spins in-cache.
 */
exp::RunResult
measureLockLatency()
{
    using stats::Table;
    std::ostringstream os;

    os <<
        "Lock-latency distributions (8 PEs, RWB, 16 acquisitions/PE):\n"
        "cycles per event, from the --histograms machinery\n\n";

    Table table;
    table.setHeader({"Lock", "Histogram", "n", "mean", "p50", "p90",
                     "p99", "max"});

    exp::RunResult result;
    exp::Json histograms = exp::Json::object();
    for (auto [kind, label] :
         {std::pair{sync::LockKind::TestAndSet, "TS"},
          std::pair{sync::LockKind::TestAndTestAndSet, "TTS"}}) {
        sync::LockExperimentConfig config;
        config.num_pes = 8;
        config.lock = kind;
        config.protocol = ProtocolKind::Rwb;
        config.acquisitions_per_pe = 16;
        config.cs_increments = 4;
        config.histograms = true;
        auto run = sync::runLockExperiment(config);

        auto row = [&](const char *name, const stats::Histogram &h) {
            std::ostringstream mean;
            mean << std::fixed;
            mean.precision(1);
            mean << h.mean();
            table.addRow({label, name, std::to_string(h.count()),
                          mean.str(),
                          std::to_string(h.percentile(0.50)),
                          std::to_string(h.percentile(0.90)),
                          std::to_string(h.percentile(0.99)),
                          std::to_string(h.max())});
        };
        row("lock_acquire", run.metrics.lock_acquire);
        row("lock_handoff", run.metrics.lock_handoff);
        row("miss_service", run.metrics.miss_service);

        histograms[label] = exp::histogramsJson(run.metrics);
        result.cycles += run.cycles;
        result.bus_transactions += run.bus_transactions;
        std::string prefix = std::string(label) + "_acquire_";
        result.setMetric(prefix + "p50", static_cast<double>(
                             run.metrics.lock_acquire.percentile(0.50)));
        result.setMetric(prefix + "p99", static_cast<double>(
                             run.metrics.lock_acquire.percentile(0.99)));
    }

    os << table.render() << "\n"
       << "TS spins issue bus RMWs, so every acquisition queues behind\n"
       << "the spinners and the acquire tail stretches; TTS waiters\n"
       << "spin on the cached copy and only go to the bus on release.\n\n";

    result.rendered = os.str();
    result.histograms = std::move(histograms);
    return result;
}

void
printReproduction(exp::Session &session)
{
    exp::Experiment spec("fig_6_3_tts_rwb",
                         "Figure 6-3: Test-and-Test-and-Set on RWB, "
                         "per-cache state table and spin bus traffic");
    spec.addCustom({{"lock", "TTS"}, {"scheme", "RWB"}}, measure);
    spec.addCustom({{"lock", "TS_vs_TTS"}, {"scheme", "RWB"},
                    {"figure", "lock_latency"}},
                   measureLockLatency);
    const auto &results = session.run(spec);
    std::cout << results[0].rendered;
    std::cout << results[1].rendered;
}

void
BM_TtsRwbLockContention(benchmark::State &state)
{
    auto num_pes = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sync::LockExperimentConfig config;
        config.num_pes = num_pes;
        config.lock = sync::LockKind::TestAndTestAndSet;
        config.protocol = ProtocolKind::Rwb;
        config.acquisitions_per_pe = 16;
        config.cs_increments = 4;
        auto result = sync::runLockExperiment(config);
        benchmark::DoNotOptimize(result.cycles);
    }
}
BENCHMARK(BM_TtsRwbLockContention)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/** RB vs RWB bus traffic per acquisition under TTS, side by side. */
void
BM_TtsRwbVsRbTraffic(benchmark::State &state)
{
    auto protocol = state.range(0) == 0 ? ProtocolKind::Rb
                                        : ProtocolKind::Rwb;
    double bus_per_acq = 0.0;
    for (auto _ : state) {
        sync::LockExperimentConfig config;
        config.num_pes = 8;
        config.lock = sync::LockKind::TestAndTestAndSet;
        config.protocol = protocol;
        config.acquisitions_per_pe = 16;
        auto result = sync::runLockExperiment(config);
        bus_per_acq = result.bus_per_acquisition;
    }
    state.counters["bus_per_acquisition"] = bus_per_acq;
    state.SetLabel(std::string(toString(protocol)));
}
BENCHMARK(BM_TtsRwbVsRbTraffic)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
