/** @file Unit tests for the bus arbitration policies. */

#include <gtest/gtest.h>

#include <map>

#include "sim/arbiter.hh"

namespace ddc {
namespace {

TEST(RoundRobin, RotatesThroughRequesters)
{
    auto arbiter = makeArbiter(ArbiterKind::RoundRobin);
    std::vector<int> all{0, 1, 2};
    EXPECT_EQ(arbiter->pick(all), 0);
    EXPECT_EQ(arbiter->pick(all), 1);
    EXPECT_EQ(arbiter->pick(all), 2);
    EXPECT_EQ(arbiter->pick(all), 0);
}

TEST(RoundRobin, SkipsNonRequesters)
{
    auto arbiter = makeArbiter(ArbiterKind::RoundRobin);
    EXPECT_EQ(arbiter->pick({0, 1, 2, 3}), 0);
    EXPECT_EQ(arbiter->pick({2, 3}), 2);
    EXPECT_EQ(arbiter->pick({0, 1}), 0); // wraps past 2
}

TEST(RoundRobin, SingleRequesterAlwaysWins)
{
    auto arbiter = makeArbiter(ArbiterKind::RoundRobin);
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(arbiter->pick({3}), 3);
}

TEST(RoundRobin, NoStarvationUnderFullLoad)
{
    auto arbiter = makeArbiter(ArbiterKind::RoundRobin);
    std::vector<int> all{0, 1, 2, 3, 4};
    std::map<int, int> grants;
    for (int i = 0; i < 100; i++)
        grants[arbiter->pick(all)]++;
    for (int client = 0; client < 5; client++)
        EXPECT_EQ(grants[client], 20);
}

TEST(FixedPriority, AlwaysPicksLowestIndex)
{
    auto arbiter = makeArbiter(ArbiterKind::FixedPriority);
    EXPECT_EQ(arbiter->pick({2, 5, 7}), 2);
    EXPECT_EQ(arbiter->pick({2, 5, 7}), 2);
    EXPECT_EQ(arbiter->pick({5, 7}), 5);
}

TEST(Random, PicksOnlyRequesters)
{
    auto arbiter = makeArbiter(ArbiterKind::Random, 42);
    std::vector<int> some{1, 4, 6};
    for (int i = 0; i < 200; i++) {
        int grant = arbiter->pick(some);
        EXPECT_TRUE(grant == 1 || grant == 4 || grant == 6);
    }
}

TEST(Random, DeterministicBySeed)
{
    auto a = makeArbiter(ArbiterKind::Random, 7);
    auto b = makeArbiter(ArbiterKind::Random, 7);
    std::vector<int> all{0, 1, 2, 3};
    for (int i = 0; i < 50; i++)
        EXPECT_EQ(a->pick(all), b->pick(all));
}

TEST(Random, RoughlyUniform)
{
    auto arbiter = makeArbiter(ArbiterKind::Random, 11);
    std::vector<int> all{0, 1};
    int zero = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; i++) {
        if (arbiter->pick(all) == 0)
            zero++;
    }
    EXPECT_NEAR(static_cast<double>(zero) / trials, 0.5, 0.03);
}

TEST(ArbiterNames, AllPrintable)
{
    EXPECT_EQ(toString(ArbiterKind::RoundRobin), "RoundRobin");
    EXPECT_EQ(toString(ArbiterKind::FixedPriority), "FixedPriority");
    EXPECT_EQ(toString(ArbiterKind::Random), "Random");
}

} // namespace
} // namespace ddc
