/**
 * @file
 * Golden-value regression tests for the hot-path rework.
 *
 * Every number here was captured from the build immediately before
 * the interned counter-handle and incremental done/idle-tracking
 * changes (same workloads, same seeds).  They pin two things at
 * once: the counter values visible through the name-keyed API
 * (get/sumPrefix/report must be unaffected by handle-based adds) and
 * the exact cycle counts (the event-driven idle/done tracking must
 * not change when any component runs).
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "hier/hier_system.hh"
#include "trace/synthetic.hh"
#include "verify/consistency.hh"

namespace ddc {
namespace {

TEST(Golden, CmStarRunMatchesPreRefactorBaseline)
{
    // ddcsim --workload cmstar_a --pes 4 --refs 2000 --seed 7 --check
    SystemConfig config;
    auto trace = makeCmStarTrace(cmStarApplicationA(), 4, 2000, 7);
    auto summary = runTrace(config, trace, true);

    EXPECT_TRUE(summary.completed);
    EXPECT_TRUE(summary.consistent);
    EXPECT_EQ(summary.cycles, 3358u);
    EXPECT_EQ(summary.total_refs, 8000u);
    EXPECT_EQ(summary.bus_transactions, 2792u);
    EXPECT_NEAR(summary.miss_ratio, 0.333, 1e-9);

    const auto &counters = summary.counters;
    EXPECT_EQ(counters.get("bus.busy_cycles"), 2792u);
    EXPECT_EQ(counters.get("bus.idle_cycles"), 566u);
    EXPECT_EQ(counters.get("bus.kill"), 17u);
    EXPECT_EQ(counters.get("bus.read"), 2202u);
    EXPECT_EQ(counters.get("bus.supply_write"), 17u);
    EXPECT_EQ(counters.get("bus.write"), 590u);
    EXPECT_EQ(counters.get("cache.invalidated"), 29u);
    EXPECT_EQ(counters.get("cache.read_hit.Code"), 3660u);
    EXPECT_EQ(counters.get("cache.read_hit.Local"), 1310u);
    EXPECT_EQ(counters.get("cache.read_hit.Shared"), 19u);
    EXPECT_EQ(counters.get("cache.read_miss.Code"), 1450u);
    EXPECT_EQ(counters.get("cache.read_miss.Local"), 467u);
    EXPECT_EQ(counters.get("cache.read_miss.Shared"), 285u);
    EXPECT_EQ(counters.get("cache.refs"), 8000u);
    EXPECT_EQ(counters.get("cache.snarf"), 6u);
    EXPECT_EQ(counters.get("cache.supply"), 17u);
    EXPECT_EQ(counters.get("cache.write_hit.Local"), 343u);
    EXPECT_EQ(counters.get("cache.write_hit.Shared"), 4u);
    EXPECT_EQ(counters.get("cache.write_miss.Local"), 363u);
    EXPECT_EQ(counters.get("cache.write_miss.Shared"), 99u);
    EXPECT_EQ(counters.get("cache.writeback"), 111u);
    EXPECT_EQ(counters.get("memory.read"), 2202u);
    EXPECT_EQ(counters.get("memory.write"), 590u);
    EXPECT_EQ(counters.get("pe.stall_cycles"), 4903u);

    // sumPrefix over the merged set still agrees with the dense
    // handle path the facade now uses for miss_ratio.
    EXPECT_EQ(counters.sumPrefix("cache.read_miss."), 2202u);
    EXPECT_EQ(counters.sumPrefix("cache.write_miss."), 462u);

    // Pre-interned handles that never fired (bus.nack, cache.flush,
    // cache.ts.*, ...) must not appear in names() or report().
    auto names = counters.names();
    EXPECT_EQ(names.size(), 24u);
    EXPECT_FALSE(counters.has("bus.nack"));
    EXPECT_EQ(counters.report().find("bus.nack"), std::string::npos);
    EXPECT_NE(counters.report().find("cache.refs = 8000"),
              std::string::npos);
}

TEST(Golden, HotSpotRwbRunMatchesPreRefactorBaseline)
{
    // ddcsim --workload hot_spot --pes 8 --refs 500 --seed 3
    //        --protocol RWB --check
    SystemConfig config;
    config.protocol = ProtocolKind::Rwb;
    auto trace = makeHotSpotTrace(8, 500 / 9 + 1, 8);
    auto summary = runTrace(config, trace, true);

    EXPECT_TRUE(summary.completed);
    EXPECT_TRUE(summary.consistent);
    EXPECT_EQ(summary.cycles, 568u);
    EXPECT_EQ(summary.total_refs, 4032u);
    EXPECT_EQ(summary.bus_transactions, 456u);
    EXPECT_NEAR(summary.miss_ratio, 456.0 / 4032.0, 1e-9);
}

TEST(Golden, HierarchicalRunMatchesPreRefactorBaseline)
{
    // ddcsim --workload producer_consumer --clusters 2 --pes 8
    //        --refs 400 --seed 9 --check
    hier::HierConfig config;
    config.num_clusters = 2;
    config.pes_per_cluster = 8;
    config.cache_lines = 1024;
    config.record_log = true;

    hier::HierSystem system(config);
    system.loadTrace(makeProducerConsumerTrace(16, 16, 400 / 64 + 1, 2));
    Cycle cycles = system.run();

    EXPECT_TRUE(system.allDone());
    EXPECT_FALSE(system.timedOut());
    EXPECT_EQ(cycles, 575u);
    EXPECT_EQ(system.globalBusTransactions(), 268u);
    EXPECT_EQ(system.clusterBusTransactions(), 708u);
    EXPECT_TRUE(checkSerialConsistency(system.log()).consistent);
}

} // namespace
} // namespace ddc
