/** @file Unit tests for MemRef traces and their serialization. */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/trace.hh"

namespace ddc {
namespace {

TEST(Trace, EmptyTrace)
{
    Trace trace(3);
    EXPECT_EQ(trace.numPes(), 3);
    EXPECT_EQ(trace.totalRefs(), 0u);
    EXPECT_TRUE(trace.stream(0).empty());
}

TEST(Trace, AppendAndRead)
{
    Trace trace(2);
    MemRef ref{CpuOp::Write, 0x10, 7, DataClass::Shared};
    trace.append(1, ref);
    EXPECT_EQ(trace.totalRefs(), 1u);
    ASSERT_EQ(trace.stream(1).size(), 1u);
    EXPECT_EQ(trace.stream(1)[0], ref);
    EXPECT_TRUE(trace.stream(0).empty());
}

TEST(Trace, RoundTripAllOpsAndClasses)
{
    Trace trace(2);
    trace.append(0, {CpuOp::Read, 1, 0, DataClass::Code});
    trace.append(0, {CpuOp::Write, 2, 5, DataClass::Local});
    trace.append(1, {CpuOp::TestAndSet, 3, 1, DataClass::Shared});
    trace.append(1, {CpuOp::ReadLock, 4, 0, DataClass::Shared});
    trace.append(1, {CpuOp::WriteUnlock, 4, 9, DataClass::Shared});

    std::stringstream buffer;
    trace.save(buffer);

    Trace loaded;
    ASSERT_TRUE(loaded.load(buffer));
    EXPECT_EQ(loaded, trace);
}

TEST(Trace, LoadRejectsBadMagic)
{
    std::stringstream buffer("wrongmagic 1 2\n");
    Trace trace;
    EXPECT_FALSE(trace.load(buffer));
}

TEST(Trace, LoadRejectsBadVersion)
{
    std::stringstream buffer("ddctrace 9 2\n");
    Trace trace;
    EXPECT_FALSE(trace.load(buffer));
}

TEST(Trace, LoadRejectsOutOfRangePe)
{
    std::stringstream buffer("ddctrace 1 2\n5 R 1 0 S\n");
    Trace trace;
    EXPECT_FALSE(trace.load(buffer));
    EXPECT_EQ(trace.numPes(), 0);
}

TEST(Trace, LoadRejectsUnknownOp)
{
    std::stringstream buffer("ddctrace 1 1\n0 Q 1 0 S\n");
    Trace trace;
    EXPECT_FALSE(trace.load(buffer));
}

TEST(Trace, LoadRejectsUnknownClass)
{
    std::stringstream buffer("ddctrace 1 1\n0 R 1 0 Z\n");
    Trace trace;
    EXPECT_FALSE(trace.load(buffer));
}

TEST(Trace, ToStringMentionsOpAndClass)
{
    MemRef ref{CpuOp::Read, 0xab, 0, DataClass::Local};
    auto text = toString(ref);
    EXPECT_NE(text.find("R"), std::string::npos);
    EXPECT_NE(text.find("ab"), std::string::npos);
    EXPECT_NE(text.find("Local"), std::string::npos);
}

TEST(Trace, LargeAddressesSurviveRoundTrip)
{
    Trace trace(1);
    trace.append(0, {CpuOp::Write, Addr{1} << 40, 123, DataClass::Shared});
    std::stringstream buffer;
    trace.save(buffer);
    Trace loaded;
    ASSERT_TRUE(loaded.load(buffer));
    EXPECT_EQ(loaded.stream(0)[0].addr, Addr{1} << 40);
}

} // namespace
} // namespace ddc
