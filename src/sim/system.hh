/**
 * @file
 * Full-machine wiring: N PEs, N (x buses) private caches, arbitrated
 * shared bus(es), interleaved memory banks, and a shared clock.
 *
 * With num_buses == 1 this is the paper's baseline machine; with
 * num_buses == k it is the Figure 7-1 multiple-shared-bus extension
 * (addresses interleaved across buses by their low-order bits, one
 * memory bank and one cache bank per bus per PE).
 */

#ifndef DDC_SIM_SYSTEM_HH
#define DDC_SIM_SYSTEM_HH

#include <memory>
#include <string_view>
#include <vector>

#include "base/types.hh"
#include "core/factory.hh"
#include "sim/agent.hh"
#include "sim/arbiter.hh"
#include "sim/bus.hh"
#include "sim/cache.hh"
#include "sim/clock.hh"
#include "sim/exec_log.hh"
#include "sim/isa.hh"
#include "sim/kernel.hh"
#include "sim/memory.hh"
#include "sim/processor.hh"
#include "sim/shard.hh"
#include "stats/counter.hh"
#include "trace/trace.hh"

namespace ddc {

/** Configuration of one simulated machine. */
struct SystemConfig
{
    int num_pes = 4;
    /** Lines per cache bank; capacity in words = lines * block_words. */
    std::size_t cache_lines = 1024;
    /** Words per cache block (the paper's assumption 7: 1). */
    std::size_t block_words = 1;
    /** Set associativity (the paper's assumption 7: 1, direct-mapped). */
    std::size_t ways = 1;
    /**
     * Extra bus-occupancy cycles per memory-touching transaction
     * (0 = the paper's unified bus/cache/PE cycle, assumption 5).
     */
    std::size_t memory_latency = 0;
    ProtocolKind protocol = ProtocolKind::Rb;
    /** RWB's writes-to-local threshold k (RWB only). */
    int rwb_writes_to_local = 2;
    /** Number of interleaved shared buses (Section 7). */
    int num_buses = 1;
    ArbiterKind arbiter = ArbiterKind::RoundRobin;
    /** Seed for the Random arbitration policy. */
    std::uint64_t arbiter_seed = 1;
    /** Record the serial execution log for consistency checking. */
    bool record_log = false;
    /**
     * Fast-forward run() across quiescent cycles (next-event time
     * advance).  Results are byte-identical either way; off is the
     * A/B-debugging baseline.  ANDed with the process-wide
     * setQuiescentSkipEnabled() switch (the --no-skip flag).
     */
    bool skip_quiescent = true;
    /**
     * Resolve bus broadcasts and supplier scans through each bus's
     * sharer index (O(holders) per transaction) instead of visiting
     * every attached cache (O(PEs)).  Results are byte-identical
     * either way; off is the A/B baseline.  ANDed with the
     * process-wide setSnoopFilterEnabled() switch (the
     * --no-snoop-filter flag).
     */
    bool snoop_filter = true;
    /**
     * Collect latency histograms (miss service, bus wait, retries,
     * lock acquisition, inter-write distance) for this System.  ORed
     * with the process-wide --histograms flag, so a bench can enable
     * them per-point without racing parallel workers on the process
     * switch.  All inputs are cycle counts: the recorded
     * distributions never perturb (and are never perturbed by)
     * simulation results.
     */
    bool histograms = false;
    /**
     * Snapshot selected counters every N cycles into a per-run time
     * series (0 = fall back to the process-wide --sample-every
     * interval, itself 0 = off).
     */
    Cycle sample_every = 0;
};

// The process-wide quiescent-skip switch and RunStatus live with the
// kernel (sim/kernel.hh) and are re-exported through this header for
// the many existing includers.

/** A complete simulated shared-bus multiprocessor. */
class System
{
  public:
    /** Default cycle budget for run(). */
    static constexpr Cycle kDefaultMaxCycles = 100'000'000;

    explicit System(const SystemConfig &config);

    /** Replace every agent with trace replay of @p trace. */
    void loadTrace(const Trace &trace);

    /** Install @p program on PE @p pe (creates a Processor agent). */
    void setProgram(PeId pe, Program program);

    /** The Processor on @p pe (fatal unless setProgram was used). */
    Processor &processor(PeId pe);

    /**
     * Advance one cycle: bus phase, then PE phase (drives the shared
     * kernel's tickOnce).
     */
    void tick();

    /**
     * Run until every agent is done (or @p max_cycles elapse).
     *
     * Hitting the budget is never silent: it logs a warning and is
     * reported by runStatus() / timedOut().
     * @return Number of cycles executed.
     */
    Cycle run(Cycle max_cycles = kDefaultMaxCycles);

    /** Outcome of the most recent run() (Finished before any run). */
    RunStatus runStatus() const { return run_status; }

    /** True when the most recent run() hit its cycle budget. */
    bool timedOut() const { return run_status == RunStatus::TimedOut; }

    /**
     * Cycles run() fast-forwarded instead of ticking (0 with skipping
     * disabled); included in the cycle counts run() returns.
     */
    Cycle skippedCycles() const { return kernel.skippedCycles(); }

    /** True when every agent has finished. */
    bool allDone() const;

    /** Current cycle. */
    Cycle now() const { return clock.now; }

    int numPes() const { return config.num_pes; }
    int numBuses() const { return config.num_buses; }
    const SystemConfig &configuration() const { return config; }
    const Protocol &protocol() const { return *proto; }

    /** Coherence state PE @p pe's cache holds for @p addr. */
    LineState lineState(PeId pe, Addr addr) const;

    /** Value PE @p pe's cache holds for @p addr (0 if absent). */
    Word cacheValue(PeId pe, Addr addr) const;

    /** Memory's current value of @p addr. */
    Word memoryValue(Addr addr) const;

    /**
     * The latest value of @p addr in the machine: the dirty owner's
     * cached copy when one exists (Local/Dirty), otherwise memory.
     */
    Word coherentValue(Addr addr) const;

    /**
     * Overwrite a memory word directly (fault injection / test hook;
     * bypasses the bus, coherence, and statistics).
     */
    void pokeMemory(Addr addr, Word value);

    /** The serial execution log (empty unless record_log). */
    const ExecutionLog &log() const { return execLog; }

    /** Merged counters from caches, buses, memory, and PEs. */
    stats::CounterSet counters() const;

    /** Counters of bus @p bus only (bus.* and memory.* of its bank). */
    const stats::CounterSet &busCounters(int bus) const;

    /** Shared cache/PE counter set. */
    const stats::CounterSet &
    cacheCounters() const
    {
        flushStalls();
        return cacheStats;
    }

    /** Total bus transactions across all buses. */
    std::uint64_t totalBusTransactions() const;

    /**
     * Broadcast visits plus supplier polls across all buses (see
     * Bus::snoopVisits); an A/B pair of runs with the snoop filter
     * on and off quantifies the avoided virtual calls.
     */
    std::uint64_t snoopVisits() const;

    /**
     * Times any bus degraded from sharer-indexed to full snooping
     * (see Bus::snoopFilterFallbacks); 0 on a healthy filtered run.
     */
    std::uint64_t snoopFilterFallbacks() const;

    /**
     * References that needed the bus at issue time (the miss_ratio
     * numerator): the sum of every cache.read_miss.* /
     * cache.write_miss.* / cache.ts.* / cache.readlock.* /
     * cache.writeunlock.* counter, read through handles cached at
     * construction instead of five prefix scans.
     */
    std::uint64_t missRefs() const;

    /**
     * This System's observability state (null when every obs feature
     * is off — the common case).  The trace file, when this System
     * claimed one, is written when the System is destroyed.
     */
    obs::Recorder *observability() const { return recorder.get(); }

  private:
    const Cache &cacheBank(PeId pe, Addr addr) const;
    CacheSet cacheSetFor(PeId pe);

    /** Flush accrued stall cycles before any counter read. */
    void flushStalls() const { kernel.flushStalls(); }

    SystemConfig config;
    Clock clock;
    /**
     * The shared run-loop driver.  The flat machine is inherently one
     * shard — every PE's CacheSet spans every bus — so the kernel
     * holds a single parallel shard and always runs one lane; the
     * loop, skip, and stall machinery is the same code the
     * hierarchical machine shards across threads.
     */
    Kernel kernel;
    /** The machine's single shard (owned by the kernel). */
    Shard *shard = nullptr;
    RunStatus run_status = RunStatus::Finished;
    ExecutionLog execLog;
    std::unique_ptr<Protocol> proto;

    stats::CounterSet cacheStats;
    std::vector<std::unique_ptr<stats::CounterSet>> busStats;
    std::vector<std::unique_ptr<Memory>> memories;
    std::vector<std::unique_ptr<Bus>> buses;
    /** caches[pe * num_buses + bus]. */
    std::vector<std::unique_ptr<Cache>> caches;
    std::vector<std::unique_ptr<Agent>> agents;

    /** Handles of the miss-class cache counters (see missRefs()). */
    std::vector<stats::CounterId> missStats;

    /** Observability state (null when everything is off). */
    std::unique_ptr<obs::Recorder> recorder;
};

} // namespace ddc

#endif // DDC_SIM_SYSTEM_HH
