/**
 * @file
 * Ablation A7: memory latency (assumption 5 relaxed).
 *
 * The paper unifies the bus, cache, and PE cycles ("The bus cycle
 * time is no faster than the cache cycle time").  Real main memories
 * are slower; this ablation holds every transaction on the bus for
 * extra memory-latency cycles and shows (a) the saturation knee of
 * Section 7 moving in proportionally (effective bus bandwidth is
 * 1/(1+L) transactions per cycle) and (b) cache hit rates mattering
 * more: the schemes that keep references out of the bus win by a
 * growing margin.
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

void
printReproduction()
{
    using stats::Table;

    std::cout <<
        "Ablation A7: memory latency (extra bus-occupancy cycles per\n"
        "memory-touching transaction; 0 = the paper's unified cycle)\n\n";

    // (a) Saturation knee vs latency: per-PE throughput on the
    // Cm*-mix workload.
    Table knee("(a) refs/cycle/PE on the Cm*-mix workload (RB)");
    knee.setHeader({"PEs", "L=0", "L=1", "L=3", "L=7"});
    for (int m : {1, 2, 4, 8, 16}) {
        std::vector<std::string> row{std::to_string(m)};
        auto trace = makeCmStarTrace(cmStarApplicationA(), m, 3000, 7);
        for (std::size_t latency : {0u, 1u, 3u, 7u}) {
            SystemConfig config;
            config.num_pes = m;
            config.cache_lines = 1024;
            config.protocol = ProtocolKind::Rb;
            config.memory_latency = latency;
            auto summary = runTrace(config, trace);
            row.push_back(Table::num(
                static_cast<double>(summary.total_refs) /
                    static_cast<double>(summary.cycles) / m, 3));
        }
        knee.addRow(row);
    }
    std::cout << knee.render() << "\n";

    // (b) Scheme comparison at high latency: producer/consumer.
    Table schemes("(b) cycles on producer/consumer (4 PEs), by scheme");
    schemes.setHeader({"scheme", "L=0", "L=7", "slowdown"});
    auto trace = makeProducerConsumerTrace(4, 16, 16, 2);
    for (auto kind : allProtocolKinds()) {
        Cycle base = 0;
        std::vector<std::string> row{std::string(toString(kind))};
        for (std::size_t latency : {0u, 7u}) {
            SystemConfig config;
            config.num_pes = 4;
            config.cache_lines = 256;
            config.protocol = kind;
            config.memory_latency = latency;
            auto summary = runTrace(config, trace);
            if (latency == 0)
                base = summary.cycles;
            row.push_back(std::to_string(summary.cycles));
            if (latency == 7) {
                row.push_back(Table::num(
                    static_cast<double>(summary.cycles) /
                        static_cast<double>(base), 2) + "x");
            }
        }
        schemes.addRow(row);
    }
    std::cout << schemes.render() << "\n";
    std::cout <<
        "Expected shape: (a) the knee moves from ~4 PEs at L=0 toward\n"
        "1-2 PEs at L=7 (the bus serves 1/(1+L) transactions/cycle);\n"
        "(b) slow memory amplifies every bus transaction, so the\n"
        "update-broadcasting RWB (fewest transactions) degrades least\n"
        "and the uncached CmStar baseline degrades most.\n\n";
}

void
BM_MemoryLatencySweep(benchmark::State &state)
{
    auto latency = static_cast<std::size_t>(state.range(0));
    auto trace = makeCmStarTrace(cmStarApplicationA(), 8, 2000, 7);
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = 8;
        config.cache_lines = 1024;
        config.protocol = ProtocolKind::Rb;
        config.memory_latency = latency;
        auto summary = runTrace(config, trace);
        benchmark::DoNotOptimize(summary.cycles);
    }
}
BENCHMARK(BM_MemoryLatencySweep)->Arg(0)->Arg(3)->Arg(7)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
