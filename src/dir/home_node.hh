/**
 * @file
 * One home node of the directory fabric: an address-interleaved slice
 * of global memory plus the directory for its blocks.
 *
 * A home node serves at most one cluster request per cycle, with the
 * same arbitration policy, the same memory/lock semantics, and the
 * same per-transaction call sequence as the snooping global Bus —
 * the only difference is *addressing*: instead of broadcasting to
 * every cluster and polling every potential supplier, the home sends
 * point-to-point messages to exactly the clusters its directory
 * records (owner forward on the kill/supply path; invalidate+ack or
 * update deliveries on the broadcast path).  Delivering only to
 * recorded sharers is exact, not approximate: a cluster without an
 * entry treats the snooped transaction as a no-op, and the directory
 * tracks entry-holding clusters exactly (see dir/directory.hh).
 *
 * With one home node the fabric is cycle-for-cycle, counter-for-
 * counter identical to the snooping global bus; with many, each home
 * grants independently each cycle, which is where the scaling comes
 * from.  Cost per transaction is O(sharers of the block), never
 * O(clusters).
 */

#ifndef DDC_DIR_HOME_NODE_HH
#define DDC_DIR_HOME_NODE_HH

#include <memory>
#include <vector>

#include "base/types.hh"
#include "dir/directory.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/arbiter.hh"
#include "sim/bus.hh"
#include "sim/clock.hh"
#include "sim/memory.hh"
#include "stats/counter.hh"

namespace ddc {
namespace dir {

/**
 * Observability context shared by every home node of one fabric
 * (dir-category trace, directory histograms, request-latency
 * tracking).  Homes tick on the serial shard, so all of it is
 * written single-threaded into shard 0's streams; each home holds a
 * pointer that is null when directory observability is off — the
 * disabled path stays one null test per site.
 */
struct HomeObs
{
    /** Dir-category trace buffer (null when not traced). */
    obs::TraceBuffer *trace = nullptr;
    /** Histogram lane for home_service / acks_per_inval (or null). */
    obs::RunMetrics *metrics = nullptr;
    const Clock *clock = nullptr;
    /**
     * Per-client cycle the pending request was first routed (kNever
     * = none); set by the fabric's routing pass, cleared by the home
     * at requestComplete — NACKs and kills keep the mark, because
     * the retry continues the same logical request.
     */
    std::vector<Cycle> *requestStart = nullptr;
};

/** One address-interleaved home: memory bank + directory + arbiter. */
class HomeNode
{
  public:
    /**
     * @param home_id This home's index on the fabric; offsets the
     *        arbiter seed so distinct homes draw distinct streams
     *        (home 0 uses @p arbiter_seed itself, matching the
     *        snooping global bus for the one-home equivalence mode).
     * @param stats Shared global counter set; every home interns the
     *        same bus.* / memory.* / dir.* names, so merged reports
     *        aggregate across homes exactly like a single bus.
     */
    HomeNode(int home_id, ArbiterKind arbiter_kind,
             std::uint64_t arbiter_seed, stats::CounterSet &stats);

    int id() const { return homeId; }

    /**
     * Attach the fabric's shared observability context (may be
     * null).  Serial-phase only; the home then emits message slices
     * on its "home @p homeId" track and samples the directory
     * histograms.
     */
    void setObserver(const HomeObs *context) { obsCtx = context; }

    /**
     * Point-to-point messages this home has handled (requests,
     * forwards, invalidates, acks, updates) — the hot-home skew
     * numerator, kept always-on next to the interned counters.
     */
    std::uint64_t messages() const { return msgCount; }

    /** Post client @p client's request into this cycle's inbox. */
    void post(int client) { inbox.push_back(client); }

    /** Whether nothing routed here this cycle (touched-home test). */
    bool inboxEmpty() const { return inbox.empty(); }

    /** Drop the (per-cycle) inbox; the fabric refills it each tick. */
    void clearInbox() { inbox.clear(); }

    /**
     * Serve one cycle: idle when the inbox is empty, else arbitrate
     * and execute one granted request end-to-end (exactly the
     * snooping bus's per-cycle transaction, addressed by directory
     * state instead of broadcast).  @p visits accrues one count per
     * point-to-point message, the directory-mode analogue of
     * Bus::snoopVisits.
     */
    void tick(const std::vector<BusClient *> &clients,
              std::uint64_t &visits);

    /** Account @p count grant-free cycles at once (skip support). */
    void countIdle(Cycle count);

    /** This home's slice of global memory. */
    Memory &memoryBank() { return memory; }
    const Memory &memoryBank() const { return memory; }

    Directory &directory() { return dir; }
    const Directory &directory() const { return dir; }

  private:
    /** Number of BusOp enumerators (op-indexed handle tables). */
    static constexpr std::size_t kNumBusOps = 6;

    void executeReadLike(int grant, const BusRequest &request,
                         const std::vector<BusClient *> &clients,
                         std::uint64_t &visits);
    void executeWriteLike(int grant, const BusRequest &request,
                          const std::vector<BusClient *> &clients,
                          std::uint64_t &visits);

    /**
     * Deliver a write-like transaction to every sharer except
     * @p keep, counting an invalidate and its ack per target; the
     * observers drop their entries, so the sharer set collapses to
     * @p keep (when it was a sharer) afterwards.
     */
    void deliverWriteLike(DirEntry &entry, const BusTransaction &txn,
                          int keep,
                          const std::vector<BusClient *> &clients,
                          std::uint64_t &visits);

    /**
     * Deliver a read/update transaction to every sharer except
     * @p skip (observers refresh their copies; membership is
     * unchanged).
     */
    void deliverRead(DirEntry *entry, const BusTransaction &txn,
                     int skip, const std::vector<BusClient *> &clients,
                     std::uint64_t &visits);

    /** Record @p client as a sharer (counts bitmap overflow). */
    void addSharer(DirEntry &entry, int client);

    void nack(int grant, const BusRequest &request,
              const std::vector<BusClient *> &clients);

    /** Emit an instant message event on this home's track. */
    void traceInstant(std::string_view name, Addr addr,
                      const char *detail = nullptr,
                      int target = -1);

    /**
     * Sample home_service for @p grant's completing request and
     * clear its routing mark (call right before requestComplete).
     */
    void noteComplete(int grant);

    int homeId;
    /** Shared fabric observability (null = directory obs off). */
    const HomeObs *obsCtx = nullptr;
    /** Messages handled by this home (see messages()). */
    std::uint64_t msgCount = 0;
    stats::CounterSet &stats;
    Memory memory;
    Directory dir;
    std::unique_ptr<Arbiter> arbiter;
    /** Clients whose pending request routed here this cycle. */
    std::vector<int> inbox;
    /** Scratch target list for write-like deliveries. */
    std::vector<int> targets;

    // The full bus.* counter family (interned so reports match the
    // snooping bus name-for-name) plus the dir.* message counters.
    stats::CounterId statBusy, statTransfer, statIdle, statKill,
        statSupplyWrite, statRmwSuccess, statRmwFail, statNack;
    stats::CounterId statOp[kNumBusOps];
    stats::CounterId statNackOp[kNumBusOps];
    stats::CounterId statMsgRequest, statMsgFwd, statMsgInval,
        statMsgAck, statMsgUpdate, statSharerOverflow;
};

} // namespace dir
} // namespace ddc

#endif // DDC_DIR_HOME_NODE_HH
