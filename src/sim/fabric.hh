/**
 * @file
 * Interconnect-neutral interfaces between the kernel, the clients,
 * and whatever fabric carries their coherence traffic.
 *
 * Tickable is what a Shard drives: anything with a per-cycle tick()
 * plus the two quiescent-skip hooks (nextEventCycle / skipCycles).
 * The snooping Bus and the directory fabric (src/dir) both implement
 * it, so the shard and kernel machinery is interconnect-agnostic.
 *
 * GlobalFabric is what a global-level client (the hierarchical
 * machine's ClusterCache) attaches to: a request slot it can arm and
 * disarm, on either the snooping global Bus or the home-node
 * directory fabric.  Arming crosses shard threads (per-client slots
 * plus a relaxed atomic count — see Bus::setRequestArmed), so the
 * interface carries the same contract for every implementation.
 */

#ifndef DDC_SIM_FABRIC_HH
#define DDC_SIM_FABRIC_HH

#include <cstddef>

#include "base/types.hh"

namespace ddc {

class BusClient;

/** Anything a Shard ticks once per cycle (bus or directory fabric). */
class Tickable
{
  public:
    virtual ~Tickable() = default;

    /** Advance one cycle. */
    virtual void tick() = 0;

    /**
     * Earliest cycle at which this component can next change state
     * (@p now when runnable this cycle, kNever when fully blocked).
     * Side-effect free; see Bus::nextEventCycle for the contract.
     */
    virtual Cycle nextEventCycle(Cycle now) const = 0;

    /**
     * Account for @p count quiescent cycles at once, exactly as
     * @p count consecutive tick() calls would have.  The caller
     * guarantees no grant opportunity is skipped over.
     */
    virtual void skipCycles(Cycle count) = 0;
};

/** The global interconnect as seen by an attaching client. */
class GlobalFabric
{
  public:
    virtual ~GlobalFabric() = default;

    /** Attach a client; returns its client index on this fabric. */
    virtual int attach(BusClient *client) = 0;

    /**
     * Arm/disarm client @p client's request slot (the one cross-shard
     * edge of a parallel run; see Bus::setRequestArmed).  Disarming is
     * strictly a promise that hasRequest() would return false until
     * the client re-arms.
     */
    virtual void setRequestArmed(int client, bool is_armed) = 0;

    /** Words per block on this fabric. */
    virtual std::size_t blockWords() const = 0;
};

} // namespace ddc

#endif // DDC_SIM_FABRIC_HH
