/**
 * @file
 * A private per-PE cache: direct-mapped, with the paper's one-word
 * blocks by default (Section 2, assumption 7) and optional multi-word
 * blocks for the assumption-7 ablation.
 *
 * The cache owns tag/state/value storage and *executes* whatever the
 * configured Protocol decides.  A CPU access either completes locally
 * in the same cycle (hit) or becomes the cache's single pending bus
 * operation, which may take up to three sequential bus transactions:
 *
 *   Writeback  - evict a dirty victim occupying the target line,
 *   Fill       - fetch the target block before a write-class
 *                transaction, when blocks are multi-word and the
 *                block is not resident (write-allocate needs the
 *                block's other words),
 *   Flush      - write back the target word/block itself before an
 *                RMW-class transaction that takes its input from
 *                memory,
 *   Main       - the protocol-chosen transaction for the access.
 *
 * Preconditions of the earlier phases can be erased (or re-created)
 * by snooped transactions, so the whole plan is lazily re-validated
 * each time the bus polls hasRequest(); a pending read whose line was
 * refilled by a snooped broadcast completes without ever using the
 * bus — the RWB scheme's "data can be fetched from any cache".
 */

#ifndef DDC_SIM_CACHE_HH
#define DDC_SIM_CACHE_HH

#include <vector>

#include "base/types.hh"
#include "core/protocol.hh"
#include "sim/bus.hh"
#include "sim/clock.hh"
#include "sim/exec_log.hh"
#include "stats/counter.hh"
#include "trace/trace.hh"

namespace ddc {

/** One direct-mapped private cache (or one bank of a multi-bus set). */
class Cache : public BusClient
{
  public:
    /** Outcome of a CPU access. */
    struct AccessResult
    {
        bool complete = false;
        Word value = 0;
        bool ts_success = false;
    };

    /**
     * @param pe Owning PE.
     * @param num_lines Number of lines (> 0); capacity in words is
     *        num_lines * block_words.
     * @param protocol Coherence policy (shared, not owned).
     * @param clock Cycle counter to stamp observability output (and
     *        execution-log entries) from; pass the owning shard's
     *        localClock() — see Bus for why the machine clock is not
     *        safe inside a lookahead window.
     * @param stats Counter set receiving cache.* statistics.
     * @param log Optional serial execution log for consistency checks.
     * @param block_words Words per block (paper default: 1).
     * @param ways Set associativity (paper default: 1, direct-mapped);
     *        must divide num_lines.  Replacement within a set is LRU.
     */
    Cache(PeId pe, std::size_t num_lines, const Protocol &protocol,
          const Clock &clock, stats::CounterSet &stats,
          ExecutionLog *log = nullptr, std::size_t block_words = 1,
          std::size_t ways = 1);

    /** Attach to @p bus (must be called exactly once before use). */
    void connectBus(Bus &bus);

    /**
     * Attach observability (state-transition instants, miss-service
     * spans, latency histograms).  @p recorder may be null; the
     * cached per-category pointers keep the disabled path at one
     * null test per emission site.  @p shard is the machine shard
     * this cache ticks on: the cache writes that shard's private
     * trace buffer, histogram lane, and lock log, so parallel lanes
     * never share a stream.
     */
    void setObserver(obs::Recorder *recorder, std::size_t shard = 0);

    /**
     * Add this cache's per-tag line population into @p counts
     * (indexed by LineTag; at least kNumTags entries) — the
     * state-population census column set of the counter sampler.
     */
    void addTagCensus(std::uint64_t *counts) const;

    /**
     * Issue a CPU access.  Returns complete=true for hits; otherwise
     * the access is pending (at most one at a time) and the caller
     * polls takeCompletion() on subsequent cycles.
     */
    AccessResult cpuAccess(const MemRef &ref);

    /** True while an access is outstanding. */
    bool busy() const { return pending.active; }

    /**
     * Monotonic id of the most recent cpuAccess.  A component that
     * completes this cache's request out-of-band (the hierarchical
     * cluster cache) records it to detect abandoned operations.
     */
    std::uint64_t accessId() const { return accessCounter; }

    /** True when a previously pending access has completed. */
    bool hasCompletion() const { return completionReady; }

    /**
     * Register a flag raised whenever an outstanding access completes
     * (every completionReady transition).  The System points this at
     * the owning agent's wake slot so an agent stalled on a miss
     * needs no per-cycle completion polling (see
     * Agent::stalledOnCompletion).
     */
    void setWakeFlag(char *flag) { wakeFlag = flag; }

    /** Retrieve (and consume) the completed access's result. */
    AccessResult takeCompletion();

    /** Coherence state this cache holds for @p addr's block. */
    LineState lineState(Addr addr) const;

    /** Cached value for @p addr (0 when not present). */
    Word lineValue(Addr addr) const;

    /** Number of lines. */
    std::size_t numLines() const { return lines.size(); }

    /** Words per block. */
    std::size_t blockWords() const { return blockSize; }

    /** Set associativity. */
    std::size_t numWays() const { return ways; }

    // BusClient interface.
    bool hasRequest() override;
    BusRequest currentRequest() override;
    void requestComplete(const BusResult &result) override;
    bool wouldSupply(Addr addr, Word &value) override;
    std::vector<Word> supplyBlock(Addr addr) override;
    void observe(const BusTransaction &txn) override;
    void supplied(Addr addr) override;
    void requestNacked() override;
    void requestKilled() override;
    PeId peId() const override { return pe; }

    /** Number of LineTag enumerators (snoop memo / census tables). */
    static constexpr std::size_t kNumTags = 8;

  private:
    /** Storage for one line (one block). */
    struct Line
    {
        /** Block base address (valid when state is not NotPresent). */
        Addr base = 0;
        std::vector<Word> data;
        LineState state{};
        /** LRU stamp (updated on CPU use and install). */
        std::uint64_t last_use = 0;
        /**
         * Issue cycle of the last CPU write to this block (kNever =
         * none yet).  Maintained only while histograms are enabled;
         * feeds the inter-write-distance histogram behind RWB's
         * k-consecutive-writes rule.
         */
        Cycle last_write = kNever;
    };

    /** Phases of a pending access. */
    enum class Phase { Writeback, Fill, Flush, Main };

    /**
     * The (single) outstanding access.
     *
     * Arming invariant (the skip engine's lifeline): the cache arms
     * itself on its bus exactly for the lifetime of a pending access
     * — setArmed(true) at activation in cpuAccess(), cleared only by
     * finish(), which also raises completionReady.  NACK retries and
     * phase/reaction changes never disarm, so an agent stalled on
     * this access is always visible to System::earliestNextEvent()
     * through the bus's armed count (or through hasCompletion() once
     * the access finished), and a quiescent interval can never hide a
     * retry the baseline would have issued.
     */
    struct PendingOp
    {
        bool active = false;
        MemRef ref{};
        CpuReaction reaction{};
        Phase phase = Phase::Main;
        /** Line index reserved for this access (stable across phases). */
        std::size_t way_index = 0;
        /**
         * True when a snoop may have changed the stored reaction or
         * phase.  The re-derivation is pure in the line array, so
         * hasRequest() only re-runs it after a line actually mutated
         * (observe / supplied / requestComplete) instead of on every
         * poll of every cycle.
         */
        bool stale = false;
        /** Cycle cpuAccess() issued this access (observability). */
        Cycle issue_cycle = 0;
        /** Start of the current bus wait (reset per transaction). */
        Cycle phase_start = 0;
        /** NACK + kill restarts absorbed so far (observability). */
        std::uint64_t retries = 0;
    };

    Addr blockBase(Addr addr) const;

    /** First line index of @p addr's set. */
    std::size_t setBase(Addr addr) const;

    /** The way of @p addr's set holding its tag, or nullptr. */
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;

    /**
     * The line a (re)fill of @p addr will use: the tag-matching way
     * when one exists (even Invalid, so a set never holds duplicate
     * tags), else an empty way, else the LRU way.
     */
    Line &victimLine(Addr addr);

    /** The line reserved for the pending access. */
    Line &pendingLine();
    const Line &pendingLine() const;

    /**
     * Assign @p next to @p line's state, maintaining supplierLines
     * and the bus's sharer index (a NotPresent boundary crossing is a
     * presence change for line.base, which must already hold the
     * line's block).  Every state change must go through here.
     */
    void setLineState(Line &line, LineState next);

    /**
     * Retarget @p line to block @p base, moving its sharer-index
     * entry when the line is present under a different base (clean
     * retag of a victim that needed no write-back).  Every base
     * assignment must go through here.
     */
    void setLineBase(Line &line, Addr base);

    /**
     * Protocol::onSnoop via the constructor-built memo table.
     * Protocols are stateless policy objects, so the reaction for a
     * streak-free state is a constant per (tag, op); states carrying
     * a write streak (RWB FirstWrite) fall back to the virtual call.
     */
    SnoopReaction snoopReaction(LineState state, BusOp op) const;

    /** Protocol::onCpuAccess via the same kind of memo table. */
    CpuReaction cpuReaction(LineState state, CpuOp op,
                            DataClass cls) const;

    /** True when @p line holds the block containing @p addr. */
    bool holdsBlock(const Line &line, Addr addr) const;

    /** State of @p line as seen for @p addr (NotPresent on tag miss). */
    LineState stateFor(const Line &line, Addr addr) const;

    /** Choose the next phase for the current pending reaction. */
    Phase computePhase() const;

    /**
     * Re-derive the reaction and phase from the current line state;
     * completes the access locally if a snooped broadcast already
     * satisfied it.
     */
    void revalidatePending();

    /** Finish the pending access with @p result and log the commit. */
    void finish(const AccessResult &result);

    /** Record the commit of @p ref in the serial execution log. */
    void logCommit(const MemRef &ref, const AccessResult &result);

    /** Tell the bus whether this cache needs polling (fast path). */
    void setArmed(bool is_armed);

    /** Emit a tag-transition instant (stateTrace known non-null). */
    void traceStateChange(LineTag from, LineTag to, Addr base);

    /** Number of CpuOp / DataClass enumerators (handle table). */
    static constexpr std::size_t kNumCpuOps = 5;
    static constexpr std::size_t kNumClasses = 3;
    /**
     * Snooped bus ops are the contiguous enum prefix Read, Write,
     * Invalidate (the bus resolves Rmw / ReadLock / WriteUnlock to an
     * effective Read or Write before broadcast).
     */
    static constexpr std::size_t kNumSnoopOps = 3;

    PeId pe;
    const Protocol &protocol;
    const Clock &clock;
    stats::CounterSet &stats;
    ExecutionLog *log;
    std::size_t blockSize;
    std::size_t ways;
    /**
     * Power-of-two geometry (block size and set count) lets the
     * per-snoop address mapping use shifts and masks; odd geometries
     * keep the division path.  Every broadcast runs the mapping once
     * per attached cache, so this is the snoop fast path.
     */
    bool pow2Geometry = false;
    std::size_t blockShift = 0;
    std::size_t setMask = 0;
    /**
     * Number of lines whose state would supply a snooped read
     * (protocol ownership, e.g. RB/RWB Local).  The bus polls
     * wouldSupply() on every attached cache for every read-class
     * transaction; a zero count answers without touching the line
     * array.
     */
    std::size_t supplierLines = 0;
    std::uint64_t lruClock = 0;
    Bus *bus = nullptr;
    /** This cache's client index on the attached bus. */
    int clientIndex = -1;
    /**
     * True when this cache registered as sharer-indexed on its bus
     * (the bus's snoop filter is active), and so must report every
     * presence / base change through noteBlockPresent / Absent.
     */
    bool busIndexed = false;

    // Handles interned once at construction; per-reference statistics
    // are plain array increments.
    stats::CounterId statRefs, statWriteback, statFlush, statFill,
        statSnarf, statSnarfSuppressed, statInvalidated, statSupply,
        statBroadcastFill;
    /**
     * Per-reference cache.<op>[_<hit|miss>].<class> handles, indexed
     * [op][miss][class]; ops without a hit/miss split (TS, readlock,
     * writeunlock) hold the same handle in both miss slots.
     */
    stats::CounterId refStat[kNumCpuOps][2][kNumClasses];

    /** Snoop reactions for streak-free states, filled lazily. */
    mutable SnoopReaction snoopMemo[kNumTags][kNumSnoopOps];
    mutable bool snoopMemoValid[kNumTags][kNumSnoopOps] = {};
    /** CPU reactions for streak-free states, filled lazily. */
    mutable CpuReaction cpuMemo[kNumTags][kNumCpuOps][kNumClasses];
    mutable bool cpuMemoValid[kNumTags][kNumCpuOps][kNumClasses] = {};

    /** State-category trace buffer (null when not traced). */
    obs::TraceBuffer *stateTrace = nullptr;
    /** Miss-category trace buffer (null when not traced). */
    obs::TraceBuffer *missTrace = nullptr;
    /** This shard's histogram lane (null when --histograms is off). */
    obs::RunMetrics *metrics = nullptr;
    /**
     * This shard's lock log (null unless lock events are wanted).
     * Releases are reported here, at the program-store level: under
     * write-back schemes the releasing store can complete in-cache
     * (line Local) and never reach the bus, so the bus cannot see it.
     */
    obs::LockLog *lockRec = nullptr;
    /**
     * Cause label for the next traced state transition, set at each
     * entry point (cpu / snoop / fill / supply / ...) only while
     * stateTrace is non-null.  Static-storage strings only.
     */
    const char *stateCause = nullptr;

    std::vector<Line> lines;
    PendingOp pending;
    std::uint64_t accessCounter = 0;
    bool completionReady = false;
    /** Raised on completion for the owning agent (see setWakeFlag). */
    char *wakeFlag = nullptr;
    AccessResult completion{};
};

} // namespace ddc

#endif // DDC_SIM_CACHE_HH
