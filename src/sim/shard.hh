/**
 * @file
 * One shard of a simulated machine: the buses and agents that tick
 * together on one host thread.
 *
 * A shard is the kernel's unit of parallel work (see DESIGN.md, "The
 * kernel and shard contract").  On the flat machine the whole system
 * is one shard; on the hierarchical machine the global bus forms the
 * serial shard and each cluster (cluster bus + its L1 caches + its
 * PEs) is one parallel shard.  Within a cycle a shard's tick touches
 * only shard-local state — the single cross-shard exception is arming
 * a request slot on the global bus, which is per-client storage plus
 * an atomic count and therefore both race-free and order-insensitive.
 *
 * The shard owns the stall-skip machinery extracted from the old
 * System::tick: an agent whose tick reported stalledOnCompletion() is
 * skipped (one accrued stall cycle per skipped tick, flushed in bulk)
 * until its cache raises the per-slot wake flag.
 */

#ifndef DDC_SIM_SHARD_HH
#define DDC_SIM_SHARD_HH

#include <cstddef>
#include <vector>

#include "sim/agent.hh"
#include "sim/clock.hh"
#include "sim/fabric.hh"
#include "trace/rng.hh"

namespace ddc {

/** The buses and agents one host thread ticks as a unit. */
class Shard
{
  public:
    /**
     * @param id Kernel-assigned shard id (creation order); fixes the
     *        cross-shard event ordering key (cycle, shard id, agent
     *        slot) and seeds the shard's random stream.
     * @param seed Machine seed; the shard's stream is seed ^ id.
     * @param agent_slots Number of agent slots (fixed up front so
     *        wake-flag pointers handed to caches stay stable).
     */
    Shard(int id, std::uint64_t seed, std::size_t agent_slots);

    int id() const { return shardId; }

    /**
     * This shard's counter-based random stream.  Any stochastic
     * behaviour a shard-resident component introduces must draw from
     * here (or from its own fixed-seed Rng): draw i is a pure
     * function of (machine seed ^ shard id, i), so shard count and
     * host-thread interleaving can never perturb the values drawn.
     */
    StreamRng &rng() { return stream; }

    /**
     * Shard-local cycle counter: the cycle this shard is currently
     * ticking, kept in sync by the kernel (the machine clock in the
     * sequential path, the window-local cycle inside a lookahead
     * window, where the shared clock is frozen at the window base).
     * Shard-resident components must stamp observability output —
     * trace events, lock-log entries, latency histogram samples —
     * from here, never from the machine clock, so the bytes they
     * record are identical at every lane count.  Stable for the
     * shard's lifetime; hand it to components at construction.
     */
    const Clock &localClock() const { return local; }

    /** Kernel only: set the cycle the next tick()/skipCycles is at. */
    void syncLocalTime(Cycle now) { local.now = now; }

    /**
     * Attach a component ticked (and skipped) by this shard before
     * its agents, in attach order — a snooping Bus or the directory
     * fabric; anything Tickable.
     */
    void addComponent(Tickable *component);

    /**
     * Wake flag of agent slot @p slot, for Cache::setWakeFlag (stable
     * for the shard's lifetime).
     */
    char *wakeFlag(std::size_t slot);

    /** Install (or replace) the agent in @p slot; then rebuild(). */
    void setAgent(std::size_t slot, Agent *agent);

    /**
     * Recompute the not-yet-done agent list after (re)installs and
     * reset the stall/wake machinery (accrued stalls are flushed
     * first so no owed cycles are dropped).
     */
    void rebuild();

    /**
     * Advance one cycle: buses in attach order, then the still-running
     * agents in slot order.  Agents that finished are dropped;
     * compaction is stable so the tick (and execution-log commit)
     * order never changes.  An agent stalled on a miss is skipped
     * without even the virtual call until its cache raises the wake
     * flag; each skipped tick would only have accrued one stall
     * cycle, added in bulk at wake (or by flushStalls()).
     */
    void tick();

    /** True when every installed agent has finished. */
    bool done() const { return active.empty(); }

    /**
     * Earliest cycle at which any of this shard's buses or active
     * agents can change state: @p now when some component is runnable
     * this cycle, a future cycle during a quiescent interval, kNever
     * when every component is blocked.  Side-effect free.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Fast-forward @p count quiescent cycles (bulk bookkeeping). */
    void skipCycles(Cycle count);

    /**
     * Earliest cycle at which this shard could next make state outside
     * the shard visible, i.e. arm a request slot on the global
     * interconnect (the lookahead contract, see DESIGN.md).  A
     * component (bus) arms during its own tick, so it contributes its
     * nextEventCycle directly; agents post only shard-locally, so an
     * agent acting at cycle c first reaches the global edge at c + 1,
     * through its cluster bus's next tick — the cluster-cache
     * global-serialization latency the conservative lookahead window
     * leans on.  Side-effect free; kNever when nothing in the shard
     * can ever emit.
     */
    Cycle earliestGlobalEmission(Cycle now) const;

    /**
     * Lower bound on the cycle whose tick could first finish the last
     * of this shard's still-running agents (@p now when none could
     * constrain, including an already-done shard).  Side-effect free.
     */
    Cycle earliestDoneCycle(Cycle now) const;

    /**
     * Push stall cycles accrued while skipping stalled agents' ticks
     * into the owning agents' counters; called at wake, at the end of
     * a run, and before any counter read, so observed statistics
     * always match the tick-every-cycle baseline.
     */
    void flushStalls() const;

  private:
    int shardId;
    StreamRng stream;
    /** See localClock(). */
    Clock local;
    std::vector<Tickable *> components;
    /** Installed agents by slot (non-owning; null = empty slot). */
    std::vector<Agent *> agents;
    /** Slots of installed agents that have not finished, in order. */
    std::vector<std::size_t> active;
    /** Per-slot stalled-on-miss flag (see tick()). */
    std::vector<char> stalled;
    /** Per-slot wake flag, raised by Cache::finish() on completion. */
    std::vector<char> wake;
    /**
     * Stall cycles accrued per slot while its ticks were skipped
     * (mutable: counter reads are const but must observe the flushed
     * totals).
     */
    mutable std::vector<Cycle> accrued;
};

} // namespace ddc

#endif // DDC_SIM_SHARD_HH
