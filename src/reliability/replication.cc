#include "reliability/replication.hh"

#include "base/logging.hh"

namespace ddc {
namespace reliability {

namespace {

/** Copies of @p addr's latest value: (cache copies, dirty owner?). */
std::pair<int, bool>
census(const System &system, Addr addr)
{
    const Protocol &protocol = system.protocol();
    int cache_copies = 0;
    bool dirty_owner = false;
    for (PeId pe = 0; pe < system.numPes(); pe++) {
        LineState state = system.lineState(pe, addr);
        if (!state.present())
            continue;
        cache_copies++;
        if (protocol.needsWriteback(state))
            dirty_owner = true;
    }
    return {cache_copies, dirty_owner};
}

} // namespace

ReplicationReport
measureReplication(const System &system, const std::vector<Addr> &addrs)
{
    ReplicationReport report;
    report.addresses = addrs.size();
    for (Addr addr : addrs) {
        auto [cache_copies, dirty_owner] = census(system, addr);
        // With no dirty owner the configuration lemma guarantees
        // memory and every present copy hold the latest value, so
        // memory counts as one more replica.
        int copies = cache_copies + (dirty_owner ? 0 : 1);
        report.total_copies += static_cast<std::uint64_t>(copies);
        if (copies >= 2)
            report.redundant++;
        if (dirty_owner || cache_copies >= 1)
            report.memory_fault_recoverable++;
    }
    return report;
}

bool
recoverMemoryWord(System &system, Addr addr)
{
    auto [cache_copies, dirty_owner] = census(system, addr);
    if (dirty_owner) {
        // The datum lives in the owner's cache; the memory image was
        // stale anyway and will be overwritten by the write-back or
        // supply.  Nothing to repair.
        return true;
    }
    if (cache_copies == 0)
        return false; // The only copy was the corrupted memory word.

    // Any present copy is correct in the shared configuration; use
    // the first one found.
    for (PeId pe = 0; pe < system.numPes(); pe++) {
        if (system.lineState(pe, addr).present()) {
            system.pokeMemory(addr, system.cacheValue(pe, addr));
            return true;
        }
    }
    ddc_panic("census said a copy exists but none was found");
}

FaultCampaignResult
runMemoryFaultCampaign(System &system, const std::vector<Addr> &addrs,
                       std::size_t faults, Rng &rng)
{
    ddc_assert(!addrs.empty(), "fault campaign needs target addresses");

    FaultCampaignResult result;
    for (std::size_t i = 0; i < faults; i++) {
        Addr addr = addrs[rng.nextBelow(addrs.size())];
        Word before = system.memoryValue(addr);
        // Flip low bits; keep within the legal data range.
        Word corrupted = (before ^ (1 + rng.nextBelow(255))) &
                         kMaxDataValue;
        system.pokeMemory(addr, corrupted);
        result.faults_injected++;

        if (recoverMemoryWord(system, addr)) {
            result.recovered++;
        } else {
            // Restore by fiat so later faults stay independent (the
            // experiment models isolated single faults).
            system.pokeMemory(addr, before);
        }
    }
    return result;
}

} // namespace reliability
} // namespace ddc
