/**
 * @file
 * Execution log: the serialized record of committed memory accesses.
 *
 * Section 4 proves consistency by constructing a serial execution
 * order from the parallel one.  The simulator constructs that order
 * explicitly: every committed CPU access is appended here with a
 * global sequence number, and verify/consistency.hh replays the log
 * against a flat memory model to check that "each PE always reads the
 * latest value written".
 */

#ifndef DDC_SIM_EXEC_LOG_HH
#define DDC_SIM_EXEC_LOG_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace ddc {

/** One committed CPU access. */
struct LogEntry
{
    std::uint64_t seq = 0; //!< position in the virtual serial execution
    Cycle cycle = 0;       //!< bus cycle at which the access committed
    PeId pe = kNoPe;
    CpuOp op = CpuOp::Read;
    Addr addr = 0;
    /**
     * Read/ReadLock: the value returned.  Write/WriteUnlock: the value
     * stored.  TestAndSet: the *old* value observed.
     */
    Word value = 0;
    /** TestAndSet only: the value stored when the test succeeded. */
    Word stored = 0;
    /** TestAndSet only: whether the set happened. */
    bool ts_success = false;
};

/** Append-only log of committed accesses in serial order. */
class ExecutionLog
{
  public:
    /** Append an entry; its seq is assigned here. */
    void
    append(LogEntry entry)
    {
        entry.seq = entries.size();
        entries.push_back(entry);
    }

    const std::vector<LogEntry> &all() const { return entries; }
    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }
    void clear() { entries.clear(); }

  private:
    std::vector<LogEntry> entries;
};

} // namespace ddc

#endif // DDC_SIM_EXEC_LOG_HH
