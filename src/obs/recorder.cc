#include "obs/recorder.hh"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace ddc {
namespace obs {

namespace {

// Process-wide opt-in state, written only while parsing flags (or by
// tests between runs); Systems read it once at construction.
std::mutex configMutex;
std::string tracePath;
std::uint32_t traceMask = kAllCategories;
bool traceClaimed = false;

std::atomic<bool> histogramsFlag{false};
std::atomic<Cycle> sampleEveryFlag{0};
std::atomic<bool> profilingFlag{false};

} // namespace

void
setTraceOutput(std::string path, std::uint32_t categories)
{
    std::lock_guard<std::mutex> lock(configMutex);
    tracePath = std::move(path);
    traceMask = categories;
    traceClaimed = false;
}

void
setHistogramsEnabled(bool enabled)
{
    histogramsFlag.store(enabled, std::memory_order_relaxed);
}

bool
histogramsEnabled()
{
    return histogramsFlag.load(std::memory_order_relaxed);
}

void
setSampleInterval(Cycle every)
{
    sampleEveryFlag.store(every, std::memory_order_relaxed);
}

Cycle
sampleInterval()
{
    return sampleEveryFlag.load(std::memory_order_relaxed);
}

void
setPhaseProfilingEnabled(bool enabled)
{
    profilingFlag.store(enabled, std::memory_order_relaxed);
}

bool
phaseProfilingEnabled()
{
    return profilingFlag.load(std::memory_order_relaxed);
}

Recorder::Recorder(std::unique_ptr<TraceSink> trace_sink,
                   bool histograms, Cycle sample_every,
                   std::size_t shards, bool profiling)
    : traceSink(std::move(trace_sink)), histogramsOn(histograms)
{
    if (shards < 1)
        shards = 1;
    if (histogramsOn) {
        for (std::size_t i = 0; i < shards; i++)
            metricsLanes.push_back(std::make_unique<RunMetrics>());
    }
    if (sample_every > 0)
        counterSampler =
            std::make_unique<CounterSampler>(sample_every);
    if (wantsLockEvents()) {
        for (std::size_t i = 0; i < shards; i++)
            lockLanes.push_back(std::make_unique<LockLog>());
    }
    if (profiling)
        phaseProfile = std::make_unique<PhaseProfile>();
    if (traceSink)
        traceSink->buffer(shards - 1);
}

Recorder::~Recorder()
{
    // Member destruction then writes the trace file (traceSink is
    // the first-declared member, so it goes down last) with the
    // replayed lock track already in place.
    flushLockTrace();
}

RunMetrics *
Recorder::metricsLane(std::size_t shard)
{
    if (!histogramsOn)
        return nullptr;
    while (metricsLanes.size() <= shard)
        metricsLanes.push_back(std::make_unique<RunMetrics>());
    return metricsLanes[shard].get();
}

RunMetrics *
Recorder::metrics()
{
    if (!histogramsOn)
        return nullptr;
    mergedMetrics = RunMetrics{};
    for (const auto &lane : metricsLanes)
        mergedMetrics.merge(*lane);
    replayLocks(&mergedMetrics, nullptr);
    return &mergedMetrics;
}

LockLog *
Recorder::lockLane(std::size_t shard)
{
    if (!wantsLockEvents())
        return nullptr;
    while (lockLanes.size() <= shard)
        lockLanes.push_back(std::make_unique<LockLog>());
    return lockLanes[shard].get();
}

void
Recorder::flushLockTrace()
{
    if (lockTraceFlushed)
        return;
    lockTraceFlushed = true;
    if (TraceBuffer *lock_trace = trace(Category::Lock))
        replayLocks(nullptr, lock_trace);
}

void
Recorder::replayLocks(RunMetrics *into,
                      TraceBuffer *lock_trace) const
{
    // Merge the per-shard logs into the serial kernel's emission
    // order: stable sort by cycle, shard index breaking ties (shard
    // 0 ticks first within a cycle, then the clusters in order).
    std::vector<const LockEvent *> order;
    for (const auto &lane : lockLanes) {
        for (const LockEvent &event : lane->entries())
            order.push_back(&event);
    }
    std::stable_sort(order.begin(), order.end(),
                     [](const LockEvent *a, const LockEvent *b) {
                         return a->cycle < b->cycle;
                     });

    /** Addresses that have carried an RMW (lock-word heuristic). */
    std::unordered_set<Addr> known;
    /** Open spin episodes: (pe, lock addr) -> first-failure cycle. */
    std::map<std::pair<PeId, Addr>, Cycle> spinning;
    /** Pending hand-offs: lock addr -> release cycle. */
    std::unordered_map<Addr, Cycle> lastRelease;

    for (const LockEvent *event : order) {
        if (event->kind == 2) {
            // A release only counts once the address is known to
            // behave like a lock word.
            if (known.find(event->addr) == known.end())
                continue;
            lastRelease[event->addr] = event->cycle;
            if (lock_trace) {
                TraceEvent out;
                out.ts = event->cycle;
                out.name = "release";
                out.addr = event->addr;
                out.has_addr = true;
                out.track = kTrackLocks;
                out.tid = event->pe;
                lock_trace->push(out);
            }
            continue;
        }

        known.insert(event->addr);
        auto key = std::make_pair(event->pe, event->addr);
        auto episode = spinning.find(key);

        if (event->kind == 0) {
            // A failed attempt opens (or extends) a spin episode.
            if (episode == spinning.end()) {
                spinning.emplace(key, event->cycle);
                if (lock_trace) {
                    TraceEvent out;
                    out.ts = event->cycle;
                    out.name = "spin";
                    out.addr = event->addr;
                    out.has_addr = true;
                    out.phase = 'B';
                    out.track = kTrackLocks;
                    out.tid = event->pe;
                    lock_trace->push(out);
                }
            }
            continue;
        }

        // A successful RMW closes the episode, samples the acquire
        // latency, and — when a release was seen since the last
        // acquire — the hand-off gap.
        Cycle waited = 0;
        if (episode != spinning.end()) {
            waited = event->cycle - episode->second;
            spinning.erase(episode);
            if (lock_trace) {
                TraceEvent out;
                out.ts = event->cycle;
                out.name = "spin";
                out.phase = 'E';
                out.track = kTrackLocks;
                out.tid = event->pe;
                lock_trace->push(out);
            }
        }
        if (into)
            into->lock_acquire.sample(waited);

        auto release = lastRelease.find(event->addr);
        if (release != lastRelease.end()) {
            if (into)
                into->lock_handoff.sample(event->cycle -
                                          release->second);
            lastRelease.erase(release);
        }

        if (lock_trace) {
            TraceEvent out;
            out.ts = event->cycle;
            out.name = "acquire";
            out.addr = event->addr;
            out.has_addr = true;
            out.value = static_cast<std::int64_t>(waited);
            out.value_name = "spin_cycles";
            out.track = kTrackLocks;
            out.tid = event->pe;
            lock_trace->push(out);
        }
    }
}

std::unique_ptr<Recorder>
makeRecorder(bool config_histograms, Cycle config_sample_every,
             std::size_t shards)
{
    std::unique_ptr<TraceSink> sink;
    {
        std::lock_guard<std::mutex> lock(configMutex);
        if (!tracePath.empty() && !traceClaimed) {
            traceClaimed = true;
            sink = std::make_unique<TraceSink>(traceMask, tracePath);
        }
    }

    bool histograms = config_histograms || histogramsEnabled();
    Cycle sample_every = config_sample_every > 0 ? config_sample_every
                                                 : sampleInterval();
    bool profiling = phaseProfilingEnabled();

    if (!sink && !histograms && sample_every == 0 && !profiling)
        return nullptr;
    return std::make_unique<Recorder>(std::move(sink), histograms,
                                      sample_every, shards,
                                      profiling);
}

} // namespace obs
} // namespace ddc
