/**
 * @file
 * Unit tests for the baseline protocols: Goodman write-once,
 * write-through-invalidate, the Cm* code+local-only policy, and the
 * protocol factory.
 */

#include <gtest/gtest.h>

#include "core/cmstar.hh"
#include "core/factory.hh"
#include "core/goodman.hh"
#include "core/rwb.hh"
#include "core/write_through.hh"

namespace ddc {
namespace {

const LineState kNP{LineTag::NotPresent, 0};
const LineState kI{LineTag::Invalid, 0};
const LineState kV{LineTag::Valid, 0};
const LineState kRes{LineTag::Reserved, 0};
const LineState kD{LineTag::Dirty, 0};

// --- Goodman write-once ----------------------------------------------

class GoodmanTest : public ::testing::Test
{
  protected:
    GoodmanProtocol write_once;
};

TEST_F(GoodmanTest, ReadHitsInAnyValidState)
{
    for (auto state : {kV, kRes, kD}) {
        auto reaction = write_once.onCpuAccess(state, CpuOp::Read,
                                               DataClass::Shared);
        EXPECT_FALSE(reaction.needs_bus) << toString(state);
    }
}

TEST_F(GoodmanTest, ReadMissFetchesToValid)
{
    auto reaction = write_once.onCpuAccess(kNP, CpuOp::Read,
                                           DataClass::Shared);
    EXPECT_TRUE(reaction.needs_bus);
    EXPECT_EQ(write_once.afterBusOp(kNP, BusOp::Read, false), kV);
}

TEST_F(GoodmanTest, FirstWriteWritesThroughOnceToReserved)
{
    auto reaction = write_once.onCpuAccess(kV, CpuOp::Write,
                                           DataClass::Shared);
    EXPECT_TRUE(reaction.needs_bus);
    EXPECT_EQ(reaction.bus_op, BusOp::Write);
    EXPECT_EQ(write_once.afterBusOp(kV, BusOp::Write, false), kRes);
}

TEST_F(GoodmanTest, SecondWriteStaysLocalAsDirty)
{
    auto reaction = write_once.onCpuAccess(kRes, CpuOp::Write,
                                           DataClass::Shared);
    EXPECT_FALSE(reaction.needs_bus);
    EXPECT_EQ(reaction.next, kD);
    EXPECT_TRUE(reaction.update_value);

    auto dirty = write_once.onCpuAccess(kD, CpuOp::Write,
                                        DataClass::Shared);
    EXPECT_FALSE(dirty.needs_bus);
    EXPECT_EQ(dirty.next, kD);
}

TEST_F(GoodmanTest, SnoopedReadDemotesReservedAndSuppliesFromDirty)
{
    EXPECT_EQ(write_once.onSnoop(kRes, BusOp::Read).next, kV);
    EXPECT_TRUE(write_once.onSnoop(kD, BusOp::Read).supply);
    EXPECT_EQ(write_once.afterSupply(kD), kV);
}

TEST_F(GoodmanTest, NoReadBroadcast)
{
    // The defining difference from RB: invalid copies do NOT snarf.
    auto reaction = write_once.onSnoop(kI, BusOp::Read);
    EXPECT_EQ(reaction.next, kI);
    EXPECT_FALSE(reaction.snarf);
}

TEST_F(GoodmanTest, SnoopedWriteInvalidatesEverything)
{
    for (auto state : {kV, kRes, kD})
        EXPECT_EQ(write_once.onSnoop(state, BusOp::Write).next, kI);
}

TEST_F(GoodmanTest, OnlyDirtyNeedsWriteback)
{
    EXPECT_TRUE(write_once.needsWriteback(kD));
    EXPECT_FALSE(write_once.needsWriteback(kRes));
    EXPECT_FALSE(write_once.needsWriteback(kV));
}

TEST_F(GoodmanTest, RmwOutcomes)
{
    EXPECT_EQ(write_once.afterBusOp(kV, BusOp::Rmw, true), kRes);
    EXPECT_EQ(write_once.afterBusOp(kV, BusOp::Rmw, false), kV);
}

// --- Write-through-invalidate ------------------------------------------

class WriteThroughTest : public ::testing::Test
{
  protected:
    WriteThroughProtocol write_through;
};

TEST_F(WriteThroughTest, EveryWriteUsesTheBus)
{
    for (auto state : {kV, kI, kNP}) {
        auto reaction = write_through.onCpuAccess(state, CpuOp::Write,
                                                  DataClass::Shared);
        EXPECT_TRUE(reaction.needs_bus) << toString(state);
        EXPECT_EQ(reaction.bus_op, BusOp::Write);
    }
    EXPECT_EQ(write_through.afterBusOp(kV, BusOp::Write, false), kV);
}

TEST_F(WriteThroughTest, ReadsHitOnlyInValid)
{
    EXPECT_FALSE(write_through
                     .onCpuAccess(kV, CpuOp::Read, DataClass::Shared)
                     .needs_bus);
    EXPECT_TRUE(write_through
                    .onCpuAccess(kI, CpuOp::Read, DataClass::Shared)
                    .needs_bus);
}

TEST_F(WriteThroughTest, SnoopedWriteInvalidates)
{
    EXPECT_EQ(write_through.onSnoop(kV, BusOp::Write).next, kI);
}

TEST_F(WriteThroughTest, SnoopedReadHasNoEffectAndNoSnarf)
{
    auto reaction = write_through.onSnoop(kI, BusOp::Read);
    EXPECT_EQ(reaction.next, kI);
    EXPECT_FALSE(reaction.snarf);
}

TEST_F(WriteThroughTest, NeverDirty)
{
    EXPECT_FALSE(write_through.needsWriteback(kV));
    EXPECT_FALSE(write_through.memoryMayBeStale(kV));
}

// --- Cm* policy -----------------------------------------------------------

class CmStarTest : public ::testing::Test
{
  protected:
    CmStarProtocol cmstar;
};

TEST_F(CmStarTest, SharedReferencesNeverCache)
{
    auto read = cmstar.onCpuAccess(kNP, CpuOp::Read, DataClass::Shared);
    EXPECT_TRUE(read.needs_bus);
    EXPECT_FALSE(read.allocate);

    auto write = cmstar.onCpuAccess(kV, CpuOp::Write, DataClass::Shared);
    EXPECT_TRUE(write.needs_bus);
    EXPECT_FALSE(write.allocate);
}

TEST_F(CmStarTest, CodeAndLocalReadsCacheNormally)
{
    for (auto cls : {DataClass::Code, DataClass::Local}) {
        auto miss = cmstar.onCpuAccess(kNP, CpuOp::Read, cls);
        EXPECT_TRUE(miss.needs_bus);
        EXPECT_TRUE(miss.allocate);
        auto hit = cmstar.onCpuAccess(kV, CpuOp::Read, cls);
        EXPECT_FALSE(hit.needs_bus);
    }
    EXPECT_EQ(cmstar.afterBusOp(kNP, BusOp::Read, false), kV);
}

TEST_F(CmStarTest, LocalWritesAlwaysWriteThrough)
{
    // "writes to local data were counted as cache misses" — even with
    // a valid cached copy the write uses the bus.
    auto reaction = cmstar.onCpuAccess(kV, CpuOp::Write, DataClass::Local);
    EXPECT_TRUE(reaction.needs_bus);
    EXPECT_EQ(reaction.bus_op, BusOp::Write);
    EXPECT_TRUE(reaction.allocate);
    EXPECT_EQ(cmstar.afterBusOp(kV, BusOp::Write, false), kV);
}

TEST_F(CmStarTest, TestAndSetBypassesCache)
{
    auto reaction = cmstar.onCpuAccess(kNP, CpuOp::TestAndSet,
                                       DataClass::Shared);
    EXPECT_TRUE(reaction.needs_bus);
    EXPECT_EQ(reaction.bus_op, BusOp::Rmw);
    EXPECT_FALSE(reaction.allocate);
}

TEST_F(CmStarTest, NothingIsEverDirty)
{
    EXPECT_FALSE(cmstar.needsWriteback(kV));
}

// --- Factory ----------------------------------------------------------

TEST(Factory, BuildsEveryKind)
{
    for (auto kind : allProtocolKinds()) {
        auto protocol = makeProtocol(kind);
        ASSERT_NE(protocol, nullptr);
        EXPECT_EQ(protocol->name(), toString(kind));
    }
}

TEST(Factory, ParseRoundTrips)
{
    for (auto kind : allProtocolKinds())
        EXPECT_EQ(parseProtocolKind(std::string(toString(kind))), kind);
}

TEST(Factory, RwbKIsForwarded)
{
    auto protocol = makeProtocol(ProtocolKind::Rwb, 4);
    auto *rwb = dynamic_cast<RwbProtocol *>(protocol.get());
    ASSERT_NE(rwb, nullptr);
    EXPECT_EQ(rwb->writesToLocal(), 4);
}

TEST(Factory, AllKindsListedOnce)
{
    auto kinds = allProtocolKinds();
    EXPECT_EQ(kinds.size(), 5u);
}

} // namespace
} // namespace ddc
