/**
 * @file
 * Filter-on vs filter-off equivalence suite for the sharer-indexed
 * snoop filter (Bus broadcast + supplier-scan filtering).
 *
 * The filter's contract is that skipping a non-holder's snoop is
 * *unobservable*: every counter, every execution-log entry, the final
 * cycle count, and the serialized JSON must be byte-identical with
 * the filter on or off — including under the Random arbiter (whose
 * RNG stream must not shift), with multi-word blocks (presence is
 * block-granular), across interleaved buses, for timed-out runs, for
 * lock workloads, and on the hierarchical machine.  The only thing
 * allowed to change is the snoop-visit count, which must shrink.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "exp/runner.hh"
#include "hier/hier_system.hh"
#include "sim/system.hh"
#include "sync/workload.hh"
#include "trace/synthetic.hh"

namespace ddc {
namespace {

/** Everything observable from one run, for byte-wise comparison. */
struct Observed
{
    Cycle cycles = 0;
    RunStatus status = RunStatus::Finished;
    std::uint64_t snoop_visits = 0;
    std::string counters;
    std::vector<LogEntry> log;
};

void
expectIdentical(const Observed &filtered, const Observed &unfiltered)
{
    EXPECT_EQ(filtered.cycles, unfiltered.cycles);
    EXPECT_EQ(filtered.status, unfiltered.status);
    EXPECT_EQ(filtered.counters, unfiltered.counters);
    ASSERT_EQ(filtered.log.size(), unfiltered.log.size());
    for (std::size_t i = 0; i < filtered.log.size(); i++) {
        const LogEntry &a = filtered.log[i];
        const LogEntry &b = unfiltered.log[i];
        EXPECT_EQ(a.seq, b.seq) << "log entry " << i;
        EXPECT_EQ(a.cycle, b.cycle) << "log entry " << i;
        EXPECT_EQ(a.pe, b.pe) << "log entry " << i;
        EXPECT_EQ(a.op, b.op) << "log entry " << i;
        EXPECT_EQ(a.addr, b.addr) << "log entry " << i;
        EXPECT_EQ(a.value, b.value) << "log entry " << i;
        EXPECT_EQ(a.stored, b.stored) << "log entry " << i;
        EXPECT_EQ(a.ts_success, b.ts_success) << "log entry " << i;
    }
}

Observed
observeFlat(SystemConfig config, const Trace &trace,
            Cycle max_cycles = System::kDefaultMaxCycles)
{
    config.record_log = true;
    System system(config);
    system.loadTrace(trace);
    Observed seen;
    seen.cycles = system.run(max_cycles);
    seen.status = system.runStatus();
    seen.snoop_visits = system.snoopVisits();
    seen.counters = system.counters().report();
    seen.log = system.log().all();
    return seen;
}

/** Run the same flat config with and without the filter and compare. */
Observed
checkFlat(SystemConfig config, const Trace &trace,
          Cycle max_cycles = System::kDefaultMaxCycles)
{
    config.snoop_filter = true;
    Observed filtered = observeFlat(config, trace, max_cycles);
    config.snoop_filter = false;
    Observed unfiltered = observeFlat(config, trace, max_cycles);
    expectIdentical(filtered, unfiltered);
    // Non-vacuous: the filter must actually skip visits somewhere
    // (every config below has more PEs than typical block holders).
    EXPECT_LT(filtered.snoop_visits, unfiltered.snoop_visits);
    return filtered;
}

const ProtocolKind kProtocols[] = {
    ProtocolKind::WriteThrough, ProtocolKind::WriteOnce, ProtocolKind::Rb,
    ProtocolKind::Rwb};

TEST(SnoopFilterEquivalence, FlatAllProtocols)
{
    auto trace = makeUniformRandomTrace(8, 1500, 64, 0.3, 0.05, 11);
    for (auto protocol : kProtocols) {
        SystemConfig config;
        config.num_pes = 8;
        config.cache_lines = 64;
        config.protocol = protocol;
        checkFlat(config, trace);
    }
}

TEST(SnoopFilterEquivalence, FlatSupplierHeavyOwnershipMigration)
{
    // Producer/consumer ping-pongs ownership, so the supplier scan
    // (owner lookup) runs constantly — the index must name the same
    // single Local owner the full scan finds, every time.
    auto trace = makeProducerConsumerTrace(8, 32, 20, 2);
    for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        SystemConfig config;
        config.num_pes = 8;
        config.cache_lines = 128;
        config.protocol = protocol;
        checkFlat(config, trace);
    }
}

TEST(SnoopFilterEquivalence, FlatRandomArbiterKeepsRngStream)
{
    // The filter must consume no randomness: grants, and with them
    // every downstream counter, would shift otherwise.
    auto trace = makeHotSpotTrace(8, 300, 8);
    for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        SystemConfig config;
        config.num_pes = 8;
        config.cache_lines = 128;
        config.protocol = protocol;
        config.arbiter = ArbiterKind::Random;
        config.arbiter_seed = 99;
        checkFlat(config, trace);
    }
}

TEST(SnoopFilterEquivalence, FlatBlockTransfersAndMultibus)
{
    auto trace = makeUniformRandomTrace(8, 1200, 128, 0.4, 0.1, 23);
    {
        // Multi-word blocks: presence is block-granular, and small
        // caches force clean retags (a victim line re-pointed at a new
        // block without a write-back must move its index entry).
        SystemConfig config;
        config.num_pes = 8;
        config.cache_lines = 16;
        config.block_words = 4;
        config.protocol = ProtocolKind::Rb;
        checkFlat(config, trace);
    }
    {
        // Two interleaved buses: each bus keeps its own sharer index
        // over its own cache banks.
        SystemConfig config;
        config.num_pes = 8;
        config.cache_lines = 64;
        config.num_buses = 2;
        config.protocol = ProtocolKind::WriteOnce;
        checkFlat(config, trace);
    }
}

TEST(SnoopFilterEquivalence, FlatCombinedWithQuiescentSkip)
{
    // Both engines at once: the skip engine's next-event schedule is
    // a function of armed/transfer state the filter never touches.
    auto trace = makeUniformRandomTrace(8, 1000, 64, 0.3, 0.05, 31);
    SystemConfig config;
    config.num_pes = 8;
    config.cache_lines = 64;
    config.protocol = ProtocolKind::Rb;
    config.memory_latency = 16;
    config.skip_quiescent = true;
    checkFlat(config, trace);
}

TEST(SnoopFilterEquivalence, TimedOutRunResultJsonIsIdentical)
{
    // Through the experiment engine: the default (no --timing) JSON
    // payload is byte-identical filter-on vs filter-off, even when
    // the run times out mid-flight.
    auto trace = makeHotSpotTrace(8, 400, 8);
    exp::TraceRun run;
    run.trace = trace;
    run.config.num_pes = 8;
    run.config.cache_lines = 64;
    run.config.memory_latency = 64;
    run.max_cycles = 100;

    run.config.snoop_filter = true;
    exp::RunResult filtered = exp::executeTraceRun(run);
    run.config.snoop_filter = false;
    exp::RunResult unfiltered = exp::executeTraceRun(run);

    EXPECT_EQ(filtered.status, RunStatus::TimedOut);
    EXPECT_EQ(filtered.cycles, 100u);
    EXPECT_EQ(filtered.toJson(false).dump(), unfiltered.toJson(false).dump());
    // snoop_visits is the one field allowed to differ, and it is
    // serialized only with timing opted in.
    EXPECT_TRUE(filtered.toJson(true).dump() !=
                unfiltered.toJson(true).dump());
}

TEST(SnoopFilterEquivalence, FallbackCountSurfacesInRunResult)
{
    // A 70-client bus silently reverted to full snooping before this
    // counter existed; now the degradation is visible — but, being a
    // host-topology fact, only in the opt-in --timing serialization.
    auto trace = makeUniformRandomTrace(70, 400, 32, 0.3, 0.05, 7);
    exp::TraceRun run;
    run.trace = trace;
    run.config.num_pes = 70;
    run.config.cache_lines = 32;
    exp::RunResult result = exp::executeTraceRun(run);
    EXPECT_GE(result.snoop_filter_fallbacks, 1u);
    EXPECT_NE(result.toJson(true).dump().find("snoop_filter_fallbacks"),
              std::string::npos);
    EXPECT_EQ(result.toJson(false).dump().find("snoop_filter_fallbacks"),
              std::string::npos);
}

TEST(SnoopFilterEquivalence, LockWorkloadsViaProcessWideSwitch)
{
    // Spin locks through real PE programs, with the --no-snoop-filter
    // escape hatch: runLockExperiment builds its System internally, so
    // only the process-wide switch can reach it.
    for (auto lock : {sync::LockKind::TestAndSet,
                      sync::LockKind::TestAndTestAndSet}) {
        sync::LockExperimentConfig config;
        config.num_pes = 8;
        config.lock = lock;
        config.protocol = ProtocolKind::Rb;
        config.acquisitions_per_pe = 4;
        config.cs_increments = 4;
        config.record_log = true;

        std::unique_ptr<System> filtered_system;
        auto filtered = sync::runLockExperiment(config, &filtered_system);

        setSnoopFilterEnabled(false);
        std::unique_ptr<System> unfiltered_system;
        auto unfiltered = sync::runLockExperiment(config,
                                                  &unfiltered_system);
        setSnoopFilterEnabled(true);

        EXPECT_EQ(filtered.cycles, unfiltered.cycles);
        EXPECT_EQ(filtered.counter_value, unfiltered.counter_value);
        EXPECT_EQ(filtered.bus_transactions, unfiltered.bus_transactions);
        EXPECT_EQ(filtered.rmw_attempts, unfiltered.rmw_attempts);
        EXPECT_EQ(filtered.rmw_failures, unfiltered.rmw_failures);
        EXPECT_TRUE(filtered.completed);
        EXPECT_EQ(filtered_system->counters().report(),
                  unfiltered_system->counters().report());
        EXPECT_LT(filtered_system->snoopVisits(),
                  unfiltered_system->snoopVisits());
    }
}

/** Observe one hierarchical run (filter toggled per-config). */
Observed
observeHier(hier::HierConfig config, const Trace &trace,
            bool snoop_filter)
{
    config.record_log = true;
    config.snoop_filter = snoop_filter;
    hier::HierSystem system(config);
    system.loadTrace(trace);
    Observed seen;
    seen.cycles = system.run();
    seen.status = system.runStatus();
    seen.snoop_visits = system.snoopVisits();
    seen.counters = system.counters().report();
    seen.log = system.log().all();
    return seen;
}

TEST(SnoopFilterEquivalence, HierarchicalMachine)
{
    // Cluster buses filter over their L1s; cluster caches stay
    // always-snoop on the global bus (they proxy whole clusters, so
    // per-block indexing does not apply to them).
    auto trace = makeUniformRandomTrace(8, 800, 64, 0.3, 0.05, 17);
    for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        hier::HierConfig config;
        config.num_clusters = 4;
        config.pes_per_cluster = 2;
        config.cache_lines = 64;
        config.protocol = protocol;
        Observed filtered = observeHier(config, trace, true);
        Observed unfiltered = observeHier(config, trace, false);
        expectIdentical(filtered, unfiltered);
        EXPECT_LT(filtered.snoop_visits, unfiltered.snoop_visits);
    }
}

} // namespace
} // namespace ddc
