/**
 * @file
 * Tests of the multi-word-block extension (the assumption-7 ablation
 * machinery): block mapping, block fills and snarfs, write-allocate
 * fill phases, block write-backs and supplies, block-granular false
 * sharing, bus occupancy of block transfers, and consistency under
 * every protocol with multi-word blocks.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "sim/scenario.hh"
#include "trace/synthetic.hh"
#include "verify/consistency.hh"

namespace ddc {
namespace {

MemRef
read(Addr addr)
{
    return {CpuOp::Read, addr, 0, DataClass::Shared};
}

MemRef
write(Addr addr, Word data)
{
    return {CpuOp::Write, addr, data, DataClass::Shared};
}

TEST(Block, ReadFillsWholeBlock)
{
    Scenario scenario(ProtocolKind::Rb, 2, 8, 2, /*block_words=*/4);
    // Pre-set memory via another PE's writes in a different block so
    // the block 8..11 holds known values.
    scenario.write(1, 8, 10);
    scenario.write(1, 9, 11);
    scenario.write(1, 10, 12); // PE1 ends Local on block 8..11

    // PE0 reads word 9: the supply + fill moves the whole block.
    EXPECT_EQ(scenario.read(0, 9), 11u);
    EXPECT_EQ(scenario.value(0, 8), 10u);
    EXPECT_EQ(scenario.value(0, 10), 12u);
    // Words of one block share the line state.
    EXPECT_EQ(scenario.state(0, 8).tag, LineTag::Readable);
    EXPECT_EQ(scenario.state(0, 11).tag, LineTag::Readable);
}

TEST(Block, WriteMissFillsThenWritesThrough)
{
    Scenario scenario(ProtocolKind::Rb, 2, 8, 2, 4);
    scenario.write(0, 4, 1); // fill block 4..7, then write through
    EXPECT_EQ(scenario.counters().get("cache.fill"), 1u);
    EXPECT_EQ(scenario.state(0, 4).tag, LineTag::Local);
    EXPECT_EQ(scenario.value(0, 4), 1u);
    EXPECT_EQ(scenario.value(0, 5), 0u); // rest of block present
    EXPECT_EQ(scenario.memoryValue(4), 1u);
}

TEST(Block, LocalWritesToOtherWordsOfOwnedBlockAreSilent)
{
    Scenario scenario(ProtocolKind::Rb, 2, 8, 2, 4);
    scenario.write(0, 4, 1);
    auto busy = scenario.busTransactions();
    scenario.write(0, 5, 2); // same block, already Local
    scenario.write(0, 6, 3);
    EXPECT_EQ(scenario.busTransactions(), busy);
    EXPECT_EQ(scenario.value(0, 5), 2u);
}

TEST(Block, DirtyBlockWriteBackOnEviction)
{
    // 2 lines x 4-word blocks: blocks 0..7 and 8..15 map to lines 0/1;
    // block 16..19 collides with block 0..3.
    Scenario scenario(ProtocolKind::Rb, 1, 2, 2, 4);
    scenario.write(0, 0, 1);
    scenario.write(0, 1, 2); // dirty Local block 0..3
    EXPECT_EQ(scenario.memoryValue(1), 0u); // not yet written back

    scenario.read(0, 16); // evicts block 0..3
    EXPECT_EQ(scenario.memoryValue(0), 1u);
    EXPECT_EQ(scenario.memoryValue(1), 2u);
    EXPECT_EQ(scenario.counters().get("cache.writeback"), 1u);
}

TEST(Block, OwnerSuppliesWholeBlock)
{
    Scenario scenario(ProtocolKind::Rb, 2, 8, 2, 4);
    scenario.write(0, 8, 5);
    scenario.write(0, 9, 6); // dirty Local block 8..11 (memory stale at 9)
    EXPECT_EQ(scenario.memoryValue(9), 0u);

    EXPECT_EQ(scenario.read(1, 9), 6u); // killed + block supply
    EXPECT_EQ(scenario.memoryValue(8), 5u);
    EXPECT_EQ(scenario.memoryValue(9), 6u);
    EXPECT_EQ(scenario.state(0, 9).tag, LineTag::Readable);
}

TEST(Block, FalseSharingInvalidatesWholeBlockUnderRb)
{
    Scenario scenario(ProtocolKind::Rb, 2, 8, 2, 4);
    // PE0 and PE1 use different words of the same block.
    scenario.write(0, 0, 1);
    EXPECT_EQ(scenario.state(0, 0).tag, LineTag::Local);

    scenario.write(1, 1, 2); // different word, same block
    // PE0's whole block is invalidated although word 0 was untouched.
    EXPECT_EQ(scenario.state(0, 0).tag, LineTag::Invalid);
    EXPECT_EQ(scenario.state(1, 1).tag, LineTag::Local);
}

TEST(Block, NoFalseSharingWithOneWordBlocks)
{
    Scenario scenario(ProtocolKind::Rb, 2, 8, 2, 1);
    scenario.write(0, 0, 1);
    scenario.write(1, 1, 2);
    EXPECT_EQ(scenario.state(0, 0).tag, LineTag::Local);
    EXPECT_EQ(scenario.state(1, 1).tag, LineTag::Local);
}

TEST(Block, RwbWordSnarfUpdatesOneWordOfBlock)
{
    // k = 3 so PE0's second write to the block still broadcasts data
    // (with the paper's k = 2 it would confirm block-local usage and
    // send BI instead -- the write streak is block-granular).
    Scenario scenario(ProtocolKind::Rwb, 2, 8, /*k=*/3, 4);
    scenario.write(0, 0, 1);
    scenario.read(1, 0);      // PE1 holds the block
    scenario.read(1, 1);
    scenario.write(0, 1, 9);  // word write broadcast
    EXPECT_EQ(scenario.value(1, 1), 9u); // updated word
    EXPECT_EQ(scenario.value(1, 0), 1u); // other words intact
    EXPECT_EQ(scenario.state(1, 1).tag, LineTag::Readable);
}

TEST(Block, RwbSecondWriteToBlockConfirmsBlockLocal)
{
    Scenario scenario(ProtocolKind::Rwb, 2, 8, 2, 4);
    scenario.write(0, 0, 1);
    scenario.read(1, 0);
    scenario.write(0, 1, 9); // streak 2 on the block -> BI -> Local
    EXPECT_EQ(scenario.state(0, 0).tag, LineTag::Local);
    EXPECT_EQ(scenario.state(1, 0).tag, LineTag::Invalid);
}

TEST(Block, BlockTransferOccupiesBusLonger)
{
    auto trace = makeSequentialWalkTrace(1, 64, 1);
    for (std::size_t block : {1u, 4u}) {
        SystemConfig config;
        config.num_pes = 1;
        config.cache_lines = 64;
        config.block_words = block;
        config.protocol = ProtocolKind::Rb;
        System system(config);
        system.loadTrace(trace);
        system.run();
        auto counters = system.counters();
        // 64-word sweep: B=1 does 64 one-cycle reads; B=4 does 16
        // four-cycle block reads -- same total bus occupancy, fewer
        // misses.
        if (block == 1) {
            EXPECT_EQ(counters.get("bus.read"), 64u);
            EXPECT_EQ(counters.get("bus.transfer_cycles"), 0u);
        } else {
            EXPECT_EQ(counters.get("bus.read"), 16u);
            EXPECT_EQ(counters.get("bus.transfer_cycles"), 48u);
        }
    }
}

TEST(Block, SequentialWalkMissRatioFallsWithBlockSize)
{
    auto trace = makeSequentialWalkTrace(2, 256, 2, 7);
    double previous = 2.0;
    for (std::size_t block : {1u, 2u, 4u, 8u}) {
        SystemConfig config;
        config.num_pes = 2;
        config.cache_lines = 512 / block; // constant capacity in words
        config.block_words = block;
        config.protocol = ProtocolKind::Rb;
        auto summary = runTrace(config, trace);
        ASSERT_TRUE(summary.completed);
        EXPECT_LT(summary.miss_ratio, previous) << "B=" << block;
        previous = summary.miss_ratio;
    }
}

TEST(Block, FalseSharingTrafficGrowsWithBlockSize)
{
    auto trace = makeFalseSharingTrace(4, 64);
    std::uint64_t small_traffic = 0;
    for (std::size_t block : {1u, 4u}) {
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 64;
        config.block_words = block;
        config.protocol = ProtocolKind::Rb;
        auto summary = runTrace(config, trace, true);
        ASSERT_TRUE(summary.completed);
        ASSERT_TRUE(summary.consistent);
        if (block == 1) {
            small_traffic = summary.bus_transactions;
        } else {
            EXPECT_GT(summary.bus_transactions, 2 * small_traffic);
        }
    }
}

class BlockConsistency
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, int>>
{
};

TEST_P(BlockConsistency, RandomTracesStayConsistent)
{
    auto [kind, block] = GetParam();
    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 16;
    config.block_words = static_cast<std::size_t>(block);
    config.protocol = kind;

    auto trace = makeUniformRandomTrace(4, 600, 48, 0.35, 0.1, 321);
    auto summary = runTrace(config, trace, /*check_consistency=*/true);
    ASSERT_TRUE(summary.completed);
    EXPECT_TRUE(summary.consistent);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockConsistency,
    ::testing::Combine(::testing::Values(ProtocolKind::Rb,
                                         ProtocolKind::Rwb,
                                         ProtocolKind::WriteOnce,
                                         ProtocolKind::WriteThrough,
                                         ProtocolKind::CmStar),
                       ::testing::Values(2, 4, 8)),
    [](const auto &info) {
        return std::string(toString(std::get<0>(info.param))) + "_B" +
               std::to_string(std::get<1>(info.param));
    });

TEST(Block, LockExperimentsWorkWithBlocks)
{
    // TS/TTS correctness must not depend on the block size, even with
    // the lock and counter words falsely shared in one block.
    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 64;
    config.block_words = 4;
    config.protocol = ProtocolKind::Rb;
    config.record_log = true;

    auto trace = makeHotSpotTrace(4, 8, 4);
    auto summary = runTrace(config, trace, true);
    ASSERT_TRUE(summary.completed);
    EXPECT_TRUE(summary.consistent);
}

} // namespace
} // namespace ddc
