/**
 * @file
 * Structured per-run results for the experiment engine.
 *
 * A RunResult is everything one sweep point produced: the run status
 * (finished vs. timed out — a deadlocked point is reported, never
 * silently passed off as a datapoint), headline numbers, derived
 * metrics, the full counter set, and an optional pre-rendered text
 * block for scenario-style figures.  Results serialize to JSON and
 * back so parallel sweeps can be archived and compared byte-for-byte.
 */

#ifndef DDC_EXP_RESULT_HH
#define DDC_EXP_RESULT_HH

#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "exp/json.hh"
#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "sim/system.hh"
#include "stats/counter.hh"
#include "stats/histogram.hh"

namespace ddc {
namespace exp {

/** Ordered (name, value) labels identifying one grid point. */
using ParamList = std::vector<std::pair<std::string, std::string>>;

/** Everything one experiment point produced. */
struct RunResult
{
    /** Grid index; results are always ordered by it. */
    std::size_t index = 0;
    /** The parameter labels of this point. */
    ParamList params;
    /** Finished, or hit the cycle limit (surfaced, never swallowed). */
    RunStatus status = RunStatus::Finished;
    Cycle cycles = 0;
    std::uint64_t total_refs = 0;
    std::uint64_t bus_transactions = 0;
    /** Serial-consistency verdict (true unless checking failed). */
    bool consistent = true;
    /**
     * Host wall-clock time this point took to execute (measured by
     * the runner).  Machine-dependent by nature, so it is serialized
     * only when toJson(true) is requested (--timing): the default
     * JSON stays byte-identical across hosts, runs, and job counts.
     */
    double wall_time_ms = 0.0;
    /**
     * Of wall_time_ms, the milliseconds spent inside the simulation
     * loop proper (System::run) — excluding trace materialization,
     * machine construction, and trace loading.  0 for custom points,
     * which have no trace-run breakdown.  Serialized only with
     * toJson(true), like wall_time_ms.
     */
    double sim_time_ms = 0.0;
    /**
     * Simulated cycles per second of simulation-loop time
     * (sim_time_ms when available, else wall_time_ms), so engine
     * throughput comparisons are not diluted by per-point setup.
     */
    double sim_cycles_per_sec = 0.0;
    /**
     * Of cycles, how many the run loop fast-forwarded across
     * quiescent intervals (next-event time advance).  Deterministic,
     * but serialized only with toJson(true) alongside the timing
     * fields: it describes how the engine spent its host time, and
     * gating it keeps the default JSON byte-identical to runs with
     * skipping disabled (whose skipped count is 0 by construction).
     */
    Cycle skipped_cycles = 0;
    /**
     * Bus broadcast visits + supplier polls the run performed (see
     * Bus::snoopVisits).  Deterministic, but a function of the snoop
     * filter setting, so — like skipped_cycles — it is serialized
     * only with toJson(true): the default JSON stays byte-identical
     * filter-on vs filter-off.
     */
    std::uint64_t snoop_visits = 0;
    /**
     * Times any bus of the run degraded from sharer-indexed to full
     * snooping (see Bus::snoopFilterFallbacks).  0 on a healthy
     * filtered run; serialized only with toJson(true), like
     * snoop_visits, so the default JSON stays byte-identical
     * filter-on vs filter-off.
     */
    std::uint64_t snoop_filter_fallbacks = 0;
    /**
     * Blocks with directory state at the end of a directory-mode run
     * (DirectoryFabric::directoryBlocks); 0 on snooping runs.
     * Deterministic, but — like snoop_visits — a function of the
     * interconnect flavour, so it is serialized only with
     * toJson(true): the default JSON stays byte-identical snoop vs
     * directory at matched configurations.
     */
    std::uint64_t directory_blocks = 0;
    /**
     * Highest load factor any directory/home-memory flat map reached
     * during a directory-mode run (DirectoryFabric::maxLoadFactor);
     * 0 on snooping runs.  Table-health diagnostic; timing-gated like
     * directory_blocks.
     */
    double directory_max_load_factor = 0.0;
    /**
     * Parallel barrier epochs the run's kernel executed (one per
     * parallel phase, whether it covered one cycle or a multi-cycle
     * lookahead window); 0 on single-lane runs.  Deterministic for a
     * given shard count, but a function of the lane count and the
     * lookahead setting — host-performance knobs — so, like
     * skipped_cycles, it is serialized only with toJson(true): the
     * default JSON stays byte-identical across --shards and
     * --no-lookahead settings.
     */
    std::uint64_t barrier_epochs = 0;
    /**
     * Mean simulated cycles per barrier window (0 on single-lane
     * runs; 1.0 means lookahead never batched).  Timing-gated like
     * barrier_epochs.
     */
    double mean_lookahead_window = 0.0;
    /** Ordered derived metrics (bus_per_ref, miss_ratio, ...). */
    std::vector<std::pair<std::string, double>> metrics;
    /** Full merged counter set of the run. */
    stats::CounterSet counters;
    /**
     * Latency-distribution summary (histogramsJson) when the run was
     * collected with --histograms; Null otherwise and then omitted
     * from the serialized object, so runs without the flag keep the
     * pre-histogram byte-identical JSON.
     */
    Json histograms;
    /** Counter time series (samplesJson); Null unless --sample-every. */
    Json samples;
    /**
     * Presentation text produced by custom points (scenario figures);
     * printed verbatim by the bench, not serialized to JSON.
     */
    std::string rendered;

    /** Set (or overwrite) derived metric @p name. */
    void setMetric(const std::string &name, double value);

    /** Value of metric @p name (0.0 when absent). */
    double metric(const std::string &name) const;

    /** True when metric @p name was set. */
    bool hasMetric(const std::string &name) const;

    /**
     * Serialize to a JSON object (everything except `rendered`).
     * @param include_timing Also emit wall_time_ms /
     *        sim_cycles_per_sec (non-deterministic host measurements).
     */
    Json toJson(bool include_timing = false) const;

    /** Rebuild a result from Json emitted by toJson(). */
    static RunResult fromJson(const Json &json);
};

/**
 * Serialize one histogram as {count, mean, min, max, p50, p90, p99,
 * bucket_width, buckets: [[lo, count], ...]} (non-empty buckets only;
 * the overflow bucket's lo is num_buckets * bucket_width).
 */
Json histogramJson(const stats::Histogram &histogram);

/** Serialize a RunMetrics bundle, one histogramJson per entry. */
Json histogramsJson(const obs::RunMetrics &metrics);

/**
 * Serialize a sample series as {interval, columns: [...],
 * rows: [[cycle, v0, v1, ...], ...]} (cumulative counter values).
 */
Json samplesJson(const obs::SampleSeries &series);

} // namespace exp
} // namespace ddc

#endif // DDC_EXP_RESULT_HH
