#include "sim/cache.hh"

#include <string>

#include "base/logging.hh"

namespace ddc {

namespace {

std::string
refStatName(const MemRef &ref, bool miss)
{
    std::string name = "cache.";
    switch (ref.op) {
      case CpuOp::Read:        name += miss ? "read_miss." : "read_hit.";
                               break;
      case CpuOp::Write:       name += miss ? "write_miss." : "write_hit.";
                               break;
      case CpuOp::TestAndSet:  name += "ts."; break;
      case CpuOp::ReadLock:    name += "readlock."; break;
      case CpuOp::WriteUnlock: name += "writeunlock."; break;
    }
    name += toString(ref.cls);
    return name;
}

} // namespace

Cache::Cache(PeId pe, std::size_t num_lines, const Protocol &protocol,
             const Clock &clock, stats::CounterSet &stats,
             ExecutionLog *log, std::size_t block_words, std::size_t ways)
    : pe(pe), protocol(protocol), clock(clock), stats(stats), log(log),
      blockSize(block_words), ways(ways)
{
    ddc_assert(num_lines > 0, "cache needs at least one line");
    ddc_assert(block_words >= 1, "block size must be at least one word");
    ddc_assert(ways >= 1 && num_lines % ways == 0,
               "associativity must divide the line count");
    lines.resize(num_lines);
    for (auto &line : lines)
        line.data.assign(blockSize, 0);
}

void
Cache::connectBus(Bus &bus_to_join)
{
    ddc_assert(bus == nullptr, "cache already attached to a bus");
    ddc_assert(bus_to_join.blockWords() == blockSize,
               "cache and bus disagree on the block size");
    bus = &bus_to_join;
    bus->attach(this);
}

Addr
Cache::blockBase(Addr addr) const
{
    return addr - addr % static_cast<Addr>(blockSize);
}

std::size_t
Cache::setBase(Addr addr) const
{
    std::size_t num_sets = lines.size() / ways;
    auto set = static_cast<std::size_t>(
        (addr / static_cast<Addr>(blockSize)) %
        static_cast<Addr>(num_sets));
    return set * ways;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    std::size_t base = setBase(addr);
    for (std::size_t way = 0; way < ways; way++) {
        Line &line = lines[base + way];
        if (line.state.tag != LineTag::NotPresent &&
            line.base == blockBase(addr)) {
            return &line;
        }
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

Cache::Line &
Cache::victimLine(Addr addr)
{
    if (Line *match = findLine(addr))
        return *match;
    std::size_t base = setBase(addr);
    Line *victim = &lines[base];
    for (std::size_t way = 0; way < ways; way++) {
        Line &line = lines[base + way];
        if (line.state.tag == LineTag::NotPresent)
            return line;
        if (line.last_use < victim->last_use)
            victim = &line;
    }
    return *victim;
}

Cache::Line &
Cache::pendingLine()
{
    return lines[pending.way_index];
}

const Cache::Line &
Cache::pendingLine() const
{
    return lines[pending.way_index];
}

bool
Cache::holdsBlock(const Line &line, Addr addr) const
{
    return line.state.tag != LineTag::NotPresent &&
           line.base == blockBase(addr);
}

LineState
Cache::stateFor(const Line &line, Addr addr) const
{
    if (!holdsBlock(line, addr))
        return {LineTag::NotPresent, 0};
    return line.state;
}

Cache::AccessResult
Cache::cpuAccess(const MemRef &ref)
{
    ddc_assert(bus != nullptr, "cache not attached to a bus");
    ddc_assert(!pending.active, "access issued while one is outstanding");
    ddc_assert(!completionReady, "previous completion not consumed");

    accessCounter++;
    Line &line = victimLine(ref.addr);
    LineState state = stateFor(line, ref.addr);
    CpuReaction reaction = protocol.onCpuAccess(state, ref.op, ref.cls);

    stats.add("cache.refs");
    stats.add(refStatName(ref, reaction.needs_bus));

    std::size_t offset =
        static_cast<std::size_t>(ref.addr - blockBase(ref.addr));

    if (!reaction.needs_bus) {
        // Hit: complete within the cache cycle.
        line.state = reaction.next;
        line.last_use = ++lruClock;
        if (reaction.update_value)
            line.data[offset] = ref.data;
        AccessResult result;
        result.complete = true;
        result.value = ref.op == CpuOp::Write ? ref.data
                                              : line.data[offset];
        logCommit(ref, result);
        return result;
    }

    pending.active = true;
    pending.ref = ref;
    pending.reaction = reaction;
    pending.way_index = static_cast<std::size_t>(&line - lines.data());
    pending.phase = computePhase();
    return {};
}

Cache::Phase
Cache::computePhase() const
{
    const Line &line = pendingLine();
    Addr base = blockBase(pending.ref.addr);
    const CpuReaction &reaction = pending.reaction;

    // A dirty victim occupying the target line goes back first.
    if (reaction.allocate && line.state.tag != LineTag::NotPresent &&
        line.base != base && protocol.needsWriteback(line.state)) {
        return Phase::Writeback;
    }

    // An RMW-class transaction takes its input from memory, so a
    // dirty copy of the target block must be flushed first.
    bool rmw_like = reaction.bus_op == BusOp::Rmw ||
                    reaction.bus_op == BusOp::ReadLock;
    if (rmw_like && holdsBlock(line, pending.ref.addr) &&
        protocol.memoryMayBeStale(line.state)) {
        return Phase::Flush;
    }

    // Write-allocate on multi-word blocks needs the block's other
    // words before the write-class transaction can install the line.
    // An Invalid resident block does not count: its data may be
    // partially stale (invalidations carry no data).
    if (reaction.allocate && blockSize > 1 &&
        !stateFor(line, pending.ref.addr).present() &&
        reaction.bus_op != BusOp::Read) {
        return Phase::Fill;
    }
    return Phase::Main;
}

Cache::AccessResult
Cache::takeCompletion()
{
    ddc_assert(completionReady, "no completion available");
    completionReady = false;
    return completion;
}

LineState
Cache::lineState(Addr addr) const
{
    const Line *line = findLine(addr);
    if (line == nullptr)
        return {LineTag::NotPresent, 0};
    return line->state;
}

Word
Cache::lineValue(Addr addr) const
{
    const Line *line = findLine(addr);
    if (line == nullptr)
        return 0;
    return line->data[static_cast<std::size_t>(addr - line->base)];
}

bool
Cache::hasRequest()
{
    if (!pending.active)
        return false;
    revalidatePending();
    return pending.active;
}

BusRequest
Cache::currentRequest()
{
    ddc_assert(pending.active, "no pending request");
    const Line &line = pendingLine();

    BusRequest request;
    switch (pending.phase) {
      case Phase::Writeback:
      case Phase::Flush:
        // Write the dirty victim (Writeback) or the target block
        // itself (Flush) back to memory.
        request.op = BusOp::Write;
        request.addr = line.base;
        request.data = line.data[0];
        if (blockSize > 1) {
            request.block_transfer = true;
            request.block_data = line.data;
        }
        return request;

      case Phase::Fill:
        request.op = BusOp::Read;
        request.addr = pending.ref.addr;
        request.block_transfer = true;
        return request;

      case Phase::Main:
        request.op = pending.reaction.bus_op;
        request.addr = pending.ref.addr;
        request.data = pending.ref.data;
        request.block_transfer = pending.reaction.bus_op == BusOp::Read &&
                                 pending.reaction.allocate &&
                                 blockSize > 1;
        return request;
    }
    ddc_panic("unreachable");
}

void
Cache::requestComplete(const BusResult &result)
{
    ddc_assert(pending.active, "completion without a pending request");
    Line &line = pendingLine();
    Addr base = blockBase(pending.ref.addr);
    std::size_t offset = static_cast<std::size_t>(pending.ref.addr - base);

    switch (pending.phase) {
      case Phase::Writeback:
        stats.add("cache.writeback");
        line.state = {LineTag::NotPresent, 0};
        revalidatePending();
        return;

      case Phase::Flush:
        stats.add("cache.flush");
        // The flushed block now matches memory.
        line.state = protocol.afterSupply(line.state);
        revalidatePending();
        return;

      case Phase::Fill: {
        stats.add("cache.fill");
        ddc_assert(result.block.size() == blockSize,
                   "fill returned a malformed block");
        LineState state = stateFor(line, pending.ref.addr);
        line.base = base;
        line.data = result.block;
        line.state = protocol.afterBusOp(state, BusOp::Read, false);
        line.last_use = ++lruClock;
        revalidatePending();
        return;
      }

      case Phase::Main: {
        const MemRef &ref = pending.ref;
        if (pending.reaction.allocate) {
            LineState state = stateFor(line, ref.addr);
            switch (pending.reaction.bus_op) {
              case BusOp::Read:
                line.base = base;
                if (blockSize > 1) {
                    ddc_assert(result.block.size() == blockSize,
                               "block read returned a malformed block");
                    line.data = result.block;
                } else {
                    line.data[0] = result.data;
                }
                break;
              case BusOp::ReadLock:
                ddc_assert(blockSize == 1 || stateFor(line, ref.addr).present(),
                           "ReadLock allocation without a resident block");
                line.base = base;
                line.data[offset] = result.data;
                break;
              case BusOp::Write:
              case BusOp::WriteUnlock:
              case BusOp::Invalidate:
                ddc_assert(blockSize == 1 || stateFor(line, ref.addr).present(),
                           "write allocation without a resident block");
                line.base = base;
                line.data[offset] = ref.data;
                break;
              case BusOp::Rmw:
                ddc_assert(blockSize == 1 || stateFor(line, ref.addr).present(),
                           "RMW allocation without a resident block");
                line.base = base;
                line.data[offset] =
                    result.rmw_success ? ref.data : result.data;
                break;
            }
            line.state = protocol.afterBusOp(state, pending.reaction.bus_op,
                                             result.rmw_success);
            line.last_use = ++lruClock;
        }
        AccessResult access;
        access.complete = true;
        access.ts_success = result.rmw_success;
        access.value = ref.op == CpuOp::Write || ref.op == CpuOp::WriteUnlock
                           ? ref.data : result.data;
        finish(access);
        return;
      }
    }
    ddc_panic("unreachable");
}

bool
Cache::wouldSupply(Addr addr, Word &value)
{
    const Line *line = findLine(addr);
    if (line == nullptr)
        return false;
    if (!protocol.onSnoop(line->state, BusOp::Read).supply)
        return false;
    value = line->data[static_cast<std::size_t>(addr - line->base)];
    return true;
}

std::vector<Word>
Cache::supplyBlock(Addr addr)
{
    const Line *line = findLine(addr);
    ddc_assert(line != nullptr,
               "supplyBlock for an address this cache does not hold");
    return line->data;
}

void
Cache::observe(const BusTransaction &txn)
{
    Line *found = findLine(txn.addr);
    if (found == nullptr)
        return; // Caches react only to blocks they contain.
    Line &line = *found;
    LineState state = line.state;

    SnoopReaction reaction = protocol.onSnoop(state, txn.op);
    ddc_assert(!reaction.supply,
               "supply decision must be resolved before broadcast");

    bool was_present = state.present();
    if (reaction.snarf && !was_present && blockSize > 1 &&
        txn.block.empty()) {
        // The protocol wants to revive this dead block from the data
        // flowing past, but a word-granular transaction (e.g. a
        // failed test-and-set broadcast) cannot fill a multi-word
        // line: the block's other words may be stale.  Stay dead.
        stats.add("cache.snarf_suppressed");
        return;
    }
    line.state = reaction.next;
    if (reaction.snarf) {
        if (!txn.block.empty()) {
            ddc_assert(txn.block.size() == blockSize,
                       "snarf of a malformed block");
            line.data = txn.block;
        } else {
            line.data[static_cast<std::size_t>(txn.addr - line.base)] =
                txn.data;
        }
        stats.add("cache.snarf");
    }
    if (was_present && !reaction.next.present())
        stats.add("cache.invalidated");
}

void
Cache::supplied(Addr addr)
{
    Line *line = findLine(addr);
    ddc_assert(line != nullptr,
               "supplied() for an address this cache does not hold");
    stats.add("cache.supply");
    line->state = protocol.afterSupply(line->state);
}

void
Cache::revalidatePending()
{
    if (!pending.active)
        return;

    // Re-evaluate the access against the current line state: a snooped
    // broadcast may have completed it (RWB write broadcast / RB read
    // broadcast), changed which transaction is appropriate (e.g. a
    // broken write streak downgrades BI to a plain bus write), or
    // erased / re-created the need for a write-back, fill, or flush.
    Line &line = pendingLine();
    LineState state = stateFor(line, pending.ref.addr);
    CpuReaction reaction = protocol.onCpuAccess(state, pending.ref.op,
                                                pending.ref.cls);
    if (!reaction.needs_bus) {
        stats.add("cache.broadcast_fill");
        line.state = reaction.next;
        if (reaction.update_value) {
            line.data[static_cast<std::size_t>(
                pending.ref.addr - line.base)] = pending.ref.data;
        }
        AccessResult access;
        access.complete = true;
        access.value =
            pending.ref.op == CpuOp::Write
                ? pending.ref.data
                : line.data[static_cast<std::size_t>(pending.ref.addr -
                                                     line.base)];
        finish(access);
        return;
    }
    pending.reaction = reaction;
    pending.phase = computePhase();
}

void
Cache::finish(const AccessResult &result)
{
    logCommit(pending.ref, result);
    pending.active = false;
    completionReady = true;
    completion = result;
}

void
Cache::logCommit(const MemRef &ref, const AccessResult &result)
{
    if (log == nullptr)
        return;
    LogEntry entry;
    entry.cycle = clock.now;
    entry.pe = pe;
    entry.op = ref.op;
    entry.addr = ref.addr;
    entry.value = result.value;
    if (ref.op == CpuOp::TestAndSet) {
        entry.stored = ref.data;
        entry.ts_success = result.ts_success;
    }
    log->append(entry);
}

} // namespace ddc
