#include "base/logging.hh"

#include <cstdlib>
#include <iostream>

namespace ddc {

void
panicImpl(const char *file, int line, const std::string &message)
{
    std::cerr << "panic: " << message << " [" << file << ":" << line << "]"
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &message)
{
    std::cerr << "fatal: " << message << " [" << file << ":" << line << "]"
              << std::endl;
    std::exit(1);
}

} // namespace ddc
