/**
 * @file
 * Observability-on vs observability-off equivalence suite.
 *
 * The observability subsystem's contract is that it *observes*:
 * enabling tracing, histograms, or sampling must not perturb the
 * simulation — every counter, every execution-log entry, the final
 * cycle count, and the serialized RunResult JSON must be
 * byte-identical with the features on or off, including under the
 * Random arbiter (whose RNG stream must not shift) and for lock
 * workloads (whose episode tracking hangs off the bus hot path).
 * Histograms and samples only *add* JSON fields; everything shared
 * stays byte-identical.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/simulator.hh"
#include "exp/runner.hh"
#include "obs/recorder.hh"
#include "sim/system.hh"
#include "sync/workload.hh"
#include "trace/synthetic.hh"

namespace ddc {
namespace {

constexpr const char *kTracePath = "trace_determinism_tmp.json";

/** Everything observable from one run, for byte-wise comparison. */
struct Observed
{
    Cycle cycles = 0;
    RunStatus status = RunStatus::Finished;
    std::string counters;
    std::vector<LogEntry> log;
};

void
expectIdentical(const Observed &observed, const Observed &plain)
{
    EXPECT_EQ(observed.cycles, plain.cycles);
    EXPECT_EQ(observed.status, plain.status);
    EXPECT_EQ(observed.counters, plain.counters);
    ASSERT_EQ(observed.log.size(), plain.log.size());
    for (std::size_t i = 0; i < observed.log.size(); i++) {
        const LogEntry &a = observed.log[i];
        const LogEntry &b = plain.log[i];
        EXPECT_EQ(a.seq, b.seq) << "log entry " << i;
        EXPECT_EQ(a.cycle, b.cycle) << "log entry " << i;
        EXPECT_EQ(a.pe, b.pe) << "log entry " << i;
        EXPECT_EQ(a.op, b.op) << "log entry " << i;
        EXPECT_EQ(a.addr, b.addr) << "log entry " << i;
        EXPECT_EQ(a.value, b.value) << "log entry " << i;
        EXPECT_EQ(a.stored, b.stored) << "log entry " << i;
        EXPECT_EQ(a.ts_success, b.ts_success) << "log entry " << i;
    }
}

/** Run once; when @p traced, the System claims a real trace file. */
Observed
observeFlat(SystemConfig config, const Trace &trace, bool traced)
{
    if (traced)
        obs::setTraceOutput(kTracePath);
    config.record_log = true;
    Observed seen;
    {
        System system(config);
        system.loadTrace(trace);
        seen.cycles = system.run();
        seen.status = system.runStatus();
        seen.counters = system.counters().report();
        seen.log = system.log().all();
        if (traced) {
            // Non-vacuous: the run must actually have traced events.
            auto *observability = system.observability();
            EXPECT_NE(observability, nullptr);
            if (observability) {
                auto *sink =
                    observability->trace(obs::Category::Bus);
                EXPECT_NE(sink, nullptr);
                if (sink)
                    EXPECT_GT(sink->size(), 0u);
            }
        }
    }
    if (traced) {
        obs::setTraceOutput("");
        std::remove(kTracePath);
    }
    return seen;
}

void
checkFlat(SystemConfig config, const Trace &trace)
{
    Observed traced = observeFlat(config, trace, true);
    Observed plain = observeFlat(config, trace, false);
    expectIdentical(traced, plain);

    // Histograms and sampling ride the same hot-path hooks; they must
    // be just as invisible.
    SystemConfig with_histograms = config;
    with_histograms.histograms = true;
    with_histograms.sample_every = 64;
    expectIdentical(observeFlat(with_histograms, trace, false), plain);
}

TEST(TraceDeterminism, FlatAllProtocols)
{
    auto trace = makeUniformRandomTrace(8, 1200, 64, 0.3, 0.05, 41);
    for (auto protocol :
         {ProtocolKind::WriteThrough, ProtocolKind::WriteOnce,
          ProtocolKind::Rb, ProtocolKind::Rwb}) {
        SystemConfig config;
        config.num_pes = 8;
        config.cache_lines = 64;
        config.protocol = protocol;
        checkFlat(config, trace);
    }
}

TEST(TraceDeterminism, RandomArbiterKeepsRngStream)
{
    // Tracing must consume no randomness: grants, and with them every
    // downstream counter, would shift otherwise.
    auto trace = makeHotSpotTrace(8, 300, 8);
    SystemConfig config;
    config.num_pes = 8;
    config.cache_lines = 128;
    config.protocol = ProtocolKind::Rwb;
    config.arbiter = ArbiterKind::Random;
    config.arbiter_seed = 99;
    checkFlat(config, trace);
}

TEST(TraceDeterminism, QuiescentSkipAndMultiWordBlocks)
{
    // The quiesce category hooks skipQuiescent; the miss spans hook
    // block transfers.  Neither may change the schedule.
    auto trace = makeUniformRandomTrace(8, 1000, 64, 0.4, 0.1, 23);
    SystemConfig config;
    config.num_pes = 8;
    config.cache_lines = 32;
    config.block_words = 4;
    config.protocol = ProtocolKind::Rb;
    config.memory_latency = 16;
    config.skip_quiescent = true;
    checkFlat(config, trace);
}

TEST(TraceDeterminism, RunResultJsonByteIdenticalTracingOnVsOff)
{
    // Through the experiment engine: the serialized JSON payload — the
    // artifact the repro pipeline diffs — is byte-identical with
    // tracing on or off, with and without --timing.
    auto trace = makeProducerConsumerTrace(8, 32, 20, 2);
    exp::TraceRun run;
    run.trace = trace;
    run.config.num_pes = 8;
    run.config.cache_lines = 128;
    run.config.protocol = ProtocolKind::Rwb;

    obs::setTraceOutput(kTracePath);
    exp::RunResult traced = exp::executeTraceRun(run);
    obs::setTraceOutput("");
    std::remove(kTracePath);
    exp::RunResult plain = exp::executeTraceRun(run);

    EXPECT_EQ(traced.toJson(false).dump(), plain.toJson(false).dump());
}

TEST(TraceDeterminism, HistogramsOnlyAddJsonFields)
{
    auto trace = makeUniformRandomTrace(8, 1000, 64, 0.3, 0.05, 13);
    exp::TraceRun run;
    run.trace = trace;
    run.config.num_pes = 8;
    run.config.cache_lines = 64;
    run.config.protocol = ProtocolKind::Rb;

    exp::RunResult plain = exp::executeTraceRun(run);
    EXPECT_TRUE(plain.histograms.isNull());
    EXPECT_TRUE(plain.samples.isNull());

    run.config.histograms = true;
    run.config.sample_every = 100;
    exp::RunResult observed = exp::executeTraceRun(run);
    EXPECT_FALSE(observed.histograms.isNull());
    EXPECT_FALSE(observed.samples.isNull());

    // Strip the added fields: everything shared is byte-identical.
    observed.histograms = exp::Json();
    observed.samples = exp::Json();
    EXPECT_EQ(observed.toJson(false).dump(), plain.toJson(false).dump());
}

TEST(TraceDeterminism, LockWorkloadsWithHistograms)
{
    for (auto lock : {sync::LockKind::TestAndSet,
                      sync::LockKind::TestAndTestAndSet}) {
        sync::LockExperimentConfig config;
        config.num_pes = 8;
        config.lock = lock;
        config.protocol = ProtocolKind::Rwb;
        config.acquisitions_per_pe = 4;
        config.cs_increments = 4;

        auto plain = sync::runLockExperiment(config);
        config.histograms = true;
        auto observed = sync::runLockExperiment(config);

        EXPECT_EQ(observed.cycles, plain.cycles);
        EXPECT_EQ(observed.bus_transactions, plain.bus_transactions);
        EXPECT_EQ(observed.rmw_attempts, plain.rmw_attempts);
        EXPECT_EQ(observed.rmw_failures, plain.rmw_failures);
        EXPECT_EQ(observed.counter_value, plain.counter_value);
        EXPECT_TRUE(observed.completed);
        EXPECT_FALSE(plain.has_metrics);
        EXPECT_TRUE(observed.has_metrics);
    }
}

} // namespace
} // namespace ddc
