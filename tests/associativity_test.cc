/**
 * @file
 * Tests of set-associative caches (the "set size 1" half of
 * assumption 7 made configurable): mapping, LRU replacement, conflict
 * elimination, duplicate-tag prevention, and consistency under every
 * protocol with associativity.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "sim/scenario.hh"
#include "trace/synthetic.hh"

namespace ddc {
namespace {

/** A one-PE system for victim/replacement observation. */
std::unique_ptr<System>
makeSystem(std::size_t lines, std::size_t ways,
           ProtocolKind protocol = ProtocolKind::Rb)
{
    SystemConfig config;
    config.num_pes = 1;
    config.cache_lines = lines;
    config.ways = ways;
    config.protocol = protocol;
    return std::make_unique<System>(config);
}

void
runRefs(System &system, const std::vector<MemRef> &refs)
{
    Trace trace(1);
    for (const auto &ref : refs)
        trace.append(0, ref);
    system.loadTrace(trace);
    system.run();
    ASSERT_TRUE(system.allDone());
}

MemRef
read(Addr addr)
{
    return {CpuOp::Read, addr, 0, DataClass::Shared};
}

MemRef
write(Addr addr, Word data)
{
    return {CpuOp::Write, addr, data, DataClass::Shared};
}

TEST(Associativity, TwoWaySurvivesPingPongConflict)
{
    // 4 lines, 2 ways -> 2 sets.  Addresses 0 and 2 map to set 0; in
    // a direct-mapped cache (2 lines) they'd evict each other.
    auto system = makeSystem(4, 2);
    std::vector<MemRef> refs;
    for (int i = 0; i < 10; i++) {
        refs.push_back(read(0));
        refs.push_back(read(2));
    }
    runRefs(*system, refs);
    // Two cold misses, all the rest hit.
    EXPECT_EQ(system->counters().get("bus.read"), 2u);
    EXPECT_EQ(system->lineState(0, 0).tag, LineTag::Readable);
    EXPECT_EQ(system->lineState(0, 2).tag, LineTag::Readable);
}

TEST(Associativity, DirectMappedThrashesOnTheSamePattern)
{
    auto system = makeSystem(2, 1);
    std::vector<MemRef> refs;
    for (int i = 0; i < 10; i++) {
        refs.push_back(read(0));
        refs.push_back(read(2));
    }
    runRefs(*system, refs);
    EXPECT_EQ(system->counters().get("bus.read"), 20u); // all miss
}

TEST(Associativity, LruEvictsTheColdestWay)
{
    // One set of two ways; three conflicting addresses 0, 2, 4.
    auto system = makeSystem(2, 2);
    runRefs(*system, {read(0), read(2), read(0), read(4)});
    // LRU of {0, 2} at the fill of 4 is 2.
    EXPECT_EQ(system->lineState(0, 0).tag, LineTag::Readable);
    EXPECT_EQ(system->lineState(0, 2).tag, LineTag::NotPresent);
    EXPECT_EQ(system->lineState(0, 4).tag, LineTag::Readable);
}

TEST(Associativity, DirtyVictimInOneWayWrittenBack)
{
    auto system = makeSystem(2, 2);
    runRefs(*system, {
        write(0, 1), write(0, 2), // way A: dirty Local
        read(2),                  // way B
        read(2),                  // make way A the LRU victim
        read(4),                  // evicts 0: write-back expected
    });
    EXPECT_EQ(system->memoryValue(0), 2u);
    EXPECT_EQ(system->counters().get("cache.writeback"), 1u);
}

TEST(Associativity, NoDuplicateTagsAfterInvalidationRefill)
{
    // An Invalid line keeps its tag; a refill must reuse that way,
    // not allocate the address into a second way of the set.
    SystemConfig config;
    config.num_pes = 2;
    config.cache_lines = 4;
    config.ways = 2;
    config.protocol = ProtocolKind::Rb;

    System system(config);
    Trace trace(2);
    trace.append(0, read(0));
    trace.append(1, write(0, 9)); // invalidates PE0's copy
    for (int i = 0; i < 8; i++)
        trace.append(0, read(0)); // refill
    system.loadTrace(trace);
    system.run();
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(system.cacheValue(0, 0), 9u);
    EXPECT_EQ(system.lineState(0, 0).tag, LineTag::Readable);
}

TEST(Associativity, FullyAssociativeNeverConflicts)
{
    auto system = makeSystem(8, 8); // one set
    std::vector<MemRef> refs;
    for (int pass = 0; pass < 4; pass++) {
        for (Addr a = 0; a < 8; a++)
            refs.push_back(read(a * 16 + 1)); // wild strides
    }
    runRefs(*system, refs);
    EXPECT_EQ(system->counters().get("bus.read"), 8u); // cold only
}

TEST(Associativity, InvalidConfigRejected)
{
    EXPECT_DEATH(makeSystem(4, 3), "associativity");
}

class AssociativityConsistency
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, int>>
{
};

TEST_P(AssociativityConsistency, RandomTracesStayConsistent)
{
    auto [kind, ways] = GetParam();
    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 16;
    config.ways = static_cast<std::size_t>(ways);
    config.protocol = kind;

    auto trace = makeUniformRandomTrace(4, 600, 48, 0.35, 0.1, 654);
    auto summary = runTrace(config, trace, /*check_consistency=*/true);
    ASSERT_TRUE(summary.completed);
    EXPECT_TRUE(summary.consistent);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AssociativityConsistency,
    ::testing::Combine(::testing::Values(ProtocolKind::Rb,
                                         ProtocolKind::Rwb,
                                         ProtocolKind::WriteOnce,
                                         ProtocolKind::WriteThrough),
                       ::testing::Values(2, 4, 16)),
    [](const auto &info) {
        return std::string(toString(std::get<0>(info.param))) + "_" +
               std::to_string(std::get<1>(info.param)) + "way";
    });

TEST(Associativity, ComposesWithMultiWordBlocks)
{
    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 16;
    config.ways = 4;
    config.block_words = 4;
    config.protocol = ProtocolKind::Rb;

    auto trace = makeUniformRandomTrace(4, 500, 48, 0.35, 0.1, 655);
    auto summary = runTrace(config, trace, true);
    ASSERT_TRUE(summary.completed);
    EXPECT_TRUE(summary.consistent);
}

TEST(Associativity, ScenarioRigStillDirectMapped)
{
    Scenario scenario(ProtocolKind::Rb, 2, 4);
    scenario.write(0, 1, 5);
    scenario.read(1, 5); // conflicts with 1 (mod 4)
    EXPECT_EQ(scenario.value(0, 1), 5u);
}

} // namespace
} // namespace ddc
