#include "stats/counter.hh"

#include <sstream>

namespace ddc {
namespace stats {

void
CounterSet::add(const std::string &name, std::uint64_t delta)
{
    counters[name] += delta;
}

std::uint64_t
CounterSet::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

bool
CounterSet::has(const std::string &name) const
{
    return counters.find(name) != counters.end();
}

double
CounterSet::ratio(const std::string &numerator,
                  const std::string &denominator) const
{
    std::uint64_t den = get(denominator);
    if (den == 0)
        return 0.0;
    return static_cast<double>(get(numerator)) / static_cast<double>(den);
}

std::uint64_t
CounterSet::sumPrefix(const std::string &prefix) const
{
    std::uint64_t total = 0;
    for (auto it = counters.lower_bound(prefix); it != counters.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += it->second;
    }
    return total;
}

void
CounterSet::clear()
{
    for (auto &entry : counters)
        entry.second = 0;
}

void
CounterSet::merge(const CounterSet &other)
{
    for (const auto &entry : other.counters)
        counters[entry.first] += entry.second;
}

std::vector<std::string>
CounterSet::names() const
{
    std::vector<std::string> result;
    result.reserve(counters.size());
    for (const auto &entry : counters) {
        if (entry.second != 0)
            result.push_back(entry.first);
    }
    return result;
}

std::string
CounterSet::report() const
{
    std::ostringstream os;
    for (const auto &entry : counters) {
        if (entry.second != 0)
            os << entry.first << " = " << entry.second << "\n";
    }
    return os.str();
}

} // namespace stats
} // namespace ddc
