/**
 * @file
 * Ready-made synchronization experiments (Section 6's hot-spot study).
 */

#ifndef DDC_SYNC_WORKLOAD_HH
#define DDC_SYNC_WORKLOAD_HH

#include <cstdint>

#include "core/factory.hh"
#include "obs/metrics.hh"
#include "sim/system.hh"
#include "sync/programs.hh"

namespace ddc {
namespace sync {

/** Configuration of a lock-contention experiment. */
struct LockExperimentConfig
{
    int num_pes = 4;
    LockKind lock = LockKind::TestAndTestAndSet;
    ProtocolKind protocol = ProtocolKind::Rb;
    int acquisitions_per_pe = 8;
    int cs_increments = 4;
    int local_work = 0;
    std::size_t cache_lines = 256;
    /**
     * Extra bus-occupancy cycles per memory-touching transaction
     * (SystemConfig::memory_latency; 0 = the paper's unified cycle).
     * Raising it makes the workload idle-heavy: PEs spend most cycles
     * stalled behind multi-cycle transfers, the regime the quiescent-
     * skip engine collapses.
     */
    std::size_t memory_latency = 0;
    bool record_log = false;
    /**
     * Collect latency histograms for this run (lock acquisition,
     * handoff, miss service, ...); surfaced in
     * LockExperimentResult::metrics.
     */
    bool histograms = false;
};

/** Measured outcome of a lock-contention experiment. */
struct LockExperimentResult
{
    Cycle cycles = 0;
    /** Of cycles, how many run() fast-forwarded (quiescent skip). */
    Cycle skipped_cycles = 0;
    std::uint64_t bus_transactions = 0;
    std::uint64_t rmw_attempts = 0;
    std::uint64_t rmw_failures = 0;
    /** Final value of the shared counter (mutual-exclusion witness). */
    Word counter_value = 0;
    /** Expected counter value with correct mutual exclusion. */
    Word expected_counter = 0;
    /** Bus transactions per successful acquisition. */
    double bus_per_acquisition = 0.0;
    bool completed = false;
    /** True when the run collected latency histograms. */
    bool has_metrics = false;
    /** Latency histograms (valid when has_metrics). */
    obs::RunMetrics metrics;
};

/** Word address of the lock used by runLockExperiment. */
Addr lockAddr();

/** Word address of the shared counter used by runLockExperiment. */
Addr counterAddr();

/**
 * Run an M-PE critical-section contention experiment and return the
 * measured traffic.  @p out_system optionally receives the finished
 * System for further inspection (e.g. consistency checks).
 */
LockExperimentResult runLockExperiment(const LockExperimentConfig &config,
                                       std::unique_ptr<System> *out_system =
                                           nullptr);

/**
 * Run an N-PE barrier for @p iterations episodes; returns the cycle
 * count, or 0 when the barrier failed to complete (deadlock).
 */
Cycle runBarrierExperiment(int num_pes, int iterations,
                           ProtocolKind protocol);

} // namespace sync
} // namespace ddc

#endif // DDC_SYNC_WORKLOAD_HH
