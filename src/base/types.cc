#include "base/types.hh"

namespace ddc {

std::string_view
toString(LineTag tag)
{
    switch (tag) {
      case LineTag::NotPresent: return "NP";
      case LineTag::Invalid:    return "I";
      case LineTag::Readable:   return "R";
      case LineTag::Local:      return "L";
      case LineTag::FirstWrite: return "F";
      case LineTag::Valid:      return "V";
      case LineTag::Reserved:   return "Res";
      case LineTag::Dirty:      return "D";
    }
    return "?";
}

std::string_view
toString(CpuOp op)
{
    switch (op) {
      case CpuOp::Read:       return "CpuRead";
      case CpuOp::Write:      return "CpuWrite";
      case CpuOp::TestAndSet: return "CpuTestAndSet";
      case CpuOp::ReadLock:   return "CpuReadLock";
      case CpuOp::WriteUnlock: return "CpuWriteUnlock";
    }
    return "?";
}

std::string_view
toString(BusOp op)
{
    switch (op) {
      case BusOp::Read:        return "BusRead";
      case BusOp::Write:       return "BusWrite";
      case BusOp::Invalidate:  return "BusInvalidate";
      case BusOp::Rmw:         return "BusRmw";
      case BusOp::ReadLock:    return "BusReadLock";
      case BusOp::WriteUnlock: return "BusWriteUnlock";
    }
    return "?";
}

std::string_view
toString(DataClass cls)
{
    switch (cls) {
      case DataClass::Code:   return "Code";
      case DataClass::Local:  return "Local";
      case DataClass::Shared: return "Shared";
    }
    return "?";
}

} // namespace ddc
