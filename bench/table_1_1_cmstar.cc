/**
 * @file
 * Table 1-1 reproduction: Cm* emulated cache results.
 *
 * Raskin's original traces no longer exist; per DESIGN.md we
 * substitute synthetic streams with the same reference mix (App A: 8%
 * local writes, 5% shared; App B: 6.7% / 10%) and a Zipf locality
 * model for code/local data, replayed through the Cm* caching policy
 * (code+local cachable, write-through local, shared never cached).
 * The table prints measured miss ratios next to the paper's figures;
 * the trend to match is the read-miss ratio falling from ~25% to ~6%
 * as the cache grows 256 -> 2048 words while local-write and shared
 * columns stay fixed at the mix fractions.
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

struct MissBreakdown
{
    double read_miss = 0.0;
    double local_writes = 0.0;
    double shared = 0.0;
    double total = 0.0;
};

/** Scrape the Table 1-1 percentage columns out of one run's counters. */
MissBreakdown
breakdown(const exp::RunResult &result)
{
    const auto &counters = result.counters;
    auto refs = static_cast<double>(result.total_refs);
    MissBreakdown out;
    out.read_miss =
        100.0 *
        static_cast<double>(counters.get("cache.read_miss.Code") +
                            counters.get("cache.read_miss.Local")) /
        refs;
    out.local_writes =
        100.0 *
        static_cast<double>(counters.get("cache.write_miss.Local") +
                            counters.get("cache.write_hit.Local")) /
        refs;
    out.shared = 100.0 *
                 static_cast<double>(
                     counters.sumPrefix("cache.read_miss.Shared") +
                     counters.sumPrefix("cache.read_hit.Shared") +
                     counters.sumPrefix("cache.write_miss.Shared") +
                     counters.sumPrefix("cache.ts.Shared")) /
                 refs;
    out.total = out.read_miss + out.local_writes + out.shared;
    return out;
}

struct PaperRow
{
    std::size_t cache_size;
    double read_miss_a, read_miss_b;
    double local_a, local_b;
    double shared_a, shared_b;
    double total_a, total_b;
};

// Table 1-1 as printed in the paper (App A first line, App B second).
const PaperRow kPaperRows[] = {
    {256, 26.1, 25.0, 8.0, 6.7, 5.0, 10.0, 39.1, 41.7},
    {512, 21.7, 28.8, 8.0, 6.7, 5.0, 10.0, 34.7, 37.5},
    {1024, 11.3, 10.8, 8.0, 6.7, 5.0, 10.0, 24.3, 27.5},
    {2048, 6.1, 5.8, 8.0, 6.7, 5.0, 10.0, 19.1, 22.5},
};

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Table 1-1: Cm* emulated cache results\n"
        "(paper values / measured on synthetic Cm*-mix traces; set size\n"
        "1 word; only code and local data cachable; write-through local;\n"
        "all shared references uncached)\n\n";

    const std::size_t refs = 40000;
    const int num_pes = 4;

    exp::ParamGrid grid;
    grid.axis("cache_size", {"256", "512", "1024", "2048"});
    grid.axis("app", {"A", "B"});

    exp::Experiment spec("table_1_1_cmstar",
                         "Table 1-1: Cm* emulated cache miss ratios by "
                         "cache size and application");
    spec.addGrid(grid, [grid](std::size_t flat) {
        auto indices = grid.indicesAt(flat);
        exp::TraceRun run;
        run.config.num_pes = num_pes;
        run.config.cache_lines = kPaperRows[indices[0]].cache_size;
        run.config.protocol = ProtocolKind::CmStar;
        auto params = indices[1] == 0 ? cmStarApplicationA()
                                      : cmStarApplicationB();
        run.trace = makeCmStarTrace(params, num_pes, refs, 1984);
        return run;
    });
    const auto &results = session.run(spec);

    Table table;
    table.setHeader({"Cache Size", "App", "Read Miss %", "",
                     "Local Writes %", "", "Shared R/W %", "",
                     "Total Miss %", ""});
    table.addRow({"", "", "paper", "measured", "paper", "measured",
                  "paper", "measured", "paper", "measured"});
    table.addSeparator();

    std::size_t flat = 0;
    for (const auto &row : kPaperRows) {
        auto a = breakdown(results[flat++]);
        auto b = breakdown(results[flat++]);
        table.addRow({std::to_string(row.cache_size), "A",
                      Table::num(row.read_miss_a), Table::num(a.read_miss),
                      Table::num(row.local_a), Table::num(a.local_writes),
                      Table::num(row.shared_a), Table::num(a.shared),
                      Table::num(row.total_a), Table::num(a.total)});
        table.addRow({"", "B", Table::num(row.read_miss_b),
                      Table::num(b.read_miss), Table::num(row.local_b),
                      Table::num(b.local_writes), Table::num(row.shared_b),
                      Table::num(b.shared), Table::num(row.total_b),
                      Table::num(b.total)});
        table.addSeparator();
    }
    std::cout << table.render() << "\n";
    std::cout <<
        "Shape to check: read-miss ratio falls steeply with cache size\n"
        "while the local-write and shared columns stay pinned at the\n"
        "reference mix - so shared references dominate the residual miss\n"
        "budget of large caches, which is the paper's motivation for\n"
        "caching shared data at all.\n\n";
}

void
BM_CmStarEmulation(benchmark::State &state)
{
    auto cache_lines = static_cast<std::size_t>(state.range(0));
    auto trace = makeCmStarTrace(cmStarApplicationA(), 4, 10000, 7);
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = cache_lines;
        config.protocol = ProtocolKind::CmStar;
        auto summary = runTrace(config, trace);
        benchmark::DoNotOptimize(summary.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            40000);
}
BENCHMARK(BM_CmStarEmulation)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
