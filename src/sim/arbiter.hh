/**
 * @file
 * Bus arbitration policies (the paper's assumption 2: "There is a bus
 * arbitrator that allocates access to the bus").
 */

#ifndef DDC_SIM_ARBITER_HH
#define DDC_SIM_ARBITER_HH

#include <memory>
#include <vector>

#include "base/types.hh"
#include "trace/rng.hh"

namespace ddc {

/** Available arbitration policies. */
enum class ArbiterKind
{
    RoundRobin,    //!< rotating priority; starvation-free
    FixedPriority, //!< lowest requester index always wins
    Random,        //!< uniform random among requesters
};

/** Printable name of an ArbiterKind. */
std::string_view toString(ArbiterKind kind);

/** Picks which requester owns the bus this cycle. */
class Arbiter
{
  public:
    virtual ~Arbiter() = default;

    /**
     * Choose one of @p requesters (non-empty, ascending client
     * indices).  Called once per cycle with at least one requester.
     */
    virtual int pick(const std::vector<int> &requesters) = 0;
};

/**
 * Build an arbiter.
 * @param seed Used by ArbiterKind::Random only.
 */
std::unique_ptr<Arbiter> makeArbiter(ArbiterKind kind,
                                     std::uint64_t seed = 0);

} // namespace ddc

#endif // DDC_SIM_ARBITER_HH
