#include "sim/kernel.hh"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "base/logging.hh"

namespace ddc {

std::string_view
toString(RunStatus status)
{
    switch (status) {
      case RunStatus::Finished: return "finished";
      case RunStatus::TimedOut: return "timed_out";
    }
    return "?";
}

namespace {

// Atomic so parallel sweeps (exp runner worker threads) may read them
// while the main thread parses flags; flipped only before any machine
// runs in practice.
std::atomic<bool> quiescentSkip{true};
std::atomic<bool> lookaheadSwitch{true};
std::atomic<int> defaultShardLanes{1};

/** Wall ms between two steady-clock points. */
double
elapsedMs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

/** Wall us between two steady-clock points (kernel trace args). */
std::int64_t
elapsedUs(std::chrono::steady_clock::time_point from,
          std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               to - from)
        .count();
}

} // namespace

void
setQuiescentSkipEnabled(bool enabled)
{
    quiescentSkip.store(enabled, std::memory_order_relaxed);
}

bool
quiescentSkipEnabled()
{
    return quiescentSkip.load(std::memory_order_relaxed);
}

void
setLookaheadEnabled(bool enabled)
{
    lookaheadSwitch.store(enabled, std::memory_order_relaxed);
}

bool
lookaheadEnabled()
{
    return lookaheadSwitch.load(std::memory_order_relaxed);
}

void
setDefaultShards(int shards)
{
    ddc_assert(shards >= 1, "shard count must be positive");
    defaultShardLanes.store(shards, std::memory_order_relaxed);
}

int
defaultShards()
{
    return defaultShardLanes.load(std::memory_order_relaxed);
}

Kernel::Kernel(Clock &clock, const KernelConfig &config)
    : clock(clock), config(config)
{
    ddc_assert(config.shards >= 1, "kernel needs at least one lane");
}

Kernel::~Kernel()
{
    stopWorkers();
}

Shard &
Kernel::makeSerialShard(std::uint64_t seed, std::size_t agent_slots)
{
    ddc_assert(!serial, "a kernel has at most one serial shard");
    serial = std::make_unique<Shard>(nextShardId++, seed, agent_slots);
    return *serial;
}

Shard &
Kernel::makeShard(std::uint64_t seed, std::size_t agent_slots)
{
    ddc_assert(laneCount == 0, "shards must be created before running");
    group.push_back(
        std::make_unique<Shard>(nextShardId++, seed, agent_slots));
    return *group.back();
}

int
Kernel::workerLanes() const
{
    if (sequentialOnly || group.size() <= 1)
        return 1;
    return std::min<int>(config.shards,
                         static_cast<int>(group.size()));
}

void
Kernel::tickOnce()
{
    // Every shard is synced before the serial phase, not just before
    // its own tick: a serial-phase commit (a global bus grant, a home
    // node completion) delivers synchronously into cluster-resident
    // caches, and those must stamp the commit cycle.
    if (serial)
        serial->syncLocalTime(clock.now);
    for (auto &shard : group)
        shard->syncLocalTime(clock.now);
    if (serial)
        serial->tick();
    for (auto &shard : group)
        shard->tick();
    clock.now++;
}

bool
Kernel::allDone() const
{
    if (serial && !serial->done())
        return false;
    for (const auto &shard : group) {
        if (!shard->done())
            return false;
    }
    return true;
}

Cycle
Kernel::earliestNextEvent() const
{
    Cycle earliest = kNever;
    if (serial) {
        earliest = serial->nextEventCycle(clock.now);
        if (earliest <= clock.now)
            return clock.now;
    }
    for (const auto &shard : group) {
        Cycle next = shard->nextEventCycle(clock.now);
        if (next <= clock.now)
            return clock.now;
        earliest = std::min(earliest, next);
    }
    return earliest;
}

void
Kernel::skipQuiescent(Cycle count)
{
    if (quiesce) {
        obs::TraceEvent event;
        event.ts = clock.now;
        event.dur = count;
        event.name = "quiesce";
        event.phase = 'X';
        event.track = obs::kTrackSim;
        event.tid = 0;
        quiesce->push(event);
    }
    if (serial) {
        serial->syncLocalTime(clock.now);
        serial->skipCycles(count);
    }
    for (auto &shard : group) {
        shard->syncLocalTime(clock.now);
        shard->skipCycles(count);
    }
    clock.now += count;
    skipped += count;
}

void
Kernel::flushStalls() const
{
    if (serial)
        serial->flushStalls();
    for (const auto &shard : group)
        shard->flushStalls();
}

Cycle
Kernel::lookaheadWindow(Cycle end) const
{
    const Cycle now = clock.now;
    // The serial shard is bulk-skipped, not ticked, across a window:
    // the window may not cross its next event (a pending arm or the
    // end of a global transfer both pull this to now / now + left).
    Cycle bound = end;
    // Sampling clamp: rows must land exactly on the sampling grid so
    // the recorded series is identical at every lane count; the
    // window may not jump past the next sample point.
    if (sampler)
        bound = std::min(bound, sampler->nextAt());
    if (serial)
        bound = std::min(bound, serial->nextEventCycle(now));
    if (bound <= now + 1)
        return 1;
    // Cross-shard edge: shard traffic first lands on the global
    // interconnect at the shard's earliestGlobalEmission, and the
    // serial phase first observes it one cycle after that.
    for (const auto &shard : group) {
        Cycle emission = shard->earliestGlobalEmission(now);
        if (emission == kNever)
            continue;
        bound = std::min(bound, emission + 1);
        if (bound <= now + 1)
            return 1;
    }
    // Completion clamp: allDone() is only re-checked at the barrier,
    // so the window may not run past the cycle after the one whose
    // tick could first finish the machine.
    Cycle done_by = now;
    if (serial && !serial->done())
        done_by = std::max(done_by, serial->earliestDoneCycle(now));
    for (const auto &shard : group) {
        if (!shard->done())
            done_by = std::max(done_by, shard->earliestDoneCycle(now));
    }
    if (done_by != kNever)
        bound = std::min(bound, done_by + 1);
    return bound > now ? bound - now : 1;
}

RunStatus
Kernel::run(Cycle max_cycles)
{
    Cycle end = clock.now + max_cycles;
    // Next-event time advance: when no bus can grant and no agent can
    // act this cycle, jump the clock to the earliest future event
    // (typically the end of a memory-latency transfer) instead of
    // ticking through the quiescent interval.  Every skipped cycle is
    // bulk-accounted exactly as a tick would have, so counters, the
    // execution log, and arbiter RNG streams are byte-identical with
    // skipping on or off.
    bool skipping = config.skip_quiescent && quiescentSkipEnabled();
    bool lookahead = config.lookahead && lookaheadEnabled();
    int lanes = workerLanes();
    if (lanes > 1)
        startWorkers(lanes);
    while (!allDone() && clock.now < end) {
        if (sampler && sampler->due(clock.now))
            sampler->sample(clock.now);
        if (skipping) {
            Cycle next = earliestNextEvent();
            if (next > clock.now) {
                // kNever (all components blocked on each other) fast-
                // forwards to the budget, reported as timed_out by the
                // caller.  The skip lands exactly on the next sample
                // point when one is nearer, so the recorded series is
                // identical at every lane count.
                Cycle to = std::min(next, end);
                if (sampler)
                    to = std::min(to, sampler->nextAt());
                skipQuiescent(to - clock.now);
                continue;
            }
        }
        if (lanes > 1) {
            Cycle window = lookahead ? lookaheadWindow(end) : 1;
            windowLen = window;
            windowSkipping = skipping && window > 1;
            if (serial) {
                serial->syncLocalTime(clock.now);
                // The serial phase delivers synchronously into the
                // parallel shards' caches (see tickOnce); sync them
                // to the commit cycle before it runs.
                for (auto &shard : group)
                    shard->syncLocalTime(clock.now);
                if (window > 1) {
                    // No serial event strictly inside the window (the
                    // lookahead bound): the serial phases it replaces
                    // are pure idle/stream accounting, and any arms
                    // the lanes post land too late to be observable
                    // before the barrier.
                    serial->skipCycles(window);
                } else {
                    serial->tick();
                }
            }
            tickShardsParallel();
            if (windowSkipping)
                skipped += windowQuiescentOverlap(clock.now, window);
            epochs++;
            windowSum += window;
            clock.now += window;
        } else {
            tickOnce();
        }
    }
    // Agents still stalled (timeout) carry unflushed skipped-stall
    // cycles; account them before anyone reads counters.
    flushStalls();
    return allDone() ? RunStatus::Finished : RunStatus::TimedOut;
}

void
Kernel::tickShardWindow(Shard &shard, std::size_t index)
{
    const Cycle base = clock.now;
    const Cycle limit = base + windowLen;
    if (windowSkipping)
        windowQuiescent[index].clear();
    for (Cycle at = base; at < limit;) {
        // The shared clock is frozen at the window base until the
        // barrier; the shard-local clock carries the cycle actually
        // being ticked so observability stamps stay lane-invariant.
        shard.syncLocalTime(at);
        if (windowSkipping) {
            // The quiescent-skip engine composed inside the window:
            // shard-local next-event time advance, with the skipped
            // stretch recorded so the coordinator can re-derive which
            // cycles the whole machine sat quiescent.
            Cycle next = shard.nextEventCycle(at);
            if (next > at) {
                Cycle to = std::min(next, limit);
                shard.skipCycles(to - at);
                windowQuiescent[index].emplace_back(at, to);
                at = to;
                continue;
            }
        }
        shard.tick();
        at++;
    }
}

void
Kernel::runLane(int lane)
{
    obs::TraceBuffer *lane_trace =
        laneTrace.empty() ? nullptr : laneTrace[lane];
    std::chrono::steady_clock::time_point started;
    if (lane_trace)
        started = std::chrono::steady_clock::now();
    if (config.deterministic) {
        // Static schedule: shard i always ticks on lane i % lanes, so
        // the partition — and with it every observable byte — is a
        // pure function of (shard count, lane count).
        for (std::size_t i = static_cast<std::size_t>(lane);
             i < group.size();
             i += static_cast<std::size_t>(laneCount)) {
            if (windowLen == 1) {
                group[i]->syncLocalTime(clock.now);
                group[i]->tick();
            } else {
                tickShardWindow(*group[i], i);
            }
        }
    } else {
        // Dynamic schedule: lanes claim the next unticked shard.
        // Every shard still ticks exactly once per window and shards
        // are independent within a window, so results do not change —
        // but the assignment is load-balanced, not reproducible.
        for (std::size_t i = claim.fetch_add(1, std::memory_order_relaxed);
             i < group.size();
             i = claim.fetch_add(1, std::memory_order_relaxed)) {
            if (windowLen == 1) {
                group[i]->syncLocalTime(clock.now);
                group[i]->tick();
            } else {
                tickShardWindow(*group[i], i);
            }
        }
    }
    if (lane_trace) {
        obs::TraceEvent event;
        event.ts = clock.now;
        event.dur = windowLen;
        event.name = "tick";
        event.value = elapsedUs(started,
                                std::chrono::steady_clock::now());
        event.value_name = "wall_us";
        event.phase = 'X';
        event.track = obs::kTrackKernel;
        event.tid = lane;
        lane_trace->push(event);
    }
}

void
Kernel::awaitArrivals()
{
    // Barrier: wait for every worker lane's arrival; the acquire
    // loads pair with the workers' release decrements so all shard
    // writes are visible to the next serial phase.
    for (int left = arrivalsPending.load(std::memory_order_acquire);
         left != 0;
         left = arrivalsPending.load(std::memory_order_acquire)) {
        arrivalsPending.wait(left, std::memory_order_acquire);
    }
}

void
Kernel::tickShardsParallel()
{
    if (!config.deterministic)
        claim.store(0, std::memory_order_relaxed);
    if (windowSkipping && windowQuiescent.size() != group.size())
        windowQuiescent.resize(group.size());
    // Epoch bookkeeping for the kernel trace: the lookahead-window
    // counter track, pushed before the release so it precedes this
    // epoch's lane spans in buffer order.
    if (!laneTrace.empty()) {
        obs::TraceEvent event;
        event.ts = clock.now;
        event.name = "window";
        event.value = static_cast<std::int64_t>(windowLen);
        event.value_name = "cycles";
        event.phase = 'C';
        event.track = obs::kTrackKernel;
        event.tid = 0;
        laneTrace[0]->push(event);
    }
    arrivalsPending.store(laneCount - 1, std::memory_order_relaxed);
    // The release publish of the new epoch orders the claim/arrival
    // resets, the window parameters, and last cycle's serial-phase
    // writes before any worker starts ticking.
    epoch.fetch_add(1, std::memory_order_release);
    epoch.notify_all();
    if (profile || !laneTrace.empty()) {
        auto start = std::chrono::steady_clock::now();
        runLane(0);
        auto ticked = std::chrono::steady_clock::now();
        awaitArrivals();
        auto arrived = std::chrono::steady_clock::now();
        if (profile) {
            profile->kernel_tick_ms += elapsedMs(start, ticked);
            profile->kernel_barrier_ms += elapsedMs(ticked, arrived);
        }
        if (!laneTrace.empty()) {
            obs::TraceEvent event;
            event.ts = clock.now;
            event.dur = windowLen;
            event.name = "wait";
            event.value = elapsedUs(ticked, arrived);
            event.value_name = "wall_us";
            event.phase = 'X';
            event.track = obs::kTrackKernel;
            event.tid = 0;
            laneTrace[0]->push(event);
        }
    } else {
        runLane(0);
        awaitArrivals();
    }
}

Cycle
Kernel::windowQuiescentOverlap(Cycle base, Cycle window)
{
    // Intersect the per-shard quiescent stretches: a cycle every
    // parallel shard skipped (the serial shard is quiescent across
    // the whole window by the lookahead bound) is exactly a cycle the
    // sequential run's whole-machine skip would have covered.
    std::vector<std::pair<Cycle, Cycle>> overlap{{base, base + window}};
    std::vector<std::pair<Cycle, Cycle>> merged;
    for (const auto &segments : windowQuiescent) {
        if (segments.empty())
            return 0;
        merged.clear();
        for (const auto &have : overlap) {
            for (const auto &seg : segments) {
                Cycle lo = std::max(have.first, seg.first);
                Cycle hi = std::min(have.second, seg.second);
                if (lo < hi)
                    merged.emplace_back(lo, hi);
            }
        }
        if (merged.empty())
            return 0;
        overlap.swap(merged);
    }
    Cycle total = 0;
    for (const auto &have : overlap) {
        total += have.second - have.first;
        // Segments are ascending; the writer coalesces abutting
        // spans, so the trace shows the same maximal quiescent
        // intervals a sequential run's whole-machine skips produce.
        if (quiesce) {
            obs::TraceEvent event;
            event.ts = have.first;
            event.dur = have.second - have.first;
            event.name = "quiesce";
            event.phase = 'X';
            event.track = obs::kTrackSim;
            event.tid = 0;
            quiesce->push(event);
        }
    }
    return total;
}

void
Kernel::workerMain(int lane, std::uint64_t seen)
{
    for (;;) {
        epoch.wait(seen, std::memory_order_acquire);
        seen = epoch.load(std::memory_order_acquire);
        if (quitting.load(std::memory_order_acquire))
            return;
        runLane(lane);
        if (arrivalsPending.fetch_sub(1, std::memory_order_acq_rel) == 1)
            arrivalsPending.notify_all();
    }
}

void
Kernel::startWorkers(int lanes)
{
    if (laneCount == lanes)
        return;
    stopWorkers();
    laneCount = lanes;
    // Cut each lane a private kernel-trace buffer (serial phase; the
    // pool is not running yet).  Buffers persist across pool
    // restarts, so a lane always reuses its earlier stream.
    if (kernelSink) {
        while (laneTrace.size() < static_cast<std::size_t>(lanes))
            laneTrace.push_back(kernelSink->newBuffer());
    }
    workers.reserve(static_cast<std::size_t>(lanes - 1));
    // Capture the epoch on this thread: a worker that read it itself
    // could miss a bump published between spawn and its first load and
    // deadlock the first barrier.
    std::uint64_t seen = epoch.load(std::memory_order_relaxed);
    for (int lane = 1; lane < lanes; lane++)
        workers.emplace_back([this, lane, seen] { workerMain(lane, seen); });
}

void
Kernel::stopWorkers()
{
    if (workers.empty()) {
        laneCount = 0;
        return;
    }
    quitting.store(true, std::memory_order_release);
    epoch.fetch_add(1, std::memory_order_release);
    epoch.notify_all();
    for (auto &worker : workers)
        worker.join();
    workers.clear();
    quitting.store(false, std::memory_order_relaxed);
    laneCount = 0;
}

} // namespace ddc
