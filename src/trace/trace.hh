/**
 * @file
 * Memory-reference traces.
 *
 * A Trace is a per-PE ordered stream of memory references.  Traces
 * drive the system simulator directly (trace-driven mode) and are the
 * interchange format between the synthetic workload generators and the
 * benches that reproduce the paper's tables.
 */

#ifndef DDC_TRACE_TRACE_HH
#define DDC_TRACE_TRACE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.hh"

namespace ddc {

/** One memory reference issued by one PE. */
struct MemRef
{
    CpuOp op = CpuOp::Read;
    Addr addr = 0;
    /** Value stored for Write / TestAndSet; ignored for Read. */
    Word data = 0;
    /** Software classification; RB/RWB ignore it, baselines use it. */
    DataClass cls = DataClass::Shared;

    bool operator==(const MemRef &other) const = default;
};

/** Render one reference as "R 0x10 Shared" style text. */
std::string toString(const MemRef &ref);

/**
 * A multi-PE reference trace: one ordered vector of MemRef per PE.
 *
 * The simulator consumes each PE's stream in order; there is no global
 * interleaving in the trace itself — interleaving emerges from the
 * simulated timing, exactly as on the real machine.
 */
class Trace
{
  public:
    /** @param num_pes Number of per-PE streams. */
    explicit Trace(int num_pes = 0);

    /** Number of PE streams. */
    int numPes() const { return static_cast<int>(streams.size()); }

    /** Append a reference to PE @p pe's stream. */
    void append(PeId pe, const MemRef &ref);

    /** Stream of PE @p pe. */
    const std::vector<MemRef> &stream(PeId pe) const;

    /** Total number of references across all PEs. */
    std::size_t totalRefs() const;

    /** Serialize as line-oriented text ("pe op addr data class"). */
    void save(std::ostream &os) const;

    /**
     * Parse a trace produced by save().
     * @return false on malformed input (the trace is left empty).
     */
    bool load(std::istream &is);

    bool operator==(const Trace &other) const = default;

  private:
    std::vector<std::vector<MemRef>> streams;
};

} // namespace ddc

#endif // DDC_TRACE_TRACE_HH
