/**
 * @file
 * Tests of the Section 7 / Figure 7-1 multiple-shared-bus extension:
 * address interleaving, per-bus traffic split, and correctness.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"
#include "verify/consistency.hh"

namespace ddc {
namespace {

TEST(MultiBus, InterleavingRoutesByLowBits)
{
    SystemConfig config;
    config.num_pes = 2;
    config.num_buses = 2;

    Trace trace(2);
    trace.append(0, {CpuOp::Write, 100, 1, DataClass::Shared}); // bus 0
    trace.append(0, {CpuOp::Write, 101, 2, DataClass::Shared}); // bus 1
    System system(config);
    system.loadTrace(trace);
    system.run();
    ASSERT_TRUE(system.allDone());

    EXPECT_EQ(system.memoryValue(100), 1u);
    EXPECT_EQ(system.memoryValue(101), 2u);
    EXPECT_EQ(system.busCounters(0).get("bus.write"), 1u);
    EXPECT_EQ(system.busCounters(1).get("bus.write"), 1u);
}

TEST(MultiBus, TrafficRoughlySplitsAcrossBuses)
{
    SystemConfig config;
    config.num_pes = 4;
    config.num_buses = 2;
    config.protocol = ProtocolKind::Rb;

    auto trace = makeUniformRandomTrace(4, 2000, 64, 0.4, 0.0, 9);
    System system(config);
    system.loadTrace(trace);
    system.run();
    ASSERT_TRUE(system.allDone());

    auto bus0 = system.busCounters(0).get("bus.busy_cycles");
    auto bus1 = system.busCounters(1).get("bus.busy_cycles");
    ASSERT_GT(bus0, 0u);
    ASSERT_GT(bus1, 0u);
    double split = static_cast<double>(bus0) /
                   static_cast<double>(bus0 + bus1);
    EXPECT_NEAR(split, 0.5, 0.1);
}

TEST(MultiBus, ConsistencyHoldsAcrossBanks)
{
    SystemConfig config;
    config.num_pes = 4;
    config.num_buses = 4;
    config.protocol = ProtocolKind::Rwb;
    auto trace = makeUniformRandomTrace(4, 1000, 32, 0.4, 0.1, 10);
    auto summary = runTrace(config, trace, /*check_consistency=*/true);
    ASSERT_TRUE(summary.completed);
    EXPECT_TRUE(summary.consistent);
}

TEST(MultiBus, LemmaHoldsPerAddressAfterRun)
{
    SystemConfig config;
    config.num_pes = 3;
    config.num_buses = 2;
    config.protocol = ProtocolKind::Rb;
    auto trace = makeUniformRandomTrace(3, 500, 16, 0.5, 0.0, 11);
    System system(config);
    system.loadTrace(trace);
    system.run();
    ASSERT_TRUE(system.allDone());

    std::vector<Addr> addrs;
    for (Addr a = 0; a < 16; a++)
        addrs.push_back(sharedBase() + a);
    auto report = checkConfigurationLemma(system, addrs);
    EXPECT_TRUE(report.consistent) << report.first_error;
}

TEST(MultiBus, MorePesStillComplete)
{
    SystemConfig config;
    config.num_pes = 8;
    config.num_buses = 4;
    config.protocol = ProtocolKind::Rwb;
    auto trace = makeUniformRandomTrace(8, 300, 64, 0.3, 0.05, 12);
    auto summary = runTrace(config, trace, true);
    EXPECT_TRUE(summary.completed);
    EXPECT_TRUE(summary.consistent);
}

TEST(MultiBus, SingleBusAndDualBusAgreeOnFinalMemory)
{
    auto trace = makeArrayInitTrace(2, 32);
    for (int buses : {1, 2, 4}) {
        SystemConfig config;
        config.num_pes = 2;
        config.num_buses = buses;
        System system(config);
        system.loadTrace(trace);
        system.run();
        ASSERT_TRUE(system.allDone());
        // Every element holds the value its writer stored.
        Word expected = 1;
        for (PeId pe = 0; pe < 2; pe++) {
            for (Addr i = 0; i < 32; i++) {
                Addr addr = sharedBase() + static_cast<Addr>(pe) * 32 + i;
                Word cached = system.cacheValue(pe, addr);
                Word memory = system.memoryValue(addr);
                Word actual = system.lineState(pe, addr).tag ==
                                      LineTag::Local
                                  ? cached : memory;
                EXPECT_EQ(actual, expected);
                expected++;
            }
        }
    }
}

} // namespace
} // namespace ddc
