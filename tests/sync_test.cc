/**
 * @file
 * Tests of the synchronization layer: TS and TTS lock programs achieve
 * mutual exclusion on every protocol, TTS generates less bus traffic
 * than TS under contention, and the barrier synchronizes correctly.
 */

#include <gtest/gtest.h>

#include "sync/workload.hh"
#include "verify/consistency.hh"

namespace ddc {
namespace sync {
namespace {

class LockCorrectness
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, LockKind>>
{
};

TEST_P(LockCorrectness, MutualExclusionHolds)
{
    auto [protocol, lock] = GetParam();
    LockExperimentConfig config;
    config.num_pes = 4;
    config.protocol = protocol;
    config.lock = lock;
    config.acquisitions_per_pe = 6;
    config.cs_increments = 3;
    config.record_log = true;

    std::unique_ptr<System> system;
    auto result = runLockExperiment(config, &system);
    ASSERT_TRUE(result.completed)
        << toString(protocol) << "/" << toString(lock);
    EXPECT_EQ(result.counter_value, result.expected_counter)
        << "lost updates => mutual exclusion broken under "
        << toString(protocol) << "/" << toString(lock);

    auto report = checkSerialConsistency(system->log());
    EXPECT_TRUE(report.consistent) << report.first_error;
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsAndLocks, LockCorrectness,
    ::testing::Combine(::testing::Values(ProtocolKind::Rb,
                                         ProtocolKind::Rwb,
                                         ProtocolKind::WriteOnce,
                                         ProtocolKind::WriteThrough,
                                         ProtocolKind::CmStar),
                       ::testing::Values(LockKind::TestAndSet,
                                         LockKind::TestAndTestAndSet)),
    [](const auto &info) {
        return std::string(toString(std::get<0>(info.param))) + "_" +
               std::string(toString(std::get<1>(info.param)));
    });

TEST(LockTraffic, TtsBeatsTsUnderContention)
{
    for (auto protocol : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        LockExperimentConfig config;
        config.num_pes = 8;
        config.protocol = protocol;
        config.acquisitions_per_pe = 4;
        config.cs_increments = 16; // long critical sections: real spins

        config.lock = LockKind::TestAndSet;
        auto ts = runLockExperiment(config);
        config.lock = LockKind::TestAndTestAndSet;
        auto tts = runLockExperiment(config);

        ASSERT_TRUE(ts.completed);
        ASSERT_TRUE(tts.completed);
        EXPECT_LT(tts.bus_transactions, ts.bus_transactions)
            << toString(protocol);
        EXPECT_LT(tts.rmw_failures, ts.rmw_failures) << toString(protocol);
    }
}

TEST(LockTraffic, SingleThreadedLockIsCheap)
{
    LockExperimentConfig config;
    config.num_pes = 1;
    config.acquisitions_per_pe = 10;
    config.cs_increments = 1;
    auto result = runLockExperiment(config);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.counter_value, result.expected_counter);
    EXPECT_EQ(result.rmw_failures, 0u);
}

TEST(LockTraffic, ResultFieldsPlausible)
{
    LockExperimentConfig config;
    config.num_pes = 2;
    config.acquisitions_per_pe = 3;
    auto result = runLockExperiment(config);
    ASSERT_TRUE(result.completed);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.bus_transactions, 0u);
    EXPECT_GE(result.rmw_attempts,
              static_cast<std::uint64_t>(2 * 3)); // >= one per acquisition
    EXPECT_GT(result.bus_per_acquisition, 0.0);
}

TEST(LockTraffic, LocalWorkRunsBetweenAcquisitions)
{
    LockExperimentConfig config;
    config.num_pes = 2;
    config.acquisitions_per_pe = 2;
    config.local_work = 8;
    auto result = runLockExperiment(config);
    ASSERT_TRUE(result.completed);
    EXPECT_EQ(result.counter_value, result.expected_counter);
}

class BarrierCorrectness : public ::testing::TestWithParam<ProtocolKind>
{
};

TEST_P(BarrierCorrectness, AllPesCompleteEveryEpisode)
{
    for (int num_pes : {2, 4}) {
        Cycle cycles = runBarrierExperiment(num_pes, 5, GetParam());
        EXPECT_GT(cycles, 0u)
            << "barrier deadlocked: " << num_pes << " PEs under "
            << toString(GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, BarrierCorrectness,
                         ::testing::Values(ProtocolKind::Rb,
                                           ProtocolKind::Rwb,
                                           ProtocolKind::WriteOnce,
                                           ProtocolKind::WriteThrough),
                         [](const auto &info) {
                             return std::string(toString(info.param));
                         });

TEST(LockKindNames, Printable)
{
    EXPECT_EQ(toString(LockKind::TestAndSet), "TS");
    EXPECT_EQ(toString(LockKind::TestAndTestAndSet), "TTS");
}

} // namespace
} // namespace sync
} // namespace ddc
