/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in ddcache flows through Rng so that a given
 * configuration + seed reproduces bit-identical statistics on any
 * platform.  The generator is xoshiro256** seeded via SplitMix64.
 */

#ifndef DDC_TRACE_RNG_HH
#define DDC_TRACE_RNG_HH

#include <cstdint>
#include <vector>

namespace ddc {

/**
 * A small, fast, seedable PRNG (xoshiro256**).
 *
 * Not cryptographic; plenty for workload synthesis.
 */
class Rng
{
  public:
    /** Seed deterministically from a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) ; @p bound must be positive. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability @p p. */
    bool chance(double p);

    /**
     * Sample an index from a discrete distribution given by
     * non-negative @p weights (need not be normalized).
     */
    std::size_t nextWeighted(const std::vector<double> &weights);

    /**
     * Sample from a bounded geometric-like distribution over
     * [0, bound): P(k) proportional to decay^k.  Used to model
     * LRU-stack-distance locality in synthetic address streams.
     */
    std::uint64_t nextGeometric(double decay, std::uint64_t bound);

  private:
    std::uint64_t state[4];
};

/**
 * Zipf(s) sampler over [0, n) with a precomputed inverse CDF.
 *
 * Valid for any exponent s >= 0 (s == 0 degenerates to uniform);
 * sampling is O(log n) via binary search.
 */
class ZipfSampler
{
  public:
    /**
     * @param s Zipf exponent (>= 0).
     * @param n Support size (> 0); index 0 is the most popular item.
     */
    ZipfSampler(double s, std::uint64_t n);

    /** Draw one sample using @p rng. */
    std::uint64_t sample(Rng &rng) const;

    /** Support size. */
    std::uint64_t size() const { return cdf.size(); }

  private:
    std::vector<double> cdf;
};

} // namespace ddc

#endif // DDC_TRACE_RNG_HH
