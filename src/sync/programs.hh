/**
 * @file
 * Synchronization programs: Test-and-Set and Test-and-Test-and-Set
 * spin locks, critical sections, and a sense-reversing barrier.
 *
 * These are the software implementations Section 6 advocates: TTS is
 * "a simple test instruction" preceding each test-and-set, so the
 * spin runs inside the private cache and the bus only sees traffic
 * when the lock is observed free.  All programs are expressed in the
 * PE mini-ISA and run on the simulated machine.
 */

#ifndef DDC_SYNC_PROGRAMS_HH
#define DDC_SYNC_PROGRAMS_HH

#include "base/types.hh"
#include "sim/isa.hh"

namespace ddc {
namespace sync {

/** Which acquisition discipline a lock program uses. */
enum class LockKind
{
    TestAndSet,        //!< spin directly on the atomic TS (hot spot)
    TestAndTestAndSet, //!< test in-cache first, TS only when free
};

/** Printable name of a LockKind. */
std::string_view toString(LockKind kind);

/**
 * Parameters of a lock/critical-section program.
 *
 * Each acquisition enters the critical section, increments the shared
 * counter at @p counter_addr cs_increments times (a correctness
 * witness: with working mutual exclusion the final counter equals
 * num_pes * acquisitions * cs_increments), optionally executes
 * @p local_work private-region references to model useful work, then
 * releases.
 */
struct LockProgramParams
{
    LockKind kind = LockKind::TestAndTestAndSet;
    Addr lock_addr = 0;
    Addr counter_addr = 1;
    int acquisitions = 1;
    int cs_increments = 1;
    /** Private-region (per-PE) references between acquisitions. */
    int local_work = 0;
    /** Base address of this PE's private work region. */
    Addr local_base = 0;
};

/** Build the lock/critical-section program for one PE. */
Program makeLockProgram(const LockProgramParams &params);

/**
 * Build one PE's sense-reversing central-counter barrier program.
 *
 * @param lock_addr Lock protecting the arrival counter.
 * @param count_addr Arrival counter word.
 * @param sense_addr Global sense word.
 * @param num_pes Number of participants.
 * @param iterations Barrier episodes to run.
 */
Program makeBarrierProgram(Addr lock_addr, Addr count_addr, Addr sense_addr,
                           int num_pes, int iterations);

} // namespace sync
} // namespace ddc

#endif // DDC_SYNC_PROGRAMS_HH
