/**
 * @file
 * Ablation A3: the RWB writes-to-local threshold k (footnote 6:
 * "straightforward modifications are possible if one wishes at least
 * k uninterrupted writes to indicate local usage").  Sweep k over
 * workloads with different private/shared write mixtures and report
 * bus traffic: small k claims Local aggressively (good for private
 * phases, bad for producer/consumer), large k keeps broadcasting
 * (the reverse).
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

/** A private-phase-heavy pattern: each PE rewrites its block often. */
Trace
makePrivatePhaseTrace(int num_pes, int words, int rewrites)
{
    Trace trace(num_pes);
    Word value = 1;
    for (PeId pe = 0; pe < num_pes; pe++) {
        Addr base = sharedBase() + static_cast<Addr>(pe) * 64;
        for (int rewrite = 0; rewrite < rewrites; rewrite++) {
            for (int w = 0; w < words; w++) {
                trace.append(pe, {CpuOp::Write,
                                  base + static_cast<Addr>(w),
                                  value, DataClass::Shared});
                value = value % 1000 + 1;
            }
        }
    }
    return trace;
}

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Ablation A3: RWB writes-to-local threshold k\n"
        "(bus transactions per reference; 4 PEs, 256-word caches)\n\n";

    std::vector<std::pair<std::string, Trace>> patterns;
    patterns.emplace_back("private_rewrites",
                          makePrivatePhaseTrace(4, 16, 16));
    patterns.emplace_back("producer_consumer",
                          makeProducerConsumerTrace(4, 16, 16, 2));
    patterns.emplace_back("migratory", makeMigratoryTrace(4, 8, 24));
    patterns.emplace_back("uniform_random",
                          makeUniformRandomTrace(4, 4000, 32, 0.4, 0.05,
                                                 17));

    const int kValues[] = {1, 2, 3, 4};

    exp::ParamGrid grid;
    {
        std::vector<std::string> names;
        for (const auto &[name, trace] : patterns)
            names.push_back(name);
        grid.axis("workload", names);
        grid.axis("k", {"1", "2", "3", "4"});
    }

    exp::Experiment spec("ablation_rwb_k",
                         "A3: RWB writes-to-local threshold k sweep "
                         "over private/shared write mixtures");
    spec.addGrid(grid, [grid, patterns, &kValues](std::size_t flat) {
        auto indices = grid.indicesAt(flat);
        exp::TraceRun run;
        run.config.num_pes = 4;
        run.config.cache_lines = 256;
        run.config.protocol = ProtocolKind::Rwb;
        run.config.rwb_writes_to_local = kValues[indices[1]];
        run.trace = patterns[indices[0]].second;
        return run;
    });
    const auto &results = session.run(spec);

    Table table;
    table.setHeader({"workload", "k=1", "k=2 (paper)", "k=3", "k=4"});
    std::size_t flat = 0;
    for (const auto &[name, trace] : patterns) {
        std::vector<std::string> row{name};
        for (std::size_t k = 0; k < 4; k++, flat++)
            row.push_back(Table::num(results[flat].metric("bus_per_ref"),
                                     3));
        table.addRow(row);
    }
    std::cout << table.render() << "\n";
    std::cout <<
        "Expected shape: on private rewrite phases, small k silences\n"
        "the writer sooner (fewer bus ops as k falls); on broadcast-\n"
        "friendly patterns (producer/consumer, migratory) larger k\n"
        "keeps consumers updated and avoids refill reads.  k = 2 is\n"
        "the paper's compromise.\n\n";
}

void
BM_RwbKSweep(benchmark::State &state)
{
    auto k = static_cast<int>(state.range(0));
    auto trace = makeUniformRandomTrace(4, 2000, 32, 0.4, 0.05, 17);
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 256;
        config.protocol = ProtocolKind::Rwb;
        config.rwb_writes_to_local = k;
        auto summary = runTrace(config, trace);
        benchmark::DoNotOptimize(summary.cycles);
    }
}
BENCHMARK(BM_RwbKSweep)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
