#include "verify/consistency.hh"

#include <sstream>
#include <unordered_map>

namespace ddc {

namespace {

void
flagViolation(ConsistencyReport &report, const std::string &message)
{
    if (report.consistent) {
        report.consistent = false;
        report.first_error = message;
    }
    report.violations++;
}

std::string
describeEntry(const LogEntry &entry)
{
    std::ostringstream os;
    os << "seq=" << entry.seq << " cycle=" << entry.cycle << " pe="
       << entry.pe << " " << toString(entry.op) << " addr=" << entry.addr
       << " value=" << entry.value;
    return os.str();
}

} // namespace

ConsistencyReport
checkSerialConsistency(const ExecutionLog &log)
{
    ConsistencyReport report;
    std::unordered_map<Addr, Word> model;

    auto current = [&](Addr addr) {
        auto it = model.find(addr);
        return it == model.end() ? Word{0} : it->second;
    };

    for (const LogEntry &entry : log.all()) {
        switch (entry.op) {
          case CpuOp::Read:
          case CpuOp::ReadLock:
            if (entry.value != current(entry.addr)) {
                flagViolation(report,
                              "stale read: expected " +
                                  std::to_string(current(entry.addr)) +
                                  " at " + describeEntry(entry));
            }
            break;

          case CpuOp::Write:
          case CpuOp::WriteUnlock:
            model[entry.addr] = entry.value;
            break;

          case CpuOp::TestAndSet: {
            Word latest = current(entry.addr);
            if (entry.value != latest) {
                flagViolation(report,
                              "TS observed stale value: expected " +
                                  std::to_string(latest) + " at " +
                                  describeEntry(entry));
            }
            bool should_succeed = latest == 0;
            if (entry.ts_success != should_succeed) {
                flagViolation(report, "TS outcome contradicts value at " +
                                          describeEntry(entry));
            }
            if (entry.ts_success)
                model[entry.addr] = entry.stored;
            break;
          }
        }
    }
    return report;
}

ConsistencyReport
checkConfigurationLemma(const System &system, const std::vector<Addr> &addrs)
{
    ConsistencyReport report;
    const Protocol &protocol = system.protocol();

    for (Addr addr : addrs) {
        int owner = kNoPe;
        for (PeId pe = 0; pe < system.numPes(); pe++) {
            LineState state = system.lineState(pe, addr);
            if (protocol.needsWriteback(state)) {
                if (owner != kNoPe) {
                    flagViolation(report,
                                  "two dirty owners of addr " +
                                      std::to_string(addr) + ": PE " +
                                      std::to_string(owner) + " and PE " +
                                      std::to_string(pe));
                }
                owner = pe;
            }
        }

        if (owner != kNoPe) {
            // Local configuration: every other copy must be dead.
            for (PeId pe = 0; pe < system.numPes(); pe++) {
                if (pe == owner)
                    continue;
                LineState state = system.lineState(pe, addr);
                if (state.present()) {
                    flagViolation(report,
                                  "addr " + std::to_string(addr) +
                                      " owned by PE " +
                                      std::to_string(owner) +
                                      " but also present in PE " +
                                      std::to_string(pe));
                }
            }
        } else {
            // Shared configuration: all live copies agree with memory.
            Word memory_value = system.memoryValue(addr);
            for (PeId pe = 0; pe < system.numPes(); pe++) {
                LineState state = system.lineState(pe, addr);
                if (state.present() &&
                    system.cacheValue(pe, addr) != memory_value) {
                    flagViolation(
                        report,
                        "addr " + std::to_string(addr) + " PE " +
                            std::to_string(pe) + " holds " +
                            std::to_string(system.cacheValue(pe, addr)) +
                            " but memory holds " +
                            std::to_string(memory_value));
                }
            }
        }
    }
    return report;
}

} // namespace ddc
