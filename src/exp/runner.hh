/**
 * @file
 * Work-queue thread pool executing experiment points in parallel.
 *
 * Each worker thread owns the private System instances it builds
 * (nothing is shared between concurrent runs — per-instance RNGs,
 * clocks, and counter sets), so N independent sweep points run on N
 * cores.  Results are keyed by grid index: the returned vector is
 * identical for jobs = 1 and jobs = N, making parallel output
 * byte-for-byte reproducible.
 */

#ifndef DDC_EXP_RUNNER_HH
#define DDC_EXP_RUNNER_HH

#include <vector>

#include "exp/experiment.hh"
#include "exp/result.hh"

namespace ddc {
namespace exp {

/** How to execute an experiment. */
struct RunnerOptions
{
    /** Worker threads (1 = run inline on the calling thread). */
    int jobs = 1;
};

/**
 * Execute one trace run and scrape it into a RunResult.
 *
 * Thread-safe: builds a private System.  Sets the standard derived
 * metrics (bus_per_ref, miss_ratio) and, on multi-bus machines,
 * per-bus "busK.busy_cycles" counters.
 */
RunResult executeTraceRun(const TraceRun &run);

/**
 * Run every point of @p experiment.
 * @return Results ordered by point index, independent of jobs.
 */
std::vector<RunResult> runExperiment(const Experiment &experiment,
                                     const RunnerOptions &options = {});

} // namespace exp
} // namespace ddc

#endif // DDC_EXP_RUNNER_HH
