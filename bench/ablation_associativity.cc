/**
 * @file
 * Ablation A8: set associativity (the "set size of one" half of
 * assumption 7).  Capacity held constant in words while associativity
 * sweeps 1..8 (and fully associative), on the Cm*-mix application and
 * on a deliberate conflict workload.  The question: how much of the
 * Table 1-1 miss budget is conflict misses that associativity could
 * remove, and does it change the shared-data story?
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

const std::size_t kWays[] = {1, 2, 4, 8};

/** Strided reads engineered to conflict in a direct-mapped cache. */
Trace
makeConflictTrace(int num_pes, std::size_t cache_words, int hot_addrs,
                  int passes)
{
    Trace trace(num_pes);
    for (PeId pe = 0; pe < num_pes; pe++) {
        for (int pass = 0; pass < passes; pass++) {
            for (int i = 0; i < hot_addrs; i++) {
                // All hot addresses map to the same direct-mapped set.
                Addr addr = localBase(pe) +
                            static_cast<Addr>(i) * cache_words;
                trace.append(pe, {CpuOp::Read, addr, 0, DataClass::Local});
            }
        }
    }
    return trace;
}

/** Read-miss percentage of one run. */
double
readMissPercent(const exp::RunResult &result)
{
    return 100.0 *
           static_cast<double>(
               result.counters.sumPrefix("cache.read_miss.")) /
           static_cast<double>(result.total_refs);
}

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Ablation A8: set associativity (assumption 7's set size),\n"
        "capacity fixed; LRU replacement within a set\n\n";

    exp::ParamGrid grid;
    grid.axis("ways", {"1", "2", "4", "8"});

    exp::Experiment cmstar_spec("ablation_associativity_cmstar",
                                "A8a: Cm*-mix read-miss ratio vs set "
                                "associativity");
    cmstar_spec.addGrid(grid, [](std::size_t flat) {
        exp::TraceRun run;
        run.config.num_pes = 4;
        run.config.cache_lines = 1024;
        run.config.ways = kWays[flat];
        run.config.protocol = ProtocolKind::CmStar;
        run.trace = makeCmStarTrace(cmStarApplicationA(), 4, 30000, 1984);
        return run;
    });
    const auto &cmstar_results = session.run(cmstar_spec);

    Table cmstar("(a) Cm*-mix read-miss % (1024-word caches, Cm* "
                 "policy)");
    cmstar.setHeader({"ways", "read miss %"});
    for (std::size_t w = 0; w < 4; w++) {
        cmstar.addRow({std::to_string(kWays[w]),
                       Table::num(readMissPercent(cmstar_results[w]), 1)});
    }
    std::cout << cmstar.render() << "\n";

    exp::Experiment conflict_spec("ablation_associativity_conflict",
                                  "A8b: adversarial conflict workload "
                                  "read-miss ratio vs associativity");
    conflict_spec.addGrid(grid, [](std::size_t flat) {
        exp::TraceRun run;
        run.config.num_pes = 2;
        run.config.cache_lines = 256;
        run.config.ways = kWays[flat];
        run.config.protocol = ProtocolKind::Rb;
        run.trace = makeConflictTrace(2, 256, 4, 64);
        return run;
    });
    const auto &conflict_results = session.run(conflict_spec);

    Table conflict("(b) adversarial conflict workload (256-word "
                   "caches, RB): 4 hot addresses per PE, all mapping "
                   "to one direct-mapped set");
    conflict.setHeader({"ways", "read miss %"});
    for (std::size_t w = 0; w < 4; w++) {
        conflict.addRow({std::to_string(kWays[w]),
                         Table::num(readMissPercent(conflict_results[w]),
                                    1)});
    }
    std::cout << conflict.render() << "\n";
    std::cout <<
        "Expected shape: associativity rescues the adversarial pattern\n"
        "completely (100% miss at 1-way -> cold misses only at 4-way)\n"
        "but moves the realistic mix by only a couple of points --\n"
        "consistent with the paper's choice to keep set size 1 and\n"
        "spend the hardware budget on the coherence machinery instead.\n\n";
}

void
BM_AssociativitySweep(benchmark::State &state)
{
    auto ways = static_cast<std::size_t>(state.range(0));
    auto trace = makeCmStarTrace(cmStarApplicationA(), 4, 10000, 7);
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 1024;
        config.ways = ways;
        config.protocol = ProtocolKind::CmStar;
        auto summary = runTrace(config, trace);
        benchmark::DoNotOptimize(summary.cycles);
    }
}
BENCHMARK(BM_AssociativitySweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
