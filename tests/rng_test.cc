/** @file Unit tests for the deterministic RNG and samplers. */

#include <gtest/gtest.h>

#include <map>

#include "trace/rng.hh"

namespace ddc {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; i++) {
        if (a.next() == b.next())
            equal++;
    }
    EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowOneAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; i++) {
        auto value = rng.nextRange(5, 8);
        EXPECT_GE(value, 5u);
        EXPECT_LE(value, 8u);
        saw_lo = saw_lo || value == 5;
        saw_hi = saw_hi || value == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; i++) {
        double value = rng.nextDouble();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 32; i++) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(13);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; i++) {
        if (rng.chance(0.25))
            hits++;
    }
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, WeightedRespectsZeroWeights)
{
    Rng rng(9);
    std::vector<double> weights{0.0, 1.0, 0.0};
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(rng.nextWeighted(weights), 1u);
}

TEST(Rng, WeightedRoughlyProportional)
{
    Rng rng(17);
    std::vector<double> weights{1.0, 3.0};
    int counts[2] = {0, 0};
    const int trials = 20000;
    for (int i = 0; i < trials; i++)
        counts[rng.nextWeighted(weights)]++;
    EXPECT_NEAR(static_cast<double>(counts[1]) / trials, 0.75, 0.02);
}

TEST(Rng, GeometricBounded)
{
    Rng rng(23);
    for (int i = 0; i < 2000; i++)
        EXPECT_LT(rng.nextGeometric(0.5, 10), 10u);
}

TEST(Rng, GeometricFavorsSmallValues)
{
    Rng rng(29);
    int small = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; i++) {
        if (rng.nextGeometric(0.5, 32) == 0)
            small++;
    }
    // P(0) for decay 0.5 truncated at 32 is ~0.5.
    EXPECT_NEAR(static_cast<double>(small) / trials, 0.5, 0.03);
}

TEST(ZipfSampler, UniformWhenExponentZero)
{
    Rng rng(31);
    ZipfSampler zipf(0.0, 4);
    std::map<std::uint64_t, int> counts;
    const int trials = 40000;
    for (int i = 0; i < trials; i++)
        counts[zipf.sample(rng)]++;
    for (auto &[value, count] : counts) {
        EXPECT_LT(value, 4u);
        EXPECT_NEAR(static_cast<double>(count) / trials, 0.25, 0.02);
    }
}

TEST(ZipfSampler, SkewsTowardsHead)
{
    Rng rng(37);
    ZipfSampler zipf(1.2, 1000);
    int head = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; i++) {
        if (zipf.sample(rng) < 10)
            head++;
    }
    // With s = 1.2 the top 10 of 1000 items draw most of the mass.
    EXPECT_GT(head, trials / 2);
}

TEST(ZipfSampler, SamplesWithinSupport)
{
    Rng rng(41);
    ZipfSampler zipf(0.8, 7);
    for (int i = 0; i < 2000; i++)
        EXPECT_LT(zipf.sample(rng), 7u);
}

TEST(StreamRng, DrawIsPureFunctionOfSeedAndIndex)
{
    // The shard contract: draw i never depends on what was drawn
    // before it, so host-thread interleaving cannot perturb a stream.
    StreamRng fresh(42);
    StreamRng consumed(42);
    for (int i = 0; i < 50; i++)
        consumed.next();
    EXPECT_EQ(fresh.at(123), consumed.at(123));
    EXPECT_EQ(fresh.at(0), StreamRng(42).next());
}

TEST(StreamRng, NextWalksTheDrawIndex)
{
    StreamRng sequential(9);
    StreamRng indexed(9);
    for (std::uint64_t i = 0; i < 64; i++)
        EXPECT_EQ(sequential.next(), indexed.at(i)) << "draw " << i;
    EXPECT_EQ(sequential.drawsTaken(), 64u);
}

TEST(StreamRng, ForShardXorsTheMachineSeed)
{
    auto stream = StreamRng::forShard(100, 3);
    EXPECT_EQ(stream.streamSeed(), 100u ^ 3u);
    EXPECT_EQ(stream.at(7), StreamRng(100 ^ 3).at(7));
}

TEST(StreamRng, ShardStreamsDiverge)
{
    auto a = StreamRng::forShard(1, 0);
    auto b = StreamRng::forShard(1, 1);
    int equal = 0;
    for (int i = 0; i < 64; i++) {
        if (a.next() == b.next())
            equal++;
    }
    EXPECT_LT(equal, 4);
}

TEST(StreamRng, NextBelowStaysInRange)
{
    StreamRng stream(7);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(stream.nextBelow(17), 17u);
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(stream.nextBelow(1), 0u);
}

} // namespace
} // namespace ddc
