/**
 * @file
 * FlatMap: the repo's one open-addressing hash table, shared by every
 * per-access hot structure (the per-home directory map, the sparse
 * memory banks, the bus snoop-filter holder index).
 *
 * Design (the "flat-map contract", DESIGN.md):
 *  - Storage is a single flat array of {key, value, occupied} slots —
 *    a probe touches consecutive cache lines, never a per-node heap
 *    allocation, which is the whole point versus std::unordered_map
 *    on a per-simulated-cycle path.
 *  - Capacity is always a power of two (geometric doubling at 3/4
 *    load), so the probe step is a mask, not a modulo.
 *  - Collisions resolve by linear probing; erase() uses backward-shift
 *    deletion (displaced entries slide back toward their home slot),
 *    so there are no tombstones and lookups never degrade after
 *    deletion-heavy phases (the memory lock map's workload).
 *  - Hashing is the fixed 64-bit Fibonacci multiplier — never
 *    std::hash, whose layout is implementation-defined.  Slot layout
 *    is therefore a pure function of the operation sequence, making
 *    iteration order (slot order, via forEach) deterministic across
 *    runs, hosts, and standard libraries for identical op sequences.
 *    It is NOT sorted and NOT insertion order, and it may change
 *    wholesale on growth or backward-shift — callers that need a
 *    canonical order must sort (nothing on the simulation path
 *    iterates at all; see DESIGN.md).
 *
 * Keys must be integral (hashed through a uint64_t cast); values must
 * be default-constructible and move-assignable.
 */

#ifndef DDC_BASE_FLAT_MAP_HH
#define DDC_BASE_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "base/logging.hh"

namespace ddc {

/** Open-addressing hash map (pow2 capacity, linear probing). */
template <typename Key, typename Value>
class FlatMap
{
  public:
    /** One probeable unit: key and value share the slot's cache line. */
    struct Slot
    {
        Key key{};
        Value value{};
        bool occupied = false;
    };

    FlatMap() = default;

    /** Entries currently stored. */
    std::size_t size() const { return used; }

    bool empty() const { return used == 0; }

    /** Allocated slots (0 before the first insert). */
    std::size_t capacity() const { return slots.size(); }

    /** size() / capacity() right now (0 when unallocated). */
    double
    loadFactor() const
    {
        return slots.empty() ? 0.0
                             : static_cast<double>(used) /
                                   static_cast<double>(slots.size());
    }

    /**
     * Highest load factor this map ever reached (growth happens at
     * 3/4, so a growing map peaks there; a small map that never grew
     * reports its high-water size over its capacity).  Deterministic:
     * a pure function of the operation sequence.
     */
    double
    peakLoadFactor() const
    {
        double current = slots.empty()
                             ? 0.0
                             : static_cast<double>(peakUsed) /
                                   static_cast<double>(slots.size());
        return peakBeforeGrowth > current ? peakBeforeGrowth : current;
    }

    /** Value of @p key, or nullptr when absent. */
    Value *
    lookup(Key key)
    {
        if (slots.empty())
            return nullptr;
        const std::size_t mask = slots.size() - 1;
        for (std::size_t i = homeSlot(key);; i = (i + 1) & mask) {
            Slot &slot = slots[i];
            if (!slot.occupied)
                return nullptr;
            if (slot.key == key)
                return &slot.value;
        }
    }

    const Value *
    lookup(Key key) const
    {
        return const_cast<FlatMap *>(this)->lookup(key);
    }

    bool contains(Key key) const { return lookup(key) != nullptr; }

    /**
     * Value of @p key, default-constructed and inserted when absent
     * (the unordered_map operator[] idiom).
     */
    Value &
    findOrInsert(Key key)
    {
        if (slots.empty() || (used + 1) * 4 > slots.size() * 3)
            grow();
        const std::size_t mask = slots.size() - 1;
        for (std::size_t i = homeSlot(key);; i = (i + 1) & mask) {
            Slot &slot = slots[i];
            if (slot.occupied && slot.key == key)
                return slot.value;
            if (!slot.occupied) {
                slot.key = key;
                slot.occupied = true;
                used++;
                if (used > peakUsed)
                    peakUsed = used;
                return slot.value;
            }
        }
    }

    Value &operator[](Key key) { return findOrInsert(key); }

    /**
     * Remove @p key; returns whether it was present.  Backward-shift:
     * every entry displaced past the hole slides back onto its probe
     * path, so no tombstone is left behind.
     */
    bool
    erase(Key key)
    {
        if (slots.empty())
            return false;
        const std::size_t mask = slots.size() - 1;
        std::size_t hole = homeSlot(key);
        for (;; hole = (hole + 1) & mask) {
            if (!slots[hole].occupied)
                return false;
            if (slots[hole].key == key)
                break;
        }
        for (std::size_t next = hole;;) {
            next = (next + 1) & mask;
            if (!slots[next].occupied)
                break;
            // slots[next] may move into the hole only if the hole lies
            // on its probe path: distance(home -> next) must cover
            // distance(hole -> next).
            std::size_t home = homeSlot(slots[next].key);
            if (((next - home) & mask) >= ((next - hole) & mask)) {
                slots[hole] = std::move(slots[next]);
                slots[next].occupied = false;
                hole = next;
            }
        }
        slots[hole] = Slot{};
        used--;
        return true;
    }

    /** Drop every entry and release all storage. */
    void
    clear()
    {
        slots.clear();
        slots.shrink_to_fit();
        used = 0;
        peakUsed = 0;
        peakBeforeGrowth = 0.0;
    }

    /** Pre-size for @p expected entries (never shrinks). */
    void
    reserve(std::size_t expected)
    {
        std::size_t needed = kMinCapacity;
        // Capacity such that `expected` stays under the 3/4 threshold.
        while (expected * 4 > needed * 3)
            needed *= 2;
        if (needed > slots.size())
            rehash(needed);
    }

    /**
     * Visit every (key, value) pair in slot order — deterministic for
     * identical operation sequences, otherwise unspecified (see file
     * header).  @p fn must not insert or erase during the walk;
     * mutating the visited value is fine.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (Slot &slot : slots) {
            if (slot.occupied)
                fn(slot.key, slot.value);
        }
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &slot : slots) {
            if (slot.occupied)
                fn(slot.key, slot.value);
        }
    }

  private:
    static constexpr std::size_t kMinCapacity = 64;

    /**
     * Fibonacci multiplicative hash: the upper bits of the product
     * are the well-mixed ones, so the home slot takes them (shifted
     * down to 32, then masked by the pow2 capacity).
     */
    std::size_t
    homeSlot(Key key) const
    {
        std::uint64_t h = static_cast<std::uint64_t>(key) *
                          std::uint64_t{0x9E3779B97F4A7C15};
        return static_cast<std::size_t>(h >> 32) & (slots.size() - 1);
    }

    void
    grow()
    {
        if (!slots.empty()) {
            double before = static_cast<double>(used) /
                            static_cast<double>(slots.size());
            if (before > peakBeforeGrowth)
                peakBeforeGrowth = before;
        }
        rehash(slots.empty() ? kMinCapacity : slots.size() * 2);
    }

    void
    rehash(std::size_t capacity)
    {
        ddc_assert((capacity & (capacity - 1)) == 0,
                   "flat-map capacity must be a power of two");
        std::vector<Slot> old = std::move(slots);
        slots.assign(capacity, Slot{});
        const std::size_t mask = capacity - 1;
        for (Slot &slot : old) {
            if (!slot.occupied)
                continue;
            std::size_t i = homeSlot(slot.key);
            while (slots[i].occupied)
                i = (i + 1) & mask;
            slots[i] = std::move(slot);
        }
    }

    std::vector<Slot> slots;
    /** Occupied slot count. */
    std::size_t used = 0;
    /** High-water used at the current capacity (for peakLoadFactor). */
    std::size_t peakUsed = 0;
    /** Highest load factor recorded at any growth. */
    double peakBeforeGrowth = 0.0;
};

} // namespace ddc

#endif // DDC_BASE_FLAT_MAP_HH
