/**
 * @file
 * The logically single shared bus (Section 2, assumptions 1-6).
 *
 * One transaction begins per free cycle.  Every cache listens to the
 * bus and reacts before the next cycle; a cache holding the latest
 * value of a read's target may *kill* the transaction and replace it
 * with a bus write of its value, after which the original read
 * retries (Section 3: "The cache is fast enough to first observe a
 * bus action and to then interrupt it").  Bus writes to a word locked
 * by a two-phase RMW fail (NACK) and retry until the unlock.
 *
 * Conditional transactions are resolved here: snooping caches never
 * see BusOp::Rmw / ReadLock / WriteUnlock — they observe the
 * effective BusOp::Read or BusOp::Write, matching the paper's
 * treatment of a failing test-and-set as a read and a succeeding one
 * as a write.
 *
 * Block transfers (the assumption-7 ablation): when the machine is
 * configured with multi-word blocks, allocating reads, write-backs,
 * and owner supplies move whole blocks; a B-word transfer occupies
 * the bus for B cycles.  CPU writes remain word-granular
 * write-throughs (their snoop effect is block-granular in the
 * invalidating schemes — false sharing).
 */

#ifndef DDC_SIM_BUS_HH
#define DDC_SIM_BUS_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/flat_map.hh"
#include "base/types.hh"
#include "obs/recorder.hh"
#include "sim/arbiter.hh"
#include "sim/clock.hh"
#include "sim/fabric.hh"
#include "sim/memory_side.hh"
#include "stats/counter.hh"

namespace ddc {

/** A bus transaction a cache wants to issue. */
struct BusRequest
{
    BusOp op = BusOp::Read;
    Addr addr = 0;
    /** Write data, or the value an Rmw stores on success. */
    Word data = 0;
    /** Transfer a whole block (allocating read / write-back). */
    bool block_transfer = false;
    /** Payload of a block write (write-back); block_words long. */
    std::vector<Word> block_data;
    /**
     * This Write publishes an owned value back to memory without
     * claiming ownership (the hierarchical cluster cache's pre-flush
     * before an RMW-class forward).  The snooping bus ignores the
     * flag — a snooped write invalidates other copies either way, and
     * the issuer demotes itself on completion — but a directory must
     * distinguish it from an ownership-acquiring write to keep its
     * owner field exact.
     */
    bool writeback = false;
};

/** Completion data handed back to the issuing cache. */
struct BusResult
{
    /** Read data / the Rmw's observed old value / the written data. */
    Word data = 0;
    /** BusOp::Rmw only: whether the conditional store happened. */
    bool rmw_success = false;
    /** Block read payload (empty for word-granular transactions). */
    std::vector<Word> block;
};

/** A transaction as seen by snooping caches (effective ops only). */
struct BusTransaction
{
    BusOp op = BusOp::Read;
    Addr addr = 0;
    Word data = 0;
    /** Client index of the issuer on this bus. */
    int issuer = -1;
    /** Block payload (empty for word-granular transactions). */
    std::vector<Word> block;
};

/**
 * Interface between the bus and an attached cache.
 *
 * A client has at most one pending request; the bus polls hasRequest()
 * each cycle (giving the cache a chance to lazily re-validate multi-
 * phase operations whose preconditions a snooped transaction erased).
 */
class BusClient
{
  public:
    virtual ~BusClient() = default;

    /** Does this client want the bus this cycle? */
    virtual bool hasRequest() = 0;

    /** The pending request (valid only when hasRequest()). */
    virtual BusRequest currentRequest() = 0;

    /** The pending request completed with @p result. */
    virtual void requestComplete(const BusResult &result) = 0;

    /**
     * Would this client kill a read of @p addr and supply the value?
     * On true, @p value receives the supplied (word) data.
     */
    virtual bool wouldSupply(Addr addr, Word &value) = 0;

    /**
     * The full block this client would supply for @p addr (multi-word
     * machines only; called after wouldSupply() returned true).
     */
    virtual std::vector<Word>
    supplyBlock(Addr addr)
    {
        Word value = 0;
        wouldSupply(addr, value);
        return {value};
    }

    /** Observe another client's (effective) transaction. */
    virtual void observe(const BusTransaction &txn) = 0;

    /** This client supplied data for @p addr (apply afterSupply). */
    virtual void supplied(Addr addr) = 0;

    /**
     * The client's granted request was NACKed (locked word / memory
     * side not ready) and will retry.  Multi-request proxies (the
     * hierarchical cluster cache) use this to rotate their queue so a
     * blocked operation cannot starve the one that would unblock it.
     */
    virtual void requestNacked() {}

    /**
     * The client's granted read-like request was killed by an owning
     * cache's supply write and will retry (the paper's L-interrupt).
     * Purely informational — the request stays pending exactly as
     * before this hook existed.
     */
    virtual void requestKilled() {}

    /** Owning PE, for memory-lock bookkeeping. */
    virtual PeId peId() const = 0;

    /**
     * Address of the pending request (valid only when a request is
     * pending), *without* the side effects of currentRequest().  An
     * address-interleaved fabric routes on it before granting.  Only
     * clients attached to such a fabric need to implement it; the
     * default panics.
     */
    virtual Addr pendingAddr() const;
};

/**
 * Process-wide snoop-filter switch, default on.  The --no-snoop-filter
 * flag clears it so every Bus built afterwards — including ones buried
 * inside custom experiment points — broadcasts to every client and
 * polls every potential supplier, without threading a flag through
 * each construction site.  Mirrors setQuiescentSkipEnabled().
 */
void setSnoopFilterEnabled(bool enabled);
bool snoopFilterEnabled();

/**
 * Counter names of an issued / NACKed BusOp ("bus.read",
 * "bus.nack.BusRead", ...).  Shared with the directory fabric's home
 * nodes, which emit the same statistics family so directory-mode
 * counter reports line up with the snooping bus name-for-name.
 */
std::string_view busOpStatName(BusOp op);
std::string_view busNackStatName(BusOp op);

/** The shared bus: arbitration, execution, snooping, kill/retry. */
class Bus : public GlobalFabric, public Tickable
{
  public:
    /**
     * @param memory The memory side this bus reaches (main memory on
     *        a flat machine, a cluster cache on the hierarchical one;
     *        a not-ready side NACKs and the transaction retries).
     * @param arbiter_kind Arbitration policy.
     * @param clock Cycle counter to stamp observability output from
     *        (read-only use).  Pass the owning shard's localClock():
     *        inside a lookahead window the machine clock is frozen at
     *        the window base, and only the shard-local clock carries
     *        the cycle actually being ticked.
     * @param stats Counter set receiving bus.* statistics.
     * @param seed Seed for the Random arbitration policy.
     * @param block_words Words per cache block (block transfers
     *        occupy the bus for block_words cycles).
     * @param memory_latency Extra cycles every memory-touching
     *        transaction holds the bus (0 = the paper's unified
     *        cycle).
     * @param snoop_filter Resolve broadcasts and supplier scans
     *        through the sharer index (see setSnoopIndexed) instead
     *        of visiting every client.  Results are byte-identical
     *        either way; off is the A/B baseline.  ANDed with the
     *        process-wide setSnoopFilterEnabled() switch.
     */
    Bus(MemorySide &memory, ArbiterKind arbiter_kind, const Clock &clock,
        stats::CounterSet &stats, std::uint64_t seed = 0,
        std::size_t block_words = 1, std::size_t memory_latency = 0,
        bool snoop_filter = true);

    /** Attach a client; returns its client index on this bus. */
    int attach(BusClient *client) override;

    /**
     * Fast-path hint: whether client @p client may have a pending
     * request.  Clients attach armed (and a client that never calls
     * this is polled every cycle, exactly as before); a client that
     * tracks its own pending state can disarm while it has nothing to
     * issue so idle cycles cost no virtual polling at all.
     *
     * Disarming is strictly a promise that hasRequest() would return
     * false (and have no side effects) until the client re-arms.
     */
    void setRequestArmed(int client, bool is_armed) override;

    /** Number of currently armed clients. */
    std::size_t
    armedClients() const
    {
        return armedCount.load(std::memory_order_relaxed);
    }

    /**
     * Declare whether @p client could supply data for a snooped read
     * (same contract shape as setRequestArmed: clearing is strictly a
     * promise that wouldSupply() returns false until re-set).  Clients
     * default to set at attach, so a client that never calls this is
     * always polled during the supplier scan.
     */
    void setSupplier(int client, bool is_supplier);

    /**
     * Opt @p client into sharer-indexed snooping.  Clients attach as
     * *always-snoop* (visited on every broadcast and polled on every
     * supplier scan, exactly as before); an indexed client is visited
     * only while the index records it as holding the transaction's
     * block.  Indexing is strictly a promise that observe() is a
     * no-op and wouldSupply() returns false for any block the client
     * has not declared via noteBlockPresent().  Must be called while
     * the client holds no blocks (typically right after attach).
     */
    void setSnoopIndexed(int client);

    /**
     * Declare that indexed client @p client now holds (or no longer
     * holds) a line whose tag matches block @p base.  Presence is
     * tag-match in *any* state — including Invalid, whose lines still
     * react to broadcasts (RB revives I -> R on a snooped read).
     */
    void noteBlockPresent(int client, Addr base);
    void noteBlockAbsent(int client, Addr base);

    /** Whether this bus resolves snoops through the sharer index. */
    bool snoopFilterActive() const { return filterOn; }

    /**
     * Clients visited by broadcasts plus clients polled by supplier
     * scans so far (counted identically with the filter on or off, so
     * an A/B pair quantifies the avoided virtual calls).  Plain
     * bookkeeping, deliberately not a CounterSet statistic: counter
     * reports stay byte-identical filter-on vs filter-off.
     */
    std::uint64_t snoopVisits() const { return snoopVisitCount; }

    /**
     * Times this bus silently degraded from sharer-indexed to full
     * snooping (more clients than a mask holds, or more distinct
     * blocks than the index cap; see revertToFullSnoop).  Counted only
     * when the filter was actually active — a bus built with the
     * filter off never "degrades".  Like snoopVisits, deliberately not
     * a CounterSet statistic, so counter reports stay byte-identical
     * filter-on vs filter-off; surfaced per run as
     * RunResult::snoop_filter_fallbacks under --timing.
     */
    std::uint64_t snoopFilterFallbacks() const { return fallbackCount; }

    /** Test introspection: indexed holders of @p addr's block. */
    std::vector<int> indexHolders(Addr addr) const;

    /**
     * Attach observability (trace events on the "bus @p bus_id"
     * track, raw lock attempt events).  @p recorder may be null; the
     * cached per-category pointers keep the disabled path at one
     * null test per emission site.  @p shard is the machine shard
     * this bus ticks on (0 = the serial shard): the bus writes that
     * shard's private trace buffer and lock log, so parallel lanes
     * never share a stream.
     */
    void setObserver(obs::Recorder *recorder, int bus_id,
                     std::size_t shard = 0);

    /** Advance one cycle (at most one new transaction begins). */
    void tick() override;

    /**
     * Earliest cycle at which this bus (or the memory side behind it)
     * can next change state: @p now while any client is armed (a
     * grant could start a transaction), the end of the streaming
     * window while a multi-cycle transfer occupies the bus, kNever
     * when every client is disarmed.  Side-effect free: consults only
     * the armed count, the transfer countdown, and the memory side's
     * own nextEventCycle() — never hasRequest() (whose lazy
     * revalidation must stay aligned with the baseline polling
     * schedule).
     */
    Cycle
    nextEventCycle(Cycle now) const override
    {
        Cycle own = transferCyclesLeft > 0
                        ? now + static_cast<Cycle>(transferCyclesLeft)
                        : (armedClients() > 0 ? now : kNever);
        return std::min(own, memory.nextEventCycle(now));
    }

    /**
     * Account for @p count quiescent cycles at once: stream the
     * in-flight transfer and/or accrue idle cycles exactly as @p count
     * consecutive tick() calls would have.  The caller guarantees no
     * grant opportunity was skipped (count never crosses this bus's
     * nextEventCycle() while a client is armed).
     */
    void skipCycles(Cycle count) override;

    /** True when no client has a pending request. */
    bool idle();

    /** Words per block on this bus. */
    std::size_t blockWords() const override { return blockSize; }

    /** First word address of the block containing @p addr. */
    Addr
    blockBase(Addr addr) const
    {
        return addr - addr % static_cast<Addr>(blockSize);
    }

  private:
    /** Number of BusOp enumerators (op-indexed handle tables). */
    static constexpr std::size_t kNumBusOps = 6;

    /**
     * Poll the armed clients and collect those with a request into
     * the reusable scratch vector (ascending client indices, as the
     * arbiter requires).  One pass serves both the idle check and
     * arbitration; when every client is disarmed it returns empty
     * without a single virtual call.
     */
    const std::vector<int> &collectRequesters();

    /** Handle Read / ReadLock / Rmw, including the kill/supply path. */
    void executeReadLike(int grant, const BusRequest &request);

    /** Handle Write / WriteUnlock / Invalidate. */
    void executeWriteLike(int grant, const BusRequest &request);

    /** Block number of @p addr (the holder-index key). */
    std::uint64_t blockIndex(Addr addr) const;

    /**
     * Bitmask of the clients that must see a transaction on
     * @p addr's block: its indexed holders OR'd with the always-snoop
     * clients.  Bit position is client index, so iterating set bits
     * upward reproduces the unfiltered ascending visit order,
     * restricted to clients whose snoop can matter.  The returned
     * value is also a free snapshot: a snooper's reaction may evict a
     * line and mutate the index mid-delivery without disturbing the
     * mask being iterated.
     */
    std::uint64_t snooperMask(Addr addr) const;

    /**
     * Permanently fall back to unfiltered snooping on this bus (more
     * clients than a mask holds, or a workload caching more distinct
     * blocks than the index cap).  Always safe: filtered and
     * unfiltered snooping are byte-identical by construction, and
     * presence notes become no-ops from here on.
     */
    void revertToFullSnoop();

    /**
     * The single client that would kill a read of @p addr and supply
     * its value (-1 when none); @p value receives the supplied word.
     * Scans every potential supplier, or — with the filter on — only
     * the snoopers snooperMask() reports, plus a Debug-only
     * full-scan cross-check that the index missed nobody.
     */
    int findSupplier(int grant, Addr addr, Word &value);

    /** Deliver @p txn to every (filtered) client except @p skip. */
    void broadcast(const BusTransaction &txn, int skip);

    /** Record a retry due to a locked word / not-ready memory side. */
    void nack(int grant, const BusRequest &request);

    /** Emit a completed-transaction trace event (phase 'X'). */
    void traceComplete(std::string_view name, Addr addr, int issuer,
                       std::size_t extra_cycles,
                       const char *detail = nullptr);

    /** Emit an instant trace event on this bus's track. */
    void traceInstant(std::string_view name, Addr addr,
                      const char *detail);

    /** Hold the bus for a transaction's extra cycles. */
    void occupy(std::size_t extra_cycles);

    /** Extra occupancy of a word-granular memory transaction. */
    std::size_t wordCost() const { return memoryLatency; }

    /** Extra occupancy of a block transfer. */
    std::size_t
    blockCost() const
    {
        return memoryLatency + (blockSize > 1 ? blockSize - 1 : 0);
    }

    MemorySide &memory;
    std::unique_ptr<Arbiter> arbiter;
    const Clock &clock;
    stats::CounterSet &stats;
    std::size_t blockSize;
    std::size_t memoryLatency;
    std::vector<BusClient *> clients;
    /**
     * Per-client armed flag (1 = poll; parallel to clients).  Each
     * entry is written only by its owning client — on the global bus
     * of a sharded hierarchical run that means one shard thread per
     * entry, so the plain chars are race-free.
     */
    std::vector<char> armed;
    /**
     * Count of set entries in armed.  Atomic (relaxed) because
     * cluster shards arm/disarm their global-bus request slots
     * concurrently during the parallel phase; a count is
     * order-insensitive, so the final value — and every simulation
     * byte — is independent of the interleaving.
     */
    std::atomic<std::size_t> armedCount{0};
    /** Per-client potential-supplier flag (parallel to clients). */
    std::vector<char> suppliers;
    /** Count of set entries in suppliers. */
    std::size_t supplierCount = 0;
    /** Scratch requester list reused every cycle (no allocation). */
    std::vector<int> requesters;
    /** Remaining cycles of an in-flight transaction. */
    std::size_t transferCyclesLeft = 0;

    /** Most clients one bus can sharer-index (bits in a mask). */
    static constexpr std::size_t kMaxFilterClients = 64;
    /** Cap on distinct blocks the holder index tracks (16 MiB). */
    static constexpr std::size_t kMaxFilterBlocks = std::size_t{1} << 20;

    /**
     * The sharer index: block number -> bitmask of the indexed
     * clients holding a tag-matching line (any state, including
     * Invalid).  The synthetic address space is sparse — private PE
     * regions sit a megaword apart and shared data lives at 2^40 —
     * so a dense array is unusable; a FlatMap (base/flat_map.hh,
     * the same open-addressing table behind the directory and the
     * memory banks) holds the masks instead.  Entries are never
     * erased: an eviction clears the holder's bit but leaves the key
     * in place.  The entry count is bounded by the distinct blocks
     * the workload ever caches, and capped by kMaxFilterBlocks
     * (revertToFullSnoop past that).
     */
    using HolderIndex = FlatMap<std::uint64_t, std::uint64_t>;

    /** Holder mask of @p addr's block (0 when never noted). */
    std::uint64_t
    heldMask(Addr addr) const
    {
        const std::uint64_t *mask = holders.lookup(blockIndex(addr));
        return mask == nullptr ? 0 : *mask;
    }

    /** Whether this bus filters snoops (ctor flag AND process flag). */
    bool filterOn = true;
    /** blockSize is a power of two; blockIndex() shifts instead. */
    bool blockPow2 = true;
    std::size_t blockShift = 0;
    /** Per-client indexed flag (1 = sharer-indexed; parallel). */
    std::vector<char> indexed;
    /** Bit per client not opted into indexing (always visited). */
    std::uint64_t alwaysSnoopMask = 0;
    /** Bit per client registered as a potential supplier. */
    std::uint64_t supplierMask = 0;
    /** Sharer index (see HolderIndex). */
    HolderIndex holders;
    /** Broadcast visits + supplier polls (see snoopVisits()). */
    std::uint64_t snoopVisitCount = 0;
    /** Active-filter reverts to full snooping (see snoopFilterFallbacks). */
    std::uint64_t fallbackCount = 0;

    /** Bus-category trace buffer (null when not traced). */
    obs::TraceBuffer *busTrace = nullptr;
    /** This shard's lock log (null when lock events are off). */
    obs::LockLog *lockRec = nullptr;
    /** Trace track id (bus index within the System). */
    std::int32_t busId = 0;

    // Handles interned once at construction; every per-event
    // statistic is a plain array increment.
    stats::CounterId statBusy, statTransfer, statIdle, statKill,
        statSupplyWrite, statRmwSuccess, statRmwFail, statNack;
    /** bus.<op> issue counters, indexed by BusOp. */
    stats::CounterId statOp[kNumBusOps];
    /** bus.nack.<op> counters, indexed by BusOp. */
    stats::CounterId statNackOp[kNumBusOps];
};

} // namespace ddc

#endif // DDC_SIM_BUS_HH
