/**
 * @file
 * Shared scaffolding for the reproduction benches.
 *
 * Every bench binary (a) runs its sweep points through the parallel
 * experiment engine (src/exp) and prints its paper table/figure
 * reproduction, (b) emits the structured results as JSON when --json
 * PATH is given, then (c) runs its google-benchmark timing sweeps.
 * The DDC_BENCH_MAIN macro wires that order up.
 *
 * Engine flags (parsed and stripped before google-benchmark sees
 * argv):
 *   --jobs N     run sweep points on N worker threads (default 1);
 *                output is byte-identical for every N
 *   --json PATH  write the collected results (conventionally
 *                results.json) after the reproduction
 *   --timing     include per-run wall_time_ms / sim_cycles_per_sec /
 *                skipped_cycles / skip_fraction in the JSON
 *                (host-dependent, so off by default)
 *   --no-skip    disable quiescent-cycle skipping process-wide
 *                (A/B baseline; tables and JSON are byte-identical
 *                with or without it, the run is just slower)
 */

#ifndef DDC_BENCH_COMMON_HH
#define DDC_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <iostream>

#include "exp/session.hh"

/**
 * Print the reproduction through the experiment engine, emit JSON,
 * then run the registered benchmarks.  @p print_reproduction is a
 * callable taking (ddc::exp::Session &).
 */
#define DDC_BENCH_MAIN(print_reproduction)                                  \
    int                                                                     \
    main(int argc, char **argv)                                             \
    {                                                                       \
        auto options = ddc::exp::parseSessionArgs(argc, argv);              \
        ddc::exp::Session session(options);                                 \
        print_reproduction(session);                                        \
        std::cout.flush();                                                  \
        if (!session.writeJson()) {                                         \
            std::cerr << argv[0] << ": cannot write "                       \
                      << options.json_path << "\n";                         \
            return 1;                                                       \
        }                                                                   \
        benchmark::Initialize(&argc, argv);                                 \
        if (benchmark::ReportUnrecognizedArguments(argc, argv))             \
            return 1;                                                       \
        benchmark::RunSpecifiedBenchmarks();                                \
        benchmark::Shutdown();                                              \
        return 0;                                                           \
    }

#endif // DDC_BENCH_COMMON_HH
