#include "sim/memory.hh"

#include "base/logging.hh"

namespace ddc {

Memory::Memory(stats::CounterSet &stats) : stats(stats)
{
    statRead = stats.intern("memory.read");
    statWrite = stats.intern("memory.write");
    statBlockRead = stats.intern("memory.block_read");
    statBlockWrite = stats.intern("memory.block_write");
}

Word
Memory::read(Addr addr)
{
    stats.add(statRead);
    const Word *word = words.lookup(addr);
    return word == nullptr ? 0 : *word;
}

void
Memory::write(Addr addr, Word data)
{
    ddc_assert(data <= kMaxDataValue,
               "write of the reserved invalidate encoding");
    stats.add(statWrite);
    words[addr] = data;
}

std::vector<Word>
Memory::readBlock(Addr base, std::size_t count)
{
    stats.add(statBlockRead);
    std::vector<Word> block;
    block.reserve(count);
    for (std::size_t i = 0; i < count; i++)
        block.push_back(peek(base + i));
    return block;
}

void
Memory::writeBlock(Addr base, const std::vector<Word> &block)
{
    stats.add(statBlockWrite);
    for (std::size_t i = 0; i < block.size(); i++) {
        ddc_assert(block[i] <= kMaxDataValue,
                   "block write of the reserved invalidate encoding");
        words[base + i] = block[i];
    }
}

Word
Memory::peek(Addr addr) const
{
    const Word *word = words.lookup(addr);
    return word == nullptr ? 0 : *word;
}

void
Memory::poke(Addr addr, Word data)
{
    words[addr] = data;
}

bool
Memory::lockedByOther(Addr addr, PeId pe) const
{
    const PeId *holder = locks.lookup(addr);
    return holder != nullptr && *holder != pe;
}

void
Memory::lock(Addr addr, PeId pe)
{
    ddc_assert(!lockedByOther(addr, pe), "lock of a word locked by another");
    locks[addr] = pe;
}

void
Memory::unlock(Addr addr, PeId pe)
{
    const PeId *holder = locks.lookup(addr);
    ddc_assert(holder != nullptr && *holder == pe,
               "unlock of a word not held by PE ", pe);
    locks.erase(addr);
}

bool
Memory::locked(Addr addr) const
{
    return locks.contains(addr);
}

bool
Memory::tryRead(Addr addr, PeId pe, Word &data)
{
    (void)pe; // Plain reads are allowed even while a word is locked.
    data = read(addr);
    return true;
}

bool
Memory::tryReadBlock(Addr base, std::size_t words, PeId pe,
                     std::vector<Word> &block)
{
    (void)pe;
    block = readBlock(base, words);
    return true;
}

bool
Memory::tryWrite(Addr addr, PeId pe, Word data)
{
    if (lockedByOther(addr, pe))
        return false; // "Any bus writes before the unlock will fail."
    write(addr, data);
    return true;
}

bool
Memory::tryWriteBlock(Addr base, PeId pe, const std::vector<Word> &block)
{
    for (std::size_t i = 0; i < block.size(); i++) {
        if (lockedByOther(base + i, pe))
            return false;
    }
    writeBlock(base, block);
    return true;
}

bool
Memory::tryRmw(Addr addr, PeId pe, Word set_value, Word &old,
               bool &success)
{
    if (lockedByOther(addr, pe))
        return false;
    old = read(addr);
    success = old == 0;
    if (success)
        write(addr, set_value);
    return true;
}

bool
Memory::tryReadLock(Addr addr, PeId pe, Word &data)
{
    if (lockedByOther(addr, pe))
        return false;
    lock(addr, pe);
    data = read(addr);
    return true;
}

bool
Memory::tryWriteUnlock(Addr addr, PeId pe, Word data)
{
    write(addr, data);
    unlock(addr, pe);
    return true;
}

void
Memory::acceptSupply(Addr addr, Word data)
{
    write(addr, data);
}

void
Memory::acceptSupplyBlock(Addr base, const std::vector<Word> &block)
{
    writeBlock(base, block);
}

} // namespace ddc
