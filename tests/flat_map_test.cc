/**
 * @file
 * Unit tests for base/flat_map.hh — the one open-addressing table
 * behind the directory, the home memory banks, the cluster-cache
 * entry map, and the bus snoop-filter holder index.
 *
 * Covers the flat-map contract (DESIGN.md): pow2 capacity with
 * geometric growth at 3/4 load, linear probing, backward-shift
 * deletion (no tombstones), deterministic slot-order iteration, and
 * a randomized mirror against std::unordered_map.
 */

#include <algorithm>
#include <cstdint>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/flat_map.hh"
#include "base/types.hh"

namespace ddc {
namespace {

TEST(FlatMapTest, StartsEmptyAndUnallocated)
{
    FlatMap<Addr, Word> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.capacity(), 0u);
    EXPECT_EQ(map.loadFactor(), 0.0);
    EXPECT_EQ(map.peakLoadFactor(), 0.0);
    EXPECT_EQ(map.lookup(7), nullptr);
    EXPECT_FALSE(map.contains(7));
    EXPECT_FALSE(map.erase(7));
}

TEST(FlatMapTest, InsertLookupRoundTrip)
{
    FlatMap<Addr, Word> map;
    map[10] = 100;
    map[20] = 200;
    map.findOrInsert(30) = 300;
    EXPECT_EQ(map.size(), 3u);
    ASSERT_NE(map.lookup(10), nullptr);
    EXPECT_EQ(*map.lookup(10), 100u);
    EXPECT_EQ(*map.lookup(20), 200u);
    EXPECT_EQ(*map.lookup(30), 300u);
    EXPECT_EQ(map.lookup(40), nullptr);

    // findOrInsert of a present key returns the existing value.
    map.findOrInsert(10) = 111;
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(*map.lookup(10), 111u);
}

TEST(FlatMapTest, DefaultConstructsAbsentValues)
{
    FlatMap<Addr, Word> map;
    EXPECT_EQ(map[42], 0u);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMapTest, CapacityIsAlwaysAPowerOfTwo)
{
    FlatMap<Addr, Word> map;
    for (Addr key = 0; key < 1000; key++) {
        map[key * 977] = key;
        std::size_t capacity = map.capacity();
        EXPECT_EQ(capacity & (capacity - 1), 0u);
        // Growth happens before the 3/4 threshold is crossed.
        EXPECT_LE(map.size() * 4, capacity * 3);
    }
    EXPECT_EQ(map.size(), 1000u);
    for (Addr key = 0; key < 1000; key++) {
        ASSERT_NE(map.lookup(key * 977), nullptr);
        EXPECT_EQ(*map.lookup(key * 977), key);
    }
}

TEST(FlatMapTest, PeakLoadFactorIsMonotoneAndBounded)
{
    FlatMap<Addr, Word> map;
    double last = 0.0;
    for (Addr key = 0; key < 500; key++) {
        map[key] = key;
        double peak = map.peakLoadFactor();
        EXPECT_GE(peak, last);
        EXPECT_LE(peak, 0.75 + 1e-9);
        last = peak;
    }
    // Erasing does not lower the high-water mark.
    for (Addr key = 0; key < 500; key++)
        map.erase(key);
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.peakLoadFactor(), last);
}

TEST(FlatMapTest, EraseRemovesAndReports)
{
    FlatMap<Addr, Word> map;
    map[1] = 10;
    map[2] = 20;
    EXPECT_TRUE(map.erase(1));
    EXPECT_FALSE(map.erase(1));
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.lookup(1), nullptr);
    EXPECT_EQ(*map.lookup(2), 20u);
}

TEST(FlatMapTest, BackwardShiftKeepsProbeChainsIntact)
{
    // Dense sequential keys guarantee probe-chain collisions at any
    // capacity; erasing every other key then probing the survivors
    // exercises the backward-shift move condition (a tombstone-free
    // table would lose chained keys without it).
    FlatMap<Addr, Word> map;
    constexpr Addr kKeys = 4096;
    for (Addr key = 0; key < kKeys; key++)
        map[key] = key + 1;
    for (Addr key = 0; key < kKeys; key += 2)
        EXPECT_TRUE(map.erase(key));
    EXPECT_EQ(map.size(), kKeys / 2);
    for (Addr key = 0; key < kKeys; key++) {
        if (key % 2 == 0) {
            EXPECT_EQ(map.lookup(key), nullptr);
        } else {
            ASSERT_NE(map.lookup(key), nullptr) << "lost key " << key;
            EXPECT_EQ(*map.lookup(key), key + 1);
        }
    }
    // Deletion-heavy phases leave no tombstones: reinserting reuses
    // the freed slots without growing.
    std::size_t capacity = map.capacity();
    for (Addr key = 0; key < kKeys; key += 2)
        map[key] = key + 1;
    EXPECT_EQ(map.capacity(), capacity);
    EXPECT_EQ(map.size(), kKeys);
}

TEST(FlatMapTest, ClearReleasesStorage)
{
    FlatMap<Addr, Word> map;
    for (Addr key = 0; key < 100; key++)
        map[key] = key;
    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.capacity(), 0u);
    EXPECT_EQ(map.peakLoadFactor(), 0.0);
    EXPECT_EQ(map.lookup(1), nullptr);
    map[5] = 50;
    EXPECT_EQ(*map.lookup(5), 50u);
}

TEST(FlatMapTest, ReservePresizesPastTheGrowthThreshold)
{
    FlatMap<Addr, Word> map;
    map.reserve(1000);
    std::size_t capacity = map.capacity();
    EXPECT_EQ(capacity & (capacity - 1), 0u);
    EXPECT_GT(capacity * 3, 1000u * 4 - 4); // 1000 fits under 3/4
    for (Addr key = 0; key < 1000; key++)
        map[key] = key;
    EXPECT_EQ(map.capacity(), capacity); // no growth needed
    map.reserve(10); // never shrinks
    EXPECT_EQ(map.capacity(), capacity);
}

TEST(FlatMapTest, ForEachVisitsEveryEntryExactlyOnce)
{
    FlatMap<Addr, Word> map;
    for (Addr key = 0; key < 257; key++)
        map[key * 31] = key;
    std::vector<std::pair<Addr, Word>> seen;
    map.forEach([&](Addr key, Word value) {
        seen.emplace_back(key, value);
    });
    EXPECT_EQ(seen.size(), 257u);
    std::sort(seen.begin(), seen.end());
    for (Addr key = 0; key < 257; key++) {
        EXPECT_EQ(seen[key].first, key * 31);
        EXPECT_EQ(seen[key].second, key);
    }
}

TEST(FlatMapTest, IterationOrderIsAPureFunctionOfTheOpSequence)
{
    // Two maps fed the identical operation sequence iterate in the
    // identical order — the determinism half of the flat-map
    // contract (the fixed Fibonacci hash, never std::hash).
    auto build = [] {
        FlatMap<Addr, Word> map;
        std::mt19937_64 rng(99);
        for (int op = 0; op < 5000; op++) {
            Addr key = rng() % 701;
            if (rng() % 3 == 0)
                map.erase(key);
            else
                map[key] = static_cast<Word>(op);
        }
        return map;
    };
    FlatMap<Addr, Word> a = build();
    FlatMap<Addr, Word> b = build();
    std::vector<std::pair<Addr, Word>> wa, wb;
    a.forEach([&](Addr k, Word v) { wa.emplace_back(k, v); });
    b.forEach([&](Addr k, Word v) { wb.emplace_back(k, v); });
    EXPECT_EQ(wa, wb);
    EXPECT_FALSE(wa.empty());
}

TEST(FlatMapTest, RandomizedMirrorAgainstUnorderedMap)
{
    // Property test: a long random interleaving of insert, update,
    // erase, and lookup must leave the flat map element-for-element
    // equal to std::unordered_map at every step's observation points.
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> mirror;
    std::mt19937_64 rng(2026);
    // A small key universe forces constant collisions, re-inserts,
    // and probe chains crossing erased slots.
    constexpr std::uint64_t kUniverse = 1500;

    for (int op = 0; op < 100000; op++) {
        std::uint64_t key = rng() % kUniverse;
        switch (rng() % 4) {
          case 0:
          case 1: { // insert or update
            std::uint64_t value = rng();
            map[key] = value;
            mirror[key] = value;
            break;
          }
          case 2: { // erase
            bool erased = map.erase(key);
            EXPECT_EQ(erased, mirror.erase(key) == 1);
            break;
          }
          case 3: { // lookup
            const std::uint64_t *value = map.lookup(key);
            auto it = mirror.find(key);
            if (it == mirror.end()) {
                EXPECT_EQ(value, nullptr);
            } else {
                ASSERT_NE(value, nullptr);
                EXPECT_EQ(*value, it->second);
            }
            break;
          }
        }
        EXPECT_EQ(map.size(), mirror.size());
    }

    // Full-content comparison at the end.
    std::size_t visited = 0;
    map.forEach([&](std::uint64_t key, std::uint64_t value) {
        auto it = mirror.find(key);
        ASSERT_NE(it, mirror.end());
        EXPECT_EQ(value, it->second);
        visited++;
    });
    EXPECT_EQ(visited, mirror.size());
}

} // namespace
} // namespace ddc
