/**
 * @file
 * Unit tests of the serial-consistency checker and the configuration
 * lemma checker, including negative cases with hand-forged logs.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "trace/synthetic.hh"
#include "verify/consistency.hh"

namespace ddc {
namespace {

LogEntry
entry(PeId pe, CpuOp op, Addr addr, Word value)
{
    LogEntry result;
    result.pe = pe;
    result.op = op;
    result.addr = addr;
    result.value = value;
    return result;
}

TEST(SerialConsistency, EmptyLogIsConsistent)
{
    ExecutionLog log;
    auto report = checkSerialConsistency(log);
    EXPECT_TRUE(report.consistent);
    EXPECT_EQ(report.violations, 0u);
}

TEST(SerialConsistency, WriteThenMatchingRead)
{
    ExecutionLog log;
    log.append(entry(0, CpuOp::Write, 1, 5));
    log.append(entry(1, CpuOp::Read, 1, 5));
    EXPECT_TRUE(checkSerialConsistency(log).consistent);
}

TEST(SerialConsistency, UninitializedReadsZero)
{
    ExecutionLog log;
    log.append(entry(0, CpuOp::Read, 9, 0));
    EXPECT_TRUE(checkSerialConsistency(log).consistent);
    ExecutionLog bad;
    bad.append(entry(0, CpuOp::Read, 9, 1));
    EXPECT_FALSE(checkSerialConsistency(bad).consistent);
}

TEST(SerialConsistency, StaleReadFlagged)
{
    ExecutionLog log;
    log.append(entry(0, CpuOp::Write, 1, 5));
    log.append(entry(0, CpuOp::Write, 1, 6));
    log.append(entry(1, CpuOp::Read, 1, 5)); // stale
    auto report = checkSerialConsistency(log);
    EXPECT_FALSE(report.consistent);
    EXPECT_EQ(report.violations, 1u);
    EXPECT_NE(report.first_error.find("stale read"), std::string::npos);
}

TEST(SerialConsistency, TsOutcomeMustMatchValue)
{
    ExecutionLog log;
    auto ts = entry(0, CpuOp::TestAndSet, 1, 0);
    ts.stored = 1;
    ts.ts_success = true;
    log.append(ts);
    log.append(entry(1, CpuOp::Read, 1, 1));
    EXPECT_TRUE(checkSerialConsistency(log).consistent);

    // A TS that claims success on a non-zero observed value.
    ExecutionLog bad;
    bad.append(entry(0, CpuOp::Write, 1, 7));
    auto lying = entry(0, CpuOp::TestAndSet, 1, 7);
    lying.stored = 1;
    lying.ts_success = true;
    bad.append(lying);
    auto report = checkSerialConsistency(bad);
    EXPECT_FALSE(report.consistent);
    EXPECT_NE(report.first_error.find("outcome"), std::string::npos);
}

TEST(SerialConsistency, TsObservedValueChecked)
{
    ExecutionLog log;
    log.append(entry(0, CpuOp::Write, 1, 3));
    auto ts = entry(1, CpuOp::TestAndSet, 1, 0); // should observe 3
    ts.ts_success = true;
    ts.stored = 9;
    log.append(ts);
    auto report = checkSerialConsistency(log);
    EXPECT_FALSE(report.consistent);
    EXPECT_GE(report.violations, 1u);
}

TEST(SerialConsistency, FailedTsDoesNotStore)
{
    ExecutionLog log;
    log.append(entry(0, CpuOp::Write, 1, 2));
    auto ts = entry(1, CpuOp::TestAndSet, 1, 2);
    ts.ts_success = false;
    ts.stored = 9;
    log.append(ts);
    log.append(entry(0, CpuOp::Read, 1, 2)); // still 2
    EXPECT_TRUE(checkSerialConsistency(log).consistent);
}

TEST(SerialConsistency, ReadLockAndWriteUnlockTreatedAsReadWrite)
{
    ExecutionLog log;
    log.append(entry(0, CpuOp::ReadLock, 1, 0));
    log.append(entry(0, CpuOp::WriteUnlock, 1, 4));
    log.append(entry(1, CpuOp::Read, 1, 4));
    EXPECT_TRUE(checkSerialConsistency(log).consistent);
}

TEST(SerialConsistency, ViolationsCounted)
{
    ExecutionLog log;
    log.append(entry(0, CpuOp::Read, 1, 7));
    log.append(entry(0, CpuOp::Read, 2, 7));
    log.append(entry(0, CpuOp::Read, 3, 7));
    auto report = checkSerialConsistency(log);
    EXPECT_EQ(report.violations, 3u);
}

TEST(ConfigurationLemma, HoldsAfterRandomRun)
{
    for (auto kind : allProtocolKinds()) {
        SystemConfig config;
        config.num_pes = 4;
        config.protocol = kind;
        auto trace = makeUniformRandomTrace(4, 800, 24, 0.4, 0.1, 13);
        System system(config);
        system.loadTrace(trace);
        system.run();
        ASSERT_TRUE(system.allDone()) << toString(kind);

        std::vector<Addr> addrs;
        for (Addr a = 0; a < 24; a++)
            addrs.push_back(sharedBase() + a);
        auto report = checkConfigurationLemma(system, addrs);
        EXPECT_TRUE(report.consistent)
            << toString(kind) << ": " << report.first_error;
    }
}

TEST(ConfigurationLemma, EmptySystemTriviallyConsistent)
{
    SystemConfig config;
    config.num_pes = 2;
    System system(config);
    auto report = checkConfigurationLemma(system, {1, 2, 3});
    EXPECT_TRUE(report.consistent);
}

} // namespace
} // namespace ddc
