#include "sim/shard.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ddc {

Shard::Shard(int id, std::uint64_t seed, std::size_t agent_slots)
    : shardId(id),
      stream(StreamRng::forShard(seed, static_cast<std::uint64_t>(id)))
{
    agents.assign(agent_slots, nullptr);
    stalled.assign(agent_slots, 0);
    wake.assign(agent_slots, 0);
    accrued.assign(agent_slots, 0);
}

void
Shard::addComponent(Tickable *component)
{
    ddc_assert(component != nullptr,
               "Shard::addComponent needs a component");
    components.push_back(component);
}

char *
Shard::wakeFlag(std::size_t slot)
{
    ddc_assert(slot < wake.size(), "agent slot out of range");
    return &wake[slot];
}

void
Shard::setAgent(std::size_t slot, Agent *agent)
{
    ddc_assert(slot < agents.size(), "agent slot out of range");
    agents[slot] = agent;
}

void
Shard::rebuild()
{
    flushStalls();
    std::fill(stalled.begin(), stalled.end(), 0);
    std::fill(wake.begin(), wake.end(), 0);
    active.clear();
    for (std::size_t slot = 0; slot < agents.size(); slot++) {
        if (agents[slot] && !agents[slot]->done())
            active.push_back(slot);
    }
}

void
Shard::tick()
{
    for (Tickable *component : components)
        component->tick();
    std::size_t out = 0;
    for (std::size_t slot : active) {
        if (stalled[slot]) {
            if (!wake[slot]) {
                accrued[slot]++;
                active[out++] = slot;
                continue;
            }
            stalled[slot] = 0;
            wake[slot] = 0;
            if (accrued[slot] > 0) {
                agents[slot]->addStallCycles(accrued[slot]);
                accrued[slot] = 0;
            }
        }
        agents[slot]->tick();
        if (agents[slot]->stalledOnCompletion()) {
            stalled[slot] = 1;
            wake[slot] = 0;
        }
        if (!agents[slot]->done())
            active[out++] = slot;
    }
    active.resize(out);
}

Cycle
Shard::nextEventCycle(Cycle now) const
{
    Cycle earliest = kNever;
    for (const Tickable *component : components) {
        Cycle next = component->nextEventCycle(now);
        if (next <= now)
            return now;
        earliest = std::min(earliest, next);
    }
    for (std::size_t slot : active) {
        // A stalled agent with no wake pending can only be woken by
        // its cache's completion: kNever, without the virtual call.
        if (stalled[slot] && !wake[slot])
            continue;
        Cycle next = agents[slot]->nextEventCycle(now);
        if (next <= now)
            return now;
        earliest = std::min(earliest, next);
    }
    return earliest;
}

Cycle
Shard::earliestGlobalEmission(Cycle now) const
{
    Cycle earliest = kNever;
    for (const Tickable *component : components) {
        // A runnable bus could execute a request and forward it
        // global-ward within its own tick.
        Cycle next = component->nextEventCycle(now);
        if (next <= now)
            return now;
        earliest = std::min(earliest, next);
    }
    for (std::size_t slot : active) {
        // Stalled with no wake pending: only the cache's completion
        // can rouse the agent — no emission, without the virtual call.
        if (stalled[slot] && !wake[slot])
            continue;
        Cycle next = agents[slot]->nextEventCycle(now);
        if (next == kNever)
            continue;
        // An agent's access arms at most the shard-local bus; the bus
        // can first carry it to the global edge one tick later.
        earliest = std::min(earliest, std::max(next, now) + 1);
    }
    return earliest;
}

Cycle
Shard::earliestDoneCycle(Cycle now) const
{
    Cycle latest = now;
    for (std::size_t slot : active)
        latest = std::max(latest, agents[slot]->earliestDoneCycle(now));
    return latest;
}

void
Shard::skipCycles(Cycle count)
{
    for (Tickable *component : components)
        component->skipCycles(count);
    for (std::size_t slot : active)
        agents[slot]->skipCycles(count);
}

void
Shard::flushStalls() const
{
    for (std::size_t slot = 0; slot < accrued.size(); slot++) {
        if (accrued[slot] > 0 && agents[slot]) {
            agents[slot]->addStallCycles(accrued[slot]);
            accrued[slot] = 0;
        }
    }
}

} // namespace ddc
