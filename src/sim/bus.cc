#include "sim/bus.hh"

#include <atomic>
#include <bit>

#include "base/logging.hh"

namespace ddc {

std::string_view
busOpStatName(BusOp op)
{
    switch (op) {
      case BusOp::Read:        return "bus.read";
      case BusOp::Write:       return "bus.write";
      case BusOp::Invalidate:  return "bus.invalidate";
      case BusOp::Rmw:         return "bus.rmw";
      case BusOp::ReadLock:    return "bus.readlock";
      case BusOp::WriteUnlock: return "bus.writeunlock";
    }
    ddc_panic("unknown BusOp ", static_cast<int>(op));
}

/**
 * "bus.nack." + toString(op), pre-joined so the constructor interns a
 * literal instead of assembling a std::string per op per Bus.
 * tests/bus_test.cc pins each name to its toString(BusOp) spelling.
 */
std::string_view
busNackStatName(BusOp op)
{
    switch (op) {
      case BusOp::Read:        return "bus.nack.BusRead";
      case BusOp::Write:       return "bus.nack.BusWrite";
      case BusOp::Invalidate:  return "bus.nack.BusInvalidate";
      case BusOp::Rmw:         return "bus.nack.BusRmw";
      case BusOp::ReadLock:    return "bus.nack.BusReadLock";
      case BusOp::WriteUnlock: return "bus.nack.BusWriteUnlock";
    }
    ddc_panic("unknown BusOp ", static_cast<int>(op));
}

namespace {

std::size_t
opIndex(BusOp op)
{
    return static_cast<std::size_t>(op);
}

// Atomic for the same reason as quiescentSkip in system.cc: parallel
// sweep workers may read it while the main thread parses flags;
// flipped only before any Bus is built in practice.
std::atomic<bool> snoopFilter{true};

constexpr std::uint64_t
clientBit(int client)
{
    return std::uint64_t{1} << client;
}

} // namespace

Addr
BusClient::pendingAddr() const
{
    ddc_panic("this bus client cannot be address-routed (pendingAddr "
              "is only implemented by global-fabric clients)");
}

void
setSnoopFilterEnabled(bool enabled)
{
    snoopFilter.store(enabled, std::memory_order_relaxed);
}

bool
snoopFilterEnabled()
{
    return snoopFilter.load(std::memory_order_relaxed);
}

Bus::Bus(MemorySide &memory, ArbiterKind arbiter_kind, const Clock &clock,
         stats::CounterSet &stats, std::uint64_t seed,
         std::size_t block_words, std::size_t memory_latency,
         bool snoop_filter)
    : memory(memory), arbiter(makeArbiter(arbiter_kind, seed)),
      clock(clock), stats(stats), blockSize(block_words),
      memoryLatency(memory_latency),
      filterOn(snoop_filter && snoopFilterEnabled())
{
    ddc_assert(block_words >= 1, "block size must be at least one word");
    if ((blockSize & (blockSize - 1)) == 0) {
        for (std::size_t size = blockSize; size > 1; size >>= 1)
            blockShift++;
    } else {
        blockPow2 = false;
    }
    statBusy = stats.intern("bus.busy_cycles");
    statTransfer = stats.intern("bus.transfer_cycles");
    statIdle = stats.intern("bus.idle_cycles");
    statKill = stats.intern("bus.kill");
    statSupplyWrite = stats.intern("bus.supply_write");
    statRmwSuccess = stats.intern("bus.rmw_success");
    statRmwFail = stats.intern("bus.rmw_fail");
    statNack = stats.intern("bus.nack");
    for (auto op : {BusOp::Read, BusOp::Write, BusOp::Invalidate,
                    BusOp::Rmw, BusOp::ReadLock, BusOp::WriteUnlock}) {
        statOp[opIndex(op)] = stats.intern(busOpStatName(op));
        statNackOp[opIndex(op)] = stats.intern(busNackStatName(op));
    }
}

int
Bus::attach(BusClient *client)
{
    ddc_assert(client != nullptr, "null bus client");
    clients.push_back(client);
    armed.push_back(1);
    armedCount.fetch_add(1, std::memory_order_relaxed);
    suppliers.push_back(1);
    supplierCount++;
    indexed.push_back(0);
    int index = static_cast<int>(clients.size()) - 1;
    if (clients.size() > kMaxFilterClients) {
        revertToFullSnoop();
    } else {
        alwaysSnoopMask |= clientBit(index);
        supplierMask |= clientBit(index);
    }
    return index;
}

void
Bus::setSnoopIndexed(int client)
{
    auto index = static_cast<std::size_t>(client);
    ddc_assert(index < clients.size(), "bad bus client index ", client);
    if (indexed[index])
        return;
    indexed[index] = 1;
    if (index < kMaxFilterClients)
        alwaysSnoopMask &= ~clientBit(client);
}

void
Bus::noteBlockPresent(int client, Addr base)
{
    ddc_assert(static_cast<std::size_t>(client) < clients.size() &&
                   indexed[static_cast<std::size_t>(client)],
               "presence note from a non-indexed client ", client);
    if (!filterOn)
        return;
    std::uint64_t &mask = holders.findOrInsert(blockIndex(base));
    ddc_assert(!(mask & clientBit(client)),
               "client ", client, " already indexed for block ", base);
    mask |= clientBit(client);
    if (holders.size() > kMaxFilterBlocks)
        revertToFullSnoop();
}

void
Bus::noteBlockAbsent(int client, Addr base)
{
    if (!filterOn)
        return;
    std::uint64_t *mask = holders.lookup(blockIndex(base));
    ddc_assert(mask != nullptr && (*mask & clientBit(client)),
               "client ", client, " not indexed for block ", base);
    *mask &= ~clientBit(client);
}

std::vector<int>
Bus::indexHolders(Addr addr) const
{
    std::vector<int> held;
    std::uint64_t mask = heldMask(addr);
    for (; mask != 0; mask &= mask - 1)
        held.push_back(std::countr_zero(mask));
    return held;
}

void
Bus::setSupplier(int client, bool is_supplier)
{
    auto index = static_cast<std::size_t>(client);
    ddc_assert(index < clients.size(), "bad bus client index ", client);
    char flag = is_supplier ? 1 : 0;
    if (suppliers[index] == flag)
        return;
    suppliers[index] = flag;
    if (is_supplier)
        supplierCount++;
    else
        supplierCount--;
    if (index < kMaxFilterClients) {
        if (is_supplier)
            supplierMask |= clientBit(client);
        else
            supplierMask &= ~clientBit(client);
    }
}

void
Bus::setRequestArmed(int client, bool is_armed)
{
    auto index = static_cast<std::size_t>(client);
    ddc_assert(index < clients.size(), "bad bus client index ", client);
    char flag = is_armed ? 1 : 0;
    if (armed[index] == flag)
        return;
    armed[index] = flag;
    if (is_armed)
        armedCount.fetch_add(1, std::memory_order_relaxed);
    else
        armedCount.fetch_sub(1, std::memory_order_relaxed);
}

const std::vector<int> &
Bus::collectRequesters()
{
    requesters.clear();
    if (armedClients() == 0)
        return requesters;
    for (std::size_t i = 0; i < clients.size(); i++) {
        if (armed[i] && clients[i]->hasRequest())
            requesters.push_back(static_cast<int>(i));
    }
    return requesters;
}

bool
Bus::idle()
{
    if (transferCyclesLeft > 0)
        return false;
    return collectRequesters().empty();
}

void
Bus::occupy(std::size_t extra_cycles)
{
    transferCyclesLeft += extra_cycles;
}

void
Bus::skipCycles(Cycle count)
{
    // Streaming past the end of the in-flight transfer is only legal
    // when no client could have requested the freed bus.
    ddc_assert(count <= static_cast<Cycle>(transferCyclesLeft) ||
                   armedClients() == 0,
               "skipped across a bus grant opportunity");
    auto streamed = std::min(count,
                             static_cast<Cycle>(transferCyclesLeft));
    if (streamed > 0) {
        transferCyclesLeft -= static_cast<std::size_t>(streamed);
        stats.add(statBusy, streamed);
        stats.add(statTransfer, streamed);
    }
    if (count > streamed)
        stats.add(statIdle, count - streamed);
}

void
Bus::tick()
{
    if (transferCyclesLeft > 0) {
        // A multi-cycle transfer is still streaming over the bus.
        transferCyclesLeft--;
        stats.add(statBusy);
        stats.add(statTransfer);
        return;
    }

    const std::vector<int> &ready = collectRequesters();
    if (ready.empty()) {
        stats.add(statIdle);
        return;
    }
    stats.add(statBusy);

    int grant = arbiter->pick(ready);
    BusRequest request = clients[static_cast<std::size_t>(grant)]
                             ->currentRequest();

    switch (request.op) {
      case BusOp::Read:
      case BusOp::ReadLock:
      case BusOp::Rmw:
        executeReadLike(grant, request);
        break;
      case BusOp::Write:
      case BusOp::WriteUnlock:
      case BusOp::Invalidate:
        executeWriteLike(grant, request);
        break;
    }
}

std::uint64_t
Bus::blockIndex(Addr addr) const
{
    if (blockPow2)
        return addr >> blockShift;
    return addr / blockSize;
}

std::uint64_t
Bus::snooperMask(Addr addr) const
{
    return heldMask(addr) | alwaysSnoopMask;
}

void
Bus::revertToFullSnoop()
{
    // Only an *active* filter degrades; a bus built (or already
    // reverted) with filtering off is just doing what it was asked.
    if (filterOn) {
        fallbackCount++;
        ddc_warn("snoop filter reverting to full snooping (",
                 clients.size() > kMaxFilterClients
                     ? "more than 64 clients"
                     : "holder index block cap exceeded",
                 "); run continues correct but O(clients) per snoop");
    }
    filterOn = false;
    holders.clear();
}

void
Bus::setObserver(obs::Recorder *recorder, int bus_id,
                 std::size_t shard)
{
    busId = bus_id;
    busTrace = recorder ? recorder->trace(obs::Category::Bus, shard)
                        : nullptr;
    lockRec = recorder ? recorder->lockLane(shard) : nullptr;
}

void
Bus::traceComplete(std::string_view name, Addr addr, int issuer,
                   std::size_t extra_cycles, const char *detail)
{
    obs::TraceEvent event;
    event.ts = clock.now;
    event.dur = 1 + static_cast<Cycle>(extra_cycles);
    event.name = name;
    event.detail = detail;
    event.addr = addr;
    event.has_addr = true;
    event.value = issuer;
    event.value_name = "issuer";
    event.phase = 'X';
    event.track = obs::kTrackBuses;
    event.tid = busId;
    busTrace->push(event);
}

void
Bus::traceInstant(std::string_view name, Addr addr,
                  const char *detail)
{
    obs::TraceEvent event;
    event.ts = clock.now;
    event.name = name;
    event.detail = detail;
    event.addr = addr;
    event.has_addr = true;
    event.track = obs::kTrackBuses;
    event.tid = busId;
    busTrace->push(event);
}

int
Bus::findSupplier(int grant, Addr addr, Word &value)
{
    // Snoop phase: does a cache hold the latest value (Local state)?
    int supplier = -1;
    if (supplierCount == 0)
        return supplier;

    if (!filterOn) {
        for (std::size_t i = 0; i < clients.size(); i++) {
            if (static_cast<int>(i) == grant || !suppliers[i])
                continue;
            snoopVisitCount++;
            Word candidate = 0;
            if (clients[i]->wouldSupply(addr, candidate)) {
                ddc_assert(supplier < 0,
                           "two caches claim ownership of addr ", addr,
                           " (single-Local invariant violated)");
                supplier = static_cast<int>(i);
                value = candidate;
            }
        }
        return supplier;
    }

    // A supplier holds a tag-matching line by definition, so it is
    // either indexed for the block or an always-snoop client; polling
    // anyone else could only return false.
    std::uint64_t mask =
        snooperMask(addr) & supplierMask & ~clientBit(grant);
    for (; mask != 0; mask &= mask - 1) {
        int c = std::countr_zero(mask);
        snoopVisitCount++;
        Word candidate = 0;
        if (clients[static_cast<std::size_t>(c)]->wouldSupply(addr,
                                                              candidate)) {
            ddc_assert(supplier < 0,
                       "two caches claim ownership of addr ", addr,
                       " (single-Local invariant violated)");
            supplier = c;
            value = candidate;
        }
    }

#ifndef NDEBUG
    // Cross-check the index against the pre-filter full scan: every
    // client the filter skipped must indeed decline to supply.
    // (Double-polling is safe: wouldSupply is pure for caches and
    // idempotent for the hierarchical cluster cache.)
    int full_scan = -1;
    for (std::size_t i = 0; i < clients.size(); i++) {
        if (static_cast<int>(i) == grant || !suppliers[i])
            continue;
        Word candidate = 0;
        if (clients[i]->wouldSupply(addr, candidate))
            full_scan = static_cast<int>(i);
    }
    ddc_assert(full_scan == supplier,
               "snoop index disagrees with the full supplier scan for "
               "addr ", addr, ": index says ", supplier, ", scan says ",
               full_scan);
#endif
    return supplier;
}

void
Bus::executeReadLike(int grant, const BusRequest &request)
{
    auto *grantee = clients[static_cast<std::size_t>(grant)];

    Word supplied_value = 0;
    int supplier = findSupplier(grant, request.addr, supplied_value);

    if (supplier >= 0) {
        // Kill the transaction and replace it with the owner's bus
        // write; the original request stays pending and retries.
        auto *owner = clients[static_cast<std::size_t>(supplier)];
        stats.add(statKill);
        stats.add(statSupplyWrite);
        stats.add(statOp[opIndex(BusOp::Write)]);
        if (busTrace) {
            traceInstant("kill", request.addr,
                         toString(request.op).data());
            traceComplete("supply_write", request.addr, supplier,
                          blockSize > 1 ? blockCost() : wordCost());
        }
        // A killed lock RMW is deliberately not a lock release: the
        // supplier is publishing the held value, not unlocking.
        grantee->requestKilled();

        BusTransaction txn{BusOp::Write, request.addr, supplied_value,
                           supplier, {}};
        if (blockSize > 1) {
            Addr base = blockBase(request.addr);
            txn.block = owner->supplyBlock(request.addr);
            ddc_assert(txn.block.size() == blockSize,
                       "supplier returned a malformed block");
            memory.acceptSupplyBlock(base, txn.block);
            occupy(blockCost());
        } else {
            memory.acceptSupply(request.addr, supplied_value);
            occupy(wordCost());
        }
        broadcast(txn, supplier);
        owner->supplied(request.addr);
        return;
    }

    PeId pe = grantee->peId();
    switch (request.op) {
      case BusOp::Read: {
        if (request.block_transfer && blockSize > 1) {
            Addr base = blockBase(request.addr);
            BusResult result;
            if (!memory.tryReadBlock(base, blockSize, pe, result.block)) {
                nack(grant, request);
                return;
            }
            stats.add(statOp[opIndex(request.op)]);
            if (busTrace)
                traceComplete(toString(request.op), request.addr,
                              grant, blockCost(), "block");
            result.data =
                result.block[static_cast<std::size_t>(request.addr -
                                                      base)];
            occupy(blockCost());
            BusTransaction txn{BusOp::Read, request.addr, result.data,
                               grant, result.block};
            broadcast(txn, grant);
            grantee->requestComplete(result);
        } else {
            Word data = 0;
            if (!memory.tryRead(request.addr, pe, data)) {
                nack(grant, request);
                return;
            }
            stats.add(statOp[opIndex(request.op)]);
            if (busTrace)
                traceComplete(toString(request.op), request.addr,
                              grant, wordCost());
            occupy(wordCost());
            broadcast({BusOp::Read, request.addr, data, grant, {}},
                      grant);
            grantee->requestComplete({data, false, {}});
        }
        return;
      }
      case BusOp::ReadLock: {
        Word data = 0;
        if (!memory.tryReadLock(request.addr, pe, data)) {
            nack(grant, request);
            return;
        }
        stats.add(statOp[opIndex(request.op)]);
        if (busTrace)
            traceComplete(toString(request.op), request.addr, grant,
                          wordCost());
        if (lockRec)
            lockRec->attempt(pe, request.addr, clock.now, true);
        occupy(wordCost());
        broadcast({BusOp::Read, request.addr, data, grant, {}}, grant);
        grantee->requestComplete({data, false, {}});
        return;
      }
      case BusOp::Rmw: {
        Word old = 0;
        bool success = false;
        if (!memory.tryRmw(request.addr, pe, request.data, old, success)) {
            nack(grant, request);
            return;
        }
        stats.add(statOp[opIndex(request.op)]);
        if (busTrace)
            traceComplete(toString(request.op), request.addr, grant,
                          wordCost(), success ? "success" : "fail");
        if (lockRec)
            lockRec->attempt(pe, request.addr, clock.now, success);
        occupy(wordCost());
        if (success) {
            stats.add(statRmwSuccess);
            broadcast({BusOp::Write, request.addr, request.data, grant,
                       {}},
                      grant);
            grantee->requestComplete({old, true, {}});
        } else {
            stats.add(statRmwFail);
            broadcast({BusOp::Read, request.addr, old, grant, {}}, grant);
            grantee->requestComplete({old, false, {}});
        }
        return;
      }
      default:
        break;
    }
    ddc_panic("unreachable");
}

void
Bus::executeWriteLike(int grant, const BusRequest &request)
{
    auto *grantee = clients[static_cast<std::size_t>(grant)];
    PeId pe = grantee->peId();

    BusTransaction txn;
    txn.addr = request.addr;
    txn.data = request.data;
    txn.issuer = grant;
    // Snoopers see the RWB BI signal as-is and everything else as an
    // effective bus write.
    txn.op = request.op == BusOp::Invalidate ? BusOp::Invalidate
                                             : BusOp::Write;

    if (request.block_transfer && blockSize > 1) {
        // Write-back / flush of a whole dirty block.
        ddc_assert(request.block_data.size() == blockSize,
                   "malformed block write");
        if (!memory.tryWriteBlock(blockBase(request.addr), pe,
                                  request.block_data)) {
            nack(grant, request);
            return;
        }
        txn.block = request.block_data;
        occupy(blockCost());
    } else if (request.op == BusOp::WriteUnlock) {
        if (!memory.tryWriteUnlock(request.addr, pe, request.data)) {
            nack(grant, request);
            return;
        }
        occupy(wordCost());
    } else if (request.op == BusOp::Invalidate) {
        if (!memory.tryInvalidate(request.addr, pe, request.data)) {
            nack(grant, request);
            return;
        }
        occupy(wordCost());
    } else {
        if (!memory.tryWrite(request.addr, pe, request.data)) {
            // "Any bus writes before the unlock will fail" (Section 3).
            nack(grant, request);
            return;
        }
        occupy(wordCost());
    }

    stats.add(statOp[opIndex(request.op)]);
    if (busTrace)
        traceComplete(toString(request.op), request.addr, grant,
                      request.block_transfer && blockSize > 1
                          ? blockCost()
                          : wordCost(),
                      request.block_transfer ? "block" : nullptr);
    broadcast(txn, grant);
    grantee->requestComplete({request.data, false, {}});
}

void
Bus::broadcast(const BusTransaction &txn, int skip)
{
    if (!filterOn) {
        for (std::size_t i = 0; i < clients.size(); i++) {
            if (static_cast<int>(i) == skip)
                continue;
            snoopVisitCount++;
            clients[i]->observe(txn);
        }
        return;
    }

    // A skipped client holds no tag-matching line, for which observe()
    // is a pure no-op (caches react only to blocks they contain), so
    // filtering is unobservable in state, counters, and the log.
    std::uint64_t mask = snooperMask(txn.addr);
    if (skip >= 0)
        mask &= ~clientBit(skip);
    for (; mask != 0; mask &= mask - 1) {
        int c = std::countr_zero(mask);
        snoopVisitCount++;
        clients[static_cast<std::size_t>(c)]->observe(txn);
    }
}

void
Bus::nack(int grant, const BusRequest &request)
{
    stats.add(statNack);
    stats.add(statNackOp[opIndex(request.op)]);
    if (busTrace)
        traceInstant("nack", request.addr,
                     toString(request.op).data());
    // A NACKed lock primitive is a failed acquisition attempt (the
    // word is locked by another PE's two-phase RMW).
    if (lockRec &&
        (request.op == BusOp::Rmw || request.op == BusOp::ReadLock))
        lockRec->attempt(clients[static_cast<std::size_t>(grant)]
                             ->peId(),
                         request.addr, clock.now, false);
    clients[static_cast<std::size_t>(grant)]->requestNacked();
}

} // namespace ddc
