/** @file Unit tests for the ISA program builder. */

#include <gtest/gtest.h>

#include "sim/isa.hh"

namespace ddc {
namespace {

TEST(ProgramBuilder, EmitsInstructionsInOrder)
{
    ProgramBuilder builder;
    auto program = builder.loadImm(1, 5).nop().halt().build();
    ASSERT_EQ(program.size(), 3u);
    EXPECT_EQ(program[0].op, Opcode::LoadImm);
    EXPECT_EQ(program[0].dst, 1);
    EXPECT_EQ(program[0].imm, 5);
    EXPECT_EQ(program[1].op, Opcode::Nop);
    EXPECT_EQ(program[2].op, Opcode::Halt);
}

TEST(ProgramBuilder, ResolvesForwardLabels)
{
    ProgramBuilder builder;
    auto program = builder.jump("end")     // 0
                       .nop()              // 1
                       .label("end")
                       .halt()             // 2
                       .build();
    EXPECT_EQ(program[0].imm, 2);
}

TEST(ProgramBuilder, ResolvesBackwardLabels)
{
    ProgramBuilder builder;
    auto program = builder.label("top")
                       .nop()                     // 0
                       .branchIfZero(1, "top")    // 1
                       .halt()
                       .build();
    EXPECT_EQ(program[1].imm, 0);
}

TEST(ProgramBuilder, UndefinedLabelIsFatal)
{
    ProgramBuilder builder;
    builder.jump("nowhere");
    EXPECT_DEATH(builder.build(), "undefined label");
}

TEST(ProgramBuilder, DuplicateLabelDies)
{
    ProgramBuilder builder;
    builder.label("x").nop();
    EXPECT_DEATH(builder.label("x"), "duplicate label");
}

TEST(ProgramBuilder, RegisterRangeChecked)
{
    ProgramBuilder builder;
    EXPECT_DEATH(builder.loadImm(kNumRegs, 0), "register");
    EXPECT_DEATH(builder.move(-1, 0), "register");
}

TEST(ProgramBuilder, MemoryOpsCarryDataClass)
{
    ProgramBuilder builder;
    auto program = builder.load(1, 2, 0, DataClass::Code)
                       .store(2, 3, 4, DataClass::Local)
                       .halt()
                       .build();
    EXPECT_EQ(program[0].cls, DataClass::Code);
    EXPECT_EQ(program[1].cls, DataClass::Local);
    EXPECT_EQ(program[1].imm, 4);
}

TEST(Opcode, AllNamesPrintable)
{
    for (auto op : {Opcode::Nop, Opcode::Halt, Opcode::LoadImm,
                    Opcode::Move, Opcode::Load, Opcode::Store,
                    Opcode::TestAndSet, Opcode::LoadLocked,
                    Opcode::StoreUnlock, Opcode::Add, Opcode::Sub,
                    Opcode::AddImm, Opcode::BranchIfZero,
                    Opcode::BranchIfNotZero, Opcode::Jump}) {
        EXPECT_NE(toString(op), "?");
    }
}

} // namespace
} // namespace ddc
