/**
 * @file
 * Ablation A5: block size (assumption 7, quantified).
 *
 * "Our choice of set size and block size of one has two motivations.
 * First, a high cache hit ratio may not always result in good
 * performance ... Secondly, shared data appears to have different, if
 * any, notions of locality.  There is no reason to suspect that
 * nearby address of shared variables will be used by the same
 * processor at the same time."  (Section 2.)
 *
 * We hold cache capacity constant in words and sweep the block size
 * over three reference patterns: a sequential private walk (spatial
 * locality rewards big blocks), word-granular false sharing (big
 * blocks create invalidation ping-pong between unrelated PEs), and
 * the Cm*-style mixed application.  Reported: miss ratio, bus
 * occupancy (block transfers hold the bus for B cycles), and total
 * cycles.
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

const std::size_t kBlockWords[] = {1, 2, 4, 8};

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Ablation A5: cache block size (assumption 7)\n"
        "(RB scheme, capacity fixed at 1024 words per cache; block\n"
        "transfers occupy the bus for B cycles)\n\n";

    std::vector<std::pair<std::string, Trace>> workloads;
    workloads.emplace_back("sequential_private_walk",
                           makeSequentialWalkTrace(4, 512, 4, 7));
    workloads.emplace_back("false_sharing", makeFalseSharingTrace(4, 256));
    workloads.emplace_back("cmstar_mix",
                           makeCmStarTrace(cmStarApplicationA(), 4, 20000,
                                           5));

    exp::ParamGrid grid;
    {
        std::vector<std::string> names;
        for (const auto &[name, trace] : workloads)
            names.push_back(name);
        grid.axis("workload", names);
        grid.axis("block_words", {"1", "2", "4", "8"});
    }

    exp::Experiment spec("ablation_block_size",
                         "A5: block-size sweep at constant cache "
                         "capacity over three reference patterns");
    spec.addGrid(grid, [grid, workloads](std::size_t flat) {
        auto indices = grid.indicesAt(flat);
        std::size_t block = kBlockWords[indices[1]];
        exp::TraceRun run;
        run.config.num_pes = 4;
        run.config.cache_lines = 1024 / block;
        run.config.block_words = block;
        run.config.protocol = ProtocolKind::Rb;
        run.trace = workloads[indices[0]].second;
        return run;
    });
    const auto &results = session.run(spec);

    std::size_t flat = 0;
    for (const auto &[name, trace] : workloads) {
        Table table(std::string("Workload: ") + name);
        table.setHeader({"block words", "miss ratio", "bus busy cycles",
                         "total cycles"});
        for (std::size_t b = 0; b < 4; b++, flat++) {
            const auto &result = results[flat];
            table.addRow({std::to_string(kBlockWords[b]),
                          Table::num(result.metric("miss_ratio"), 4),
                          std::to_string(
                              result.counters.get("bus.busy_cycles")),
                          std::to_string(result.cycles)});
        }
        std::cout << table.render() << "\n";
    }
    std::cout <<
        "Expected shape: on the private sequential walk, larger blocks\n"
        "cut the miss ratio ~1/B (prefetching) at constant bus\n"
        "occupancy.  On falsely-shared data, larger blocks multiply\n"
        "bus traffic and runtime: unrelated PEs invalidate each other\n"
        "through shared blocks.  On the mixed application the wins and\n"
        "losses nearly cancel -- supporting the paper's choice of one-\n"
        "word blocks for a shared-data-caching machine.\n\n";
}

void
BM_BlockSweep(benchmark::State &state)
{
    auto block = static_cast<std::size_t>(state.range(0));
    auto trace = makeCmStarTrace(cmStarApplicationA(), 4, 8000, 5);
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 1024 / block;
        config.block_words = block;
        config.protocol = ProtocolKind::Rb;
        auto summary = runTrace(config, trace);
        benchmark::DoNotOptimize(summary.cycles);
    }
}
BENCHMARK(BM_BlockSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
