/**
 * @file
 * Figure 7-1 reproduction: the multiple-shared-bus configuration.
 *
 * "The private caches and the shared memory are divided into two
 * memory banks using the least significant address bit.  Each part of
 * the divided cache will generate, on average, half of the traffic
 * ... Hence, the required bandwidth for each shared bus will be about
 * half."  We run the same workload on 1, 2, and 4 interleaved buses
 * and report per-bus traffic and completion time.
 */

#include "bench_common.hh"

#include <algorithm>
#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

const int kBusCounts[] = {1, 2, 4};

/** Busiest-bus busy cycles of one run (any bus count). */
std::uint64_t
busiestBusOps(const exp::RunResult &result, int buses)
{
    if (buses == 1)
        return result.counters.get("bus.busy_cycles");
    std::uint64_t busiest = 0;
    for (int b = 0; b < buses; b++) {
        busiest = std::max(busiest,
                           result.counters.get("bus" + std::to_string(b) +
                                               ".busy_cycles"));
    }
    return busiest;
}

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Figure 7-1: multiple shared bus cache-based parallel processor\n"
        "(same workload on k = 1, 2, 4 address-interleaved buses;\n"
        "16 PEs, RB scheme, Cm*-mix + hot shared data)\n\n";

    const int num_pes = 16;

    exp::ParamGrid grid;
    grid.axis("buses", {"1", "2", "4"});

    exp::Experiment spec("fig_7_1_multibus",
                         "Figure 7-1: per-bus traffic and completion "
                         "time on k address-interleaved buses");
    spec.addGrid(grid, [](std::size_t flat) {
        exp::TraceRun run;
        run.config.num_pes = num_pes;
        run.config.cache_lines = 1024;
        run.config.protocol = ProtocolKind::Rb;
        run.config.num_buses = kBusCounts[flat];
        run.trace = makeCmStarTrace(cmStarApplicationA(), num_pes,
                                    4000, 3);
        return run;
    });
    const auto &results = session.run(spec);

    Table table;
    table.setHeader({"buses", "cycles", "total bus ops",
                     "busiest bus ops", "per-bus share", "speedup"});
    double base_cycles = 0.0;
    for (std::size_t i = 0; i < results.size(); i++) {
        const auto &result = results[i];
        int buses = kBusCounts[i];
        std::uint64_t total = result.bus_transactions;
        std::uint64_t busiest = busiestBusOps(result, buses);
        auto cycles = static_cast<double>(result.cycles);
        if (buses == 1)
            base_cycles = cycles;
        table.addRow({std::to_string(buses),
                      std::to_string(result.cycles),
                      std::to_string(total), std::to_string(busiest),
                      Table::num(static_cast<double>(busiest) /
                                     static_cast<double>(total), 3),
                      Table::num(base_cycles / cycles, 2)});
    }
    std::cout << table.render();
    std::cout <<
        "\nShape to check: total bus demand is protocol-determined and\n"
        "constant; the busiest bus carries ~1/k of it, so the saturated\n"
        "single-bus run speeds up with k.  'Initial evaluation shows ...\n"
        "as many as 32 to 256 processors could be economically built'\n"
        "using a small number of buses.\n\n";
}

void
BM_MultibusRun(benchmark::State &state)
{
    auto buses = static_cast<int>(state.range(0));
    auto trace = makeCmStarTrace(cmStarApplicationA(), 16, 2000, 3);
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = 16;
        config.cache_lines = 1024;
        config.protocol = ProtocolKind::Rb;
        config.num_buses = buses;
        auto summary = runTrace(config, trace);
        benchmark::DoNotOptimize(summary.cycles);
    }
}
BENCHMARK(BM_MultibusRun)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/** Simulated cycle counts per bus count, exposed as counters. */
void
BM_MultibusSimulatedCycles(benchmark::State &state)
{
    auto buses = static_cast<int>(state.range(0));
    auto trace = makeCmStarTrace(cmStarApplicationA(), 16, 2000, 3);
    double cycles = 0.0;
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = 16;
        config.cache_lines = 1024;
        config.protocol = ProtocolKind::Rb;
        config.num_buses = buses;
        auto summary = runTrace(config, trace);
        cycles = static_cast<double>(summary.cycles);
    }
    state.counters["simulated_cycles"] = cycles;
}
BENCHMARK(BM_MultibusSimulatedCycles)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
