/**
 * @file
 * Fixed-bucket histogram for latency/occupancy distributions.
 */

#ifndef DDC_STATS_HISTOGRAM_HH
#define DDC_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ddc {
namespace stats {

/**
 * A histogram over non-negative integer samples with uniform buckets
 * plus an overflow bucket.  Also tracks count/sum/min/max so means and
 * extremes survive bucketing.
 */
class Histogram
{
  public:
    /**
     * @param num_buckets Number of uniform buckets before overflow.
     * @param bucket_width Width of each bucket (>= 1).
     */
    Histogram(std::size_t num_buckets = 16, std::uint64_t bucket_width = 1);

    /** Record one sample. */
    void sample(std::uint64_t value);

    /** Number of samples recorded. */
    std::uint64_t count() const { return sampleCount; }

    /** Sum of all samples. */
    std::uint64_t sum() const { return sampleSum; }

    /** Mean of samples (0 when empty). */
    double mean() const;

    /** Smallest sample (0 when empty). */
    std::uint64_t min() const { return sampleCount ? sampleMin : 0; }

    /** Largest sample (0 when empty). */
    std::uint64_t max() const { return sampleMax; }

    /** Count in bucket @p index; the last bucket is the overflow bucket. */
    std::uint64_t bucketCount(std::size_t index) const;

    /** Number of buckets including the overflow bucket. */
    std::size_t numBuckets() const { return buckets.size(); }

    /** Width of each uniform bucket. */
    std::uint64_t bucketWidth() const { return width; }

    /**
     * Smallest sample value v such that at least @p fraction of samples
     * are <= v, resolved at bucket granularity.
     *
     * Edge behavior (all deterministic, all within [min(), max()]):
     *  - empty histogram: 0 for any fraction;
     *  - fraction <= 0: min() (the 0th percentile is the smallest
     *    sample, not a bucket edge);
     *  - fraction >= 1: clamped to 1, which resolves to max() when the
     *    top-ranked sample lives in the last populated bucket;
     *  - overflow bucket: max() (the bucket has no finite upper edge);
     *  - interior buckets: the bucket's upper edge
     *    ((i + 1) * width - 1), clamped to [min(), max()] so a sparse
     *    histogram never reports a value outside the observed range.
     */
    std::uint64_t percentile(double fraction) const;

    /**
     * Fold @p other into this histogram.  Both must share the same
     * geometry (bucket count and width); per-shard metric lanes are
     * constructed identically, so merging is bucket-wise addition.
     */
    void merge(const Histogram &other);

    /** Reset to empty. */
    void clear();

    /** Multi-line ASCII rendering with counts per bucket. */
    std::string render() const;

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t width;
    std::uint64_t sampleCount = 0;
    std::uint64_t sampleSum = 0;
    std::uint64_t sampleMin = 0;
    std::uint64_t sampleMax = 0;
};

} // namespace stats
} // namespace ddc

#endif // DDC_STATS_HISTOGRAM_HH
