/**
 * @file
 * Ablation A6: bus arbitration policy (the paper's assumption 2 just
 * posits "a bus arbitrator"; this quantifies how much the choice
 * matters).  Round-robin, fixed-priority, and random arbitration are
 * compared on (a) lock fairness under contention — fixed priority
 * starves high-index PEs — and (b) throughput on a mixed workload —
 * where the policy barely matters because the protocols keep the bus
 * demand far below the hot-spot regime.
 */

#include "bench_common.hh"

#include <algorithm>
#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "sync/analysis.hh"
#include "sync/workload.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

const ArbiterKind kArbiters[] = {ArbiterKind::RoundRobin,
                                 ArbiterKind::FixedPriority,
                                 ArbiterKind::Random};

/** (a) One fairness point: TS contention run under @p kind. */
exp::RunResult
measureFairness(ArbiterKind kind)
{
    SystemConfig config;
    config.num_pes = 8;
    config.cache_lines = 256;
    config.protocol = ProtocolKind::Rb;
    config.arbiter = kind;
    config.record_log = true;

    System system(config);
    for (PeId pe = 0; pe < 8; pe++) {
        sync::LockProgramParams params;
        params.kind = sync::LockKind::TestAndSet;
        params.lock_addr = sync::lockAddr();
        params.counter_addr = sync::counterAddr();
        params.acquisitions = 8;
        params.cs_increments = 8;
        system.setProgram(pe, sync::makeLockProgram(params));
    }
    Cycle cycles = system.run();

    auto analysis = sync::analyzeLock(system.log(), sync::lockAddr(), 8);

    // Per-PE finish skew: cycle of each PE's last committed access.
    std::vector<Cycle> last_cycle(8, 0);
    for (const auto &entry : system.log().all()) {
        if (entry.pe >= 0 && entry.pe < 8)
            last_cycle[static_cast<std::size_t>(entry.pe)] = entry.cycle;
    }

    exp::RunResult result;
    result.cycles = cycles;
    result.bus_transactions = system.totalBusTransactions();
    result.setMetric("fairness_index", analysis.fairnessIndex());
    result.setMetric("first_pe_done",
                     static_cast<double>(*std::min_element(
                         last_cycle.begin(), last_cycle.end())));
    result.setMetric("last_pe_done",
                     static_cast<double>(*std::max_element(
                         last_cycle.begin(), last_cycle.end())));
    return result;
}

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Ablation A6: bus arbitration policy\n\n"
        "(a) Lock fairness: 8 PEs, TS spin lock on RB, 8 acquisitions\n"
        "wanted per PE; Jain fairness index of the per-PE acquisition\n"
        "counts over the first completed run.\n\n";

    exp::ParamGrid grid;
    {
        std::vector<std::string> names;
        for (auto kind : kArbiters)
            names.push_back(std::string(toString(kind)));
        grid.axis("arbiter", names);
    }

    exp::Experiment fairness_spec("ablation_arbitration_fairness",
                                  "A6a: TS lock fairness by bus "
                                  "arbitration policy");
    for (std::size_t flat = 0; flat < grid.size(); flat++) {
        auto kind = kArbiters[flat];
        fairness_spec.addCustom(grid.paramsAt(flat), [kind]() {
            return measureFairness(kind);
        });
    }
    const auto &fairness_results = session.run(fairness_spec);

    Table fairness;
    fairness.setHeader({"arbiter", "cycles", "fairness index",
                        "first PE done", "last PE done"});
    for (std::size_t i = 0; i < fairness_results.size(); i++) {
        const auto &result = fairness_results[i];
        fairness.addRow({std::string(toString(kArbiters[i])),
                         std::to_string(result.cycles),
                         Table::num(result.metric("fairness_index"), 3),
                         std::to_string(static_cast<Cycle>(
                             result.metric("first_pe_done"))),
                         std::to_string(static_cast<Cycle>(
                             result.metric("last_pe_done")))});
    }
    std::cout << fairness.render() << "\n";

    std::cout << "(b) Throughput on the Cm*-mix workload (16 PEs, RB):\n\n";

    exp::Experiment throughput_spec("ablation_arbitration_throughput",
                                    "A6b: Cm*-mix throughput by bus "
                                    "arbitration policy");
    throughput_spec.addGrid(grid, [](std::size_t flat) {
        exp::TraceRun run;
        run.config.num_pes = 16;
        run.config.cache_lines = 1024;
        run.config.protocol = ProtocolKind::Rb;
        run.config.arbiter = kArbiters[flat];
        run.trace = makeCmStarTrace(cmStarApplicationA(), 16, 4000, 3);
        return run;
    });
    const auto &throughput_results = session.run(throughput_spec);

    Table throughput;
    throughput.setHeader({"arbiter", "cycles", "bus utilization"});
    for (std::size_t i = 0; i < throughput_results.size(); i++) {
        const auto &result = throughput_results[i];
        throughput.addRow(
            {std::string(toString(kArbiters[i])),
             std::to_string(result.cycles),
             Table::num(static_cast<double>(result.bus_transactions) /
                            static_cast<double>(result.cycles), 3)});
    }
    std::cout << throughput.render() << "\n";
    std::cout <<
        "Expected shape: all runs complete (every acquisition count is\n"
        "8 - the programs run to completion, so 'starvation' appears as\n"
        "runtime skew, not lost acquisitions); fairness of the\n"
        "*interleaving* differs, and fixed priority lets low-index PEs\n"
        "finish far earlier.  Mixed-workload throughput is nearly\n"
        "arbiter-independent.\n\n";
}

void
BM_ArbitrationLockRun(benchmark::State &state)
{
    auto kind = kArbiters[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        sync::LockExperimentConfig config;
        config.num_pes = 8;
        config.lock = sync::LockKind::TestAndSet;
        config.protocol = ProtocolKind::Rb;
        config.acquisitions_per_pe = 8;
        auto result = sync::runLockExperiment(config);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetLabel(std::string(toString(kind)));
}
BENCHMARK(BM_ArbitrationLockRun)->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
