/**
 * @file
 * Trace-driven agent: replays one PE's MemRef stream in order.
 */

#ifndef DDC_SIM_TRACE_AGENT_HH
#define DDC_SIM_TRACE_AGENT_HH

#include <vector>

#include "sim/agent.hh"
#include "stats/counter.hh"
#include "trace/trace.hh"

namespace ddc {

/** Replays a reference stream; one reference in flight at a time. */
class TraceAgent : public Agent
{
  public:
    /**
     * @param pe This PE's id.
     * @param caches The PE's cache banks.
     * @param stream References to issue, in order (copied).
     * @param stats Counter set receiving pe.* statistics.
     */
    TraceAgent(PeId pe, CacheSet caches, std::vector<MemRef> stream,
               stats::CounterSet &stats);

    void tick() override;
    bool done() const override;

    /**
     * Runnable whenever it could issue the next reference or consume
     * a completion; event-free only while stalled on an outstanding
     * miss (the bus wakes it by completing the access).
     */
    Cycle
    nextEventCycle(Cycle now) const override
    {
        return waiting && !caches.hasCompletion() ? kNever : now;
    }

    void skipCycles(Cycle count) override;

    /**
     * Each tick retires at most one reference (consuming a completion
     * returns without issuing the next access), so with r references
     * left the agent cannot finish before now + r - 1.
     */
    Cycle
    earliestDoneCycle(Cycle now) const override
    {
        std::size_t remaining = stream.size() - completed;
        return remaining > 1
            ? now + static_cast<Cycle>(remaining) - 1 : now;
    }

    /** Ticking while a miss is outstanding only counts a stall. */
    bool
    stalledOnCompletion() const override
    {
        return waiting && !caches.hasCompletion();
    }

    void addStallCycles(Cycle count) override;

    /** References fully completed so far. */
    std::size_t refsCompleted() const { return completed; }

  private:
    PeId pe;
    CacheSet caches;
    std::vector<MemRef> stream;
    stats::CounterSet &stats;
    /** Handle interned once at construction (per-stall add). */
    stats::CounterId statStallCycles;
    std::size_t next = 0;
    std::size_t completed = 0;
    bool waiting = false;
};

} // namespace ddc

#endif // DDC_SIM_TRACE_AGENT_HH
