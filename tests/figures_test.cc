/**
 * @file
 * Exact reproductions of the paper's Figures 6-1, 6-2 and 6-3: the
 * per-cache state/value tables for a lock S as three PEs synchronize
 * with TS and TTS under the RB and RWB schemes.  Each test asserts the
 * figure's rows verbatim (state tag, cached value, memory value) and
 * the figure's bus-traffic claims.
 */

#include <gtest/gtest.h>

#include "sim/scenario.hh"

namespace ddc {
namespace {

constexpr Addr S = 100;

void
expectRow(const Scenario &scenario, std::initializer_list<LineTag> tags,
          std::initializer_list<long> values, Word memory_value,
          const char *what)
{
    int pe = 0;
    auto value = values.begin();
    for (LineTag tag : tags) {
        LineState state = scenario.state(pe, S);
        EXPECT_EQ(state.tag, tag)
            << what << ": PE " << pe << " row: " << scenario.row(S);
        if (*value >= 0) {
            EXPECT_EQ(scenario.value(pe, S), static_cast<Word>(*value))
                << what << ": PE " << pe << " row: " << scenario.row(S);
        }
        pe++;
        ++value;
    }
    EXPECT_EQ(scenario.memoryValue(S), memory_value)
        << what << ": row: " << scenario.row(S);
}

constexpr LineTag R = LineTag::Readable;
constexpr LineTag I = LineTag::Invalid;
constexpr LineTag L = LineTag::Local;
constexpr LineTag F = LineTag::FirstWrite;

/** Figure 6-1: synchronization with Test-and-Set under the RB scheme. */
TEST(Figure61, TestAndSetUnderRb)
{
    Scenario scenario(ProtocolKind::Rb, 3);

    // Initial state: every PE has read S = 0.
    for (PeId pe = 0; pe < 3; pe++)
        scenario.read(pe, S);
    expectRow(scenario, {R, R, R}, {0, 0, 0}, 0, "initial");

    // P2 locks S.
    auto lock = scenario.testAndSet(1, S);
    EXPECT_TRUE(lock.ts_success);
    expectRow(scenario, {I, L, I}, {-1, 1, -1}, 1, "P2 locks S");

    // Others try to get S: every attempt is bus traffic.
    auto before = scenario.busTransactions();
    EXPECT_FALSE(scenario.testAndSet(0, S).ts_success);
    EXPECT_FALSE(scenario.testAndSet(2, S).ts_success);
    EXPECT_GT(scenario.busTransactions(), before);
    expectRow(scenario, {R, R, R}, {1, 1, 1}, 1, "others try");

    // Spinning on TS keeps generating bus traffic (the hot spot).
    before = scenario.busTransactions();
    for (int spin = 0; spin < 8; spin++)
        EXPECT_FALSE(scenario.testAndSet(0, S).ts_success);
    EXPECT_GE(scenario.busTransactions(), before + 8);

    // P2 releases S.
    scenario.write(1, S, 0);
    expectRow(scenario, {I, L, I}, {-1, 0, -1}, 0, "P2 releases S");

    // P1 gets S.
    EXPECT_TRUE(scenario.testAndSet(0, S).ts_success);
    expectRow(scenario, {L, I, I}, {1, -1, -1}, 1, "P1 gets S");

    // Others try again.
    EXPECT_FALSE(scenario.testAndSet(1, S).ts_success);
    EXPECT_FALSE(scenario.testAndSet(2, S).ts_success);
    expectRow(scenario, {R, R, R}, {1, 1, 1}, 1, "others try again");
}

/** Figure 6-2: Test-and-Test-and-Set under the RB scheme. */
TEST(Figure62, TestAndTestAndSetUnderRb)
{
    Scenario scenario(ProtocolKind::Rb, 3);

    for (PeId pe = 0; pe < 3; pe++)
        scenario.read(pe, S);
    expectRow(scenario, {R, R, R}, {0, 0, 0}, 0, "initial");

    // P2 locks S (its test read hits, sees 0, then TS succeeds).
    EXPECT_EQ(scenario.read(1, S), 0u);
    EXPECT_TRUE(scenario.testAndSet(1, S).ts_success);
    expectRow(scenario, {I, L, I}, {-1, 1, -1}, 1, "P2 locks S");

    // Others' first test misses and refills every cache (one bus read
    // killed + supplied + retried)...
    EXPECT_EQ(scenario.read(0, S), 1u);
    EXPECT_EQ(scenario.read(2, S), 1u);
    expectRow(scenario, {R, R, R}, {1, 1, 1}, 1, "others load S");

    // ...after which the spins run in the caches: NO bus traffic.
    auto before = scenario.busTransactions();
    for (int spin = 0; spin < 16; spin++) {
        EXPECT_EQ(scenario.read(0, S), 1u);
        EXPECT_EQ(scenario.read(2, S), 1u);
    }
    EXPECT_EQ(scenario.busTransactions(), before);

    // P2 releases S.
    scenario.write(1, S, 0);
    expectRow(scenario, {I, L, I}, {-1, 0, -1}, 0, "P2 releases S");

    // A bus read to S (the first spinner re-tests).
    EXPECT_EQ(scenario.read(0, S), 0u);
    expectRow(scenario, {R, R, R}, {0, 0, 0}, 0, "a bus read to S");

    // P1 gets S.
    EXPECT_TRUE(scenario.testAndSet(0, S).ts_success);
    expectRow(scenario, {L, I, I}, {1, -1, -1}, 1, "P1 gets S");

    // Others try: one refill, then silent spinning.
    EXPECT_EQ(scenario.read(1, S), 1u);
    EXPECT_EQ(scenario.read(2, S), 1u);
    expectRow(scenario, {R, R, R}, {1, 1, 1}, 1, "others try");
    before = scenario.busTransactions();
    EXPECT_EQ(scenario.read(1, S), 1u);
    EXPECT_EQ(scenario.busTransactions(), before);
}

/** Figure 6-3: Test-and-Test-and-Set under the RWB scheme. */
TEST(Figure63, TestAndTestAndSetUnderRwb)
{
    Scenario scenario(ProtocolKind::Rwb, 3);

    for (PeId pe = 0; pe < 3; pe++)
        scenario.read(pe, S);
    expectRow(scenario, {R, R, R}, {0, 0, 0}, 0, "initial");

    // P2 locks S: the successful TS broadcasts the data, so the other
    // caches are *updated* (R(1)) rather than invalidated.
    EXPECT_EQ(scenario.read(1, S), 0u);
    EXPECT_TRUE(scenario.testAndSet(1, S).ts_success);
    expectRow(scenario, {R, F, R}, {1, 1, 1}, 1, "P2 locks S");

    // Others spin entirely in their caches: no invalidation happened,
    // not even a first refill is needed.
    auto before = scenario.busTransactions();
    for (int spin = 0; spin < 16; spin++) {
        EXPECT_EQ(scenario.read(0, S), 1u);
        EXPECT_EQ(scenario.read(2, S), 1u);
    }
    EXPECT_EQ(scenario.busTransactions(), before);

    // P2 releases S: second write by the same PE -> BI -> Local.
    scenario.write(1, S, 0);
    expectRow(scenario, {I, L, I}, {-1, 0, -1}, 0, "P2 releases S");

    // A bus read to S: the supply write refills every cache in RWB.
    EXPECT_EQ(scenario.read(0, S), 0u);
    expectRow(scenario, {R, R, R}, {0, 0, 0}, 0, "a bus read to S");

    // P1 gets S.
    EXPECT_TRUE(scenario.testAndSet(0, S).ts_success);
    expectRow(scenario, {F, R, R}, {1, 1, 1}, 1, "P1 gets S");

    // Others spin silently again.
    before = scenario.busTransactions();
    for (int spin = 0; spin < 16; spin++) {
        EXPECT_EQ(scenario.read(1, S), 1u);
        EXPECT_EQ(scenario.read(2, S), 1u);
    }
    EXPECT_EQ(scenario.busTransactions(), before);
}

/**
 * The headline claim of Section 6: while a lock is held, TTS spins
 * generate no bus traffic whereas TS spins generate one transaction
 * (or more) per attempt.
 */
TEST(Section6, TtsEliminatesSpinTraffic)
{
    for (auto kind : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        Scenario ts(kind, 3);
        Scenario tts(kind, 3);
        for (PeId pe = 0; pe < 3; pe++) {
            ts.read(pe, S);
            tts.read(pe, S);
        }
        EXPECT_TRUE(ts.testAndSet(1, S).ts_success);
        EXPECT_TRUE(tts.testAndSet(1, S).ts_success);

        // Warm the TTS spinners.
        tts.read(0, S);
        tts.read(2, S);

        auto ts_before = ts.busTransactions();
        auto tts_before = tts.busTransactions();
        const int spins = 32;
        for (int spin = 0; spin < spins; spin++) {
            ts.testAndSet(0, S);
            ts.testAndSet(2, S);
            tts.read(0, S);
            tts.read(2, S);
        }
        EXPECT_GE(ts.busTransactions() - ts_before,
                  static_cast<std::uint64_t>(2 * spins));
        EXPECT_EQ(tts.busTransactions(), tts_before)
            << "TTS spins must stay in the caches under "
            << toString(kind);
    }
}

} // namespace
} // namespace ddc
