#include "sync/workload.hh"

#include "trace/synthetic.hh"

namespace ddc {
namespace sync {

Addr
lockAddr()
{
    return sharedBase();
}

Addr
counterAddr()
{
    return sharedBase() + 1;
}

LockExperimentResult
runLockExperiment(const LockExperimentConfig &config,
                  std::unique_ptr<System> *out_system)
{
    SystemConfig system_config;
    system_config.num_pes = config.num_pes;
    system_config.cache_lines = config.cache_lines;
    system_config.protocol = config.protocol;
    system_config.memory_latency = config.memory_latency;
    system_config.record_log = config.record_log;
    system_config.histograms = config.histograms;

    auto system = std::make_unique<System>(system_config);
    for (PeId pe = 0; pe < config.num_pes; pe++) {
        LockProgramParams params;
        params.kind = config.lock;
        params.lock_addr = lockAddr();
        params.counter_addr = counterAddr();
        params.acquisitions = config.acquisitions_per_pe;
        params.cs_increments = config.cs_increments;
        params.local_work = config.local_work;
        params.local_base = localBase(pe);
        system->setProgram(pe, makeLockProgram(params));
    }

    LockExperimentResult result;
    result.cycles = system->run();
    result.skipped_cycles = system->skippedCycles();
    result.completed = system->allDone();
    result.bus_transactions = system->totalBusTransactions();

    auto counters = system->counters();
    result.rmw_attempts = counters.get("bus.rmw_success") +
                          counters.get("bus.rmw_fail");
    result.rmw_failures = counters.get("bus.rmw_fail");
    result.counter_value = system->coherentValue(counterAddr());
    result.expected_counter =
        static_cast<Word>(config.num_pes) *
        static_cast<Word>(config.acquisitions_per_pe) *
        static_cast<Word>(config.cs_increments);

    std::uint64_t acquisitions =
        static_cast<std::uint64_t>(config.num_pes) *
        static_cast<std::uint64_t>(config.acquisitions_per_pe);
    if (acquisitions > 0) {
        result.bus_per_acquisition =
            static_cast<double>(result.bus_transactions) /
            static_cast<double>(acquisitions);
    }

    if (auto *observability = system->observability()) {
        if (auto *metrics = observability->metrics()) {
            result.has_metrics = true;
            result.metrics = *metrics;
        }
    }

    if (out_system != nullptr)
        *out_system = std::move(system);
    return result;
}

Cycle
runBarrierExperiment(int num_pes, int iterations, ProtocolKind protocol)
{
    SystemConfig system_config;
    system_config.num_pes = num_pes;
    system_config.cache_lines = 256;
    system_config.protocol = protocol;

    System system(system_config);
    Addr lock = sharedBase() + 16;
    Addr count = sharedBase() + 17;
    Addr sense = sharedBase() + 18;
    for (PeId pe = 0; pe < num_pes; pe++) {
        system.setProgram(pe, makeBarrierProgram(lock, count, sense,
                                                 num_pes, iterations));
    }
    Cycle cycles = system.run();
    return system.allDone() ? cycles : 0;
}

} // namespace sync
} // namespace ddc
