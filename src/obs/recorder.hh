/**
 * @file
 * Per-System observability recorder plus the process-wide opt-in
 * configuration the session flags set (--trace-out,
 * --trace-categories, --histograms, --sample-every, --profile).
 *
 * A System asks makeRecorder() for a Recorder at construction; the
 * result is null when nothing is enabled, and components then cache
 * null buffer/metrics pointers — the zero-overhead-when-off contract.
 * The trace output file is claimed by the first System that asks for
 * it (one file, one run); parallel experiment workers therefore
 * trace exactly one run instead of interleaving into one file.
 *
 * Shard safety: every mutable stream is striped per shard — trace
 * events via TraceSink buffers, histograms via RunMetrics lanes,
 * lock events via append-only LockLogs — so parallel phases write
 * without locks.  Reads (metrics(), the trace file, the lock-episode
 * replay) merge the lanes deterministically; because the shard
 * partition is fixed by configuration, every merged result is
 * independent of the worker-lane count.
 */

#ifndef DDC_OBS_RECORDER_HH
#define DDC_OBS_RECORDER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"

namespace ddc {
namespace obs {

/**
 * Set the process-wide trace destination (--trace-out /
 * --trace-categories).  Re-arms the first-System-wins claim, so
 * tests can trace several successive Systems.  An empty @p path
 * disables tracing.
 */
void setTraceOutput(std::string path,
                    std::uint32_t categories = kAllCategories);

/** Process-wide --histograms flag (ORed with SystemConfig's). */
void setHistogramsEnabled(bool enabled);
bool histogramsEnabled();

/** Process-wide --sample-every interval; 0 disables sampling. */
void setSampleInterval(Cycle every);
Cycle sampleInterval();

/** Process-wide --profile flag (host wall-clock phase splits). */
void setPhaseProfilingEnabled(bool enabled);
bool phaseProfilingEnabled();

/**
 * Host wall-clock phase splits (--profile): where the simulator
 * itself spends real time, as opposed to the simulated-cycle
 * quantities every other obs stream records.  Written only from
 * serial phases (the kernel coordinator, the fabric tick), read
 * after the run; host-dependent by design, so the values ride the
 * timing-gated JSON block, never the deterministic result surface.
 */
struct PhaseProfile
{
    /** Coordinator tick work (serial shard + own lane share). */
    double kernel_tick_ms = 0.0;
    /** Coordinator wait for the other lanes at the epoch barrier. */
    double kernel_barrier_ms = 0.0;
    /** Directory fabric: request routing pass. */
    double fabric_route_ms = 0.0;
    /** Directory fabric: home-node service pass. */
    double fabric_serve_ms = 0.0;
};

/** One raw lock-word event, appended by a Bus on its own shard. */
struct LockEvent
{
    Cycle cycle = 0;
    Addr addr = 0;
    PeId pe = 0;
    /** 0 = failed RMW, 1 = successful RMW, 2 = release write. */
    std::uint8_t kind = 0;
};

/**
 * One shard's append-only lock-event log.  Buses record raw
 * attempt/release events here instead of driving episode state
 * machines directly: episode reconstruction (spin spans, acquire
 * latency, hand-off gaps) needs cross-shard order, so it runs as a
 * single-threaded replay over the merged logs after the run.
 */
class LockLog
{
  public:
    /** An RMW for @p addr reached the bus. */
    void
    attempt(PeId pe, Addr addr, Cycle now, bool success)
    {
        events.push_back({now, addr, pe,
                          static_cast<std::uint8_t>(success ? 1 : 0)});
    }

    /** A write completed to @p addr (a release if it is a lock). */
    void
    release(PeId pe, Addr addr, Cycle now)
    {
        events.push_back({now, addr, pe, 2});
    }

    const std::vector<LockEvent> &entries() const { return events; }

  private:
    std::vector<LockEvent> events;
};

/**
 * One System's observability state: the trace sink (if this System
 * won the claim), the per-shard histogram lanes, the counter
 * sampler, the per-shard lock logs, and the host phase profile.
 *
 * Writers address their shard's lane (trace(category, shard),
 * metricsLane(shard), lockLane(shard)); readers use the merging
 * accessors (metrics(), the written trace).  Shard 0 is the serial
 * shard (global bus / directory fabric); cluster c writes lane 1+c.
 * Flat systems use shard 0 throughout.
 */
class Recorder
{
  public:
    /**
     * @param shards Number of metric/lock lanes to provision (the
     *        machine's shard count, not the worker-lane count).
     * @param profiling Allocate the PhaseProfile.
     */
    Recorder(std::unique_ptr<TraceSink> trace_sink, bool histograms,
             Cycle sample_every, std::size_t shards = 1,
             bool profiling = false);

    /** Replays the lock trace, then the sink writes its file. */
    ~Recorder();

    /** Buffer for @p category on @p shard, or null when not traced. */
    TraceBuffer *
    trace(Category category, std::size_t shard = 0)
    {
        return traceSink && traceSink->enabled(category)
                   ? traceSink->buffer(shard)
                   : nullptr;
    }

    /** The trace sink itself, or null (kernel lanes, writeFile). */
    TraceSink *sink() { return traceSink.get(); }

    /** Histogram lane for @p shard, or null when --histograms off. */
    RunMetrics *metricsLane(std::size_t shard);

    /**
     * The merged view: all lanes folded together plus the lock
     * episodes replayed.  Recomputed on each call; valid until the
     * next call.  Null when --histograms is off.
     */
    RunMetrics *metrics();

    /** Counter sampler, or null when --sample-every is off. */
    CounterSampler *sampler() { return counterSampler.get(); }

    /** Host phase profile, or null when --profile is off. */
    PhaseProfile *profile() { return phaseProfile.get(); }

    /** True when the Bus should report lock events at all. */
    bool
    wantsLockEvents() const
    {
        return histogramsOn ||
               (traceSink && traceSink->enabled(Category::Lock));
    }

    /** Lock log for @p shard, or null when lock events are off. */
    LockLog *lockLane(std::size_t shard);

    /**
     * Replay the merged lock logs into the trace's lock track
     * (spin B/E spans, acquire/release markers).  Idempotent; runs
     * automatically at destruction, before the sink writes.  Call
     * early only to write the trace while the Recorder is alive.
     */
    void flushLockTrace();

  private:
    /**
     * Single-threaded episode reconstruction over the merged lock
     * logs (stable by cycle, shard order breaking ties — the serial
     * kernel's tick order).  Feeds lock_acquire / lock_handoff into
     * @p into and/or emits lock-track events into @p lock_trace.
     */
    void replayLocks(RunMetrics *into, TraceBuffer *lock_trace) const;

    std::unique_ptr<TraceSink> traceSink;
    bool histogramsOn;
    std::vector<std::unique_ptr<RunMetrics>> metricsLanes;
    RunMetrics mergedMetrics;
    std::unique_ptr<CounterSampler> counterSampler;
    std::vector<std::unique_ptr<LockLog>> lockLanes;
    std::unique_ptr<PhaseProfile> phaseProfile;
    bool lockTraceFlushed = false;
};

/**
 * Build the Recorder for a System given its per-config histogram
 * flag, sampling interval (0 = use the process-wide interval), and
 * shard count.
 * @return null when no observability feature is enabled.
 */
std::unique_ptr<Recorder> makeRecorder(bool config_histograms,
                                       Cycle config_sample_every,
                                       std::size_t shards = 1);

} // namespace obs
} // namespace ddc

#endif // DDC_OBS_RECORDER_HH
