#include "core/write_through.hh"

#include "base/logging.hh"

namespace ddc {

CpuReaction
WriteThroughProtocol::onCpuAccess(LineState state, CpuOp op,
                                  DataClass cls) const
{
    (void)cls;

    CpuReaction reaction;
    switch (op) {
      case CpuOp::Read:
        if (state.present()) {
            reaction.next = state;
            return reaction;
        }
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Read;
        return reaction;

      case CpuOp::Write:
        // Always through the bus; the local copy is refreshed too.
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Write;
        return reaction;

      case CpuOp::TestAndSet:
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Rmw;
        return reaction;

      case CpuOp::ReadLock:
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::ReadLock;
        return reaction;

      case CpuOp::WriteUnlock:
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::WriteUnlock;
        return reaction;
    }
    ddc_panic("unhandled CpuOp");
}

LineState
WriteThroughProtocol::afterBusOp(LineState state, BusOp op,
                                 bool rmw_success) const
{
    (void)state;
    (void)rmw_success;
    switch (op) {
      case BusOp::Read:
      case BusOp::ReadLock:
      case BusOp::Write:
      case BusOp::WriteUnlock:
      case BusOp::Rmw:
        return {LineTag::Valid, 0};
      case BusOp::Invalidate:
        break;
    }
    ddc_panic("write-through completed unexpected bus op");
}

SnoopReaction
WriteThroughProtocol::onSnoop(LineState state, BusOp op) const
{
    SnoopReaction reaction;
    reaction.next = state;

    switch (op) {
      case BusOp::Read:
        return reaction; // Memory serves reads; nothing to do.

      case BusOp::Write:
        if (state.tag == LineTag::Valid)
            reaction.next = {LineTag::Invalid, 0};
        return reaction;

      case BusOp::Invalidate:
        if (state.tag != LineTag::NotPresent)
            reaction.next = {LineTag::Invalid, 0};
        return reaction;

      default:
        break;
    }
    ddc_panic("write-through snooped unexpected bus op");
}

LineState
WriteThroughProtocol::afterSupply(LineState state) const
{
    (void)state;
    ddc_panic("write-through never supplies data (memory is current)");
}

bool
WriteThroughProtocol::needsWriteback(LineState state) const
{
    (void)state;
    return false;
}

} // namespace ddc
