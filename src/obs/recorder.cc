#include "obs/recorder.hh"

#include <atomic>
#include <mutex>

namespace ddc {
namespace obs {

namespace {

// Process-wide opt-in state, written only while parsing flags (or by
// tests between runs); Systems read it once at construction.
std::mutex configMutex;
std::string tracePath;
std::uint32_t traceMask = kAllCategories;
bool traceClaimed = false;

std::atomic<bool> histogramsFlag{false};
std::atomic<Cycle> sampleEveryFlag{0};

} // namespace

void
setTraceOutput(std::string path, std::uint32_t categories)
{
    std::lock_guard<std::mutex> lock(configMutex);
    tracePath = std::move(path);
    traceMask = categories;
    traceClaimed = false;
}

void
setHistogramsEnabled(bool enabled)
{
    histogramsFlag.store(enabled, std::memory_order_relaxed);
}

bool
histogramsEnabled()
{
    return histogramsFlag.load(std::memory_order_relaxed);
}

void
setSampleInterval(Cycle every)
{
    sampleEveryFlag.store(every, std::memory_order_relaxed);
}

Cycle
sampleInterval()
{
    return sampleEveryFlag.load(std::memory_order_relaxed);
}

Recorder::Recorder(std::unique_ptr<TraceSink> trace_sink,
                   bool histograms, Cycle sample_every)
    : sink(std::move(trace_sink))
{
    if (histograms)
        runMetrics = std::make_unique<RunMetrics>();
    if (sample_every > 0)
        counterSampler =
            std::make_unique<CounterSampler>(sample_every);
}

void
Recorder::lockAttempt(PeId pe, Addr addr, Cycle now, bool success)
{
    knownLocks.insert(addr);
    TraceSink *lock_trace = trace(Category::Lock);
    auto key = std::make_pair(pe, addr);
    auto episode = spinning.find(key);

    if (!success) {
        if (episode == spinning.end()) {
            spinning.emplace(key, now);
            if (lock_trace) {
                TraceEvent event;
                event.ts = now;
                event.name = "spin";
                event.addr = addr;
                event.has_addr = true;
                event.phase = 'B';
                event.track = kTrackLocks;
                event.tid = pe;
                lock_trace->push(event);
            }
        }
        return;
    }

    Cycle waited = 0;
    if (episode != spinning.end()) {
        waited = now - episode->second;
        spinning.erase(episode);
        if (lock_trace) {
            TraceEvent event;
            event.ts = now;
            event.name = "spin";
            event.phase = 'E';
            event.track = kTrackLocks;
            event.tid = pe;
            lock_trace->push(event);
        }
    }
    if (runMetrics)
        runMetrics->lock_acquire.sample(waited);

    auto release = lastRelease.find(addr);
    if (release != lastRelease.end()) {
        if (runMetrics)
            runMetrics->lock_handoff.sample(now - release->second);
        lastRelease.erase(release);
    }

    if (lock_trace) {
        TraceEvent event;
        event.ts = now;
        event.name = "acquire";
        event.addr = addr;
        event.has_addr = true;
        event.value = static_cast<std::int64_t>(waited);
        event.value_name = "spin_cycles";
        event.track = kTrackLocks;
        event.tid = pe;
        lock_trace->push(event);
    }
}

void
Recorder::lockRelease(PeId pe, Addr addr, Cycle now)
{
    if (knownLocks.find(addr) == knownLocks.end())
        return;
    lastRelease[addr] = now;
    if (TraceSink *lock_trace = trace(Category::Lock)) {
        TraceEvent event;
        event.ts = now;
        event.name = "release";
        event.addr = addr;
        event.has_addr = true;
        event.track = kTrackLocks;
        event.tid = pe;
        lock_trace->push(event);
    }
}

std::unique_ptr<Recorder>
makeRecorder(bool config_histograms, Cycle config_sample_every)
{
    std::unique_ptr<TraceSink> sink;
    {
        std::lock_guard<std::mutex> lock(configMutex);
        if (!tracePath.empty() && !traceClaimed) {
            traceClaimed = true;
            sink = std::make_unique<TraceSink>(traceMask, tracePath);
        }
    }

    bool histograms = config_histograms || histogramsEnabled();
    Cycle sample_every = config_sample_every > 0 ? config_sample_every
                                                 : sampleInterval();

    if (!sink && !histograms && sample_every == 0)
        return nullptr;
    return std::make_unique<Recorder>(std::move(sink), histograms,
                                      sample_every);
}

} // namespace obs
} // namespace ddc
