#!/usr/bin/env python3
"""Validate a ddcsim --trace-out file as a well-formed Chrome trace.

Checks the structural invariants the TraceSink writer guarantees (and
Perfetto / chrome://tracing rely on):

  * the file parses as JSON with a "displayTimeUnit" and a non-empty
    "traceEvents" array;
  * every event carries name/ph/ts/pid/tid (metadata carries name/ph);
  * every event's pid is a known track (1 PEs, 2 Buses, 3 Locks,
    4 Sim, 5 Homes, 6 Kernel);
  * non-metadata timestamps are non-decreasing — Chrome requires it,
    and for a sharded run this doubles as the merge check: per-shard
    buffers concatenated out of order would show a ts regression;
  * duration B/E pairs are balanced per (pid, tid) track, never
    closing a span that was not opened (this covers every category,
    including the dir spans on the Homes track);
  * 'X' complete events carry a duration;
  * 'i' instant events carry a scope;
  * 'C' counter events carry a numeric args dict.

Usage: validate_trace.py TRACE.json
"""

import json
import sys

# Track pids the writer emits (src/obs/trace.hh kTrack*).
KNOWN_PIDS = {
    1: "PEs",
    2: "Buses",
    3: "Locks",
    4: "Sim",
    5: "Homes",
    6: "Kernel",
}


def fail(message):
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate(path):
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            fail(f"{path} is not valid JSON: {error}")

    if "displayTimeUnit" not in document:
        fail("missing displayTimeUnit")
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    last_ts = None
    depth = {}
    counts = {"M": 0, "B": 0, "E": 0, "X": 0, "i": 0, "C": 0}
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase not in counts:
            fail(f"event {index}: unknown phase {phase!r}")
        counts[phase] += 1
        if "name" not in event:
            fail(f"event {index}: missing name")
        for key in ("pid", "tid") if phase == "M" else ():
            if key not in event:
                fail(f"event {index}: metadata missing {key}")
        if "pid" in event and event["pid"] not in KNOWN_PIDS:
            fail(f"event {index}: unknown pid {event['pid']!r} "
                 f"(known: {sorted(KNOWN_PIDS)})")
        if phase == "M":
            continue
        for key in ("ts", "pid", "tid"):
            if key not in event:
                fail(f"event {index}: missing {key}")
        ts = event["ts"]
        if last_ts is not None and ts < last_ts:
            fail(f"event {index}: ts {ts} after {last_ts} "
                 "(must be non-decreasing; a regression here means "
                 "the shard merge emitted buffers out of order)")
        last_ts = ts
        track = (event["pid"], event["tid"])
        if phase == "B":
            depth[track] = depth.get(track, 0) + 1
        elif phase == "E":
            depth[track] = depth.get(track, 0) - 1
            if depth[track] < 0:
                fail(f"event {index}: 'E' without matching 'B' "
                     f"on track {track}")
        elif phase == "X" and "dur" not in event:
            fail(f"event {index}: 'X' without dur")
        elif phase == "i" and "s" not in event:
            fail(f"event {index}: 'i' without scope")
        elif phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                fail(f"event {index}: 'C' without args dict")
            for key, value in args.items():
                if not isinstance(value, (int, float)):
                    fail(f"event {index}: 'C' arg {key!r} is not "
                         "numeric")

    open_tracks = {t: d for t, d in depth.items() if d != 0}
    if open_tracks:
        fail(f"unbalanced B/E pairs on tracks {open_tracks}")
    if counts["B"] != counts["E"]:
        fail(f"{counts['B']} 'B' events vs {counts['E']} 'E' events")

    total = sum(counts.values())
    print(f"validate_trace: OK: {path}: {total} events "
          f"({counts['B']} spans, {counts['X']} completes, "
          f"{counts['i']} instants, {counts['C']} counters, "
          f"{counts['M']} metadata)")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    validate(sys.argv[1])
