#include "core/simulator.hh"

#include <chrono>
#include <sstream>

#include "verify/consistency.hh"

namespace ddc {

RunSummary
runTrace(SystemConfig config, const Trace &trace, bool check_consistency,
         Cycle max_cycles)
{
    if (check_consistency)
        config.record_log = true;
    if (config.num_pes < trace.numPes())
        config.num_pes = trace.numPes();

    System system(config);
    system.loadTrace(trace);

    RunSummary summary;
    auto start = std::chrono::steady_clock::now();
    summary.cycles = system.run(max_cycles);
    std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    summary.sim_time_ms = elapsed.count();
    summary.skipped_cycles = system.skippedCycles();
    summary.status = system.runStatus();
    summary.completed = system.allDone();
    summary.total_refs = trace.totalRefs();
    summary.bus_transactions = system.totalBusTransactions();
    summary.snoop_visits = system.snoopVisits();
    summary.snoop_filter_fallbacks = system.snoopFilterFallbacks();
    summary.counters = system.counters();
    for (int b = 0; b < system.numBuses(); b++) {
        summary.per_bus_busy_cycles.push_back(
            system.busCounters(b).get("bus.busy_cycles"));
    }
    if (auto *observability = system.observability()) {
        if (auto *metrics = observability->metrics()) {
            summary.has_histograms = true;
            summary.histograms = *metrics;
        }
        if (auto *sampler = observability->sampler())
            summary.samples = sampler->series();
    }

    if (summary.total_refs > 0) {
        summary.bus_per_ref =
            static_cast<double>(summary.bus_transactions) /
            static_cast<double>(summary.total_refs);
        // Every cache.* counter lives in the system's cache counter
        // set, so the handle-based sum equals the five prefix scans
        // the merged set used to pay for.
        summary.miss_ratio = static_cast<double>(system.missRefs()) /
                             static_cast<double>(summary.total_refs);
    }

    if (check_consistency) {
        auto report = checkSerialConsistency(system.log());
        summary.consistent = report.consistent;
    }
    return summary;
}

std::string
describe(const RunSummary &summary)
{
    std::ostringstream os;
    os << (summary.completed ? "completed" : "TIMED OUT") << " in "
       << summary.cycles << " cycles; " << summary.total_refs
       << " refs; " << summary.bus_transactions << " bus transactions ("
       << summary.bus_per_ref << " per ref); miss ratio "
       << summary.miss_ratio;
    if (!summary.consistent)
        os << "; INCONSISTENT";
    return os.str();
}

} // namespace ddc
