/**
 * @file
 * The global cycle counter shared by every component of one System.
 *
 * Per the paper's timing assumptions (Section 2, assumption 5) the bus,
 * cache, and PE cycles are unified: one Clock tick is one *potential*
 * bus cycle — a cycle in which at most one bus transaction may begin
 * and every non-stalled PE executes one instruction.  The run loops
 * are free to advance `now` across a whole quiescent interval at once
 * (next-event time advance, see System::run); components must never
 * assume consecutive observations of `now` differ by exactly one.
 */

#ifndef DDC_SIM_CLOCK_HH
#define DDC_SIM_CLOCK_HH

#include "base/types.hh"

namespace ddc {

/** Shared simulation clock. */
struct Clock
{
    Cycle now = 0;
};

/**
 * Sentinel next-event cycle of a component that cannot change state on
 * its own: it only becomes runnable again through another component's
 * action (a bus grant completing a cache miss, a client re-arming).
 */
inline constexpr Cycle kNever = ~Cycle{0};

} // namespace ddc

#endif // DDC_SIM_CLOCK_HH
