/**
 * @file
 * Tests for the parallel experiment engine (src/exp): grid expansion,
 * worker-count invariance (jobs=1 vs jobs=8 must produce identical
 * results and identical JSON bytes), JSON round-tripping, and timeout
 * status propagation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "exp/experiment.hh"
#include "exp/json.hh"
#include "exp/runner.hh"
#include "exp/session.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

TEST(ParamGridTest, EmptyGridHasOnePoint)
{
    exp::ParamGrid grid;
    EXPECT_EQ(grid.size(), 1u);
    EXPECT_EQ(grid.numAxes(), 0u);
    EXPECT_TRUE(grid.paramsAt(0).empty());
}

TEST(ParamGridTest, ExpandsRowMajorLastAxisFastest)
{
    exp::ParamGrid grid;
    grid.axis("a", {"a0", "a1"});
    grid.axis("b", {"b0", "b1", "b2"});
    ASSERT_EQ(grid.size(), 6u);

    // Flat index 0 -> (a0, b0); 1 -> (a0, b1); 3 -> (a1, b0).
    auto p0 = grid.paramsAt(0);
    EXPECT_EQ(p0[0].second, "a0");
    EXPECT_EQ(p0[1].second, "b0");
    auto p1 = grid.paramsAt(1);
    EXPECT_EQ(p1[0].second, "a0");
    EXPECT_EQ(p1[1].second, "b1");
    auto p3 = grid.paramsAt(3);
    EXPECT_EQ(p3[0].second, "a1");
    EXPECT_EQ(p3[1].second, "b0");

    auto indices = grid.indicesAt(5);
    EXPECT_EQ(indices[0], 1u);
    EXPECT_EQ(indices[1], 2u);

    // Axis names ride along with every point.
    EXPECT_EQ(p0[0].first, "a");
    EXPECT_EQ(p0[1].first, "b");
}

/** A small real sweep: two workloads x two protocols. */
exp::Experiment
makeSweep()
{
    exp::ParamGrid grid;
    grid.axis("workload", {"array_init", "migratory"});
    grid.axis("protocol", {"RB", "RWB"});

    exp::Experiment spec("exp_test_sweep", "engine test sweep");
    spec.addGrid(grid, [grid](std::size_t flat) {
        auto indices = grid.indicesAt(flat);
        exp::TraceRun run;
        run.config.num_pes = 4;
        run.config.cache_lines = 256;
        run.config.protocol = indices[1] == 0 ? ProtocolKind::Rb
                                              : ProtocolKind::Rwb;
        run.trace = indices[0] == 0 ? makeArrayInitTrace(4, 256)
                                    : makeMigratoryTrace(4, 8, 16);
        return run;
    });
    return spec;
}

TEST(RunnerTest, ResultsOrderedByGridIndex)
{
    auto spec = makeSweep();
    exp::RunnerOptions options;
    options.jobs = 1;
    auto results = exp::runExperiment(spec, options);
    ASSERT_EQ(results.size(), 4u);
    for (std::size_t i = 0; i < results.size(); i++) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].params, spec.points()[i].params);
        EXPECT_EQ(results[i].status, RunStatus::Finished);
        EXPECT_GT(results[i].cycles, 0u);
        EXPECT_TRUE(results[i].hasMetric("bus_per_ref"));
    }
}

TEST(RunnerTest, ParallelMatchesSerialExactly)
{
    auto spec = makeSweep();
    exp::RunnerOptions serial;
    serial.jobs = 1;
    exp::RunnerOptions parallel;
    parallel.jobs = 8;
    auto a = exp::runExperiment(spec, serial);
    auto b = exp::runExperiment(spec, parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        // Byte-level equality of the serialized results covers every
        // field the engine emits.
        EXPECT_EQ(a[i].toJson().dump(), b[i].toJson().dump()) << i;
    }
}

TEST(RunnerTest, SessionJsonIdenticalAcrossJobCounts)
{
    exp::SessionOptions serial;
    serial.jobs = 1;
    exp::Session session_a(serial);
    session_a.run(makeSweep());

    exp::SessionOptions parallel;
    parallel.jobs = 8;
    exp::Session session_b(parallel);
    session_b.run(makeSweep());

    EXPECT_EQ(session_a.toJson().dump(), session_b.toJson().dump());
}

TEST(RunnerTest, CustomPointsRunAndKeepOrder)
{
    exp::Experiment spec("custom", "custom points");
    for (int i = 0; i < 5; i++) {
        spec.addCustom({{"i", std::to_string(i)}}, [i]() {
            exp::RunResult result;
            result.cycles = static_cast<Cycle>(100 + i);
            result.setMetric("i", static_cast<double>(i));
            return result;
        });
    }
    exp::RunnerOptions options;
    options.jobs = 4;
    auto results = exp::runExperiment(spec, options);
    ASSERT_EQ(results.size(), 5u);
    for (std::size_t i = 0; i < 5; i++) {
        EXPECT_EQ(results[i].cycles, 100 + i);
        EXPECT_EQ(results[i].metric("i"), static_cast<double>(i));
    }
}

TEST(RunnerTest, TimeoutStatusPropagates)
{
    exp::Experiment spec("timeout", "tiny cycle budget");
    spec.addRun({{"point", "strangled"}}, []() {
        exp::TraceRun run;
        run.config.num_pes = 4;
        run.config.cache_lines = 256;
        run.config.protocol = ProtocolKind::Rb;
        run.trace = makeMigratoryTrace(4, 8, 64);
        run.max_cycles = 10; // far too few to finish
        return run;
    });
    exp::RunnerOptions options;
    auto results = exp::runExperiment(spec, options);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, RunStatus::TimedOut);

    // And it is visible in the serialized form.
    auto json = results[0].toJson();
    EXPECT_EQ(json.find("status")->asString(), "timed_out");
}

TEST(JsonTest, RoundTripsValues)
{
    exp::Json object = exp::Json::object();
    object["int"] = exp::Json(static_cast<std::int64_t>(-42));
    object["double"] = exp::Json(0.354375);
    object["string"] = exp::Json(std::string("hi \"there\"\n"));
    object["bool"] = exp::Json(true);
    object["null"] = exp::Json();
    exp::Json array = exp::Json::array();
    array.push(exp::Json(static_cast<std::int64_t>(1)));
    array.push(exp::Json(2.5));
    object["array"] = array;

    auto text = object.dump();
    exp::Json parsed;
    ASSERT_TRUE(exp::Json::parse(text, parsed));
    EXPECT_EQ(parsed.dump(), text);
    EXPECT_EQ(parsed.find("int")->asInt(), -42);
    EXPECT_EQ(parsed.find("double")->asDouble(), 0.354375);
    EXPECT_EQ(parsed.find("string")->asString(), "hi \"there\"\n");
    EXPECT_TRUE(parsed.find("bool")->asBool());
}

TEST(JsonTest, RunResultRoundTrips)
{
    auto spec = makeSweep();
    exp::RunnerOptions options;
    auto results = exp::runExperiment(spec, options);
    for (const auto &result : results) {
        auto text = result.toJson().dump();
        exp::Json parsed;
        ASSERT_TRUE(exp::Json::parse(text, parsed));
        auto rebuilt = exp::RunResult::fromJson(parsed);
        EXPECT_EQ(rebuilt.toJson().dump(), text);
        EXPECT_EQ(rebuilt.index, result.index);
        EXPECT_EQ(rebuilt.params, result.params);
        EXPECT_EQ(rebuilt.cycles, result.cycles);
        EXPECT_EQ(rebuilt.counters.get("bus.busy_cycles"),
                  result.counters.get("bus.busy_cycles"));
    }
}

TEST(JsonTest, TimingFieldsAreOptIn)
{
    exp::RunResult result;
    result.cycles = 5000;
    result.wall_time_ms = 2.5;
    result.sim_time_ms = 2.0;
    result.sim_cycles_per_sec = 2e6;

    // Default serialization stays byte-stable across hosts: no
    // timing fields.
    auto plain = result.toJson();
    EXPECT_EQ(plain.find("wall_time_ms"), nullptr);
    EXPECT_EQ(plain.find("sim_time_ms"), nullptr);
    EXPECT_EQ(plain.find("sim_cycles_per_sec"), nullptr);

    auto timed = result.toJson(true);
    ASSERT_NE(timed.find("wall_time_ms"), nullptr);
    EXPECT_EQ(timed.find("wall_time_ms")->asDouble(), 2.5);
    EXPECT_EQ(timed.find("sim_time_ms")->asDouble(), 2.0);
    EXPECT_EQ(timed.find("sim_cycles_per_sec")->asDouble(), 2e6);

    // Round trip through parse preserves the timing fields.
    exp::Json parsed;
    ASSERT_TRUE(exp::Json::parse(timed.dump(), parsed));
    auto rebuilt = exp::RunResult::fromJson(parsed);
    EXPECT_EQ(rebuilt.wall_time_ms, 2.5);
    EXPECT_EQ(rebuilt.sim_time_ms, 2.0);
    EXPECT_EQ(rebuilt.sim_cycles_per_sec, 2e6);
    EXPECT_EQ(rebuilt.toJson(true).dump(), timed.dump());
}

TEST(RunnerTest, MeasuresWallClockPerPoint)
{
    auto spec = makeSweep();
    exp::RunnerOptions options;
    auto results = exp::runExperiment(spec, options);
    for (const auto &result : results) {
        EXPECT_GT(result.wall_time_ms, 0.0);
        EXPECT_GT(result.sim_time_ms, 0.0);
        // The sim loop is a slice of the whole point.
        EXPECT_LE(result.sim_time_ms, result.wall_time_ms);
        EXPECT_GT(result.sim_cycles_per_sec, 0.0);
        // rate * sim seconds == cycles (up to rounding).
        EXPECT_NEAR(result.sim_cycles_per_sec *
                        (result.sim_time_ms / 1000.0),
                    static_cast<double>(result.cycles),
                    1.0);
    }
}

TEST(SessionTest, ParseArgsStripsEngineFlags)
{
    const char *raw[] = {"prog", "--jobs", "8", "--foo", "--json",
                         "out.json", "bar", nullptr};
    int argc = 7;
    char *argv[8];
    for (int i = 0; i < argc; i++)
        argv[i] = const_cast<char *>(raw[i]);
    argv[argc] = nullptr;

    auto options = exp::parseSessionArgs(argc, argv);
    EXPECT_EQ(options.jobs, 8);
    EXPECT_EQ(options.json_path, "out.json");
    EXPECT_FALSE(options.timing);
    ASSERT_EQ(argc, 3);
    EXPECT_STREQ(argv[0], "prog");
    EXPECT_STREQ(argv[1], "--foo");
    EXPECT_STREQ(argv[2], "bar");
    EXPECT_EQ(argv[3], nullptr);
}

TEST(SessionTest, ParseArgsAcceptsTimingFlag)
{
    const char *raw[] = {"prog", "--timing", "--jobs", "2", nullptr};
    int argc = 4;
    char *argv[5];
    for (int i = 0; i < argc; i++)
        argv[i] = const_cast<char *>(raw[i]);
    argv[argc] = nullptr;

    auto options = exp::parseSessionArgs(argc, argv);
    EXPECT_TRUE(options.timing);
    EXPECT_EQ(options.jobs, 2);
    ASSERT_EQ(argc, 1);
    EXPECT_EQ(argv[1], nullptr);
}

TEST(SessionTest, TimingOptionEmitsWallClockFields)
{
    exp::SessionOptions options;
    options.timing = true;
    exp::Session session(options);
    session.run(makeSweep());
    auto json = session.toJson();
    const auto &run =
        json.find("experiments")->at(0).find("runs")->at(0);
    ASSERT_NE(run.find("wall_time_ms"), nullptr);
    EXPECT_GT(run.find("wall_time_ms")->asDouble(), 0.0);
    ASSERT_NE(run.find("sim_cycles_per_sec"), nullptr);
}

TEST(SessionTest, CollectsMultipleExperiments)
{
    exp::SessionOptions options;
    options.jobs = 2;
    exp::Session session(options);
    const auto &first = session.run(makeSweep());
    exp::Experiment single("single", "one custom point");
    single.addCustom({}, []() {
        exp::RunResult result;
        result.cycles = 7;
        return result;
    });
    const auto &second = session.run(single);

    // References from earlier runs stay valid after later runs.
    EXPECT_EQ(first.size(), 4u);
    EXPECT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].cycles, 7u);

    auto json = session.toJson();
    const auto *experiments = json.find("experiments");
    ASSERT_NE(experiments, nullptr);
    EXPECT_EQ(experiments->size(), 2u);
}

} // namespace
