/**
 * @file
 * Producer/consumer cycles: "Many shared variables tend to be
 * referenced in the cyclical pattern: written by some one PE and then
 * read by others." (Section 5.)  One producer updates a buffer; every
 * other PE reads it repeatedly.  Compares all five schemes and breaks
 * the traffic down by transaction type.
 *
 *   ./producer_consumer
 */

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

using namespace ddc;

int
main()
{
    std::cout << "=== Producer/consumer: scheme comparison ===\n\n"
              << "4 PEs; PE0 rewrites a 16-word buffer each round; the\n"
              << "other three read the whole buffer twice per round;\n"
              << "16 rounds.\n\n";

    auto trace = makeProducerConsumerTrace(/*num_pes=*/4,
                                           /*buffer_words=*/16,
                                           /*rounds=*/16,
                                           /*reads_per_round=*/2);

    stats::Table table;
    table.setHeader({"scheme", "bus reads", "bus writes", "invalidates",
                     "total bus ops", "bus ops/ref", "cycles"});
    for (auto kind : allProtocolKinds()) {
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 256;
        config.protocol = kind;
        auto summary = runTrace(config, trace, /*check_consistency=*/true);
        if (!summary.consistent) {
            std::cerr << "consistency violation under " << toString(kind)
                      << "\n";
            return 1;
        }
        table.addRow({std::string(toString(kind)),
                      std::to_string(summary.counters.get("bus.read")),
                      std::to_string(summary.counters.get("bus.write")),
                      std::to_string(
                          summary.counters.get("bus.invalidate")),
                      std::to_string(summary.bus_transactions),
                      stats::Table::num(summary.bus_per_ref, 3),
                      std::to_string(summary.cycles)});
    }
    std::cout << table.render() << "\n";

    std::cout
        << "Reading the table:\n"
        << "  - RWB: the producer's bus write *updates* the consumers'\n"
        << "    caches, so consumer reads are hits -- near-zero bus\n"
        << "    reads. 'the bus write ... simply broadcasts the new\n"
        << "    value to all interested caches.  Subsequent read\n"
        << "    references will cause no bus activity.' (Section 5)\n"
        << "  - RB: each producer write invalidates; the first consumer\n"
        << "    read per round refills every cache at once (read\n"
        << "    broadcast), so RB pays ~1 bus read per word per round.\n"
        << "  - WriteOnce has no read broadcast: every consumer pays\n"
        << "    its own refill. WriteThrough likewise. CmStar cannot\n"
        << "    cache shared data at all.\n";
    return 0;
}
