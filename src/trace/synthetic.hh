/**
 * @file
 * Synthetic workload generators.
 *
 * The paper's evaluation rests on (a) the Cm* reference-mix data of
 * Table 1-1 (Raskin's traces, which no longer exist in machine-readable
 * form — we synthesize streams with the same mix and a locality model
 * whose read-miss ratio declines with cache size) and (b) archetypal
 * shared-data reference patterns the text calls out: array
 * initialization (Section 5), producer/consumer "written by one PE and
 * then read by others" cycles, migratory read-modify-write data, and
 * lock hot spots (Section 6).  Each generator below produces one of
 * those patterns as a deterministic multi-PE Trace.
 */

#ifndef DDC_TRACE_SYNTHETIC_HH
#define DDC_TRACE_SYNTHETIC_HH

#include <cstdint>

#include "trace/rng.hh"
#include "trace/trace.hh"

namespace ddc {

/**
 * Parameters of a Cm*-style application reference mix (Table 1-1).
 *
 * Fractions are of all references; the remainder after local writes and
 * shared references is split between code reads and local reads.
 * Address locality for code and local data follows a three-tier
 * working-set model (a tiny hot set, a mid-size loop working set, and
 * a cold uniform tail over the footprint), each tier a contiguous
 * region.  The tier sizes are calibrated so the Cm* policy's
 * read-miss ratio falls from the mid-20s% at a 256-word cache to
 * ~6% at 2048 words, the Table 1-1 curve.
 */
struct CmStarAppParams
{
    /** Fraction of references that are writes to local data. */
    double local_write_fraction = 0.08;
    /** Fraction of references that touch shared read/write data. */
    double shared_fraction = 0.05;
    /** Of the shared references, fraction that are reads. */
    double shared_read_fraction = 0.7;
    /** Of the remaining (read) references, fraction that fetch code. */
    double code_fraction = 0.75;
    /** Private footprint (words) for code, per PE. */
    std::uint64_t code_footprint = 32768;
    /** Private footprint (words) for local data, per PE. */
    std::uint64_t local_footprint = 8192;
    /** Shared footprint (words), common to all PEs. */
    std::uint64_t shared_footprint = 512;

    /** Innermost working set (words) for code / local data. */
    std::uint64_t code_hot_words = 128;
    std::uint64_t local_hot_words = 48;
    /** Loop working set (words) for code / local data. */
    std::uint64_t code_mid_words = 800;
    std::uint64_t local_mid_words = 260;
    /** Fraction of code/local references hitting the hot tier. */
    double hot_fraction = 0.66;
    /** Fraction hitting the mid tier (the rest is a cold tail). */
    double mid_fraction = 0.285;
    /**
     * Mean temporal burst length: consecutive references of one class
     * repeat the previous address with probability 1 - 1/burst_length
     * (real code re-references the same words in tight runs, which is
     * what makes one-word direct-mapped caches viable at all).
     */
    double burst_length = 1.9;
};

/** Table 1-1's "Application A" mix (8% local writes, 5% shared). */
CmStarAppParams cmStarApplicationA();

/** Table 1-1's "Application B" mix (6.7% local writes, 10% shared). */
CmStarAppParams cmStarApplicationB();

/**
 * Generate a Cm*-style mixed reference stream.
 *
 * @param params Reference-mix parameters.
 * @param num_pes Number of PE streams.
 * @param refs_per_pe References per PE.
 * @param seed RNG seed.
 */
Trace makeCmStarTrace(const CmStarAppParams &params, int num_pes,
                      std::size_t refs_per_pe, std::uint64_t seed);

/**
 * Uniform random reads/writes/test-and-sets over a small shared region;
 * the adversarial workload used by the consistency property tests.
 *
 * @param num_pes Number of PE streams.
 * @param refs_per_pe References per PE.
 * @param footprint Number of distinct shared words.
 * @param write_fraction Fraction of references that are writes.
 * @param ts_fraction Fraction of references that are test-and-sets.
 * @param seed RNG seed.
 */
Trace makeUniformRandomTrace(int num_pes, std::size_t refs_per_pe,
                             std::uint64_t footprint, double write_fraction,
                             double ts_fraction, std::uint64_t seed);

/**
 * Array initialization: each PE sweeps a disjoint region writing each
 * element exactly once (Section 5's motivating example: RB pays two bus
 * writes per element, RWB one).
 *
 * @param num_pes Number of PE streams.
 * @param elements_per_pe Words initialized by each PE.
 */
Trace makeArrayInitTrace(int num_pes, std::uint64_t elements_per_pe);

/**
 * Producer/consumer: each round, PE 0 writes @p buffer_words shared
 * words; every other PE then reads all of them @p reads_per_round
 * times.  This is the "written by some one PE and then read by others"
 * cyclic pattern of Section 5.
 */
Trace makeProducerConsumerTrace(int num_pes, std::uint64_t buffer_words,
                                int rounds, int reads_per_round);

/**
 * Migratory data: a single record of @p record_words is read and then
 * rewritten by each PE in turn for @p rounds laps.
 */
Trace makeMigratoryTrace(int num_pes, std::uint64_t record_words,
                         int rounds);

/**
 * Lock hot spot at trace level: every PE alternates @p spins reads of
 * one shared lock word with one TestAndSet attempt, for @p attempts
 * attempts (the Section 6 reference pattern without program control
 * flow; the sync layer provides the faithful program-driven version).
 */
Trace makeHotSpotTrace(int num_pes, int attempts, int spins);

/**
 * Sequential private walk: each PE streams read-mostly through its
 * own region in address order for @p passes passes (the
 * spatial-locality pattern that larger cache blocks reward).
 *
 * @param num_pes Number of PE streams.
 * @param words Region size per PE.
 * @param passes Sweeps over the region.
 * @param write_every Every n-th reference is a write (0 = reads only).
 */
Trace makeSequentialWalkTrace(int num_pes, std::uint64_t words, int passes,
                              int write_every = 0);

/**
 * False sharing: PE i repeatedly writes and reads word i of a single
 * contiguous shared array, so with multi-word blocks unrelated PEs
 * fight over the same block while with one-word blocks they never
 * interact — the paper's argument for assumption 7 ("There is no
 * reason to suspect that nearby address of shared variables will be
 * used by the same processor at the same time").
 *
 * @param num_pes Number of PE streams (PE i owns word i).
 * @param rounds Write+read rounds per PE.
 */
Trace makeFalseSharingTrace(int num_pes, int rounds);

/**
 * Clustered sharing: PEs are grouped in clusters; a fraction of each
 * PE's shared references target words shared only within its cluster,
 * the rest target globally shared words.  The workload behind the
 * hierarchical-machine experiment (Section 8): the higher the cluster
 * locality, the more traffic a cluster cache can keep off the global
 * bus.
 *
 * @param num_clusters Number of clusters.
 * @param pes_per_cluster PEs per cluster (streams are cluster-major).
 * @param refs_per_pe References per PE.
 * @param cluster_local_fraction Of the references, fraction aimed at
 *        this cluster's private shared region.
 * @param write_fraction Fraction of references that are writes.
 * @param seed RNG seed.
 */
Trace makeClusteredTrace(int num_clusters, int pes_per_cluster,
                         std::size_t refs_per_pe,
                         double cluster_local_fraction,
                         double write_fraction, std::uint64_t seed);

/** Base word address of PE @p pe's private code region. */
Addr codeBase(PeId pe);

/** Base word address of PE @p pe's private local-data region. */
Addr localBase(PeId pe);

/** Base word address of the shared region. */
Addr sharedBase();

} // namespace ddc

#endif // DDC_TRACE_SYNTHETIC_HH
