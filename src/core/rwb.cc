#include "core/rwb.hh"

#include "base/logging.hh"

namespace ddc {

RwbProtocol::RwbProtocol(int writes_to_local) : k(writes_to_local)
{
    ddc_assert(k >= 1 && k <= 255, "writes_to_local must be in [1, 255]");
}

CpuReaction
RwbProtocol::onCpuAccess(LineState state, CpuOp op, DataClass cls) const
{
    (void)cls;

    CpuReaction reaction;
    switch (op) {
      case CpuOp::Read:
        if (state.present()) {
            // R, F, and L all hold a current value; reads by the
            // owning PE never break its write streak.
            reaction.next = state;
            return reaction;
        }
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Read;
        return reaction;

      case CpuOp::Write: {
        if (state.tag == LineTag::Local) {
            reaction.next = state;
            reaction.update_value = true;
            return reaction;
        }
        // The streak this write would complete.
        int streak = state.tag == LineTag::FirstWrite ? state.streak + 1 : 1;
        reaction.needs_bus = true;
        // The k-th uninterrupted write confirms local usage: broadcast
        // BI so every other copy is dropped instead of updated.
        reaction.bus_op = streak >= k ? BusOp::Invalidate : BusOp::Write;
        return reaction;
      }

      case CpuOp::TestAndSet:
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Rmw;
        return reaction;

      case CpuOp::ReadLock:
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::ReadLock;
        return reaction;

      case CpuOp::WriteUnlock:
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::WriteUnlock;
        return reaction;
    }
    ddc_panic("unhandled CpuOp");
}

LineState
RwbProtocol::afterBusOp(LineState state, BusOp op, bool rmw_success) const
{
    switch (op) {
      case BusOp::Read:
      case BusOp::ReadLock:
        return {LineTag::Readable, 0};
      case BusOp::Write: {
        // A non-final write of the streak: enter / stay in F.
        std::uint8_t streak =
            state.tag == LineTag::FirstWrite ? state.streak + 1 : 1;
        return {LineTag::FirstWrite, streak};
      }
      case BusOp::Invalidate:
        return {LineTag::Local, 0};
      case BusOp::WriteUnlock:
      case BusOp::Rmw:
        // RMW completion leaves the caches in a shared configuration
        // "so that subsequent reads cause no bus activity" (Section 5):
        // a successful set behaves like a first write (F), a failed
        // test like a read (R).  Even with k == 1 the success lands in
        // F: the data went out as an (update) bus write, so other
        // caches hold live copies and Local would be unsound.
        if (op == BusOp::Rmw && !rmw_success)
            return {LineTag::Readable, 0};
        return {LineTag::FirstWrite, 1};
    }
    ddc_panic("RWB completed unexpected bus op");
}

SnoopReaction
RwbProtocol::onSnoop(LineState state, BusOp op) const
{
    SnoopReaction reaction;
    reaction.next = state;

    switch (op) {
      case BusOp::Read:
        switch (state.tag) {
          case LineTag::Local:
            reaction.supply = true;
            return reaction;
          case LineTag::Invalid:
            reaction.next = {LineTag::Readable, 0};
            reaction.snarf = true;
            return reaction;
          case LineTag::Readable:
          case LineTag::FirstWrite:
            // "All other configurations will be unchanged" — an F
            // holder keeps its streak across other PEs' bus reads
            // (memory is current, so memory supplies the reader).
          case LineTag::NotPresent:
            return reaction;
          default:
            break;
        }
        break;

      case BusOp::Write:
        switch (state.tag) {
          case LineTag::Readable:
          case LineTag::Invalid:
          case LineTag::FirstWrite:
          case LineTag::Local:
            // Write broadcast: another PE's write *updates* our copy
            // (and resets any write streak / local ownership).
            reaction.next = {LineTag::Readable, 0};
            reaction.snarf = true;
            return reaction;
          case LineTag::NotPresent:
            return reaction;
          default:
            break;
        }
        break;

      case BusOp::Invalidate:
        // The BI signal: drop every other copy.
        if (state.tag != LineTag::NotPresent)
            reaction.next = {LineTag::Invalid, 0};
        return reaction;

      default:
        break;
    }
    ddc_panic("RWB snooped unexpected bus op / state combination");
}

LineState
RwbProtocol::afterSupply(LineState state) const
{
    ddc_assert(state.tag == LineTag::Local,
               "only a Local line can supply data");
    return {LineTag::Readable, 0};
}

bool
RwbProtocol::needsWriteback(LineState state) const
{
    // F lines wrote through (memory current); only L can be dirty.
    return state.tag == LineTag::Local;
}

} // namespace ddc
