#include "exp/experiment.hh"

#include "base/logging.hh"

namespace ddc {
namespace exp {

void
ParamGrid::axis(std::string name, std::vector<std::string> labels)
{
    ddc_assert(!labels.empty(), "grid axis needs at least one value");
    axes.push_back({std::move(name), std::move(labels)});
}

std::size_t
ParamGrid::size() const
{
    std::size_t product = 1;
    for (const auto &axis : axes)
        product *= axis.labels.size();
    return product;
}

std::vector<std::size_t>
ParamGrid::indicesAt(std::size_t flat) const
{
    ddc_assert(flat < size(), "grid index out of range");
    std::vector<std::size_t> indices(axes.size(), 0);
    for (std::size_t axis = axes.size(); axis-- > 0;) {
        std::size_t extent = axes[axis].labels.size();
        indices[axis] = flat % extent;
        flat /= extent;
    }
    return indices;
}

ParamList
ParamGrid::paramsAt(std::size_t flat) const
{
    auto indices = indicesAt(flat);
    ParamList params;
    for (std::size_t axis = 0; axis < axes.size(); axis++)
        params.emplace_back(axes[axis].name,
                            axes[axis].labels[indices[axis]]);
    return params;
}

Experiment::Experiment(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description))
{
}

void
Experiment::addRun(ParamList params, std::function<TraceRun()> make)
{
    ddc_assert(make != nullptr, "trace point needs a factory");
    points_.push_back({std::move(params), std::move(make), nullptr});
}

void
Experiment::addCustom(ParamList params, std::function<RunResult()> run)
{
    ddc_assert(run != nullptr, "custom point needs a callable");
    points_.push_back({std::move(params), nullptr, std::move(run)});
}

void
Experiment::addGrid(const ParamGrid &grid,
                    std::function<TraceRun(std::size_t)> make)
{
    for (std::size_t flat = 0; flat < grid.size(); flat++) {
        addRun(grid.paramsAt(flat),
               [make, flat]() { return make(flat); });
    }
}

} // namespace exp
} // namespace ddc
