/**
 * @file
 * Experiment specification: a named set of sweep points.
 *
 * An Experiment is what a bench or the CLI hands to the runner: each
 * point is either a trace run (SystemConfig + workload, executed and
 * scraped by the engine) or a custom callable producing a RunResult
 * directly (scenario figures, lock experiments, hierarchy runs).
 * ParamGrid expands named parameter axes into the flat, deterministic
 * point order every consumer indexes by.
 *
 * Point factories and custom callables execute on worker threads, so
 * they must be self-contained: capture by value, build the System /
 * Trace / Scenario locally, and return data instead of printing.
 */

#ifndef DDC_EXP_EXPERIMENT_HH
#define DDC_EXP_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "exp/result.hh"
#include "sim/system.hh"
#include "trace/trace.hh"

namespace ddc {
namespace exp {

/**
 * A Cartesian grid of named parameter axes.
 *
 * Flat indices enumerate the product in row-major order (the last
 * axis varies fastest), which fixes both the execution order and the
 * result order of a sweep.
 */
class ParamGrid
{
  public:
    /** Append an axis named @p name with the given value labels. */
    void axis(std::string name, std::vector<std::string> labels);

    /** Number of grid points (1 for an empty grid). */
    std::size_t size() const;

    /** Number of axes. */
    std::size_t numAxes() const { return axes.size(); }

    /** Per-axis indices of flat point @p flat (last axis fastest). */
    std::vector<std::size_t> indicesAt(std::size_t flat) const;

    /** (axis name, value label) pairs of flat point @p flat. */
    ParamList paramsAt(std::size_t flat) const;

  private:
    struct Axis
    {
        std::string name;
        std::vector<std::string> labels;
    };
    std::vector<Axis> axes;
};

/** One simulator run: machine configuration + workload + limits. */
struct TraceRun
{
    SystemConfig config;
    Trace trace;
    /** Record and replay the log through the consistency checker. */
    bool check_consistency = false;
    /** Cycle budget; exceeding it yields RunStatus::TimedOut. */
    Cycle max_cycles = System::kDefaultMaxCycles;
};

/** A named parameter sweep: what to run, not how to run it. */
class Experiment
{
  public:
    struct Point
    {
        ParamList params;
        /** Trace point: build the run (worker thread, call once). */
        std::function<TraceRun()> make;
        /** Custom point: produce the result directly. */
        std::function<RunResult()> custom;
    };

    explicit Experiment(std::string name, std::string description = "");

    /** Append a trace-run point. */
    void addRun(ParamList params, std::function<TraceRun()> make);

    /** Append a custom point. */
    void addCustom(ParamList params, std::function<RunResult()> run);

    /** Append every point of @p grid; @p make gets the flat index. */
    void addGrid(const ParamGrid &grid,
                 std::function<TraceRun(std::size_t)> make);

    const std::string &name() const { return name_; }
    const std::string &description() const { return description_; }
    std::size_t size() const { return points_.size(); }
    const std::vector<Point> &points() const { return points_; }

  private:
    std::string name_;
    std::string description_;
    std::vector<Point> points_;
};

} // namespace exp
} // namespace ddc

#endif // DDC_EXP_EXPERIMENT_HH
