/**
 * @file
 * The Section 4 proof, executed: exhaustive product-machine checks of
 * every protocol for 1..4 caches, plus negative tests showing the
 * checker actually catches broken protocols.
 */

#include <gtest/gtest.h>

#include "core/factory.hh"
#include "core/rb.hh"
#include "core/rwb.hh"
#include "verify/product_machine.hh"

namespace ddc {
namespace {

class ProductMachine : public ::testing::TestWithParam<
                           std::tuple<ProtocolKind, int>>
{
};

TEST_P(ProductMachine, InvariantsHoldExhaustively)
{
    auto [kind, num_caches] = GetParam();
    auto protocol = makeProtocol(kind);
    auto result = checkProductMachine(*protocol, num_caches);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_GT(result.states_explored, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProductMachine,
    ::testing::Combine(::testing::Values(ProtocolKind::Rb,
                                         ProtocolKind::Rwb,
                                         ProtocolKind::WriteOnce,
                                         ProtocolKind::WriteThrough,
                                         ProtocolKind::CmStar),
                       ::testing::Values(1, 2, 3, 4)),
    [](const auto &info) {
        return std::string(toString(std::get<0>(info.param))) + "_" +
               std::to_string(std::get<1>(info.param)) + "caches";
    });

TEST(ProductMachineRwbK, LargerThresholdsStillSound)
{
    for (int k : {1, 3, 4}) {
        auto protocol = makeProtocol(ProtocolKind::Rwb, k);
        auto result = checkProductMachine(*protocol, 3);
        EXPECT_TRUE(result.ok) << "k=" << k << ": " << result.error;
    }
}

TEST(ProductMachine, FiveCachesRb)
{
    RbProtocol rb;
    auto result = checkProductMachine(rb, 5);
    EXPECT_TRUE(result.ok) << result.error;
}

TEST(ProductMachine, WithoutTsOrEvictStillPasses)
{
    RbProtocol rb;
    ProductCheckOptions options;
    options.with_test_and_set = false;
    options.with_evictions = false;
    auto result = checkProductMachine(rb, 3, options);
    EXPECT_TRUE(result.ok) << result.error;
    // Fewer event classes -> strictly fewer states.
    auto full = checkProductMachine(rb, 3);
    EXPECT_LE(result.states_explored, full.states_explored);
}

/** A deliberately broken RB: snooped writes do NOT invalidate R. */
class BrokenNoInvalidate : public RbProtocol
{
  public:
    SnoopReaction
    onSnoop(LineState state, BusOp op) const override
    {
        if (op == BusOp::Write && state.tag == LineTag::Readable) {
            SnoopReaction reaction;
            reaction.next = state; // BUG: keep the stale copy readable
            return reaction;
        }
        return RbProtocol::onSnoop(state, op);
    }
};

TEST(ProductMachineNegative, CatchesMissingInvalidation)
{
    BrokenNoInvalidate broken;
    auto result = checkProductMachine(broken, 2);
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.error.empty());
}

/** A deliberately broken RB: write hits in R stay silent (no bus). */
class BrokenSilentWrite : public RbProtocol
{
  public:
    CpuReaction
    onCpuAccess(LineState state, CpuOp op, DataClass cls) const override
    {
        if (op == CpuOp::Write && state.tag == LineTag::Readable) {
            CpuReaction reaction;
            reaction.next = {LineTag::Local, 0}; // BUG: no broadcast
            reaction.update_value = true;
            return reaction;
        }
        return RbProtocol::onCpuAccess(state, op, cls);
    }
};

TEST(ProductMachineNegative, CatchesSilentWrites)
{
    BrokenSilentWrite broken;
    auto result = checkProductMachine(broken, 2);
    EXPECT_FALSE(result.ok);
}

/** A deliberately broken RB: Local lines refuse to supply readers. */
class BrokenNoSupply : public RbProtocol
{
  public:
    SnoopReaction
    onSnoop(LineState state, BusOp op) const override
    {
        if (op == BusOp::Read && state.tag == LineTag::Local) {
            SnoopReaction reaction;
            reaction.next = state; // BUG: let memory serve stale data
            return reaction;
        }
        return RbProtocol::onSnoop(state, op);
    }
};

TEST(ProductMachineNegative, CatchesMissingIntervention)
{
    BrokenNoSupply broken;
    auto result = checkProductMachine(broken, 2);
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.error.empty());
}

/** A deliberately broken protocol: eviction forgets the write-back. */
class BrokenNoWriteback : public RbProtocol
{
  public:
    bool
    needsWriteback(LineState state) const override
    {
        (void)state;
        return false; // BUG: dirty Local lines dropped silently
    }
};

TEST(ProductMachineNegative, CatchesDroppedDirtyLines)
{
    BrokenNoWriteback broken;
    auto result = checkProductMachine(broken, 2);
    EXPECT_FALSE(result.ok);
}

TEST(ProductMachine, RbConfigurationsAreExactlyTheLemma)
{
    // The lemma: every reachable configuration is local-type (one L,
    // rest I/NP) or shared-type (only R/I/NP).  Check the enumerated
    // configurations directly.
    RbProtocol rb;
    ProductCheckOptions options;
    options.with_evictions = false; // keep NP out for a crisp check
    options.with_test_and_set = false;
    auto result = checkProductMachine(rb, 2, options);
    ASSERT_TRUE(result.ok) << result.error;
    // Without evictions an Invalid copy can only coexist with the
    // writer that invalidated it (Local), so the reachable set is:
    std::vector<std::string> expected{
        "I L", "I R", "L NP", "NP NP", "NP R", "R R",
    };
    EXPECT_EQ(result.configurations, expected);
}

TEST(ProductMachine, RwbConfigurationsAreExactlyTheLemma)
{
    RwbProtocol rwb;
    ProductCheckOptions options;
    options.with_evictions = false;
    options.with_test_and_set = false;
    auto result = checkProductMachine(rwb, 2, options);
    ASSERT_TRUE(result.ok) << result.error;
    // The intermediate First-write configurations (one F, rest R/NP)
    // join RB's local- and shared-type configurations; under the
    // update-broadcast rules an Invalid copy only coexists with a
    // Local owner (everything else snarfs back to R).
    std::vector<std::string> expected{
        "F NP", "F R", "I L", "L NP", "NP NP", "NP R", "R R",
    };
    EXPECT_EQ(result.configurations, expected);
}

TEST(ProductMachine, NoConfigurationMixesLocalWithLive)
{
    for (auto kind : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
        auto protocol = makeProtocol(kind);
        auto result = checkProductMachine(*protocol, 3);
        ASSERT_TRUE(result.ok) << result.error;
        for (const auto &config : result.configurations) {
            if (config.find('L') == std::string::npos)
                continue;
            // A configuration containing L has no R or F copy.
            EXPECT_EQ(config.find('R'), std::string::npos) << config;
            EXPECT_EQ(config.find('F'), std::string::npos) << config;
        }
    }
}

TEST(ProductMachine, StateCountsAreModest)
{
    // The abstraction keeps the space tiny; regression-guard it so the
    // checker stays cheap enough to run everywhere.
    RbProtocol rb;
    auto result = checkProductMachine(rb, 4);
    EXPECT_TRUE(result.ok);
    EXPECT_LT(result.states_explored, 100'000u);
}

} // namespace
} // namespace ddc
