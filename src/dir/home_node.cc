#include "dir/home_node.hh"

#include "base/logging.hh"

namespace ddc {
namespace dir {

namespace {

std::size_t
opIndex(BusOp op)
{
    return static_cast<std::size_t>(op);
}

} // namespace

HomeNode::HomeNode(int home_id, ArbiterKind arbiter_kind,
                   std::uint64_t arbiter_seed, stats::CounterSet &stats)
    : homeId(home_id), stats(stats), memory(stats),
      arbiter(makeArbiter(arbiter_kind,
                          arbiter_seed +
                              static_cast<std::uint64_t>(home_id)))
{
    statBusy = stats.intern("bus.busy_cycles");
    statTransfer = stats.intern("bus.transfer_cycles");
    statIdle = stats.intern("bus.idle_cycles");
    statKill = stats.intern("bus.kill");
    statSupplyWrite = stats.intern("bus.supply_write");
    statRmwSuccess = stats.intern("bus.rmw_success");
    statRmwFail = stats.intern("bus.rmw_fail");
    statNack = stats.intern("bus.nack");
    for (auto op : {BusOp::Read, BusOp::Write, BusOp::Invalidate,
                    BusOp::Rmw, BusOp::ReadLock, BusOp::WriteUnlock}) {
        statOp[opIndex(op)] = stats.intern(busOpStatName(op));
        statNackOp[opIndex(op)] = stats.intern(busNackStatName(op));
    }
    statMsgRequest = stats.intern("dir.msg.request");
    statMsgFwd = stats.intern("dir.msg.fwd");
    statMsgInval = stats.intern("dir.msg.inval");
    statMsgAck = stats.intern("dir.msg.ack");
    statMsgUpdate = stats.intern("dir.msg.update");
    statSharerOverflow = stats.intern("dir.sharer_overflow");
}

void
HomeNode::countIdle(Cycle count)
{
    if (count > 0)
        stats.add(statIdle, count);
}

void
HomeNode::tick(const std::vector<BusClient *> &clients,
               std::uint64_t &visits)
{
    if (inbox.empty()) {
        stats.add(statIdle);
        return;
    }
    stats.add(statBusy);
    stats.add(statMsgRequest);
    msgCount++;

    int grant = arbiter->pick(inbox);
    BusRequest request =
        clients[static_cast<std::size_t>(grant)]->currentRequest();
    ddc_assert(!request.block_transfer,
               "the directory fabric uses one-word blocks");

    if (obsCtx && obsCtx->trace) {
        // The granted request as a one-cycle slice on this home's
        // track (the synchronous model serves it within the cycle).
        obs::TraceEvent event;
        event.ts = obsCtx->clock->now;
        event.dur = 1;
        event.name = toString(request.op);
        event.addr = request.addr;
        event.has_addr = true;
        event.value = grant;
        event.value_name = "issuer";
        event.phase = 'X';
        event.track = obs::kTrackHomes;
        event.tid = homeId;
        obsCtx->trace->push(event);
    }

    switch (request.op) {
      case BusOp::Read:
      case BusOp::ReadLock:
      case BusOp::Rmw:
        executeReadLike(grant, request, clients, visits);
        break;
      case BusOp::Write:
      case BusOp::WriteUnlock:
      case BusOp::Invalidate:
        executeWriteLike(grant, request, clients, visits);
        break;
    }
}

void
HomeNode::addSharer(DirEntry &entry, int client)
{
    if (entry.sharers.add(client) &&
        client >= SharerSet::kBitmapIds)
        stats.add(statSharerOverflow);
}

void
HomeNode::deliverWriteLike(DirEntry &entry, const BusTransaction &txn,
                           int keep,
                           const std::vector<BusClient *> &clients,
                           std::uint64_t &visits)
{
    // Collect first: observers do not touch the directory, but the
    // sharer set itself is rewritten below and must not be walked
    // while it changes.
    targets.clear();
    entry.sharers.forEach([&](int sharer) {
        if (sharer != keep)
            targets.push_back(sharer);
    });
    std::size_t acks = 0;
    const bool traced = obsCtx && obsCtx->trace;
    for (int sharer : targets) {
        stats.add(statMsgInval);
        visits++;
        msgCount++;
        if (traced)
            traceInstant("inval", txn.addr, nullptr, sharer);
        clients[static_cast<std::size_t>(sharer)]->observe(txn);
        // The synchronous machine model collects the ack in the same
        // cycle; counted per target so ack traffic is visible.
        stats.add(statMsgAck);
        msgCount++;
        if (traced)
            traceInstant("ack", txn.addr, nullptr, sharer);
        acks++;
    }
    ddc_assert(acks == targets.size(),
               "invalidate-ack collection lost a target");
    if (obsCtx && obsCtx->metrics)
        obsCtx->metrics->acks_per_inval.sample(acks);

    // Every delivered write-like observation erased its target's
    // entry; only @p keep (when it was a sharer) still holds one.
    bool keep_was_sharer = entry.sharers.contains(keep);
    entry.sharers.clear();
    if (keep_was_sharer)
        entry.sharers.add(keep);
}

void
HomeNode::deliverRead(DirEntry *entry, const BusTransaction &txn,
                      int skip,
                      const std::vector<BusClient *> &clients,
                      std::uint64_t &visits)
{
    if (entry == nullptr)
        return;
    // Read observations refresh values (and refill L1 copies RWB-
    // style) but never change entry membership: iterating live is
    // safe.
    entry->sharers.forEach([&](int sharer) {
        if (sharer == skip)
            return;
        stats.add(statMsgUpdate);
        visits++;
        msgCount++;
        if (obsCtx && obsCtx->trace)
            traceInstant("update", txn.addr, nullptr, sharer);
        clients[static_cast<std::size_t>(sharer)]->observe(txn);
    });
}

void
HomeNode::executeReadLike(int grant, const BusRequest &request,
                          const std::vector<BusClient *> &clients,
                          std::uint64_t &visits)
{
    auto *grantee = clients[static_cast<std::size_t>(grant)];

    DirEntry *entry = dir.lookup(request.addr);
    int owner = entry != nullptr ? entry->owner : -1;

#ifndef NDEBUG
    // Cross-check the directory against the snooping bus's full
    // supplier scan: every cluster the directory skips must indeed
    // decline to supply.  (Double-polling is safe: wouldSupply is
    // idempotent for the cluster cache.)
    int full_scan = -1;
    for (std::size_t i = 0; i < clients.size(); i++) {
        if (static_cast<int>(i) == grant)
            continue;
        Word candidate = 0;
        if (clients[i]->wouldSupply(request.addr, candidate))
            full_scan = static_cast<int>(i);
    }
    ddc_assert(full_scan == owner,
               "directory owner disagrees with the full supplier scan "
               "for addr ", request.addr, ": directory says ", owner,
               ", scan says ", full_scan);
#endif
    ddc_assert(owner != grant,
               "read-like request granted to the owning cluster");

    if (owner >= 0) {
        // Owner forward: the home cannot serve the read — the owning
        // cluster holds a newer value.  Kill the transaction and
        // replace it with the owner's supply write, exactly like the
        // snooping bus's L-interrupt; the grantee retries.
        auto *supplier = clients[static_cast<std::size_t>(owner)];
        Word value = 0;
        stats.add(statMsgFwd);
        visits++;
        msgCount++;
        if (obsCtx && obsCtx->trace)
            traceInstant("fwd", request.addr, nullptr, owner);
        bool supplies = supplier->wouldSupply(request.addr, value);
        ddc_assert(supplies, "directory owner declined to supply addr ",
                   request.addr);
        stats.add(statKill);
        stats.add(statSupplyWrite);
        stats.add(statOp[opIndex(BusOp::Write)]);
        grantee->requestKilled();

        memory.acceptSupply(request.addr, value);
        BusTransaction txn{BusOp::Write, request.addr, value, owner, {}};
        deliverWriteLike(*entry, txn, owner, clients, visits);
        supplier->supplied(request.addr);
        // The supplied value now matches home memory; the owner keeps
        // its (demoted) entry and stays a sharer.
        entry->owner = -1;
        return;
    }

    PeId pe = grantee->peId();
    switch (request.op) {
      case BusOp::Read: {
        Word data = 0;
        if (!memory.tryRead(request.addr, pe, data)) {
            nack(grant, request, clients);
            return;
        }
        stats.add(statOp[opIndex(request.op)]);
        deliverRead(entry, {BusOp::Read, request.addr, data, grant, {}},
                    grant, clients, visits);
        addSharer(dir.ensure(request.addr), grant);
        noteComplete(grant);
        grantee->requestComplete({data, false, {}});
        return;
      }
      case BusOp::ReadLock: {
        Word data = 0;
        if (!memory.tryReadLock(request.addr, pe, data)) {
            nack(grant, request, clients);
            return;
        }
        stats.add(statOp[opIndex(request.op)]);
        deliverRead(entry, {BusOp::Read, request.addr, data, grant, {}},
                    grant, clients, visits);
        addSharer(dir.ensure(request.addr), grant);
        noteComplete(grant);
        grantee->requestComplete({data, false, {}});
        return;
      }
      case BusOp::Rmw: {
        Word old = 0;
        bool success = false;
        if (!memory.tryRmw(request.addr, pe, request.data, old,
                           success)) {
            nack(grant, request, clients);
            return;
        }
        stats.add(statOp[opIndex(request.op)]);
        if (success) {
            stats.add(statRmwSuccess);
            DirEntry &e = dir.ensure(request.addr);
            deliverWriteLike(e, {BusOp::Write, request.addr,
                                 request.data, grant, {}},
                             grant, clients, visits);
            e.owner = grant;
            addSharer(e, grant);
            noteComplete(grant);
            grantee->requestComplete({old, true, {}});
        } else {
            stats.add(statRmwFail);
            deliverRead(entry, {BusOp::Read, request.addr, old, grant,
                                {}},
                        grant, clients, visits);
            addSharer(dir.ensure(request.addr), grant);
            noteComplete(grant);
            grantee->requestComplete({old, false, {}});
        }
        return;
      }
      default:
        break;
    }
    ddc_panic("unreachable");
}

void
HomeNode::executeWriteLike(int grant, const BusRequest &request,
                           const std::vector<BusClient *> &clients,
                           std::uint64_t &visits)
{
    auto *grantee = clients[static_cast<std::size_t>(grant)];
    PeId pe = grantee->peId();

    BusTransaction txn;
    txn.addr = request.addr;
    txn.data = request.data;
    txn.issuer = grant;
    txn.op = request.op == BusOp::Invalidate ? BusOp::Invalidate
                                             : BusOp::Write;

    if (request.op == BusOp::WriteUnlock) {
        if (!memory.tryWriteUnlock(request.addr, pe, request.data)) {
            nack(grant, request, clients);
            return;
        }
    } else if (request.op == BusOp::Invalidate) {
        if (!memory.tryInvalidate(request.addr, pe, request.data)) {
            nack(grant, request, clients);
            return;
        }
    } else {
        if (!memory.tryWrite(request.addr, pe, request.data)) {
            // "Any bus writes before the unlock will fail" (Section 3).
            nack(grant, request, clients);
            return;
        }
    }

    stats.add(statOp[opIndex(request.op)]);

    if (request.writeback) {
        // The cluster cache's pre-flush publish before an RMW-class
        // forward: home memory becomes current, the grantee demotes
        // itself (but keeps its entry), and no ownership changes
        // hands.
        DirEntry *entry = dir.lookup(request.addr);
        ddc_assert(entry != nullptr && entry->owner == grant,
                   "writeback from a cluster the directory does not "
                   "record as owner of addr ", request.addr);
        deliverWriteLike(*entry, txn, grant, clients, visits);
        entry->owner = -1;
    } else {
        DirEntry &entry = dir.ensure(request.addr);
        deliverWriteLike(entry, txn, grant, clients, visits);
        entry.owner = grant;
        addSharer(entry, grant);
    }
    noteComplete(grant);
    grantee->requestComplete({request.data, false, {}});
}

void
HomeNode::nack(int grant, const BusRequest &request,
               const std::vector<BusClient *> &clients)
{
    stats.add(statNack);
    stats.add(statNackOp[opIndex(request.op)]);
    if (obsCtx && obsCtx->trace)
        traceInstant("nack", request.addr,
                     toString(request.op).data());
    clients[static_cast<std::size_t>(grant)]->requestNacked();
}

void
HomeNode::traceInstant(std::string_view name, Addr addr,
                       const char *detail, int target)
{
    obs::TraceEvent event;
    event.ts = obsCtx->clock->now;
    event.name = name;
    event.detail = detail;
    event.addr = addr;
    event.has_addr = true;
    if (target >= 0) {
        event.value = target;
        event.value_name = "target";
    }
    event.track = obs::kTrackHomes;
    event.tid = homeId;
    obsCtx->trace->push(event);
}

void
HomeNode::noteComplete(int grant)
{
    if (!obsCtx || !obsCtx->metrics || !obsCtx->requestStart)
        return;
    Cycle &start =
        (*obsCtx->requestStart)[static_cast<std::size_t>(grant)];
    if (start == kNever)
        return;
    obsCtx->metrics->home_service.sample(obsCtx->clock->now - start);
    start = kNever;
}

} // namespace dir
} // namespace ddc
