#include "core/cmstar.hh"

#include "base/logging.hh"

namespace ddc {

CpuReaction
CmStarProtocol::onCpuAccess(LineState state, CpuOp op, DataClass cls) const
{
    CpuReaction reaction;

    // Shared data (and every synchronization op) bypasses the cache
    // entirely: bus transaction, no allocation.
    bool shared = cls == DataClass::Shared || op == CpuOp::TestAndSet ||
                  op == CpuOp::ReadLock || op == CpuOp::WriteUnlock;
    if (shared) {
        reaction.needs_bus = true;
        reaction.allocate = false;
        switch (op) {
          case CpuOp::Read:        reaction.bus_op = BusOp::Read; break;
          case CpuOp::Write:       reaction.bus_op = BusOp::Write; break;
          case CpuOp::TestAndSet:  reaction.bus_op = BusOp::Rmw; break;
          case CpuOp::ReadLock:    reaction.bus_op = BusOp::ReadLock; break;
          case CpuOp::WriteUnlock:
            reaction.bus_op = BusOp::WriteUnlock;
            break;
        }
        return reaction;
    }

    switch (op) {
      case CpuOp::Read:
        if (state.present()) {
            reaction.next = state;
            return reaction;
        }
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Read;
        return reaction;

      case CpuOp::Write:
        // Local data writes through on every write ("writes to local
        // data were counted as cache misses"); the copy stays cached.
        reaction.needs_bus = true;
        reaction.bus_op = BusOp::Write;
        return reaction;

      default:
        break;
    }
    ddc_panic("unhandled CpuOp");
}

LineState
CmStarProtocol::afterBusOp(LineState state, BusOp op, bool rmw_success) const
{
    (void)state;
    (void)rmw_success;
    switch (op) {
      case BusOp::Read:
      case BusOp::Write:
        return {LineTag::Valid, 0};
      default:
        break;
    }
    ddc_panic("Cm* policy completed unexpected cachable bus op");
}

SnoopReaction
CmStarProtocol::onSnoop(LineState state, BusOp op) const
{
    SnoopReaction reaction;
    reaction.next = state;

    // Only private data is ever cached, so coherence traffic cannot
    // target a cached line; react defensively anyway.
    if (op != BusOp::Read && state.tag != LineTag::NotPresent)
        reaction.next = {LineTag::Invalid, 0};
    return reaction;
}

LineState
CmStarProtocol::afterSupply(LineState state) const
{
    (void)state;
    ddc_panic("Cm* policy never supplies data");
}

bool
CmStarProtocol::needsWriteback(LineState state) const
{
    (void)state;
    return false; // Write-through: memory is always current.
}

} // namespace ddc
