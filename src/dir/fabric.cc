#include "dir/fabric.hh"

#include "base/logging.hh"

namespace ddc {
namespace dir {

DirectoryFabric::DirectoryFabric(int home_nodes,
                                 ArbiterKind arbiter_kind,
                                 std::uint64_t arbiter_seed,
                                 stats::CounterSet &stats)
{
    ddc_assert(home_nodes >= 1, "need at least one home node");
    homes.reserve(static_cast<std::size_t>(home_nodes));
    for (int h = 0; h < home_nodes; h++) {
        homes.push_back(std::make_unique<HomeNode>(h, arbiter_kind,
                                                   arbiter_seed, stats));
    }
}

int
DirectoryFabric::attach(BusClient *client)
{
    ddc_assert(client != nullptr, "null fabric client");
    clients.push_back(client);
    armed.push_back(1);
    armedCount.fetch_add(1, std::memory_order_relaxed);
    return static_cast<int>(clients.size()) - 1;
}

void
DirectoryFabric::setRequestArmed(int client, bool is_armed)
{
    auto index = static_cast<std::size_t>(client);
    ddc_assert(index < clients.size(), "bad fabric client index ",
               client);
    char flag = is_armed ? 1 : 0;
    if (armed[index] == flag)
        return;
    armed[index] = flag;
    if (is_armed)
        armedCount.fetch_add(1, std::memory_order_relaxed);
    else
        armedCount.fetch_sub(1, std::memory_order_relaxed);
}

void
DirectoryFabric::tick()
{
    for (auto &home : homes)
        home->clearInbox();

    if (armedClients() > 0) {
        // One ascending pass, exactly the snooping bus's requester
        // collection; routing happens on the side-effect-free
        // pendingAddr (hasRequest may lazily resolve forwards, so it
        // runs first, exactly once, like on the bus).
        for (std::size_t i = 0; i < clients.size(); i++) {
            if (!armed[i] || !clients[i]->hasRequest())
                continue;
            int h = homeOf(clients[i]->pendingAddr());
            homes[static_cast<std::size_t>(h)]->post(
                static_cast<int>(i));
        }
    }

    for (auto &home : homes)
        home->tick(clients, visitCount);
}

void
DirectoryFabric::skipCycles(Cycle count)
{
    // Skips only cross intervals with no armed client (our
    // nextEventCycle pins the skip engine to `now` otherwise).
    ddc_assert(armedClients() == 0,
               "skipped across a home-node grant opportunity");
    for (auto &home : homes)
        home->countIdle(count);
}

Word
DirectoryFabric::memoryValue(Addr addr) const
{
    return homes[static_cast<std::size_t>(homeOf(addr))]
        ->memoryBank()
        .peek(addr);
}

void
DirectoryFabric::pokeMemory(Addr addr, Word value)
{
    homes[static_cast<std::size_t>(homeOf(addr))]->memoryBank().poke(
        addr, value);
}

std::size_t
DirectoryFabric::directoryBlocks() const
{
    std::size_t total = 0;
    for (const auto &home : homes)
        total += home->directory().blocks();
    return total;
}

} // namespace dir
} // namespace ddc
