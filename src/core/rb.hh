/**
 * @file
 * The RB (Read Broadcast) cache scheme — Section 3 / Figure 3-1.
 *
 * Three tag states per line: Readable (R), Invalid (I), Local (L),
 * plus NotPresent for the product-machine NP extension.  Values
 * fetched by bus reads are broadcast: every cache holding the address
 * snarfs the returned value and enters R.  CPU writes write through
 * the bus (invalidating all other copies) and leave the writer in L;
 * subsequent writes by the same PE stay inside the cache.  A cache in
 * L that snoops a bus read kills the transaction and supplies its
 * value with a bus write; the killed read retries the next cycle.
 */

#ifndef DDC_CORE_RB_HH
#define DDC_CORE_RB_HH

#include "core/protocol.hh"

namespace ddc {

/** The paper's RB scheme. */
class RbProtocol : public Protocol
{
  public:
    std::string_view name() const override { return "RB"; }
    bool broadcastsWrites() const override { return false; }

    CpuReaction onCpuAccess(LineState state, CpuOp op,
                            DataClass cls) const override;
    LineState afterBusOp(LineState state, BusOp op,
                         bool rmw_success) const override;
    SnoopReaction onSnoop(LineState state, BusOp op) const override;
    LineState afterSupply(LineState state) const override;
    bool needsWriteback(LineState state) const override;
};

} // namespace ddc

#endif // DDC_CORE_RB_HH
