#include "sim/processor.hh"

#include "base/logging.hh"

namespace ddc {

Processor::Processor(PeId pe, CacheSet caches, Program program,
                     stats::CounterSet &stats)
    : pe(pe), caches(std::move(caches)), program(std::move(program)),
      stats(stats)
{
    statStallCycles = stats.intern("pe.stall_cycles");
    statInstructions = stats.intern("pe.instructions");
    halted = this->program.empty();
}

Word
Processor::reg(int index) const
{
    ddc_assert(index >= 0 && index < kNumRegs, "register out of range");
    return regs[index];
}

void
Processor::setReg(int index, Word value)
{
    ddc_assert(index >= 0 && index < kNumRegs, "register out of range");
    regs[index] = value;
}

void
Processor::tick()
{
    if (halted)
        return;

    if (waiting) {
        if (!caches.hasCompletion()) {
            stalls++;
            stats.add(statStallCycles);
            return;
        }
        auto result = caches.takeCompletion();
        if (waitingDst >= 0)
            regs[waitingDst] = result.value;
        waiting = false;
        waitingDst = -1;
        retired++;
        stats.add(statInstructions);
        return; // Resume with the next instruction next cycle.
    }

    ddc_assert(pc < program.size(), "PE ", pe, " ran off its program");
    const Instruction &instruction = program[pc];
    execute(instruction);
}

void
Processor::skipCycles(Cycle count)
{
    // The engine only skips an agent that is stalled for the whole
    // interval; account the cycles exactly as that many ticks would.
    ddc_assert(waiting && !caches.hasCompletion(),
               "skipped a runnable processor");
    stalls += count;
    stats.add(statStallCycles, count);
}

void
Processor::execute(const Instruction &instruction)
{
    auto addr_of = [&](const Instruction &inst) {
        return static_cast<Addr>(regs[inst.a] +
                                 static_cast<Word>(inst.imm));
    };

    switch (instruction.op) {
      case Opcode::Nop:
        pc++;
        break;
      case Opcode::Halt:
        halted = true;
        break;
      case Opcode::LoadImm:
        regs[instruction.dst] = static_cast<Word>(instruction.imm);
        pc++;
        break;
      case Opcode::Move:
        regs[instruction.dst] = regs[instruction.a];
        pc++;
        break;
      case Opcode::Add:
        regs[instruction.dst] = regs[instruction.a] + regs[instruction.b];
        pc++;
        break;
      case Opcode::Sub:
        regs[instruction.dst] = regs[instruction.a] - regs[instruction.b];
        pc++;
        break;
      case Opcode::AddImm:
        regs[instruction.dst] =
            regs[instruction.a] + static_cast<Word>(instruction.imm);
        pc++;
        break;
      case Opcode::BranchIfZero:
        pc = regs[instruction.a] == 0
                 ? static_cast<std::size_t>(instruction.imm) : pc + 1;
        break;
      case Opcode::BranchIfNotZero:
        pc = regs[instruction.a] != 0
                 ? static_cast<std::size_t>(instruction.imm) : pc + 1;
        break;
      case Opcode::Jump:
        pc = static_cast<std::size_t>(instruction.imm);
        break;

      case Opcode::Load: {
        MemRef ref{CpuOp::Read, addr_of(instruction), 0, instruction.cls};
        issueMemory(instruction, ref);
        break;
      }
      case Opcode::Store: {
        MemRef ref{CpuOp::Write, addr_of(instruction),
                   regs[instruction.b], instruction.cls};
        issueMemory(instruction, ref);
        break;
      }
      case Opcode::TestAndSet: {
        MemRef ref{CpuOp::TestAndSet, addr_of(instruction),
                   regs[instruction.b], instruction.cls};
        issueMemory(instruction, ref);
        break;
      }
      case Opcode::LoadLocked: {
        MemRef ref{CpuOp::ReadLock, addr_of(instruction), 0,
                   instruction.cls};
        issueMemory(instruction, ref);
        break;
      }
      case Opcode::StoreUnlock: {
        MemRef ref{CpuOp::WriteUnlock, addr_of(instruction),
                   regs[instruction.b], instruction.cls};
        issueMemory(instruction, ref);
        break;
      }
    }

    if (instruction.op != Opcode::Load && instruction.op != Opcode::Store &&
        instruction.op != Opcode::TestAndSet &&
        instruction.op != Opcode::LoadLocked &&
        instruction.op != Opcode::StoreUnlock) {
        retired++;
        stats.add(statInstructions);
    }
}

void
Processor::issueMemory(const Instruction &instruction, const MemRef &ref)
{
    bool loads = instruction.op == Opcode::Load ||
                 instruction.op == Opcode::TestAndSet ||
                 instruction.op == Opcode::LoadLocked;

    auto result = caches.access(ref);
    pc++;
    if (result.complete) {
        if (loads)
            regs[instruction.dst] = result.value;
        retired++;
        stats.add(statInstructions);
        return;
    }
    waiting = true;
    waitingDst = loads ? instruction.dst : -1;
    stalls++;
    stats.add(statStallCycles);
}

} // namespace ddc
