#!/usr/bin/env bash
# Build everything, run the full test suite, and regenerate every
# paper table/figure + ablation, capturing the outputs the way
# EXPERIMENTS.md documents them.
#
# Sweep points run through the parallel experiment engine (src/exp)
# with --jobs $(nproc); the engine guarantees output is byte-identical
# to a serial run.  Each bench also emits structured results as
# <build>/bench/<name>.results.json, and the per-bench files are
# merged into BENCH_RESULTS.json at the repo root.
#
#   scripts/reproduce_all.sh [build-dir]

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
jobs="$(nproc 2>/dev/null || echo 1)"

cmake -B "$build_dir" -G Ninja -S "$repo_root"
cmake --build "$build_dir"

ctest --test-dir "$build_dir" --output-on-failure 2>&1 \
    | tee "$repo_root/test_output.txt"

: > "$repo_root/bench_output.txt"
json_files=()
for bench in "$build_dir"/bench/*; do
    [ -x "$bench" ] || continue
    name="$(basename "$bench")"
    json="$build_dir/bench/$name.results.json"
    echo "===== $name =====" >> "$repo_root/bench_output.txt"
    # perf_throughput, perf_parallel, and perf_directory measure the
    # simulator's own wall-clock speed; pin them to one worker so
    # points never compete for cores (EXPERIMENTS.md methodology).
    # perf_parallel's own shards axis then owns every host thread of
    # each timed point.
    bench_jobs="$jobs"
    case "$name" in
        perf_throughput|perf_parallel|perf_directory) bench_jobs=1 ;;
    esac
    "$bench" --jobs "$bench_jobs" --json "$json" \
        >> "$repo_root/bench_output.txt" 2>&1
    json_files+=("$json")
done

# One small traced + histogrammed point through the CLI, then check
# the emitted Chrome trace is well-formed (sorted timestamps, balanced
# span pairs) so a Perfetto regression is caught here, not at load
# time.
"$build_dir/tools/ddcsim" --workload producer_consumer --protocol RWB \
    --pes 4 --refs 2000 --trace-out "$build_dir/sample_trace.json" \
    --histograms --json "$build_dir/sample_trace_results.json" \
    >> "$repo_root/bench_output.txt"
python3 "$repo_root/scripts/validate_trace.py" \
    "$build_dir/sample_trace.json"

# Merge the per-bench result files into one top-level document:
# {"schema": 5, "benches": {"<name>": <per-bench document>, ...}}
merged="$repo_root/BENCH_RESULTS.json"
{
    printf '{\n  "schema": 5,\n  "benches": {\n'
    first=1
    for json in "${json_files[@]}"; do
        name="$(basename "$json" .results.json)"
        [ "$first" -eq 1 ] || printf ',\n'
        first=0
        # Re-indent the per-bench document to nest under "benches".
        doc="$(sed '1!s/^/    /' "$json")"
        printf '    "%s": %s' "$name" "$doc"
    done
    printf '\n  }\n}\n'
} > "$merged"

echo "Done: test_output.txt, bench_output.txt, BENCH_RESULTS.json"
