/**
 * @file
 * Serial-consistency checking of execution logs.
 *
 * Section 4 defines consistency as: "a read by a processor will always
 * fetch the 'latest' value written", where "latest" refers to a serial
 * execution order consistent with the parallel one.  The simulator
 * emits exactly that serial order (the bus serializes all inter-PE
 * interaction); this checker replays the log against a flat memory
 * model and flags any read that observed anything but the latest
 * write, plus any test-and-set whose outcome contradicts the value it
 * observed.
 */

#ifndef DDC_VERIFY_CONSISTENCY_HH
#define DDC_VERIFY_CONSISTENCY_HH

#include <string>
#include <vector>

#include "sim/exec_log.hh"
#include "sim/system.hh"

namespace ddc {

/** Outcome of a consistency check. */
struct ConsistencyReport
{
    bool consistent = true;
    /** Number of violating log entries. */
    std::size_t violations = 0;
    /** Human-readable description of the first violation. */
    std::string first_error;
};

/**
 * Replay @p log in serial order and verify every read returned the
 * latest written value and every TestAndSet outcome matches the value
 * it observed.
 */
ConsistencyReport checkSerialConsistency(const ExecutionLog &log);

/**
 * Check the configuration lemma of Section 4 on a live system, for
 * each address in @p addrs: at most one cache owns a dirty copy
 * (Local/Dirty); when an owner exists every other cache's copy is
 * invalid or absent; when none exists, memory and every present copy
 * agree on the value.
 */
ConsistencyReport checkConfigurationLemma(const System &system,
                                          const std::vector<Addr> &addrs);

} // namespace ddc

#endif // DDC_VERIFY_CONSISTENCY_HH
