#include "sync/analysis.hh"

#include "base/logging.hh"

namespace ddc {
namespace sync {

double
LockAnalysis::fairnessIndex() const
{
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::uint64_t count : per_pe) {
        auto x = static_cast<double>(count);
        sum += x;
        sum_sq += x * x;
    }
    if (sum_sq == 0.0)
        return 1.0;
    return sum * sum / (static_cast<double>(per_pe.size()) * sum_sq);
}

LockAnalysis
analyzeLock(const ExecutionLog &log, Addr lock_addr, int num_pes)
{
    ddc_assert(num_pes >= 1, "need at least one PE");

    LockAnalysis analysis;
    analysis.per_pe.assign(static_cast<std::size_t>(num_pes), 0);

    bool held = false;
    PeId holder = kNoPe;
    Cycle acquired_at = 0;
    bool have_release = false;
    Cycle released_at = 0;

    for (const LogEntry &entry : log.all()) {
        if (entry.addr != lock_addr)
            continue;

        switch (entry.op) {
          case CpuOp::TestAndSet:
            if (entry.ts_success) {
                analysis.acquisitions++;
                if (entry.pe >= 0 && entry.pe < num_pes)
                    analysis.per_pe[static_cast<std::size_t>(
                        entry.pe)]++;
                if (have_release) {
                    analysis.handoff_cycles.sample(entry.cycle -
                                                   released_at);
                    have_release = false;
                }
                held = true;
                holder = entry.pe;
                acquired_at = entry.cycle;
            } else {
                analysis.failed_attempts++;
            }
            break;

          case CpuOp::Write:
          case CpuOp::WriteUnlock:
            if (held && entry.pe == holder && entry.value == 0) {
                analysis.hold_cycles.sample(entry.cycle - acquired_at);
                held = false;
                have_release = true;
                released_at = entry.cycle;
            }
            break;

          default:
            break;
        }
    }
    return analysis;
}

} // namespace sync
} // namespace ddc
