/**
 * @file
 * Fatal/panic/warn helpers in the gem5 tradition.
 *
 * panic() flags an internal simulator bug (aborts); fatal() flags a user
 * configuration error (clean exit with an error code); warn() reports a
 * suspicious-but-survivable condition (e.g. a run hitting its cycle
 * limit).  All three serialize their output under one mutex so lines
 * never interleave when experiment workers log concurrently.
 */

#ifndef DDC_BASE_LOGGING_HH
#define DDC_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace ddc {

/** Abort with a message; use for conditions that indicate a ddcache bug. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &message);

/** Exit(1) with a message; use for user configuration errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &message);

/** Print a warning line to stderr (thread-safe, never interleaved). */
void warnImpl(const char *file, int line, const std::string &message);

namespace detail {

/** Build a message string from stream-style arguments. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace ddc

#define ddc_panic(...) \
    ::ddc::panicImpl(__FILE__, __LINE__, \
                     ::ddc::detail::formatMessage(__VA_ARGS__))

#define ddc_fatal(...) \
    ::ddc::fatalImpl(__FILE__, __LINE__, \
                     ::ddc::detail::formatMessage(__VA_ARGS__))

#define ddc_warn(...) \
    ::ddc::warnImpl(__FILE__, __LINE__, \
                    ::ddc::detail::formatMessage(__VA_ARGS__))

/** Assert an internal invariant; always checked (not tied to NDEBUG). */
#define ddc_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::ddc::panicImpl(__FILE__, __LINE__, \
                ::ddc::detail::formatMessage("assertion failed: " #cond " ", \
                                             ##__VA_ARGS__)); \
        } \
    } while (false)

#endif // DDC_BASE_LOGGING_HH
