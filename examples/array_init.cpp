/**
 * @file
 * Array initialization (Section 5's motivating example for RWB):
 * each PE initializes a large shared array region, far bigger than
 * its cache.  RB pays two bus writes per element (write-through, then
 * write-back on eviction); RWB pays exactly one (First-write lines
 * are clean).
 *
 *   ./array_init
 */

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

using namespace ddc;

int
main()
{
    std::cout << "=== Array initialization: RB vs RWB ===\n\n";

    const int num_pes = 4;
    const std::size_t cache_lines = 256;

    stats::Table table;
    table.setHeader({"elements/PE", "scheme", "bus writes", "write-backs",
                     "bus writes/element", "cycles"});

    for (std::uint64_t elements : {128u, 512u, 2048u}) {
        auto trace = makeArrayInitTrace(num_pes, elements);
        for (auto kind : {ProtocolKind::Rb, ProtocolKind::Rwb}) {
            SystemConfig config;
            config.num_pes = num_pes;
            config.cache_lines = cache_lines;
            config.protocol = kind;
            auto summary = runTrace(config, trace);

            double per_element =
                static_cast<double>(summary.counters.get("bus.write")) /
                static_cast<double>(num_pes * elements);
            table.addRow({std::to_string(elements),
                          std::string(toString(kind)),
                          std::to_string(summary.counters.get("bus.write")),
                          std::to_string(
                              summary.counters.get("cache.writeback")),
                          stats::Table::num(per_element, 2),
                          std::to_string(summary.cycles)});
        }
        table.addSeparator();
    }
    std::cout << table.render() << "\n";
    std::cout
        << "With a " << cache_lines << "-line cache, RB converges to 2\n"
        << "bus writes per element as the array grows (every element is\n"
        << "eventually evicted from Local and written back), while RWB\n"
        << "stays at exactly 1: 'In RWB, there will be only one bus\n"
        << "write per item.' (Section 5)\n";
    return 0;
}
