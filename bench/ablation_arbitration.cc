/**
 * @file
 * Ablation A6: bus arbitration policy (the paper's assumption 2 just
 * posits "a bus arbitrator"; this quantifies how much the choice
 * matters).  Round-robin, fixed-priority, and random arbitration are
 * compared on (a) lock fairness under contention — fixed priority
 * starves high-index PEs — and (b) throughput on a mixed workload —
 * where the policy barely matters because the protocols keep the bus
 * demand far below the hot-spot regime.
 */

#include "bench_common.hh"

#include <algorithm>
#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "sync/analysis.hh"
#include "sync/workload.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

void
printReproduction()
{
    using stats::Table;

    std::cout <<
        "Ablation A6: bus arbitration policy\n\n"
        "(a) Lock fairness: 8 PEs, TS spin lock on RB, 8 acquisitions\n"
        "wanted per PE; Jain fairness index of the per-PE acquisition\n"
        "counts over the first completed run.\n\n";

    Table fairness;
    fairness.setHeader({"arbiter", "cycles", "fairness index",
                        "first PE done", "last PE done"});
    for (auto kind : {ArbiterKind::RoundRobin, ArbiterKind::FixedPriority,
                      ArbiterKind::Random}) {
        SystemConfig config;
        config.num_pes = 8;
        config.cache_lines = 256;
        config.protocol = ProtocolKind::Rb;
        config.arbiter = kind;
        config.record_log = true;

        System system(config);
        for (PeId pe = 0; pe < 8; pe++) {
            sync::LockProgramParams params;
            params.kind = sync::LockKind::TestAndSet;
            params.lock_addr = sync::lockAddr();
            params.counter_addr = sync::counterAddr();
            params.acquisitions = 8;
            params.cs_increments = 8;
            system.setProgram(pe, sync::makeLockProgram(params));
        }
        Cycle cycles = system.run();

        auto analysis = sync::analyzeLock(system.log(), sync::lockAddr(),
                                          8);

        // Per-PE finish skew: cycle of each PE's last committed access.
        std::vector<Cycle> last_cycle(8, 0);
        for (const auto &entry : system.log().all()) {
            if (entry.pe >= 0 && entry.pe < 8)
                last_cycle[static_cast<std::size_t>(entry.pe)] =
                    entry.cycle;
        }
        Cycle first_done = *std::min_element(last_cycle.begin(),
                                             last_cycle.end());
        Cycle last_done = *std::max_element(last_cycle.begin(),
                                            last_cycle.end());
        fairness.addRow({std::string(toString(kind)),
                         std::to_string(cycles),
                         Table::num(analysis.fairnessIndex(), 3),
                         std::to_string(first_done),
                         std::to_string(last_done)});
    }
    std::cout << fairness.render() << "\n";

    std::cout << "(b) Throughput on the Cm*-mix workload (16 PEs, RB):\n\n";
    Table throughput;
    throughput.setHeader({"arbiter", "cycles", "bus utilization"});
    auto trace = makeCmStarTrace(cmStarApplicationA(), 16, 4000, 3);
    for (auto kind : {ArbiterKind::RoundRobin, ArbiterKind::FixedPriority,
                      ArbiterKind::Random}) {
        SystemConfig config;
        config.num_pes = 16;
        config.cache_lines = 1024;
        config.protocol = ProtocolKind::Rb;
        config.arbiter = kind;
        auto summary = runTrace(config, trace);
        throughput.addRow(
            {std::string(toString(kind)),
             std::to_string(summary.cycles),
             Table::num(static_cast<double>(summary.bus_transactions) /
                            static_cast<double>(summary.cycles), 3)});
    }
    std::cout << throughput.render() << "\n";
    std::cout <<
        "Expected shape: all runs complete (every acquisition count is\n"
        "8 - the programs run to completion, so 'starvation' appears as\n"
        "runtime skew, not lost acquisitions); fairness of the\n"
        "*interleaving* differs, and fixed priority lets low-index PEs\n"
        "finish far earlier.  Mixed-workload throughput is nearly\n"
        "arbiter-independent.\n\n";
}

void
BM_ArbitrationLockRun(benchmark::State &state)
{
    const ArbiterKind kinds[] = {ArbiterKind::RoundRobin,
                                 ArbiterKind::FixedPriority,
                                 ArbiterKind::Random};
    auto kind = kinds[static_cast<std::size_t>(state.range(0))];
    for (auto _ : state) {
        sync::LockExperimentConfig config;
        config.num_pes = 8;
        config.lock = sync::LockKind::TestAndSet;
        config.protocol = ProtocolKind::Rb;
        config.acquisitions_per_pe = 8;
        auto result = sync::runLockExperiment(config);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetLabel(std::string(toString(kind)));
}
BENCHMARK(BM_ArbitrationLockRun)->DenseRange(0, 2)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
