/**
 * @file
 * Unit tests for the simulation kernel (sim/kernel.hh) against stub
 * agents: tick ordering, the quiescent-skip window (minimum of every
 * shard's nextEventCycle), budget clamping, stall-skip flushing,
 * shard id / random-stream assignment, the parallel-lane barrier, and
 * the conservative-lookahead windows (multi-cycle parallel phases
 * composed with quiescent skip, stall accrual, and the wake flag).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/clock.hh"
#include "sim/kernel.hh"
#include "sim/shard.hh"
#include "trace/rng.hh"

namespace ddc {
namespace {

/** Ticks @p work times, then done; always runnable. */
class CountingAgent : public Agent
{
  public:
    explicit CountingAgent(int work) : remaining(work) {}

    void
    tick() override
    {
        ticks++;
        if (remaining > 0)
            remaining--;
    }

    bool done() const override { return remaining == 0; }

    int ticks = 0;

  private:
    int remaining;
};

/** Self-timed: idle until cycle @p wake_at, then one tick of work. */
class WaiterAgent : public Agent
{
  public:
    WaiterAgent(const Clock &clock, Cycle wake_at)
        : clock(clock), wakeAt(wake_at)
    {}

    void
    tick() override
    {
        if (clock.now >= wakeAt)
            finished = true;
    }

    bool done() const override { return finished; }

    Cycle
    nextEventCycle(Cycle now) const override
    {
        return now >= wakeAt ? now : wakeAt;
    }

    void skipCycles(Cycle count) override { skipped += count; }

    Cycle skipped = 0;

  private:
    const Clock &clock;
    Cycle wakeAt;
    bool finished = false;
};

/** Blocked forever on another component (nextEventCycle = kNever). */
class BlockedAgent : public Agent
{
  public:
    void tick() override {}
    bool done() const override { return false; }
    Cycle nextEventCycle(Cycle) const override { return kNever; }
    void skipCycles(Cycle count) override { skipped += count; }

    Cycle skipped = 0;
};

/** Stalls on completion after its first tick; counts stall cycles. */
class StallingAgent : public Agent
{
  public:
    void
    tick() override
    {
        ticks++;
        issued = true;
    }

    bool done() const override { return false; }
    bool stalledOnCompletion() const override { return issued; }
    void addStallCycles(Cycle count) override { stallCycles += count; }

    int ticks = 0;
    Cycle stallCycles = 0;

  private:
    bool issued = false;
};

TEST(Kernel, ShardIdsFollowCreationOrderAndSeedTheStreams)
{
    Clock clock;
    Kernel kernel(clock, KernelConfig{});
    Shard &serial = kernel.makeSerialShard(100, 0);
    Shard &first = kernel.makeShard(100, 1);
    Shard &second = kernel.makeShard(100, 1);
    EXPECT_EQ(serial.id(), 0);
    EXPECT_EQ(first.id(), 1);
    EXPECT_EQ(second.id(), 2);
    EXPECT_EQ(serial.rng().streamSeed(), 100u ^ 0u);
    EXPECT_EQ(first.rng().at(5), StreamRng::forShard(100, 1).at(5));
    EXPECT_EQ(second.rng().at(5), StreamRng::forShard(100, 2).at(5));
    EXPECT_NE(first.rng().at(5), second.rng().at(5));
}

TEST(Kernel, RunsAgentsToCompletion)
{
    Clock clock;
    Kernel kernel(clock, KernelConfig{});
    Shard &shard = kernel.makeShard(1, 2);
    CountingAgent fast(5);
    CountingAgent slow(12);
    shard.setAgent(0, &fast);
    shard.setAgent(1, &slow);
    shard.rebuild();

    EXPECT_FALSE(kernel.allDone());
    EXPECT_EQ(kernel.run(1000), RunStatus::Finished);
    EXPECT_TRUE(kernel.allDone());
    EXPECT_EQ(clock.now, 12u);
    // A finished agent is dropped from the tick list, not re-ticked.
    EXPECT_EQ(fast.ticks, 5);
    EXPECT_EQ(slow.ticks, 12);
}

TEST(Kernel, QuiescentWindowIsTheMinimumAcrossShards)
{
    Clock clock;
    Kernel kernel(clock, KernelConfig{});
    Shard &a = kernel.makeShard(1, 1);
    Shard &b = kernel.makeShard(1, 1);
    WaiterAgent late(clock, 10);
    WaiterAgent early(clock, 5);
    a.setAgent(0, &late);
    b.setAgent(0, &early);
    a.rebuild();
    b.rebuild();

    EXPECT_EQ(kernel.run(1000), RunStatus::Finished);
    // Skip to 5 (the earlier waiter), tick, skip 6..9, tick: only the
    // two tick cycles are actually executed.
    EXPECT_EQ(clock.now, 11u);
    EXPECT_EQ(kernel.skippedCycles(), 9u);
    EXPECT_EQ(late.skipped, 9u);
    EXPECT_EQ(early.skipped, 5u);
}

TEST(Kernel, SkipDisabledTicksEveryCycle)
{
    Clock clock;
    KernelConfig config;
    config.skip_quiescent = false;
    Kernel kernel(clock, config);
    Shard &shard = kernel.makeShard(1, 1);
    WaiterAgent waiter(clock, 20);
    shard.setAgent(0, &waiter);
    shard.rebuild();

    EXPECT_EQ(kernel.run(1000), RunStatus::Finished);
    EXPECT_EQ(clock.now, 21u);
    EXPECT_EQ(kernel.skippedCycles(), 0u);
    EXPECT_EQ(waiter.skipped, 0u);
}

TEST(Kernel, BlockedMachineFastForwardsToTheBudget)
{
    Clock clock;
    Kernel kernel(clock, KernelConfig{});
    Shard &shard = kernel.makeShard(1, 1);
    BlockedAgent blocked;
    shard.setAgent(0, &blocked);
    shard.rebuild();

    EXPECT_EQ(kernel.run(100), RunStatus::TimedOut);
    // The skip clamps to the budget and reports the wall cycle.
    EXPECT_EQ(clock.now, 100u);
    EXPECT_EQ(kernel.skippedCycles(), 100u);
    EXPECT_EQ(blocked.skipped, 100u);
    EXPECT_FALSE(kernel.allDone());
}

TEST(Kernel, StallSkipAccruesAndFlushes)
{
    Clock clock;
    Kernel kernel(clock, KernelConfig{});
    Shard &shard = kernel.makeShard(1, 2);
    StallingAgent stalling;
    CountingAgent busy(10); // keeps the machine non-quiescent
    shard.setAgent(0, &stalling);
    shard.setAgent(1, &busy);
    shard.rebuild();

    EXPECT_EQ(kernel.run(10), RunStatus::TimedOut);
    // Ticked once (cycle 0), then skipped while stalled for cycles
    // 1..9; run() flushes the accrued stalls before returning.
    EXPECT_EQ(stalling.ticks, 1);
    EXPECT_EQ(stalling.stallCycles, 9u);
    // Flushing again owes nothing.
    kernel.flushStalls();
    EXPECT_EQ(stalling.stallCycles, 9u);
}

TEST(Kernel, StalledAgentWakesOnTheFlag)
{
    Clock clock;
    Kernel kernel(clock, KernelConfig{});
    Shard &shard = kernel.makeShard(1, 2);
    StallingAgent stalling;
    CountingAgent busy(4);
    shard.setAgent(0, &stalling);
    shard.setAgent(1, &busy);
    shard.rebuild();

    EXPECT_EQ(kernel.run(3), RunStatus::TimedOut);
    EXPECT_EQ(stalling.ticks, 1);
    // The completion arrives: the accrued stalls land before the next
    // tick, then the agent stalls again on its re-issued access.
    *shard.wakeFlag(0) = 1;
    kernel.tickOnce();
    EXPECT_EQ(stalling.ticks, 2);
    EXPECT_EQ(stalling.stallCycles, 2u);
}

TEST(Kernel, TickOrderIsSerialThenShardsInIdOrder)
{
    Clock clock;
    Kernel kernel(clock, KernelConfig{});
    std::vector<int> order;

    /** Appends its tag to the shared order log on each tick. */
    class TaggedAgent : public Agent
    {
      public:
        TaggedAgent(std::vector<int> &order, int tag, int work)
            : order(order), tag(tag), remaining(work)
        {}

        void
        tick() override
        {
            order.push_back(tag);
            remaining--;
        }

        bool done() const override { return remaining == 0; }

      private:
        std::vector<int> &order;
        int tag;
        int remaining;
    };

    Shard &serial = kernel.makeSerialShard(1, 1);
    Shard &first = kernel.makeShard(1, 1);
    Shard &second = kernel.makeShard(1, 1);
    TaggedAgent a(order, 0, 2), b(order, 1, 2), c(order, 2, 2);
    serial.setAgent(0, &a);
    first.setAgent(0, &b);
    second.setAgent(0, &c);
    serial.rebuild();
    first.rebuild();
    second.rebuild();

    EXPECT_EQ(kernel.run(100), RunStatus::Finished);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(Kernel, WorkerLanesClampToTheShardCount)
{
    Clock clock;
    KernelConfig config;
    config.shards = 8;
    {
        Kernel kernel(clock, config);
        kernel.makeShard(1, 1);
        kernel.makeShard(1, 1);
        kernel.makeShard(1, 1);
        EXPECT_EQ(kernel.workerLanes(), 3);
        kernel.forceSequential();
        EXPECT_EQ(kernel.workerLanes(), 1);
    }
    {
        // A single parallel shard never pays for a pool.
        Kernel kernel(clock, config);
        kernel.makeShard(1, 1);
        EXPECT_EQ(kernel.workerLanes(), 1);
    }
}

TEST(Kernel, ParallelLanesTickEveryShardOncePerCycle)
{
    for (bool deterministic : {true, false}) {
        Clock clock;
        KernelConfig config;
        config.shards = 4;
        config.deterministic = deterministic;
        Kernel kernel(clock, config);
        Shard &serial = kernel.makeSerialShard(1, 1);
        CountingAgent coordinator(50);
        serial.setAgent(0, &coordinator);
        serial.rebuild();
        std::vector<std::unique_ptr<CountingAgent>> agents;
        for (int s = 0; s < 4; s++) {
            Shard &shard = kernel.makeShard(1, 1);
            agents.push_back(
                std::make_unique<CountingAgent>(40 + 10 * s));
            shard.setAgent(0, agents.back().get());
            shard.rebuild();
        }
        EXPECT_EQ(kernel.workerLanes(), 4);

        EXPECT_EQ(kernel.run(1000), RunStatus::Finished);
        EXPECT_EQ(clock.now, 70u);
        EXPECT_EQ(coordinator.ticks, 50);
        for (int s = 0; s < 4; s++) {
            EXPECT_EQ(agents[static_cast<std::size_t>(s)]->ticks,
                      40 + 10 * s)
                << "shard " << s
                << (deterministic ? " (static)" : " (dynamic)");
        }
    }
}

/**
 * Lookahead-capable worker: always runnable, ticks @p work times,
 * then done.  Never reads the kernel clock (windows tick it with the
 * clock frozen at the window base) and bounds its completion cycle,
 * so multi-cycle windows can form around it.
 */
class WindowedAgent : public Agent
{
  public:
    explicit WindowedAgent(int work) : remaining(work) {}

    void
    tick() override
    {
        ticks++;
        if (remaining > 0)
            remaining--;
    }

    bool done() const override { return remaining == 0; }

    Cycle
    earliestDoneCycle(Cycle now) const override
    {
        return remaining > 1
            ? now + static_cast<Cycle>(remaining) - 1 : now;
    }

    int ticks = 0;

  private:
    int remaining;
};

/**
 * Lookahead-capable self-timed waiter: event-free until cycle
 * @p wake_at, one tick of work there, done.  Tracks its own cycle
 * position through ticks and skips instead of reading the clock.
 */
class WindowWaiterAgent : public Agent
{
  public:
    explicit WindowWaiterAgent(Cycle wake_at) : wakeAt(wake_at) {}

    void
    tick() override
    {
        if (lived >= wakeAt)
            finished = true;
        lived++;
    }

    bool done() const override { return finished; }

    Cycle
    nextEventCycle(Cycle now) const override
    {
        return now >= wakeAt ? now : wakeAt;
    }

    Cycle
    earliestDoneCycle(Cycle now) const override
    {
        return std::max(now, wakeAt);
    }

    void
    skipCycles(Cycle count) override
    {
        lived += count;
        skipped += count;
    }

    Cycle skipped = 0;

  private:
    Cycle wakeAt;
    Cycle lived = 0;
    bool finished = false;
};

/**
 * Lookahead-capable staller: stalls on a never-completing access
 * after its first tick until the wake flag is raised externally, then
 * finishes on its second tick.  Skipped stall cycles must land in
 * stallCycles whether they arrive tick-by-tick (addStallCycles) or in
 * bulk (skipCycles), exactly like a trace agent's stall counter.
 */
class WindowStallAgent : public Agent
{
  public:
    void
    tick() override
    {
        ticks++;
        if (ticks >= 2)
            finished = true;
        issued = true;
    }

    bool done() const override { return finished; }

    bool
    stalledOnCompletion() const override
    {
        return issued && !finished;
    }

    Cycle
    earliestDoneCycle(Cycle) const override
    {
        return kNever;
    }

    void addStallCycles(Cycle count) override { stallCycles += count; }
    void skipCycles(Cycle count) override { stallCycles += count; }

    int ticks = 0;
    Cycle stallCycles = 0;

  private:
    bool issued = false;
    bool finished = false;
};

TEST(Kernel, LookaheadBatchesCyclesBetweenBarriers)
{
    // Two always-runnable shards that bound their completion: every
    // parallel phase may cover two cycles (each shard's next global
    // emission is one cycle out, observed serially one cycle later),
    // so 30 simulated cycles cost 15 barriers — and with lookahead
    // disabled the same run pays one barrier per cycle, with every
    // simulation observable unchanged.
    for (bool lookahead : {true, false}) {
        Clock clock;
        KernelConfig config;
        config.shards = 2;
        config.lookahead = lookahead;
        Kernel kernel(clock, config);
        Shard &a = kernel.makeShard(1, 1);
        Shard &b = kernel.makeShard(1, 1);
        WindowedAgent slow(30), fast(20);
        a.setAgent(0, &slow);
        b.setAgent(0, &fast);
        a.rebuild();
        b.rebuild();

        EXPECT_EQ(kernel.run(1000), RunStatus::Finished);
        EXPECT_EQ(clock.now, 30u);
        EXPECT_EQ(slow.ticks, 30);
        EXPECT_EQ(fast.ticks, 20);
        EXPECT_EQ(kernel.skippedCycles(), 0u);
        if (lookahead) {
            EXPECT_EQ(kernel.barrierEpochs(), 15u);
            EXPECT_DOUBLE_EQ(kernel.meanLookaheadWindow(), 2.0);
        } else {
            EXPECT_EQ(kernel.barrierEpochs(), 30u);
            EXPECT_DOUBLE_EQ(kernel.meanLookaheadWindow(), 1.0);
        }
    }
}

TEST(Kernel, LookaheadComposesQuiescentSkipInsideWindows)
{
    // A busy shard drives 2-cycle windows while the waiter shard is
    // quiescent until cycle 9: the waiter's idle stretch is skipped
    // *inside* each window (shard-local next-event advance), but no
    // whole-machine cycle was quiescent, so skippedCycles stays 0 —
    // exactly the sequential accounting.
    Clock clock;
    KernelConfig config;
    config.shards = 2;
    Kernel kernel(clock, config);
    Shard &a = kernel.makeShard(1, 1);
    Shard &b = kernel.makeShard(1, 1);
    WindowedAgent busy(12);
    WindowWaiterAgent waiter(9);
    a.setAgent(0, &busy);
    b.setAgent(0, &waiter);
    a.rebuild();
    b.rebuild();

    EXPECT_EQ(kernel.run(1000), RunStatus::Finished);
    EXPECT_EQ(clock.now, 12u);
    EXPECT_EQ(busy.ticks, 12);
    EXPECT_EQ(waiter.skipped, 9u);
    EXPECT_EQ(kernel.skippedCycles(), 0u);
    EXPECT_EQ(kernel.barrierEpochs(), 6u);
    EXPECT_DOUBLE_EQ(kernel.meanLookaheadWindow(), 2.0);
}

TEST(Kernel, LookaheadCountsMachineWideQuiescenceOnceEverywhere)
{
    // Cycle 1 sits inside a 2-cycle window with *both* shards
    // quiescent; the sequential run would have covered it with a
    // whole-machine skip, so the window accounting must land it in
    // skippedCycles too.  Cycles 2..4 are skipped by the ordinary
    // outer engine between barriers.
    Clock clock;
    KernelConfig config;
    config.shards = 2;
    Kernel kernel(clock, config);
    Shard &a = kernel.makeShard(1, 1);
    Shard &b = kernel.makeShard(1, 1);
    WindowedAgent burst(1);
    WindowWaiterAgent waiter(5);
    a.setAgent(0, &burst);
    b.setAgent(0, &waiter);
    a.rebuild();
    b.rebuild();

    EXPECT_EQ(kernel.run(1000), RunStatus::Finished);
    // Window [0,2): burst ticks at 0, everything idle at 1 (counted
    // skipped); outer skip covers 2..4; window [5,6) runs the waiter.
    EXPECT_EQ(clock.now, 6u);
    EXPECT_EQ(burst.ticks, 1);
    EXPECT_EQ(kernel.skippedCycles(), 4u);
    EXPECT_EQ(kernel.barrierEpochs(), 2u);
}

TEST(Kernel, LookaheadWindowsAccrueStallsAndHonorTheWake)
{
    // The staller ticks once and stalls; its shard turns quiescent,
    // so windows skip it in bulk — the bulk skip must account stall
    // cycles exactly as ticking through the stall would have.  After
    // the external wake it finishes on its next tick, still under
    // multi-cycle windows.
    Clock clock;
    KernelConfig config;
    config.shards = 2;
    Kernel kernel(clock, config);
    Shard &a = kernel.makeShard(1, 1);
    Shard &b = kernel.makeShard(1, 1);
    WindowStallAgent stalling;
    WindowedAgent busy(20);
    a.setAgent(0, &stalling);
    b.setAgent(0, &busy);
    a.rebuild();
    b.rebuild();

    EXPECT_EQ(kernel.run(6), RunStatus::TimedOut);
    EXPECT_EQ(clock.now, 6u);
    EXPECT_EQ(stalling.ticks, 1);
    EXPECT_EQ(stalling.stallCycles, 5u);
    EXPECT_EQ(kernel.barrierEpochs(), 3u);

    // The completion arrives: the agent wakes inside the next window
    // and finishes; the busy shard runs out its remaining work.
    *a.wakeFlag(0) = 1;
    EXPECT_EQ(kernel.run(100), RunStatus::Finished);
    EXPECT_EQ(clock.now, 20u);
    EXPECT_EQ(stalling.ticks, 2);
    EXPECT_EQ(stalling.stallCycles, 5u);
    EXPECT_EQ(busy.ticks, 20);
    EXPECT_EQ(kernel.skippedCycles(), 0u);
    EXPECT_DOUBLE_EQ(kernel.meanLookaheadWindow(), 2.0);
}

TEST(Kernel, ParallelRunSurvivesRepeatedRuns)
{
    // The persistent pool must serve a second run() (epoch watermarks
    // carry across) after agents are reinstalled.
    Clock clock;
    KernelConfig config;
    config.shards = 2;
    Kernel kernel(clock, config);
    Shard &a = kernel.makeShard(1, 1);
    Shard &b = kernel.makeShard(1, 1);
    CountingAgent first(30), second(25);
    a.setAgent(0, &first);
    b.setAgent(0, &second);
    a.rebuild();
    b.rebuild();
    EXPECT_EQ(kernel.run(1000), RunStatus::Finished);
    EXPECT_EQ(clock.now, 30u);

    CountingAgent third(15), fourth(20);
    a.setAgent(0, &third);
    b.setAgent(0, &fourth);
    a.rebuild();
    b.rebuild();
    EXPECT_EQ(kernel.run(1000), RunStatus::Finished);
    EXPECT_EQ(clock.now, 50u);
    EXPECT_EQ(third.ticks, 15);
    EXPECT_EQ(fourth.ticks, 20);
}

} // namespace
} // namespace ddc
