/**
 * @file
 * Simulator throughput microbench: host wall-clock performance of the
 * simulator itself (simulated cycles/s and refs/s), not a paper
 * reproduction.  Two grids:
 *
 *  - trace replay: every protocol x PE count on the Cm* application
 *    mix (the paper's representative reference pattern);
 *  - snoop-filter PE scaling: the Cm* mix at P = 4..64 with the
 *    sharer-indexed snoop filter on vs off, with snoop-visit counts
 *    alongside the throughput (the filter makes broadcast and the
 *    supplier scan O(holders) instead of O(P), so the speedup grows
 *    with P; run with --no-snoop-filter to force every point to the
 *    full-scan baseline);
 *  - lock contention: TS vs TTS spin workloads (the hot-path
 *    stressor -- every spin exercises the bus arbitration and RMW
 *    machinery);
 *  - idle-heavy scenarios: the lock workloads under a memory-latency
 *    sweep, where PEs spend most cycles stalled behind multi-cycle
 *    transfers -- the regime the quiescent-skip engine collapses.
 *    Rows report the skipped-cycle fraction next to the throughput
 *    (run with --no-skip to measure the cycle-by-cycle baseline).
 *
 * Unlike the reproduction benches this binary's output is host-
 * dependent by design: it forces --timing on, so its JSON rows carry
 * wall_time_ms / sim_cycles_per_sec.  Methodology (EXPERIMENTS.md):
 * measure on a Release build with --jobs 1 so points never compete
 * for cores.
 */

#include "bench_common.hh"

#include <iostream>
#include <iterator>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "sync/workload.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

const int kPeCounts[] = {4, 16};
/** PE axis of the snoop-filter scaling family. */
const int kScalePeCounts[] = {4, 8, 16, 32, 64};
/** Timing reps per scaling point (the table keeps the best). */
constexpr std::size_t kScaleReps = 3;
const sync::LockKind kLocks[] = {sync::LockKind::TestAndSet,
                                 sync::LockKind::TestAndTestAndSet};
/** Memory-latency sweep of the idle-heavy scenario family. */
const std::size_t kIdleLatencies[] = {0, 16, 64};
constexpr std::size_t kRefsPerPe = 20000;

/** Mcycles/s (or Mrefs/s) with two decimals, "-" when unmeasured. */
std::string
perMega(double per_sec)
{
    if (per_sec <= 0.0)
        return "-";
    return stats::Table::num(per_sec / 1e6, 2);
}

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Perf: simulator throughput (host wall-clock; higher is\n"
        "better).  Numbers are machine-dependent -- compare only\n"
        "against the same host and build type.\n\n";

    auto kinds = allProtocolKinds();

    exp::ParamGrid trace_grid;
    {
        std::vector<std::string> protocols;
        for (auto kind : kinds)
            protocols.push_back(std::string(toString(kind)));
        trace_grid.axis("protocol", protocols);
        trace_grid.axis("pes", {"4", "16"});
    }

    exp::Experiment trace_spec(
        "perf_trace_throughput",
        "Simulator throughput on the Cm* application mix, by scheme "
        "and PE count");
    trace_spec.addGrid(trace_grid, [trace_grid, kinds](std::size_t flat) {
        auto indices = trace_grid.indicesAt(flat);
        exp::TraceRun run;
        run.config.num_pes = kPeCounts[indices[1]];
        run.config.cache_lines = 256;
        run.config.protocol = kinds[indices[0]];
        run.trace = makeCmStarTrace(cmStarApplicationA(),
                                    kPeCounts[indices[1]], kRefsPerPe, 5);
        return run;
    });
    const auto &trace_results = session.run(trace_spec);

    Table trace_table("Trace replay: Cm* mix, 20000 refs/PE");
    trace_table.setHeader({"protocol", "PEs", "cycles", "wall ms",
                           "Mcycles/s", "Mrefs/s"});
    std::size_t flat = 0;
    for (auto kind : kinds) {
        for (int m : kPeCounts) {
            const auto &result = trace_results[flat++];
            double refs_per_sec =
                result.wall_time_ms > 0.0
                    ? static_cast<double>(result.total_refs) /
                          (result.wall_time_ms / 1000.0)
                    : 0.0;
            trace_table.addRow({std::string(toString(kind)),
                                std::to_string(m),
                                std::to_string(result.cycles),
                                Table::num(result.wall_time_ms, 2),
                                perMega(result.sim_cycles_per_sec),
                                perMega(refs_per_sec)});
        }
    }
    std::cout << trace_table.render() << "\n";

    exp::ParamGrid scale_grid;
    scale_grid.axis("pes", {"4", "8", "16", "32", "64"});
    scale_grid.axis("snoop_filter", {"on", "off"});
    // Every point runs kScaleReps times and the table keeps the best
    // rep per arm: single wall-clock samples on a shared host swing
    // by 10%+, and min-time is the standard noise-robust estimator.
    scale_grid.axis("rep", {"0", "1", "2"});

    // Traces are generated up front: point lambdas run inside the
    // timed region, and trace synthesis would dilute the on/off
    // wall-clock ratio this family exists to measure.
    std::vector<Trace> scale_traces;
    for (int m : kScalePeCounts) {
        scale_traces.push_back(
            makeCmStarTrace(cmStarApplicationA(), m, kRefsPerPe, 5));
    }

    exp::Experiment scale_spec(
        "perf_snoop_filter_scaling",
        "Simulator throughput vs PE count on the Cm* application mix "
        "(RWB), sharer-indexed snoop filter on vs off");
    scale_spec.addGrid(scale_grid,
                       [scale_grid, &scale_traces](std::size_t flat) {
        auto indices = scale_grid.indicesAt(flat);
        exp::TraceRun run;
        run.config.num_pes = kScalePeCounts[indices[0]];
        run.config.cache_lines = 1024;
        run.config.protocol = ProtocolKind::Rwb;
        run.config.snoop_filter = indices[1] == 0;
        run.trace = scale_traces[indices[0]];
        return run;
    });
    const auto &scale_results = session.run(scale_spec);

    // Best rep (highest sim rate) of the arm starting at flat index
    // @p first; reps are the innermost axis, so they are contiguous.
    auto bestRep = [&scale_results](std::size_t first) -> const auto & {
        const auto *best = &scale_results[first];
        for (std::size_t r = 1; r < kScaleReps; r++) {
            const auto &rep = scale_results[first + r];
            if (rep.sim_cycles_per_sec > best->sim_cycles_per_sec)
                best = &rep;
        }
        return *best;
    };

    Table scale_table("Snoop-filter PE scaling: Cm* mix, RWB, "
                      "20000 refs/PE, best of 3 reps");
    scale_table.setHeader({"PEs", "cycles", "visits(on)", "visits(off)",
                           "Mcyc/s(on)", "Mcyc/s(off)", "speedup"});
    for (std::size_t i = 0; i < std::size(kScalePeCounts); i++) {
        const auto &on = bestRep(2 * kScaleReps * i);
        const auto &off = bestRep(2 * kScaleReps * i + kScaleReps);
        // Both arms simulate the same cycles, so the sim-rate ratio
        // is the sim-loop time ratio, undiluted by point setup.
        double speedup = off.sim_cycles_per_sec > 0.0
                             ? on.sim_cycles_per_sec /
                                   off.sim_cycles_per_sec
                             : 0.0;
        scale_table.addRow({std::to_string(kScalePeCounts[i]),
                            std::to_string(on.cycles),
                            std::to_string(on.snoop_visits),
                            std::to_string(off.snoop_visits),
                            perMega(on.sim_cycles_per_sec),
                            perMega(off.sim_cycles_per_sec),
                            Table::num(speedup, 2)});
    }
    std::cout << scale_table.render() << "\n";

    exp::ParamGrid lock_grid;
    lock_grid.axis("lock", {"TS", "TTS"});
    lock_grid.axis("pes", {"4", "16"});

    exp::Experiment lock_spec(
        "perf_lock_throughput",
        "Simulator throughput on the TS vs TTS contention workload "
        "(RB, 8 acquisitions/PE, 8-increment critical sections)");
    for (std::size_t point = 0; point < lock_grid.size(); point++) {
        auto indices = lock_grid.indicesAt(point);
        auto lock = kLocks[indices[0]];
        int m = kPeCounts[indices[1]];
        lock_spec.addCustom(lock_grid.paramsAt(point), [m, lock]() {
            sync::LockExperimentConfig config;
            config.num_pes = m;
            config.lock = lock;
            config.protocol = ProtocolKind::Rb;
            config.acquisitions_per_pe = 8;
            config.cs_increments = 8;
            auto lock_result = sync::runLockExperiment(config);
            exp::RunResult result;
            result.cycles = lock_result.cycles;
            result.bus_transactions = lock_result.bus_transactions;
            return result;
        });
    }
    const auto &lock_results = session.run(lock_spec);

    Table lock_table("Lock contention: RB, 8 acquisitions/PE");
    lock_table.setHeader({"lock", "PEs", "cycles", "wall ms",
                          "Mcycles/s"});
    flat = 0;
    for (auto lock : kLocks) {
        for (int m : kPeCounts) {
            const auto &result = lock_results[flat++];
            lock_table.addRow({std::string(sync::toString(lock)),
                               std::to_string(m),
                               std::to_string(result.cycles),
                               Table::num(result.wall_time_ms, 2),
                               perMega(result.sim_cycles_per_sec)});
        }
    }
    std::cout << lock_table.render() << "\n";

    exp::ParamGrid idle_grid;
    idle_grid.axis("lock", {"TS", "TTS"});
    idle_grid.axis("latency", {"0", "16", "64"});

    exp::Experiment idle_spec(
        "perf_idle_throughput",
        "Simulator throughput on idle-heavy scenarios: the lock "
        "workloads under a memory-latency sweep (RB, 16 PEs, 32 "
        "acquisitions/PE); skip_fraction is the share of cycles the "
        "quiescent-skip engine fast-forwarded");
    for (std::size_t point = 0; point < idle_grid.size(); point++) {
        auto indices = idle_grid.indicesAt(point);
        auto lock = kLocks[indices[0]];
        std::size_t latency = kIdleLatencies[indices[1]];
        idle_spec.addCustom(idle_grid.paramsAt(point), [lock, latency]() {
            sync::LockExperimentConfig config;
            config.num_pes = 16;
            config.lock = lock;
            config.protocol = ProtocolKind::Rb;
            config.acquisitions_per_pe = 32;
            config.cs_increments = 8;
            config.memory_latency = latency;
            auto lock_result = sync::runLockExperiment(config);
            exp::RunResult result;
            result.cycles = lock_result.cycles;
            result.skipped_cycles = lock_result.skipped_cycles;
            result.bus_transactions = lock_result.bus_transactions;
            return result;
        });
    }
    const auto &idle_results = session.run(idle_spec);

    Table idle_table("Idle-heavy: lock x memory latency, RB, 16 PEs");
    idle_table.setHeader({"lock", "latency", "cycles", "skip %",
                          "wall ms", "Mcycles/s"});
    flat = 0;
    for (auto lock : kLocks) {
        for (std::size_t latency : kIdleLatencies) {
            const auto &result = idle_results[flat++];
            double skip_pct =
                result.cycles > 0
                    ? 100.0 * static_cast<double>(result.skipped_cycles) /
                          static_cast<double>(result.cycles)
                    : 0.0;
            idle_table.addRow({std::string(sync::toString(lock)),
                               std::to_string(latency),
                               std::to_string(result.cycles),
                               Table::num(skip_pct, 1),
                               Table::num(result.wall_time_ms, 2),
                               perMega(result.sim_cycles_per_sec)});
        }
    }
    std::cout << idle_table.render() << "\n";
}

/** Simulated cycles per wall-clock second on the contention workload. */
void
BM_LockThroughput(benchmark::State &state)
{
    sync::LockExperimentConfig config;
    config.num_pes = static_cast<int>(state.range(0));
    config.lock = state.range(1) == 0 ? sync::LockKind::TestAndSet
                                      : sync::LockKind::TestAndTestAndSet;
    config.protocol = ProtocolKind::Rb;
    config.acquisitions_per_pe = 8;
    config.cs_increments = 8;
    double cycles = 0.0;
    for (auto _ : state) {
        auto result = sync::runLockExperiment(config);
        cycles += static_cast<double>(result.cycles);
    }
    state.counters["sim_cycles_per_sec"] =
        benchmark::Counter(cycles, benchmark::Counter::kIsRate);
    state.SetLabel(std::string(sync::toString(config.lock)));
}
BENCHMARK(BM_LockThroughput)
    ->Args({16, 0})->Args({16, 1})
    ->Unit(benchmark::kMillisecond);

/** Simulated cycles per wall-clock second on the Cm* trace replay. */
void
BM_TraceThroughput(benchmark::State &state)
{
    auto kinds = allProtocolKinds();
    auto kind = kinds[static_cast<std::size_t>(state.range(0))];
    auto trace = makeCmStarTrace(cmStarApplicationA(), 4, kRefsPerPe, 5);
    double cycles = 0.0;
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 256;
        config.protocol = kind;
        auto summary = runTrace(config, trace);
        cycles += static_cast<double>(summary.cycles);
    }
    state.counters["sim_cycles_per_sec"] =
        benchmark::Counter(cycles, benchmark::Counter::kIsRate);
    state.SetLabel(std::string(toString(kind)));
}
BENCHMARK(BM_TraceThroughput)->DenseRange(0, 1)
    ->Unit(benchmark::kMillisecond);

} // namespace

// Not DDC_BENCH_MAIN: this bench measures the simulator itself, so it
// forces --timing on -- its JSON is host-dependent on purpose.
int
main(int argc, char **argv)
{
    auto options = ddc::exp::parseSessionArgs(argc, argv);
    options.timing = true;
    ddc::exp::Session session(options);
    printReproduction(session);
    std::cout.flush();
    if (!session.writeJson()) {
        std::cerr << argv[0] << ": cannot write " << options.json_path
                  << "\n";
        return 1;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
