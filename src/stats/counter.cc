#include "stats/counter.hh"

#include <sstream>

namespace ddc {
namespace stats {

CounterId
CounterSet::intern(std::string_view name)
{
    auto it = index.find(name);
    if (it == index.end()) {
        it = index.emplace(std::string(name), values.size()).first;
        values.push_back(0);
    }
    return CounterId(it->second);
}

void
CounterSet::add(std::string_view name, std::uint64_t delta)
{
    add(intern(name), delta);
}

std::uint64_t
CounterSet::get(std::string_view name) const
{
    auto it = index.find(name);
    return it == index.end() ? 0 : values[it->second];
}

bool
CounterSet::has(std::string_view name) const
{
    return index.find(name) != index.end();
}

double
CounterSet::ratio(std::string_view numerator,
                  std::string_view denominator) const
{
    std::uint64_t den = get(denominator);
    if (den == 0)
        return 0.0;
    return static_cast<double>(get(numerator)) / static_cast<double>(den);
}

std::uint64_t
CounterSet::sumPrefix(std::string_view prefix) const
{
    std::uint64_t total = 0;
    for (auto it = index.lower_bound(prefix); it != index.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        total += values[it->second];
    }
    return total;
}

void
CounterSet::clear()
{
    for (auto &value : values)
        value = 0;
}

void
CounterSet::merge(const CounterSet &other)
{
    // Skip zero-valued entries: components pre-intern every counter
    // name they might bump, and names that never fired must not leak
    // into the merged set (has(), and index size, stay as if the
    // name had never been mentioned).
    for (const auto &entry : other.index) {
        if (other.values[entry.second] != 0)
            add(entry.first, other.values[entry.second]);
    }
}

std::vector<std::string>
CounterSet::names() const
{
    std::vector<std::string> result;
    result.reserve(index.size());
    for (const auto &entry : index) {
        if (values[entry.second] != 0)
            result.push_back(entry.first);
    }
    return result;
}

std::string
CounterSet::report() const
{
    std::ostringstream os;
    for (const auto &entry : index) {
        if (values[entry.second] != 0)
            os << entry.first << " = " << values[entry.second] << "\n";
    }
    return os.str();
}

} // namespace stats
} // namespace ddc
