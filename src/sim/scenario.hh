/**
 * @file
 * Scripted coherence scenarios.
 *
 * The paper's Figures 6-1, 6-2 and 6-3 are tables of per-cache state
 * and value for one lock word as specific PEs act in a specific order.
 * Scenario builds an N-cache machine and lets a test or bench issue
 * one access at a time (run to completion), then snapshot exactly the
 * row the paper prints: "R(0)  L(1)  I(-)  | S=1".
 */

#ifndef DDC_SIM_SCENARIO_HH
#define DDC_SIM_SCENARIO_HH

#include <memory>
#include <string>
#include <vector>

#include "core/factory.hh"
#include "sim/bus.hh"
#include "sim/cache.hh"
#include "sim/clock.hh"
#include "sim/exec_log.hh"
#include "sim/memory.hh"
#include "stats/counter.hh"

namespace ddc {

/** An N-cache, one-bus machine driven one access at a time. */
class Scenario
{
  public:
    /**
     * @param kind Coherence scheme.
     * @param num_caches Number of PEs/caches.
     * @param cache_lines Lines per cache.
     * @param rwb_writes_to_local RWB's k.
     * @param block_words Words per block (paper default: 1).
     */
    Scenario(ProtocolKind kind, int num_caches, std::size_t cache_lines = 16,
             int rwb_writes_to_local = 2, std::size_t block_words = 1);

    /** Issue @p ref from PE @p pe and run the bus until it completes. */
    Cache::AccessResult run(PeId pe, const MemRef &ref);

    /** Convenience: completed read. */
    Word read(PeId pe, Addr addr);

    /** Convenience: completed write. */
    void write(PeId pe, Addr addr, Word data);

    /** Convenience: completed test-and-set; returns the old value. */
    Cache::AccessResult testAndSet(PeId pe, Addr addr, Word data = 1);

    /** Coherence state PE @p pe holds for @p addr. */
    LineState state(PeId pe, Addr addr) const;

    /** Cached value PE @p pe holds for @p addr. */
    Word value(PeId pe, Addr addr) const;

    /** Memory's value of @p addr. */
    Word memoryValue(Addr addr) const;

    /** Bus transactions executed so far. */
    std::uint64_t busTransactions() const;

    /** Merged statistics. */
    const stats::CounterSet &counters() const { return stats; }

    /** The serial execution log of every completed access. */
    const ExecutionLog &log() const { return execLog; }

    int numCaches() const { return static_cast<int>(caches.size()); }

    /**
     * Format the paper's figure row for @p addr:
     * one "STATE(value)" cell per cache plus the memory value.
     */
    std::string row(Addr addr) const;

  private:
    stats::CounterSet stats;
    Clock clock;
    ExecutionLog execLog;
    std::unique_ptr<Protocol> protocol;
    Memory memory;
    Bus bus;
    std::vector<std::unique_ptr<Cache>> caches;
};

} // namespace ddc

#endif // DDC_SIM_SCENARIO_HH
