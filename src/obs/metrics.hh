/**
 * @file
 * Latency-distribution metrics (--histograms): the bundle of
 * stats::Histogram instances the hot path samples into when the
 * histograms flag is on.  All inputs are simulated-cycle quantities,
 * so the recorded distributions are deterministic — identical across
 * --jobs counts and host machines.
 */

#ifndef DDC_OBS_METRICS_HH
#define DDC_OBS_METRICS_HH

#include "stats/histogram.hh"

namespace ddc {
namespace obs {

/**
 * Per-run latency/behavior distributions.  Components hold a
 * RunMetrics pointer that is null unless --histograms (or the
 * per-config flag) is set; the disabled path is one pointer test.
 *
 * Bucket widths are coarse on purpose: the interesting quantities
 * (memory latency, spin intervals) are tens of cycles, and the
 * overflow bucket still reports exact min/max/mean/percentile caps.
 */
struct RunMetrics
{
    /** Miss issue -> completion, cycles (includes retries). */
    stats::Histogram miss_service{64, 4};
    /** Per bus transaction: phase start -> requestComplete, cycles. */
    stats::Histogram bus_wait{64, 4};
    /** NACKs + kill-restarts absorbed by one miss (L-interrupts). */
    stats::Histogram miss_retries{16, 1};
    /** Lock word: first failed attempt -> successful RMW, cycles. */
    stats::Histogram lock_acquire{64, 8};
    /** Lock word: release -> next successful RMW, cycles. */
    stats::Histogram lock_handoff{64, 8};
    /**
     * Cycles between consecutive CPU writes to the same resident
     * block — the quantity RWB's k-consecutive-writes rule bets on.
     */
    stats::Histogram write_gap{64, 4};
    /** Home node: request grant -> completion, cycles (with NACKs). */
    stats::Histogram home_service{64, 4};
    /** Sharer invalidations acknowledged per write-like grant. */
    stats::Histogram acks_per_inval{16, 1};
    /** Directory blocks held fabric-wide at each sample point. */
    stats::Histogram dir_occupancy{64, 64};

    /**
     * Fold @p other (one shard's lane) into this bundle; histogram
     * merging is commutative and bucket-exact, so the merged result
     * is independent of shard-to-lane placement.
     */
    void
    merge(const RunMetrics &other)
    {
        miss_service.merge(other.miss_service);
        bus_wait.merge(other.bus_wait);
        miss_retries.merge(other.miss_retries);
        lock_acquire.merge(other.lock_acquire);
        lock_handoff.merge(other.lock_handoff);
        write_gap.merge(other.write_gap);
        home_service.merge(other.home_service);
        acks_per_inval.merge(other.acks_per_inval);
        dir_occupancy.merge(other.dir_occupancy);
    }
};

} // namespace obs
} // namespace ddc

#endif // DDC_OBS_METRICS_HH
