/**
 * @file
 * Experiment session: runs experiments and collects their results.
 *
 * A Session is the one object a bench binary or the CLI talks to: it
 * carries the runner options (--jobs), executes each Experiment, keeps
 * every result in submission order, and emits the collected set as
 * JSON (--json PATH, conventionally results.json) alongside whatever
 * ASCII tables the caller prints.  The JSON bytes are independent of
 * the job count unless --timing opts into per-run wall-clock fields.
 */

#ifndef DDC_EXP_SESSION_HH
#define DDC_EXP_SESSION_HH

#include <deque>
#include <string>
#include <vector>

#include "base/types.hh"
#include "exp/experiment.hh"
#include "exp/json.hh"
#include "exp/runner.hh"

namespace ddc {
namespace exp {

/** Command-line options shared by every engine consumer. */
struct SessionOptions
{
    /** Worker threads for each experiment run. */
    int jobs = 1;
    /** Where to write the collected results ("" = don't). */
    std::string json_path;
    /**
     * Emit wall_time_ms / sim_cycles_per_sec / skipped_cycles /
     * skip_fraction per run in the JSON.  Off by default: timing is a
     * host measurement, so enabling it gives up the
     * byte-identical-across-job-counts guarantee.
     */
    bool timing = false;
    /**
     * Disable quiescent-cycle skipping for every System the process
     * builds (A/B baseline; results are byte-identical either way,
     * only slower).  parseSessionArgs applies it process-wide via
     * setQuiescentSkipEnabled() so custom experiment points that
     * construct their own Systems are covered too.
     */
    bool no_skip = false;
    /**
     * Disable sharer-indexed snoop filtering for every Bus the
     * process builds (A/B baseline; results are byte-identical either
     * way, only slower).  parseSessionArgs applies it process-wide
     * via setSnoopFilterEnabled() so custom experiment points that
     * construct their own Systems are covered too.
     */
    bool no_snoop_filter = false;
    /**
     * Disable conservative-lookahead barrier batching for every
     * sharded kernel the process builds (A/B baseline: back to one
     * barrier per simulated cycle; results are byte-identical either
     * way, only slower).  parseSessionArgs applies it process-wide
     * via setLookaheadEnabled() so custom experiment points that
     * construct their own HierSystems are covered too.
     */
    bool no_lookahead = false;
    /**
     * Chrome-trace output file ("" = tracing off).  The first System
     * the process constructs claims it (obs::setTraceOutput), so a
     * traced session should run a single point (--jobs 1) to keep the
     * trace attributable.
     */
    std::string trace_out;
    /** Comma-separated trace categories ("all", "bus,state,lock", ...). */
    std::string trace_categories = "all";
    /**
     * Collect latency histograms (miss service, bus wait, lock
     * acquisition, ...) in every System the process builds and emit
     * them per run in the JSON.  Cycle-based and deterministic: the
     * JSON stays byte-identical across job counts, it just grows the
     * new "histograms" objects.
     */
    bool histograms = false;
    /**
     * Sample counters every N cycles into a per-run time series
     * (0 = off).  Deterministic, like histograms.
     */
    Cycle sample_every = 0;
    /**
     * Kernel / fabric phase profiling (host wall-clock split between
     * tick work, barrier waits, and the fabric's route/serve
     * phases).  A host measurement like --timing: the profile feeds
     * the timing-gated JSON fields and bench columns only, so the
     * deterministic JSON stays byte-identical.
     */
    bool profile = false;
    /**
     * Worker lanes each hierarchical machine ticks its clusters on
     * (the kernel's parallel shard group).  Applied process-wide via
     * setDefaultShards() so custom experiment points that construct
     * their own HierSystems are covered too.  Purely a host-
     * performance knob: results are byte-identical for every value.
     */
    int shards = 1;
};

/**
 * Parse and remove the engine flags (`--jobs N`, `--json PATH`,
 * `--timing`, `--no-skip`, `--no-lookahead`, `--no-snoop-filter`,
 * `--trace-out FILE`, `--trace-categories LIST`, `--histograms`,
 * `--sample-every N`, `--profile`, `--shards N`) from an argv
 * vector.
 *
 * Unrecognized arguments are left in place (benches forward them to
 * google-benchmark).  Exits with an error message on malformed
 * values.  Process-wide switches (skip/snoop-filter disables, the
 * observability configuration) take effect before this returns, so
 * custom experiment points that construct their own Systems are
 * covered too.  The flag table lives in session.cc; adding a flag is
 * one table entry plus its SessionOptions field.
 */
SessionOptions parseSessionArgs(int &argc, char **argv);

/** Executes experiments and accumulates their results. */
class Session
{
  public:
    explicit Session(SessionOptions options = {});

    /**
     * Run @p experiment with this session's job count.
     * @return The results, ordered by point index; the reference
     *         stays valid for the session's lifetime.
     */
    const std::vector<RunResult> &run(const Experiment &experiment);

    const SessionOptions &options() const { return opts; }

    /** All collected results as one JSON document. */
    Json toJson() const;

    /**
     * Write toJson() to options().json_path.
     * @return false on I/O failure (true when json_path is empty).
     */
    bool writeJson() const;

  private:
    struct Collected
    {
        std::string name;
        std::string description;
        std::vector<RunResult> results;
    };

    SessionOptions opts;
    /** Deque so run() references stay valid as experiments accrue. */
    std::deque<Collected> collected;
};

} // namespace exp
} // namespace ddc

#endif // DDC_EXP_SESSION_HH
