/**
 * @file
 * Bandwidth planning (Section 7): how many PEs can one shared bus
 * carry?  Combines the paper's analytic model SBB >= m*x/h with
 * measured saturation sweeps, and shows how address-interleaved
 * multiple buses push the knee out (Figure 7-1).
 *
 *   ./bandwidth_planning
 */

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

using namespace ddc;

namespace {

struct Measurement
{
    double utilization;
    double per_pe_throughput;
};

Measurement
measure(int num_pes, int num_buses)
{
    auto trace = makeCmStarTrace(cmStarApplicationA(), num_pes, 3000, 11);
    SystemConfig config;
    config.num_pes = num_pes;
    config.cache_lines = 1024;
    config.protocol = ProtocolKind::Rb;
    config.num_buses = num_buses;
    auto summary = runTrace(config, trace);

    Measurement result;
    result.utilization = static_cast<double>(summary.bus_transactions) /
                         static_cast<double>(summary.cycles) / num_buses;
    result.per_pe_throughput = static_cast<double>(summary.total_refs) /
                               static_cast<double>(summary.cycles) /
                               num_pes;
    return result;
}

} // namespace

int
main()
{
    std::cout << "=== Shared-bus bandwidth planning (Section 7) ===\n\n";

    // The analytic rule of thumb.
    std::cout << "Analytic: SBB >= m * x / h.  The paper's example:\n"
              << "  miss ratio 1/h = 10%, m = 128 PEs, x = 1 MACS\n"
              << "  => SBB >= " << 128 * 0.10
              << " MACS of bus bandwidth.\n\n";

    // Measured saturation, 1 vs 2 vs 4 buses.
    stats::Table table("Measured (RB scheme, Cm*-mix workload): "
                       "avg bus utilization / per-PE refs per cycle");
    table.setHeader({"PEs", "1 bus", "", "2 buses", "", "4 buses", ""});
    table.addRow({"", "util", "refs/cyc/PE", "util", "refs/cyc/PE",
                  "util", "refs/cyc/PE"});
    table.addSeparator();
    for (int m : {2, 4, 8, 16, 32, 64}) {
        std::vector<std::string> row{std::to_string(m)};
        for (int buses : {1, 2, 4}) {
            auto point = measure(m, buses);
            row.push_back(stats::Table::num(point.utilization, 2));
            row.push_back(stats::Table::num(point.per_pe_throughput, 3));
        }
        table.addRow(row);
    }
    std::cout << table.render() << "\n";

    std::cout
        << "Reading the table: per-PE throughput is flat until the bus\n"
        << "saturates (utilization near 1), then halves with every\n"
        << "doubling of PEs.  Doubling the buses roughly doubles the\n"
        << "PE count at the knee -- the Figure 7-1 argument that '32 to\n"
        << "256 processors could be economically built' with a few\n"
        << "buses and these cache schemes.\n";
    return 0;
}
