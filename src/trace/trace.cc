#include "trace/trace.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "base/logging.hh"

namespace ddc {

namespace {

char
opCode(CpuOp op)
{
    switch (op) {
      case CpuOp::Read:        return 'R';
      case CpuOp::Write:       return 'W';
      case CpuOp::TestAndSet:  return 'T';
      case CpuOp::ReadLock:    return 'L';
      case CpuOp::WriteUnlock: return 'U';
    }
    return '?';
}

bool
parseOp(char c, CpuOp &op)
{
    switch (c) {
      case 'R': op = CpuOp::Read; return true;
      case 'W': op = CpuOp::Write; return true;
      case 'T': op = CpuOp::TestAndSet; return true;
      case 'L': op = CpuOp::ReadLock; return true;
      case 'U': op = CpuOp::WriteUnlock; return true;
      default: return false;
    }
}

char
classCode(DataClass cls)
{
    switch (cls) {
      case DataClass::Code:   return 'C';
      case DataClass::Local:  return 'P';
      case DataClass::Shared: return 'S';
    }
    return '?';
}

bool
parseClass(char c, DataClass &cls)
{
    switch (c) {
      case 'C': cls = DataClass::Code; return true;
      case 'P': cls = DataClass::Local; return true;
      case 'S': cls = DataClass::Shared; return true;
      default: return false;
    }
}

} // namespace

std::string
toString(const MemRef &ref)
{
    std::ostringstream os;
    os << opCode(ref.op) << " 0x" << std::hex << ref.addr << std::dec
       << " " << ref.data << " " << ddc::toString(ref.cls);
    return os.str();
}

Trace::Trace(int num_pes)
{
    ddc_assert(num_pes >= 0, "negative PE count");
    streams.resize(static_cast<std::size_t>(num_pes));
}

void
Trace::append(PeId pe, const MemRef &ref)
{
    ddc_assert(pe >= 0 && pe < numPes(), "trace PE id out of range");
    streams[static_cast<std::size_t>(pe)].push_back(ref);
}

const std::vector<MemRef> &
Trace::stream(PeId pe) const
{
    ddc_assert(pe >= 0 && pe < numPes(), "trace PE id out of range");
    return streams[static_cast<std::size_t>(pe)];
}

std::size_t
Trace::totalRefs() const
{
    std::size_t total = 0;
    for (const auto &stream : streams)
        total += stream.size();
    return total;
}

void
Trace::save(std::ostream &os) const
{
    os << "ddctrace 1 " << numPes() << "\n";
    for (int pe = 0; pe < numPes(); pe++) {
        for (const auto &ref : streams[static_cast<std::size_t>(pe)]) {
            os << pe << " " << opCode(ref.op) << " " << ref.addr << " "
               << ref.data << " " << classCode(ref.cls) << "\n";
        }
    }
}

bool
Trace::load(std::istream &is)
{
    streams.clear();

    std::string magic;
    int version = 0;
    int num_pes = 0;
    if (!(is >> magic >> version >> num_pes))
        return false;
    if (magic != "ddctrace" || version != 1 || num_pes < 0)
        return false;

    streams.resize(static_cast<std::size_t>(num_pes));
    int pe = 0;
    char op_char = 0;
    char cls_char = 0;
    Addr addr = 0;
    Word data = 0;
    while (is >> pe >> op_char >> addr >> data >> cls_char) {
        MemRef ref;
        if (pe < 0 || pe >= num_pes || !parseOp(op_char, ref.op) ||
            !parseClass(cls_char, ref.cls)) {
            streams.clear();
            return false;
        }
        ref.addr = addr;
        ref.data = data;
        streams[static_cast<std::size_t>(pe)].push_back(ref);
    }
    return true;
}

} // namespace ddc
