/**
 * @file
 * ASCII table renderer used by the reproduction benches.
 *
 * Every bench binary prints the paper's table or figure as a text table
 * before running timing sweeps; this class gives them a common look.
 */

#ifndef DDC_STATS_TABLE_HH
#define DDC_STATS_TABLE_HH

#include <string>
#include <vector>

namespace ddc {
namespace stats {

/**
 * A simple column-aligned text table with an optional title and a
 * header row.  Cells are strings; numeric helpers format doubles with a
 * fixed precision.
 */
class Table
{
  public:
    /** @param title Optional caption printed above the table. */
    explicit Table(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (may be ragged; short rows are padded). */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Format a double with @p precision fraction digits. */
    static std::string num(double value, int precision = 1);

    /** Format an integer. */
    static std::string num(std::uint64_t value);

    /** Number of data rows added so far (separators excluded). */
    std::size_t numRows() const;

    /** Render the full table. */
    std::string render() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::string title;
    std::vector<std::string> header;
    std::vector<Row> rows;
};

} // namespace stats
} // namespace ddc

#endif // DDC_STATS_TABLE_HH
