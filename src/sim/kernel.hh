/**
 * @file
 * The simulation kernel: the one run-loop driver both machines share.
 *
 * The kernel owns tick ordering, quiescent-cycle skipping (next-event
 * time advance via each shard's nextEventCycle), stall-skip flushing,
 * and budget/timeout accounting; System and HierSystem are
 * configuration + component wiring over it.  A machine registers an
 * optional *serial* shard (ticked first each cycle, by the
 * coordinating thread — the hierarchical machine's global bus) and
 * any number of *parallel* shards (the clusters), then calls run().
 *
 * With more than one worker lane the parallel shards tick
 * concurrently on a persistent worker pool, with a barrier before the
 * clock advances; the quiescent-skip window (the minimum of every
 * shard's nextEventCycle) is computed by the coordinator between
 * barriers, reusing the PR-3 machinery as the conservative lookahead.
 * Between barriers the coordinator additionally computes a safe
 * multi-cycle window: the earliest cycle any shard could next arm the
 * global interconnect (its earliestGlobalEmission) plus the one-cycle
 * serial-observation latency bounds how many cycles the lanes may run
 * unsynchronized, so quiet stretches pay one barrier for k cycles
 * instead of k barriers.  In deterministic mode (the default) the
 * shard-to-lane schedule is static and results are byte-identical to
 * a sequential run; see DESIGN.md, "The kernel and shard contract"
 * and "The lookahead contract".
 */

#ifndef DDC_SIM_KERNEL_HH
#define DDC_SIM_KERNEL_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/recorder.hh"
#include "sim/clock.hh"
#include "sim/shard.hh"

namespace ddc {

/** How a bounded run ended. */
enum class RunStatus
{
    /** Every agent finished within the cycle budget. */
    Finished,
    /** The cycle budget elapsed first (deadlock or runaway scenario). */
    TimedOut,
};

/** Stable name of @p status ("finished" / "timed_out"). */
std::string_view toString(RunStatus status);

/**
 * Process-wide quiescent-skip switch, default on.  The --no-skip flag
 * clears it so every machine built afterwards — including ones buried
 * inside custom experiment points — runs cycle by cycle, without
 * threading a flag through each construction site.
 */
void setQuiescentSkipEnabled(bool enabled);
bool quiescentSkipEnabled();

/**
 * Process-wide conservative-lookahead switch, default on.  The
 * --no-lookahead flag clears it so every sharded machine built
 * afterwards barriers once per simulated cycle — the PR-6 baseline —
 * without threading a flag through each construction site.  Purely a
 * host-performance knob: results are byte-identical either way.
 */
void setLookaheadEnabled(bool enabled);
bool lookaheadEnabled();

/**
 * Process-wide default worker-lane count for machines whose config
 * leaves shards = 0, default 1.  The --shards flag sets it so every
 * hierarchical machine built afterwards — including ones buried
 * inside custom experiment points — runs its clusters on that many
 * host threads.  Purely a host-performance knob: results are
 * byte-identical for every value.
 */
void setDefaultShards(int shards);
int defaultShards();

/** Kernel tuning knobs (resolved by the owning machine's config). */
struct KernelConfig
{
    /**
     * Worker lanes for the parallel shard group (clamped to the
     * number of parallel shards; 1 = tick everything on the calling
     * thread).
     */
    int shards = 1;
    /**
     * Static shard-to-lane schedule with byte-identical output (the
     * default).  When false the lanes claim shards dynamically
     * (load-balanced); every shard still ticks exactly once per
     * cycle, so simulation results do not change — but only the
     * deterministic mode *guarantees* byte-identity as a contract.
     */
    bool deterministic = true;
    /**
     * Fast-forward run() across quiescent cycles (next-event time
     * advance).  Results are byte-identical either way; off is the
     * A/B-debugging baseline.  ANDed with the process-wide
     * setQuiescentSkipEnabled() switch (the --no-skip flag).
     */
    bool skip_quiescent = true;
    /**
     * Conservative lookahead: let parallel lanes tick multi-cycle
     * windows between barriers when no shard can reach the global
     * edge sooner.  Byte-identical either way; only a parallel run
     * (more than one lane) ever forms windows.  ANDed with the
     * process-wide setLookaheadEnabled() switch (--no-lookahead).
     */
    bool lookahead = true;
};

/** The shared run-loop driver (see file comment). */
class Kernel
{
  public:
    Kernel(Clock &clock, const KernelConfig &config);

    /** Joins the worker pool; shards die with the kernel. */
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /**
     * Create the serial shard (at most one): ticked first each cycle,
     * always by the coordinating thread.  @p seed is the machine
     * seed; shard ids are assigned in creation order.
     */
    Shard &makeSerialShard(std::uint64_t seed, std::size_t agent_slots);

    /** Create the next parallel shard. */
    Shard &makeShard(std::uint64_t seed, std::size_t agent_slots);

    /**
     * Quiesce-category trace buffer (may be null; off by default).
     * Written only from the coordinating thread — outer skips and
     * window-overlap segments are both serial-phase work — so a
     * single buffer suffices at any lane count.
     */
    void setQuiesceSink(obs::TraceBuffer *sink) { quiesce = sink; }

    /**
     * Kernel self-profiling trace (--trace-categories=kernel): the
     * lookahead-window counter track, per-lane tick spans, and the
     * coordinator's barrier-wait spans.  The kernel allocates one
     * private buffer per lane from @p sink when the worker pool
     * starts.  Host-dependent by design (spans carry wall-clock
     * args and the lane layout), so enabling it forfeits the
     * byte-identical-across---shards trace guarantee; a single-lane
     * run emits nothing (there are no epochs to profile).
     */
    void setKernelTrace(obs::TraceSink *sink) { kernelSink = sink; }

    /** Counter sampler polled each loop iteration (may be null). */
    void setSampler(obs::CounterSampler *sampler) { this->sampler = sampler; }

    /**
     * Pin this kernel to one lane regardless of config: a machine
     * whose run must stay on the calling thread (serial execution
     * log, attached observability recorder) calls this once at
     * construction.  Results are identical either way — parallel
     * lanes are disabled, not the shard structure.
     */
    void forceSequential() { sequentialOnly = true; }

    /**
     * Run until every shard is done or @p max_cycles elapse, then
     * flush accrued stalls so counters are readable.  The caller owns
     * warning/reporting on timeout.
     */
    RunStatus run(Cycle max_cycles);

    /**
     * Advance exactly one cycle on the calling thread: serial shard,
     * parallel shards in id order, clock.  Manual ticking is always
     * sequential (and byte-identical to a parallel run()).
     */
    void tickOnce();

    /** True when every shard's agents have finished. */
    bool allDone() const;

    /**
     * Cycles run() fast-forwarded instead of ticking (0 with skipping
     * disabled); included in the clock advance.
     */
    Cycle skippedCycles() const { return skipped; }

    /** Flush every shard's accrued stall cycles (counter reads). */
    void flushStalls() const;

    /**
     * Worker lanes the next run() will use: config.shards clamped to
     * the parallel shard count, 1 when forceSequential() was called.
     */
    int workerLanes() const;

    /**
     * Parallel barriers executed by run() so far: one per parallel
     * phase, whether it covered one cycle or a multi-cycle lookahead
     * window (0 on a single-lane run).
     */
    std::uint64_t barrierEpochs() const { return epochs; }

    /**
     * Mean cycles per barrier window (0 with no parallel phases);
     * 1.0 means lookahead never beat the cycle-per-barrier baseline.
     */
    double
    meanLookaheadWindow() const
    {
        return epochs == 0
            ? 0.0
            : static_cast<double>(windowSum) / static_cast<double>(epochs);
    }

    /**
     * Accumulate host wall time split between the coordinator's own
     * tick work and its wait at the barrier into @p profile
     * (kernel_tick_ms / kernel_barrier_ms; chrono calls only when
     * non-null, off by default).  Purely host-side observability:
     * simulation results are unaffected, so unlike the simulated
     * trace hooks this never needs to pin the kernel to one lane.
     */
    void setProfile(obs::PhaseProfile *profile)
    {
        this->profile = profile;
    }

  private:
    /** Earliest next event across every shard (see Shard). */
    Cycle earliestNextEvent() const;

    /** Fast-forward @p count quiescent cycles on every shard. */
    void skipQuiescent(Cycle count);

    /**
     * Safe lookahead window from clock.now: the largest k such that no
     * shard's global-ward traffic could become serially observable,
     * and the machine could not finish, strictly inside the window.
     * Clamped to the budget @p end; at least 1.
     */
    Cycle lookaheadWindow(Cycle end) const;

    /**
     * One parallel phase: release lanes, tick each shard windowLen
     * cycles, barrier.  The caller skips/ticks the serial shard first
     * and advances the clock after.
     */
    void tickShardsParallel();

    /** Coordinator's acquire-wait for every worker lane's arrival. */
    void awaitArrivals();

    /** Tick the shards assigned to (or claimed by) @p lane. */
    void runLane(int lane);

    /**
     * Run shard @p index through the current multi-cycle window:
     * cycle-by-cycle ticks, with shard-local quiescent stretches
     * skipped (and recorded for the cross-shard skip accounting) when
     * windowSkipping is set.
     */
    void tickShardWindow(Shard &shard, std::size_t index);

    /**
     * Cycles inside the window starting at @p base on which *every*
     * parallel shard was skipped as quiescent — exactly the cycles a
     * sequential run would have covered with a whole-machine skip
     * (the serial shard is quiescent for the entire window by
     * construction), so they land in skippedCycles().  Each overlap
     * segment is also emitted as a quiesce trace span; the writer
     * coalesces abutting spans, so the written intervals match the
     * sequential run's whole-machine skips exactly.
     */
    Cycle windowQuiescentOverlap(Cycle base, Cycle window);

    void startWorkers(int lanes);
    void stopWorkers();
    void workerMain(int lane, std::uint64_t seen);

    Clock &clock;
    KernelConfig config;
    bool sequentialOnly = false;
    int nextShardId = 0;
    std::unique_ptr<Shard> serial;
    std::vector<std::unique_ptr<Shard>> group;
    Cycle skipped = 0;

    obs::TraceBuffer *quiesce = nullptr;
    obs::CounterSampler *sampler = nullptr;
    /** Kernel-category sink; lane buffers are cut from it on start. */
    obs::TraceSink *kernelSink = nullptr;
    /** Per-lane kernel trace buffers (empty = kernel trace off). */
    std::vector<obs::TraceBuffer *> laneTrace;

    // Lookahead-window state.  windowLen / windowSkipping are written
    // by the coordinator before the epoch release-publish and only
    // read by lanes after the acquire, so they need no atomicity;
    // windowQuiescent has exactly one writer per entry (the lane that
    // ran that shard) and is read by the coordinator after the
    // barrier.
    Cycle windowLen = 1;
    bool windowSkipping = false;
    std::vector<std::vector<std::pair<Cycle, Cycle>>> windowQuiescent;
    std::uint64_t epochs = 0;
    std::uint64_t windowSum = 0;

    // Opt-in host phase timing (see setProfile()).
    obs::PhaseProfile *profile = nullptr;

    // Persistent worker pool (workers = lanes - 1; the coordinator is
    // lane 0).  Per cycle: the coordinator publishes a new epoch
    // (release), lanes tick their shards, and the coordinator waits
    // for the arrival count (acquire) — the acquire/release pair is
    // the barrier that makes all shard-phase writes visible before
    // the serial phase of the next cycle.
    std::vector<std::thread> workers;
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<int> arrivalsPending{0};
    /** Next unclaimed shard index (dynamic schedule only). */
    std::atomic<std::size_t> claim{0};
    std::atomic<bool> quitting{false};
    /** Lanes the pool was started with (0 = not started). */
    int laneCount = 0;
};

} // namespace ddc

#endif // DDC_SIM_KERNEL_HH
