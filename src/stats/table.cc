#include "stats/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace ddc {
namespace stats {

Table::Table(std::string title) : title(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> new_header)
{
    header = std::move(new_header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows.push_back(Row{std::move(row), false});
}

void
Table::addSeparator()
{
    rows.push_back(Row{{}, true});
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::num(std::uint64_t value)
{
    return std::to_string(value);
}

std::size_t
Table::numRows() const
{
    std::size_t count = 0;
    for (const auto &row : rows) {
        if (!row.separator)
            count++;
    }
    return count;
}

std::string
Table::render() const
{
    // Compute column widths over header + all rows.
    std::size_t num_cols = header.size();
    for (const auto &row : rows)
        num_cols = std::max(num_cols, row.cells.size());

    std::vector<std::size_t> widths(num_cols, 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); i++)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header);
    for (const auto &row : rows) {
        if (!row.separator)
            widen(row.cells);
    }

    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 3;

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < num_cols; i++) {
            std::string cell = i < cells.size() ? cells[i] : "";
            os << " " << std::setw(static_cast<int>(widths[i]))
               << std::left << cell << "  ";
        }
        os << "\n";
    };

    if (!title.empty())
        os << title << "\n";
    if (!header.empty()) {
        emitRow(header);
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows) {
        if (row.separator) {
            os << std::string(total, '-') << "\n";
        } else {
            emitRow(row.cells);
        }
    }
    return os.str();
}

} // namespace stats
} // namespace ddc
