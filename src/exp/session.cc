#include "exp/session.hh"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "base/logging.hh"
#include "obs/recorder.hh"
#include "obs/trace.hh"
#include "sim/system.hh"

namespace ddc {
namespace exp {

namespace {

/**
 * One engine flag: its spelling, whether it consumes a value, and how
 * it lands on SessionOptions (and any process-wide switch).  Adding a
 * flag is one entry here plus its SessionOptions field; the parse
 * loop, value handling, and error reporting are shared.
 */
struct FlagSpec
{
    const char *name;
    bool takes_value;
    /** Applies the flag; returns "" on success, else an error. */
    std::string (*apply)(SessionOptions &options, const char *value);
};

constexpr const char *kOk = "";

const FlagSpec kFlags[] = {
    {"--timing", false,
     [](SessionOptions &options, const char *) -> std::string {
         options.timing = true;
         return kOk;
     }},
    {"--no-skip", false,
     [](SessionOptions &options, const char *) -> std::string {
         options.no_skip = true;
         setQuiescentSkipEnabled(false);
         return kOk;
     }},
    {"--no-lookahead", false,
     [](SessionOptions &options, const char *) -> std::string {
         options.no_lookahead = true;
         setLookaheadEnabled(false);
         return kOk;
     }},
    {"--no-snoop-filter", false,
     [](SessionOptions &options, const char *) -> std::string {
         options.no_snoop_filter = true;
         setSnoopFilterEnabled(false);
         return kOk;
     }},
    {"--jobs", true,
     [](SessionOptions &options, const char *value) -> std::string {
         options.jobs = std::atoi(value);
         if (options.jobs < 1) {
             return "needs a positive integer, got " +
                    std::string(value);
         }
         return kOk;
     }},
    {"--json", true,
     [](SessionOptions &options, const char *value) -> std::string {
         options.json_path = value;
         return kOk;
     }},
    {"--trace-out", true,
     [](SessionOptions &options, const char *value) -> std::string {
         options.trace_out = value;
         return kOk;
     }},
    {"--trace-categories", true,
     [](SessionOptions &options, const char *value) -> std::string {
         std::string error;
         if (obs::parseCategories(value, &error) == 0)
             return "unknown category '" + error + "'";
         options.trace_categories = value;
         return kOk;
     }},
    {"--histograms", false,
     [](SessionOptions &options, const char *) -> std::string {
         options.histograms = true;
         obs::setHistogramsEnabled(true);
         return kOk;
     }},
    {"--sample-every", true,
     [](SessionOptions &options, const char *value) -> std::string {
         long interval = std::atol(value);
         if (interval < 1) {
             return "needs a positive cycle count, got " +
                    std::string(value);
         }
         options.sample_every = static_cast<Cycle>(interval);
         obs::setSampleInterval(options.sample_every);
         return kOk;
     }},
    {"--profile", false,
     [](SessionOptions &options, const char *) -> std::string {
         options.profile = true;
         obs::setPhaseProfilingEnabled(true);
         return kOk;
     }},
    {"--shards", true,
     [](SessionOptions &options, const char *value) -> std::string {
         options.shards = std::atoi(value);
         if (options.shards < 1) {
             return "needs a positive integer, got " +
                    std::string(value);
         }
         setDefaultShards(options.shards);
         return kOk;
     }},
};

} // namespace

SessionOptions
parseSessionArgs(int &argc, char **argv)
{
    SessionOptions options;
    int out = 1;
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        const FlagSpec *spec = nullptr;
        for (const auto &flag : kFlags) {
            if (arg == flag.name) {
                spec = &flag;
                break;
            }
        }
        if (!spec) {
            argv[out++] = argv[i];
            continue;
        }
        const char *value = nullptr;
        if (spec->takes_value) {
            if (i + 1 >= argc) {
                std::cerr << argv[0] << ": " << arg << " needs a value\n";
                std::exit(1);
            }
            value = argv[++i];
        }
        std::string error = spec->apply(options, value);
        if (!error.empty()) {
            std::cerr << argv[0] << ": " << arg << " " << error << "\n";
            std::exit(1);
        }
    }
    argc = out;
    argv[argc] = nullptr;
    if (!options.trace_out.empty()) {
        obs::setTraceOutput(options.trace_out,
                            obs::parseCategories(
                                options.trace_categories));
    }
    return options;
}

Session::Session(SessionOptions options) : opts(std::move(options)) {}

const std::vector<RunResult> &
Session::run(const Experiment &experiment)
{
    RunnerOptions runner;
    runner.jobs = opts.jobs;
    collected.push_back({experiment.name(), experiment.description(),
                         runExperiment(experiment, runner)});
    return collected.back().results;
}

Json
Session::toJson() const
{
    Json json = Json::object();
    json["schema"] = Json(std::int64_t{6});
    Json experiments = Json::array();
    for (const auto &entry : collected) {
        Json experiment = Json::object();
        experiment["name"] = Json(entry.name);
        experiment["description"] = Json(entry.description);
        Json runs = Json::array();
        for (const auto &result : entry.results)
            runs.push(result.toJson(opts.timing));
        experiment["runs"] = std::move(runs);
        experiments.push(std::move(experiment));
    }
    json["experiments"] = std::move(experiments);
    return json;
}

bool
Session::writeJson() const
{
    if (opts.json_path.empty())
        return true;
    std::ofstream out(opts.json_path);
    if (!out)
        return false;
    toJson().dump(out);
    out << "\n";
    return out.good();
}

} // namespace exp
} // namespace ddc
