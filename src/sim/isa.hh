/**
 * @file
 * The PE instruction set and program builder.
 *
 * The paper assumes "off-the-shelf processing elements" and implements
 * test-and-test-and-set in software as a test preceding a test-and-set
 * (Section 6).  This tiny ISA is just enough to express those spin
 * loops, critical sections, barriers and array sweeps as real
 * instruction streams: 16 registers, loads/stores through the cache,
 * an atomic TestAndSet, the two-phase LoadLocked/StoreUnlock pair,
 * ALU ops and branches.  One instruction executes per cycle; memory
 * operations stall the PE until the cache completes them.
 */

#ifndef DDC_SIM_ISA_HH
#define DDC_SIM_ISA_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/types.hh"

namespace ddc {

/** Number of general-purpose registers per PE. */
inline constexpr int kNumRegs = 16;

/** PE opcodes. */
enum class Opcode : std::uint8_t
{
    Nop,
    Halt,
    LoadImm,     //!< r[dst] = imm
    Move,        //!< r[dst] = r[a]
    Load,        //!< r[dst] = mem[r[a] + imm]
    Store,       //!< mem[r[a] + imm] = r[b]
    TestAndSet,  //!< r[dst] = old(mem[r[a]+imm]); if old==0 store r[b]
    LoadLocked,  //!< r[dst] = mem[r[a] + imm], locking the word
    StoreUnlock, //!< mem[r[a] + imm] = r[b], unlocking the word
    Add,         //!< r[dst] = r[a] + r[b]
    Sub,         //!< r[dst] = r[a] - r[b]
    AddImm,      //!< r[dst] = r[a] + imm
    BranchIfZero,    //!< if r[a] == 0: pc = imm
    BranchIfNotZero, //!< if r[a] != 0: pc = imm
    Jump,            //!< pc = imm
};

/** Printable opcode name. */
std::string_view toString(Opcode op);

/** One PE instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    int dst = 0;
    int a = 0;
    int b = 0;
    std::int64_t imm = 0;
    /** Classification attached to memory operations. */
    DataClass cls = DataClass::Shared;
};

/** An executable PE program. */
using Program = std::vector<Instruction>;

/**
 * Fluent program assembler with named labels.
 *
 * Branch targets may reference labels defined later; build() resolves
 * them and reports unresolved names via fatal().
 */
class ProgramBuilder
{
  public:
    ProgramBuilder &nop();
    ProgramBuilder &halt();
    ProgramBuilder &loadImm(int dst, std::int64_t imm);
    ProgramBuilder &move(int dst, int a);
    ProgramBuilder &load(int dst, int addr_reg, std::int64_t offset = 0,
                         DataClass cls = DataClass::Shared);
    ProgramBuilder &store(int addr_reg, int src_reg,
                          std::int64_t offset = 0,
                          DataClass cls = DataClass::Shared);
    ProgramBuilder &testAndSet(int dst, int addr_reg, int set_reg,
                               std::int64_t offset = 0);
    ProgramBuilder &loadLocked(int dst, int addr_reg,
                               std::int64_t offset = 0);
    ProgramBuilder &storeUnlock(int addr_reg, int src_reg,
                                std::int64_t offset = 0);
    ProgramBuilder &add(int dst, int a, int b);
    ProgramBuilder &sub(int dst, int a, int b);
    ProgramBuilder &addImm(int dst, int a, std::int64_t imm);
    ProgramBuilder &label(const std::string &name);
    ProgramBuilder &branchIfZero(int a, const std::string &target);
    ProgramBuilder &branchIfNotZero(int a, const std::string &target);
    ProgramBuilder &jump(const std::string &target);

    /** Resolve labels and return the program. */
    Program build();

  private:
    ProgramBuilder &emit(Instruction instruction);

    Program program;
    std::map<std::string, std::size_t> labels;
    /** (instruction index, label) pairs awaiting resolution. */
    std::vector<std::pair<std::size_t, std::string>> fixups;
};

} // namespace ddc

#endif // DDC_SIM_ISA_HH
