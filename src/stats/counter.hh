/**
 * @file
 * Named statistics counters.
 *
 * A CounterSet is a flat registry of named 64-bit event counters plus
 * derived ratio queries.  Every simulator component owns (or shares) a
 * CounterSet; benches and tests read the counters back by name.
 *
 * Hot paths never pay for a name lookup: a component interns each
 * counter name once at construction and receives a CounterId — an
 * index into a dense value array — so add(CounterId) is a plain array
 * increment.  The name-keyed API (get / sumPrefix / merge / report)
 * sits on top of the same storage and iterates in lexicographic name
 * order, so reports are byte-identical to the pre-handle scheme.
 */

#ifndef DDC_STATS_COUNTER_HH
#define DDC_STATS_COUNTER_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ddc {
namespace stats {

/**
 * Opaque handle to one counter of a specific CounterSet.
 *
 * Obtained from CounterSet::intern(); only meaningful for the set
 * that produced it (sharing components that intern the same name in
 * the same set receive equal handles).
 */
class CounterId
{
  public:
    /** An invalid handle; add()/get() must not be called with it. */
    CounterId() = default;

    /** True when this handle came from CounterSet::intern(). */
    bool valid() const { return index != kInvalid; }

  private:
    friend class CounterSet;
    explicit CounterId(std::size_t index) : index(index) {}

    static constexpr std::size_t kInvalid = ~std::size_t{0};
    std::size_t index = kInvalid;
};

/**
 * A registry of named monotonically increasing event counters.
 *
 * Counters are created on first use (or when interned) and iterate in
 * lexicographic name order so reports are stable across runs.  Only
 * counters with non-zero values appear in names() and report(), so
 * interning a name that never fires is invisible in the output.
 */
class CounterSet
{
  public:
    /**
     * Resolve @p name to a dense handle, creating the counter at zero.
     * Interning the same name again returns the same handle.
     */
    CounterId intern(std::string_view name);

    /** Add @p delta to the counter behind @p id (hot path). */
    void
    add(CounterId id, std::uint64_t delta = 1)
    {
        values[id.index] += delta;
    }

    /** Value of the counter behind @p id. */
    std::uint64_t get(CounterId id) const { return values[id.index]; }

    /** Add @p delta to counter @p name (creating it at zero). */
    void add(std::string_view name, std::uint64_t delta = 1);

    /** Value of @p name, or zero when the counter never fired. */
    std::uint64_t get(std::string_view name) const;

    /** True when @p name has been created. */
    bool has(std::string_view name) const;

    /**
     * Ratio get(numerator) / get(denominator).
     * @return 0.0 when the denominator is zero.
     */
    double ratio(std::string_view numerator,
                 std::string_view denominator) const;

    /** Sum of all counters whose name starts with @p prefix. */
    std::uint64_t sumPrefix(std::string_view prefix) const;

    /** Reset every counter to zero (names are kept). */
    void clear();

    /** Merge another set into this one, adding matching counters. */
    void merge(const CounterSet &other);

    /** Names with non-zero values, sorted. */
    std::vector<std::string> names() const;

    /** Multi-line "name = value" report of all non-zero counters. */
    std::string report() const;

  private:
    /** Lexicographic name -> values index (transparent comparator so
     *  lookups take string_view without a temporary string). */
    std::map<std::string, std::size_t, std::less<>> index;
    /** Dense counter storage; indices are stable (never erased). */
    std::vector<std::uint64_t> values;
};

} // namespace stats
} // namespace ddc

#endif // DDC_STATS_COUNTER_HH
