/**
 * @file
 * Shard-scaling microbench: host wall-clock throughput of the
 * hierarchical machine as its clusters are spread over worker lanes
 * (--shards / HierConfig::shards), not a paper reproduction.
 *
 * One family: the Cm* application mix replayed on a 16-cluster x 4-PE
 * hierarchical RB machine, with the cluster shards ticked on 1, 2, 4,
 * and 8 host lanes.  Simulation results are byte-identical across the
 * axis (the parallel kernel's contract, enforced by
 * parallel_equivalence_test and the CI filtered diff); only the wall
 * clock may move.  Rows report the speedup against the 1-lane run.
 *
 * Like perf_throughput this binary's output is host-dependent by
 * design: it forces --timing on.  Methodology (EXPERIMENTS.md):
 * measure on a Release build with --jobs 1 so points never compete
 * for cores, and read the speedup column against the host's physical
 * core count -- lanes beyond it can only timeshare.
 */

#include "bench_common.hh"

#include <iostream>
#include <iterator>
#include <thread>

#include "hier/hier_system.hh"
#include "obs/recorder.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

constexpr int kClusters = 16;
constexpr int kPesPerCluster = 4;
const int kShardCounts[] = {1, 2, 4, 8};
/** Timing reps per point (the table keeps the best). */
constexpr std::size_t kReps = 3;
constexpr std::size_t kRefsPerPe = 8000;

std::string
perMega(double per_sec)
{
    if (per_sec <= 0.0)
        return "-";
    return stats::Table::num(per_sec / 1e6, 2);
}

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Perf: hierarchical-machine shard scaling (host wall-clock;\n"
        "higher is better).  Numbers are machine-dependent -- compare\n"
        "only against the same host and build type.  This host "
        "reports\n" << std::thread::hardware_concurrency()
        << " hardware thread(s); speedup beyond that count can only\n"
        "come from timesharing noise.\n\n";

    exp::ParamGrid grid;
    grid.axis("shards", {"1", "2", "4", "8"});
    // Reps are the innermost axis; single wall-clock samples on a
    // shared host swing by 10%+, and min-time is the standard
    // noise-robust estimator.
    grid.axis("rep", {"0", "1", "2"});

    // The trace is generated up front: point lambdas run inside the
    // timed region, and trace synthesis would dilute the lane-count
    // wall-clock ratio this bench exists to measure.
    auto trace = makeCmStarTrace(cmStarApplicationA(),
                                 kClusters * kPesPerCluster,
                                 kRefsPerPe, 5);

    exp::Experiment spec(
        "perf_parallel_shards",
        "Hierarchical-machine throughput on the Cm* application mix "
        "(RB, 16 clusters x 4 PEs) vs worker-lane count; results are "
        "byte-identical across the shards axis by contract");
    for (std::size_t point = 0; point < grid.size(); point++) {
        auto indices = grid.indicesAt(point);
        int shards = kShardCounts[indices[0]];
        spec.addCustom(grid.paramsAt(point), [shards, &trace]() {
            hier::HierConfig config;
            config.num_clusters = kClusters;
            config.pes_per_cluster = kPesPerCluster;
            config.cache_lines = 256;
            config.protocol = ProtocolKind::Rb;
            config.shards = shards;
            hier::HierSystem system(config);
            system.loadTrace(trace);
            exp::RunResult result;
            result.cycles = system.run();
            result.skipped_cycles = system.skippedCycles();
            result.bus_transactions = system.globalBusTransactions() +
                                      system.clusterBusTransactions();
            result.barrier_epochs = system.barrierEpochs();
            result.mean_lookahead_window = system.meanLookaheadWindow();
            result.setMetric("tick_phase_ms",
                             system.kernelTickPhaseMs());
            result.setMetric("barrier_wait_ms",
                             system.kernelBarrierWaitMs());
            result.setMetric(
                "hardware_concurrency",
                static_cast<double>(
                    std::thread::hardware_concurrency()));
            return result;
        });
    }
    const auto &results = session.run(spec);

    // Best rep (highest sim rate) of the arm starting at flat index
    // @p first; reps are the innermost axis, so they are contiguous.
    auto bestRep = [&results](std::size_t first) -> const auto & {
        const auto *best = &results[first];
        for (std::size_t r = 1; r < kReps; r++) {
            const auto &rep = results[first + r];
            if (rep.sim_cycles_per_sec > best->sim_cycles_per_sec)
                best = &rep;
        }
        return *best;
    };

    Table table("Shard scaling: Cm* mix, RB, 16 clusters x 4 PEs, "
                "8000 refs/PE, best of 3 reps");
    table.setHeader({"shards", "cycles", "bus txns", "epochs",
                     "window", "tick ms", "barrier ms", "wall ms",
                     "Mcycles/s", "speedup"});
    const auto &baseline = bestRep(0);
    for (std::size_t i = 0; i < std::size(kShardCounts); i++) {
        const auto &best = bestRep(kReps * i);
        // Every arm simulates identical cycles, so the sim-rate ratio
        // is the wall-clock ratio, undiluted by point setup.
        double speedup = baseline.sim_cycles_per_sec > 0.0
                             ? best.sim_cycles_per_sec /
                                   baseline.sim_cycles_per_sec
                             : 0.0;
        // Sequential arms (one lane) never barrier, so the epoch and
        // phase-split columns are meaningless there.
        bool barriered = best.barrier_epochs > 0;
        table.addRow({std::to_string(kShardCounts[i]),
                      std::to_string(best.cycles),
                      std::to_string(best.bus_transactions),
                      barriered ? std::to_string(best.barrier_epochs)
                                : "-",
                      barriered
                          ? Table::num(best.mean_lookahead_window, 2)
                          : "-",
                      barriered
                          ? Table::num(best.metric("tick_phase_ms"), 2)
                          : "-",
                      barriered
                          ? Table::num(best.metric("barrier_wait_ms"), 2)
                          : "-",
                      Table::num(best.wall_time_ms, 2),
                      perMega(best.sim_cycles_per_sec),
                      Table::num(speedup, 2)});
    }
    std::cout << table.render() << "\n";
}

/** Wall-clock rate of one full hierarchical run at a lane count. */
void
BM_HierShardThroughput(benchmark::State &state)
{
    auto trace = makeCmStarTrace(cmStarApplicationA(),
                                 kClusters * kPesPerCluster, 2000, 5);
    double cycles = 0.0;
    for (auto _ : state) {
        hier::HierConfig config;
        config.num_clusters = kClusters;
        config.pes_per_cluster = kPesPerCluster;
        config.cache_lines = 256;
        config.protocol = ProtocolKind::Rb;
        config.shards = static_cast<int>(state.range(0));
        hier::HierSystem system(config);
        system.loadTrace(trace);
        cycles += static_cast<double>(system.run());
    }
    state.counters["sim_cycles_per_sec"] =
        benchmark::Counter(cycles, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HierShardThroughput)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

// Not DDC_BENCH_MAIN: this bench measures the simulator itself, so it
// forces --timing on -- its JSON is host-dependent on purpose.
int
main(int argc, char **argv)
{
    auto options = ddc::exp::parseSessionArgs(argc, argv);
    options.timing = true;
    // The phase-split columns (tick ms / barrier ms) come from the
    // kernel self-profile; force it on like --timing -- this bench's
    // output is host-dependent on purpose.
    options.profile = true;
    ddc::obs::setPhaseProfilingEnabled(true);
    ddc::exp::Session session(options);
    printReproduction(session);
    std::cout.flush();
    if (!session.writeJson()) {
        std::cerr << argv[0] << ": cannot write " << options.json_path
                  << "\n";
        return 1;
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
