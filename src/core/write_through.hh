/**
 * @file
 * Write-through-with-invalidate — the classical pre-1984 baseline.
 *
 * Two states (Valid / Invalid).  Every write goes over the bus and
 * invalidates all other copies; no read broadcast, no intervention
 * (memory is always current).  This is the scheme the paper's schemes
 * are designed to beat on shared-data reference patterns.
 */

#ifndef DDC_CORE_WRITE_THROUGH_HH
#define DDC_CORE_WRITE_THROUGH_HH

#include "core/protocol.hh"

namespace ddc {

/** Classic write-through-invalidate snooping protocol. */
class WriteThroughProtocol : public Protocol
{
  public:
    std::string_view name() const override { return "WriteThrough"; }
    bool broadcastsWrites() const override { return false; }

    CpuReaction onCpuAccess(LineState state, CpuOp op,
                            DataClass cls) const override;
    LineState afterBusOp(LineState state, BusOp op,
                         bool rmw_success) const override;
    SnoopReaction onSnoop(LineState state, BusOp op) const override;
    LineState afterSupply(LineState state) const override;
    bool needsWriteback(LineState state) const override;
};

} // namespace ddc

#endif // DDC_CORE_WRITE_THROUGH_HH
