/**
 * @file
 * Main-memory module (one bank per shared bus).
 *
 * Sparse word-addressed storage plus the per-word lock map that
 * implements the paper's two-phase read-modify-write: a "read with
 * lock" locks the word and "any bus writes before the unlock will
 * fail" (Section 3).
 *
 * Both maps are FlatMaps (base/flat_map.hh): every memory access on
 * the per-transaction hot path is a linear probe over flat slots
 * (the lock map's unlock exercises backward-shift deletion), not an
 * unordered_map node walk.
 */

#ifndef DDC_SIM_MEMORY_HH
#define DDC_SIM_MEMORY_HH

#include <algorithm>
#include <vector>

#include "base/flat_map.hh"
#include "base/types.hh"
#include "sim/memory_side.hh"
#include "stats/counter.hh"

namespace ddc {

/** One interleaved main-memory bank. */
class Memory : public MemorySide
{
  public:
    /** @param stats Counter set receiving memory.read / memory.write. */
    explicit Memory(stats::CounterSet &stats);

    /** Read a word (uninitialized words read as zero). */
    Word read(Addr addr);

    /** Write a word; data must not exceed kMaxDataValue. */
    void write(Addr addr, Word data);

    /** Read @p count consecutive words starting at @p base. */
    std::vector<Word> readBlock(Addr base, std::size_t count);

    /** Write @p block starting at @p base. */
    void writeBlock(Addr base, const std::vector<Word> &block);

    /** Non-counting read for inspection by tests and benches. */
    Word peek(Addr addr) const;

    /**
     * Overwrite a word directly, bypassing the bus and statistics.
     * Fault-injection / test hook only (models e.g. a bit flip).
     */
    void poke(Addr addr, Word data);

    /** True when @p addr is locked by a PE other than @p pe. */
    bool lockedByOther(Addr addr, PeId pe) const;

    /** Lock @p addr on behalf of @p pe (must not be locked by another). */
    void lock(Addr addr, PeId pe);

    /** Unlock @p addr (must be held by @p pe). */
    void unlock(Addr addr, PeId pe);

    /** True when any PE holds a lock on @p addr. */
    bool locked(Addr addr) const;

    // MemorySide interface: memory always services synchronously,
    // NACKing only lock-violating writes and RMW-class ops.
    bool tryRead(Addr addr, PeId pe, Word &data) override;
    bool tryReadBlock(Addr base, std::size_t words, PeId pe,
                      std::vector<Word> &block) override;
    bool tryWrite(Addr addr, PeId pe, Word data) override;
    bool tryWriteBlock(Addr base, PeId pe,
                       const std::vector<Word> &block) override;
    bool tryRmw(Addr addr, PeId pe, Word set_value, Word &old,
                bool &success) override;
    bool tryReadLock(Addr addr, PeId pe, Word &data) override;
    bool tryWriteUnlock(Addr addr, PeId pe, Word data) override;
    void acceptSupply(Addr addr, Word data) override;
    void acceptSupplyBlock(Addr base,
                           const std::vector<Word> &block) override;

    /**
     * Highest load factor either backing table ever reached (words or
     * locks, whichever peaked higher) — the flat-map health metric
     * surfaced per run in directory mode.
     */
    double
    peakLoadFactor() const
    {
        return std::max(words.peakLoadFactor(), locks.peakLoadFactor());
    }

  private:
    FlatMap<Addr, Word> words;
    FlatMap<Addr, PeId> locks;
    stats::CounterSet &stats;
    /** Handles interned once at construction (hot-path adds). */
    stats::CounterId statRead, statWrite, statBlockRead, statBlockWrite;
};

} // namespace ddc

#endif // DDC_SIM_MEMORY_HH
