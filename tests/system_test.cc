/**
 * @file
 * Integration tests of the full System: trace-driven runs, coherence
 * across caches, statistics plumbing, and the execution log.
 */

#include <gtest/gtest.h>

#include "core/simulator.hh"
#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace ddc {
namespace {

TEST(System, TraceRunCompletes)
{
    SystemConfig config;
    config.num_pes = 4;
    config.cache_lines = 64;
    config.protocol = ProtocolKind::Rb;

    auto trace = makeUniformRandomTrace(4, 200, 16, 0.3, 0.0, 1);
    System system(config);
    system.loadTrace(trace);
    system.run();
    EXPECT_TRUE(system.allDone());
    EXPECT_GT(system.now(), 0u);
}

TEST(System, TraceWithFewerStreamsThanPes)
{
    SystemConfig config;
    config.num_pes = 4;
    Trace trace(2);
    trace.append(0, {CpuOp::Write, 1, 5, DataClass::Shared});
    System system(config);
    system.loadTrace(trace);
    system.run();
    EXPECT_TRUE(system.allDone());
    EXPECT_EQ(system.memoryValue(1), 5u);
}

TEST(System, SingleWriterPropagatesToReaders)
{
    SystemConfig config;
    config.num_pes = 3;
    config.protocol = ProtocolKind::Rb;

    Trace trace(3);
    trace.append(0, {CpuOp::Write, 10, 42, DataClass::Shared});
    // Readers spin-read the address enough times to land after the write.
    for (int i = 0; i < 50; i++) {
        trace.append(1, {CpuOp::Read, 10, 0, DataClass::Shared});
        trace.append(2, {CpuOp::Read, 10, 0, DataClass::Shared});
    }
    System system(config);
    system.loadTrace(trace);
    system.run();
    ASSERT_TRUE(system.allDone());
    EXPECT_EQ(system.memoryValue(10), 42u);
    // Final copies agree with memory.
    for (PeId pe = 1; pe < 3; pe++) {
        if (system.lineState(pe, 10).present()) {
            EXPECT_EQ(system.cacheValue(pe, 10), 42u);
        }
    }
}

TEST(System, CountersAggregateAcrossComponents)
{
    SystemConfig config;
    config.num_pes = 2;
    auto trace = makeUniformRandomTrace(2, 100, 8, 0.5, 0.0, 2);
    System system(config);
    system.loadTrace(trace);
    system.run();
    auto counters = system.counters();
    EXPECT_EQ(counters.get("cache.refs"), 200u);
    EXPECT_GT(counters.get("bus.busy_cycles"), 0u);
    EXPECT_GT(counters.get("memory.write"), 0u);
}

TEST(System, ExecutionLogRecordsAllRefs)
{
    SystemConfig config;
    config.num_pes = 2;
    config.record_log = true;
    auto trace = makeUniformRandomTrace(2, 50, 8, 0.5, 0.1, 3);
    System system(config);
    system.loadTrace(trace);
    system.run();
    EXPECT_EQ(system.log().size(), trace.totalRefs());
    // Sequence numbers are dense and increasing.
    for (std::size_t i = 0; i < system.log().size(); i++)
        EXPECT_EQ(system.log().all()[i].seq, i);
}

TEST(System, LogDisabledByDefault)
{
    SystemConfig config;
    config.num_pes = 2;
    auto trace = makeUniformRandomTrace(2, 20, 8, 0.5, 0.0, 4);
    System system(config);
    system.loadTrace(trace);
    system.run();
    EXPECT_TRUE(system.log().empty());
}

TEST(System, RunStopsAtMaxCycles)
{
    SystemConfig config;
    config.num_pes = 1;
    System system(config);
    ProgramBuilder builder;
    system.setProgram(0, builder.label("spin").jump("spin").build());
    Cycle executed = system.run(100);
    EXPECT_EQ(executed, 100u);
    EXPECT_FALSE(system.allDone());
}

TEST(System, RejectsOversizedTrace)
{
    SystemConfig config;
    config.num_pes = 1;
    System system(config);
    Trace trace(2);
    EXPECT_DEATH(system.loadTrace(trace), "more PE streams");
}

TEST(System, TotalBusTransactionsMatchesBusyCycles)
{
    SystemConfig config;
    config.num_pes = 2;
    auto trace = makeUniformRandomTrace(2, 100, 8, 0.4, 0.0, 5);
    System system(config);
    system.loadTrace(trace);
    system.run();
    EXPECT_EQ(system.totalBusTransactions(),
              system.busCounters(0).get("bus.busy_cycles"));
}

TEST(RunTraceFacade, SummaryFieldsPopulated)
{
    SystemConfig config;
    config.num_pes = 4;
    config.protocol = ProtocolKind::Rwb;
    auto trace = makeUniformRandomTrace(4, 200, 16, 0.3, 0.05, 6);
    auto summary = runTrace(config, trace, /*check_consistency=*/true);
    EXPECT_TRUE(summary.completed);
    EXPECT_TRUE(summary.consistent);
    EXPECT_EQ(summary.total_refs, trace.totalRefs());
    EXPECT_GT(summary.bus_transactions, 0u);
    EXPECT_GT(summary.bus_per_ref, 0.0);
    EXPECT_FALSE(describe(summary).empty());
}

TEST(RunTraceFacade, GrowsPeCountToTrace)
{
    SystemConfig config;
    config.num_pes = 1;
    auto trace = makeUniformRandomTrace(3, 20, 8, 0.5, 0.0, 7);
    auto summary = runTrace(config, trace);
    EXPECT_TRUE(summary.completed);
}

TEST(System, DeterministicAcrossRuns)
{
    SystemConfig config;
    config.num_pes = 4;
    config.protocol = ProtocolKind::Rwb;
    auto trace = makeUniformRandomTrace(4, 300, 12, 0.4, 0.1, 8);

    auto a = runTrace(config, trace);
    auto b = runTrace(config, trace);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.bus_transactions, b.bus_transactions);
    EXPECT_EQ(a.counters.report(), b.counters.report());
}

} // namespace
} // namespace ddc
