#include "sim/bus.hh"

#include <string>

#include "base/logging.hh"

namespace ddc {

namespace {

std::string_view
statName(BusOp op)
{
    switch (op) {
      case BusOp::Read:        return "bus.read";
      case BusOp::Write:       return "bus.write";
      case BusOp::Invalidate:  return "bus.invalidate";
      case BusOp::Rmw:         return "bus.rmw";
      case BusOp::ReadLock:    return "bus.readlock";
      case BusOp::WriteUnlock: return "bus.writeunlock";
    }
    return "bus.unknown";
}

std::size_t
opIndex(BusOp op)
{
    return static_cast<std::size_t>(op);
}

} // namespace

Bus::Bus(MemorySide &memory, ArbiterKind arbiter_kind, const Clock &clock,
         stats::CounterSet &stats, std::uint64_t seed,
         std::size_t block_words, std::size_t memory_latency)
    : memory(memory), arbiter(makeArbiter(arbiter_kind, seed)),
      clock(clock), stats(stats), blockSize(block_words),
      memoryLatency(memory_latency)
{
    ddc_assert(block_words >= 1, "block size must be at least one word");
    statBusy = stats.intern("bus.busy_cycles");
    statTransfer = stats.intern("bus.transfer_cycles");
    statIdle = stats.intern("bus.idle_cycles");
    statKill = stats.intern("bus.kill");
    statSupplyWrite = stats.intern("bus.supply_write");
    statRmwSuccess = stats.intern("bus.rmw_success");
    statRmwFail = stats.intern("bus.rmw_fail");
    statNack = stats.intern("bus.nack");
    for (auto op : {BusOp::Read, BusOp::Write, BusOp::Invalidate,
                    BusOp::Rmw, BusOp::ReadLock, BusOp::WriteUnlock}) {
        statOp[opIndex(op)] = stats.intern(statName(op));
        statNackOp[opIndex(op)] = stats.intern(
            "bus.nack." + std::string(toString(op)));
    }
}

int
Bus::attach(BusClient *client)
{
    ddc_assert(client != nullptr, "null bus client");
    clients.push_back(client);
    armed.push_back(1);
    armedCount++;
    suppliers.push_back(1);
    supplierCount++;
    return static_cast<int>(clients.size()) - 1;
}

void
Bus::setSupplier(int client, bool is_supplier)
{
    auto index = static_cast<std::size_t>(client);
    ddc_assert(index < clients.size(), "bad bus client index ", client);
    char flag = is_supplier ? 1 : 0;
    if (suppliers[index] == flag)
        return;
    suppliers[index] = flag;
    if (is_supplier)
        supplierCount++;
    else
        supplierCount--;
}

void
Bus::setRequestArmed(int client, bool is_armed)
{
    auto index = static_cast<std::size_t>(client);
    ddc_assert(index < clients.size(), "bad bus client index ", client);
    char flag = is_armed ? 1 : 0;
    if (armed[index] == flag)
        return;
    armed[index] = flag;
    if (is_armed)
        armedCount++;
    else
        armedCount--;
}

const std::vector<int> &
Bus::collectRequesters()
{
    requesters.clear();
    if (armedCount == 0)
        return requesters;
    for (std::size_t i = 0; i < clients.size(); i++) {
        if (armed[i] && clients[i]->hasRequest())
            requesters.push_back(static_cast<int>(i));
    }
    return requesters;
}

bool
Bus::idle()
{
    if (transferCyclesLeft > 0)
        return false;
    return collectRequesters().empty();
}

void
Bus::occupy(std::size_t extra_cycles)
{
    transferCyclesLeft += extra_cycles;
}

void
Bus::skipCycles(Cycle count)
{
    // Streaming past the end of the in-flight transfer is only legal
    // when no client could have requested the freed bus.
    ddc_assert(count <= static_cast<Cycle>(transferCyclesLeft) ||
                   armedCount == 0,
               "skipped across a bus grant opportunity");
    auto streamed = std::min(count,
                             static_cast<Cycle>(transferCyclesLeft));
    if (streamed > 0) {
        transferCyclesLeft -= static_cast<std::size_t>(streamed);
        stats.add(statBusy, streamed);
        stats.add(statTransfer, streamed);
    }
    if (count > streamed)
        stats.add(statIdle, count - streamed);
}

void
Bus::tick()
{
    if (transferCyclesLeft > 0) {
        // A multi-cycle transfer is still streaming over the bus.
        transferCyclesLeft--;
        stats.add(statBusy);
        stats.add(statTransfer);
        return;
    }

    const std::vector<int> &ready = collectRequesters();
    if (ready.empty()) {
        stats.add(statIdle);
        return;
    }
    stats.add(statBusy);

    int grant = arbiter->pick(ready);
    BusRequest request = clients[static_cast<std::size_t>(grant)]
                             ->currentRequest();

    switch (request.op) {
      case BusOp::Read:
      case BusOp::ReadLock:
      case BusOp::Rmw:
        executeReadLike(grant, request);
        break;
      case BusOp::Write:
      case BusOp::WriteUnlock:
      case BusOp::Invalidate:
        executeWriteLike(grant, request);
        break;
    }
}

void
Bus::executeReadLike(int grant, const BusRequest &request)
{
    auto *grantee = clients[static_cast<std::size_t>(grant)];

    // Snoop phase: does a cache hold the latest value (Local state)?
    int supplier = -1;
    Word supplied_value = 0;
    for (std::size_t i = 0; supplierCount > 0 && i < clients.size(); i++) {
        if (static_cast<int>(i) == grant || !suppliers[i])
            continue;
        Word value = 0;
        if (clients[i]->wouldSupply(request.addr, value)) {
            ddc_assert(supplier < 0,
                       "two caches claim ownership of addr ", request.addr,
                       " (single-Local invariant violated)");
            supplier = static_cast<int>(i);
            supplied_value = value;
        }
    }

    if (supplier >= 0) {
        // Kill the transaction and replace it with the owner's bus
        // write; the original request stays pending and retries.
        auto *owner = clients[static_cast<std::size_t>(supplier)];
        stats.add(statKill);
        stats.add(statSupplyWrite);
        stats.add(statOp[opIndex(BusOp::Write)]);

        BusTransaction txn{BusOp::Write, request.addr, supplied_value,
                           supplier, {}};
        if (blockSize > 1) {
            Addr base = blockBase(request.addr);
            txn.block = owner->supplyBlock(request.addr);
            ddc_assert(txn.block.size() == blockSize,
                       "supplier returned a malformed block");
            memory.acceptSupplyBlock(base, txn.block);
            occupy(blockCost());
        } else {
            memory.acceptSupply(request.addr, supplied_value);
            occupy(wordCost());
        }
        broadcast(txn, supplier);
        owner->supplied(request.addr);
        return;
    }

    PeId pe = grantee->peId();
    switch (request.op) {
      case BusOp::Read: {
        if (request.block_transfer && blockSize > 1) {
            Addr base = blockBase(request.addr);
            BusResult result;
            if (!memory.tryReadBlock(base, blockSize, pe, result.block)) {
                nack(grant, request);
                return;
            }
            stats.add(statOp[opIndex(request.op)]);
            result.data =
                result.block[static_cast<std::size_t>(request.addr -
                                                      base)];
            occupy(blockCost());
            BusTransaction txn{BusOp::Read, request.addr, result.data,
                               grant, result.block};
            broadcast(txn, grant);
            grantee->requestComplete(result);
        } else {
            Word data = 0;
            if (!memory.tryRead(request.addr, pe, data)) {
                nack(grant, request);
                return;
            }
            stats.add(statOp[opIndex(request.op)]);
            occupy(wordCost());
            broadcast({BusOp::Read, request.addr, data, grant, {}},
                      grant);
            grantee->requestComplete({data, false, {}});
        }
        return;
      }
      case BusOp::ReadLock: {
        Word data = 0;
        if (!memory.tryReadLock(request.addr, pe, data)) {
            nack(grant, request);
            return;
        }
        stats.add(statOp[opIndex(request.op)]);
        occupy(wordCost());
        broadcast({BusOp::Read, request.addr, data, grant, {}}, grant);
        grantee->requestComplete({data, false, {}});
        return;
      }
      case BusOp::Rmw: {
        Word old = 0;
        bool success = false;
        if (!memory.tryRmw(request.addr, pe, request.data, old, success)) {
            nack(grant, request);
            return;
        }
        stats.add(statOp[opIndex(request.op)]);
        occupy(wordCost());
        if (success) {
            stats.add(statRmwSuccess);
            broadcast({BusOp::Write, request.addr, request.data, grant,
                       {}},
                      grant);
            grantee->requestComplete({old, true, {}});
        } else {
            stats.add(statRmwFail);
            broadcast({BusOp::Read, request.addr, old, grant, {}}, grant);
            grantee->requestComplete({old, false, {}});
        }
        return;
      }
      default:
        break;
    }
    ddc_panic("unreachable");
}

void
Bus::executeWriteLike(int grant, const BusRequest &request)
{
    auto *grantee = clients[static_cast<std::size_t>(grant)];
    PeId pe = grantee->peId();

    BusTransaction txn;
    txn.addr = request.addr;
    txn.data = request.data;
    txn.issuer = grant;
    // Snoopers see the RWB BI signal as-is and everything else as an
    // effective bus write.
    txn.op = request.op == BusOp::Invalidate ? BusOp::Invalidate
                                             : BusOp::Write;

    if (request.block_transfer && blockSize > 1) {
        // Write-back / flush of a whole dirty block.
        ddc_assert(request.block_data.size() == blockSize,
                   "malformed block write");
        if (!memory.tryWriteBlock(blockBase(request.addr), pe,
                                  request.block_data)) {
            nack(grant, request);
            return;
        }
        txn.block = request.block_data;
        occupy(blockCost());
    } else if (request.op == BusOp::WriteUnlock) {
        if (!memory.tryWriteUnlock(request.addr, pe, request.data)) {
            nack(grant, request);
            return;
        }
        occupy(wordCost());
    } else if (request.op == BusOp::Invalidate) {
        if (!memory.tryInvalidate(request.addr, pe, request.data)) {
            nack(grant, request);
            return;
        }
        occupy(wordCost());
    } else {
        if (!memory.tryWrite(request.addr, pe, request.data)) {
            // "Any bus writes before the unlock will fail" (Section 3).
            nack(grant, request);
            return;
        }
        occupy(wordCost());
    }

    stats.add(statOp[opIndex(request.op)]);
    broadcast(txn, grant);
    grantee->requestComplete({request.data, false, {}});
}

void
Bus::broadcast(const BusTransaction &txn, int skip)
{
    for (std::size_t i = 0; i < clients.size(); i++) {
        if (static_cast<int>(i) != skip)
            clients[i]->observe(txn);
    }
}

void
Bus::nack(int grant, const BusRequest &request)
{
    stats.add(statNack);
    stats.add(statNackOp[opIndex(request.op)]);
    clients[static_cast<std::size_t>(grant)]->requestNacked();
}

} // namespace ddc
