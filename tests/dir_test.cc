/**
 * @file
 * Unit tests for the directory coherence layer (src/dir): the compact
 * sharer set (bitmap + overflow vector), the per-home directory map,
 * the home-node state machine — grant execution, sharer recording,
 * owner forward / kill / supply, invalidate-ack collection, writeback
 * demotion, NACKs on locked words, overflow past the 64-sharer bitmap
 * — and the fabric's address-interleaved routing and skip support.
 */

#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <vector>

#include "dir/directory.hh"
#include "dir/fabric.hh"
#include "dir/home_node.hh"
#include "dir/sharer_set.hh"
#include "sim/bus.hh"
#include "stats/counter.hh"

namespace ddc {
namespace dir {
namespace {

// ---------------------------------------------------------------- //
//  SharerSet                                                       //
// ---------------------------------------------------------------- //

TEST(SharerSetTest, AddRemoveContainsWithinBitmap)
{
    SharerSet set;
    EXPECT_TRUE(set.empty());
    EXPECT_TRUE(set.add(0));
    EXPECT_TRUE(set.add(5));
    EXPECT_TRUE(set.add(63));
    EXPECT_EQ(set.count(), 3u);
    EXPECT_TRUE(set.contains(0));
    EXPECT_TRUE(set.contains(5));
    EXPECT_TRUE(set.contains(63));
    EXPECT_FALSE(set.contains(1));
    EXPECT_FALSE(set.overflowed());

    EXPECT_TRUE(set.remove(5));
    EXPECT_FALSE(set.contains(5));
    EXPECT_EQ(set.count(), 2u);
}

TEST(SharerSetTest, DuplicateAddAndMissingRemoveReportFalse)
{
    SharerSet set;
    EXPECT_TRUE(set.add(7));
    EXPECT_FALSE(set.add(7));
    EXPECT_EQ(set.count(), 1u);
    EXPECT_FALSE(set.remove(8));
    EXPECT_TRUE(set.remove(7));
    EXPECT_FALSE(set.remove(7));
    EXPECT_TRUE(set.empty());

    // Same contract past the bitmap boundary.
    EXPECT_TRUE(set.add(100));
    EXPECT_FALSE(set.add(100));
    EXPECT_FALSE(set.remove(101));
    EXPECT_TRUE(set.remove(100));
    EXPECT_TRUE(set.empty());
}

TEST(SharerSetTest, OverflowIdsPastTheBitmap)
{
    SharerSet set;
    EXPECT_TRUE(set.add(64));
    EXPECT_TRUE(set.add(200));
    EXPECT_TRUE(set.add(127));
    EXPECT_TRUE(set.overflowed());
    EXPECT_EQ(set.count(), 3u);
    EXPECT_TRUE(set.contains(64));
    EXPECT_TRUE(set.contains(127));
    EXPECT_TRUE(set.contains(200));
    EXPECT_FALSE(set.contains(65));

    EXPECT_TRUE(set.remove(127));
    EXPECT_FALSE(set.contains(127));
    EXPECT_EQ(set.count(), 2u);
    EXPECT_TRUE(set.overflowed());
}

TEST(SharerSetTest, ForEachVisitsAscendingAcrossTheBoundary)
{
    SharerSet set;
    // Inserted out of order, straddling the bitmap/overflow boundary.
    for (int id : {70, 3, 64, 0, 63, 100, 31})
        EXPECT_TRUE(set.add(id));

    std::vector<int> seen;
    set.forEach([&](int id) { seen.push_back(id); });
    EXPECT_EQ(seen, (std::vector<int>{0, 3, 31, 63, 64, 70, 100}));
}

TEST(SharerSetTest, ClearEmptiesBothHalves)
{
    SharerSet set;
    set.add(1);
    set.add(90);
    set.clear();
    EXPECT_TRUE(set.empty());
    EXPECT_EQ(set.count(), 0u);
    EXPECT_FALSE(set.contains(1));
    EXPECT_FALSE(set.contains(90));
    EXPECT_FALSE(set.overflowed());
}

// ---------------------------------------------------------------- //
//  Directory                                                       //
// ---------------------------------------------------------------- //

TEST(DirectoryTest, EnsureLookupAndBlockCount)
{
    Directory dir;
    EXPECT_EQ(dir.blocks(), 0u);
    EXPECT_EQ(dir.lookup(10), nullptr);

    DirEntry &entry = dir.ensure(10);
    EXPECT_EQ(entry.owner, -1);
    EXPECT_TRUE(entry.sharers.empty());
    EXPECT_EQ(dir.blocks(), 1u);

    entry.owner = 2;
    entry.sharers.add(2);
    DirEntry *found = dir.lookup(10);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->owner, 2);
    EXPECT_TRUE(found->sharers.contains(2));

    const Directory &cdir = dir;
    ASSERT_NE(cdir.lookup(10), nullptr);
    EXPECT_EQ(cdir.lookup(11), nullptr);

    dir.ensure(10); // idempotent
    EXPECT_EQ(dir.blocks(), 1u);
}

// ---------------------------------------------------------------- //
//  HomeNode                                                        //
// ---------------------------------------------------------------- //

/** Scriptable fabric client recording everything a home does to it. */
class FakeClient : public BusClient
{
  public:
    explicit FakeClient(PeId pe) : pe(pe) {}

    bool hasRequest() override { return !requests.empty(); }

    BusRequest currentRequest() override { return requests.front(); }

    void
    requestComplete(const BusResult &result) override
    {
        completions.push_back(result);
        requests.pop_front();
    }

    bool
    wouldSupply(Addr addr, Word &value) override
    {
        if (supply_addr && *supply_addr == addr) {
            value = supply_value;
            return true;
        }
        return false;
    }

    void observe(const BusTransaction &txn) override
    {
        observed.push_back(txn);
    }

    void
    supplied(Addr addr) override
    {
        supplied_addrs.push_back(addr);
        // The real cluster cache demotes to Readable after supplying:
        // its value now matches home memory, so it stops offering.
        supply_addr.reset();
    }

    void requestNacked() override { nacks++; }
    void requestKilled() override { kills++; }

    PeId peId() const override { return pe; }

    Addr pendingAddr() const override { return requests.front().addr; }

    void push(BusRequest request) { requests.push_back(request); }

    PeId pe;
    std::deque<BusRequest> requests;
    std::vector<BusResult> completions;
    std::vector<BusTransaction> observed;
    std::vector<Addr> supplied_addrs;
    std::optional<Addr> supply_addr;
    Word supply_value = 0;
    int nacks = 0;
    int kills = 0;
};

BusRequest
makeRequest(BusOp op, Addr addr, Word data = 0, bool writeback = false)
{
    BusRequest request;
    request.op = op;
    request.addr = addr;
    request.data = data;
    request.writeback = writeback;
    return request;
}

class HomeNodeTest : public ::testing::Test
{
  protected:
    HomeNodeTest() : home(0, ArbiterKind::RoundRobin, 1, stats)
    {
        for (PeId pe = 0; pe < 3; pe++)
            storage.emplace_back(pe);
        for (auto &client : storage)
            clients.push_back(&client);
    }

    /** Post @p client's pending request and run one home cycle. */
    void
    serve(int client)
    {
        home.clearInbox();
        home.post(client);
        home.tick(clients, visits);
    }

    stats::CounterSet stats;
    HomeNode home;
    std::deque<FakeClient> storage;
    std::vector<BusClient *> clients;
    std::uint64_t visits = 0;
};

TEST_F(HomeNodeTest, IdleCycleWhenInboxEmpty)
{
    home.clearInbox();
    home.tick(clients, visits);
    EXPECT_EQ(stats.get("bus.idle_cycles"), 1u);
    EXPECT_EQ(stats.get("bus.busy_cycles"), 0u);

    home.countIdle(5);
    EXPECT_EQ(stats.get("bus.idle_cycles"), 6u);
}

TEST_F(HomeNodeTest, ReadRecordsSharerAndCompletes)
{
    home.memoryBank().write(10, 77);
    storage[0].push(makeRequest(BusOp::Read, 10));
    serve(0);

    ASSERT_EQ(storage[0].completions.size(), 1u);
    EXPECT_EQ(storage[0].completions[0].data, 77u);
    const DirEntry *entry = home.directory().lookup(10);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->owner, -1);
    EXPECT_EQ(entry->sharers.count(), 1u);
    EXPECT_TRUE(entry->sharers.contains(0));
    EXPECT_EQ(stats.get("bus.read"), 1u);
    EXPECT_EQ(stats.get("dir.msg.request"), 1u);
    // No other sharer: zero point-to-point deliveries.
    EXPECT_EQ(visits, 0u);
}

TEST_F(HomeNodeTest, ReadDeliversUpdatesToRecordedSharersOnly)
{
    storage[0].push(makeRequest(BusOp::Read, 10));
    serve(0);
    storage[1].push(makeRequest(BusOp::Read, 10));
    serve(1);

    // Only the one recorded sharer saw the second read; client 2,
    // which holds nothing, was never visited.
    ASSERT_EQ(storage[0].observed.size(), 1u);
    EXPECT_EQ(storage[0].observed[0].op, BusOp::Read);
    EXPECT_EQ(storage[0].observed[0].issuer, 1);
    EXPECT_TRUE(storage[2].observed.empty());
    EXPECT_EQ(stats.get("dir.msg.update"), 1u);
    EXPECT_EQ(visits, 1u);

    const DirEntry *entry = home.directory().lookup(10);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->sharers.count(), 2u);
}

TEST_F(HomeNodeTest, WriteInvalidatesSharersAndTakesOwnership)
{
    storage[0].push(makeRequest(BusOp::Read, 10));
    serve(0);
    storage[1].push(makeRequest(BusOp::Read, 10));
    serve(1);
    std::uint64_t visits_before = visits;

    storage[2].push(makeRequest(BusOp::Write, 10, 9));
    serve(2);

    ASSERT_EQ(storage[2].completions.size(), 1u);
    EXPECT_EQ(home.memoryBank().peek(10), 9u);
    for (int i : {0, 1}) {
        ASSERT_FALSE(storage[i].observed.empty());
        EXPECT_EQ(storage[i].observed.back().op, BusOp::Write);
        EXPECT_EQ(storage[i].observed.back().data, 9u);
        EXPECT_EQ(storage[i].observed.back().issuer, 2);
    }
    EXPECT_EQ(stats.get("dir.msg.inval"), 2u);
    EXPECT_EQ(stats.get("dir.msg.ack"), 2u);
    EXPECT_EQ(visits, visits_before + 2);

    const DirEntry *entry = home.directory().lookup(10);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->owner, 2);
    EXPECT_EQ(entry->sharers.count(), 1u);
    EXPECT_TRUE(entry->sharers.contains(2));
}

TEST_F(HomeNodeTest, OwnerForwardKillsAndRepublishes)
{
    storage[0].push(makeRequest(BusOp::Write, 20, 5));
    serve(0);
    ASSERT_EQ(home.directory().lookup(20)->owner, 0);
    // The owner's cluster-internal copy has moved past home memory.
    storage[0].supply_addr = 20;
    storage[0].supply_value = 8;

    storage[1].push(makeRequest(BusOp::Read, 20));
    serve(1);

    // First grant: killed, owner forwarded, value republished.
    EXPECT_EQ(storage[1].kills, 1);
    EXPECT_TRUE(storage[1].completions.empty());
    EXPECT_TRUE(storage[1].hasRequest()); // still pending, will retry
    ASSERT_EQ(storage[0].supplied_addrs.size(), 1u);
    EXPECT_EQ(storage[0].supplied_addrs[0], 20u);
    EXPECT_EQ(home.memoryBank().peek(20), 8u);
    EXPECT_EQ(stats.get("dir.msg.fwd"), 1u);
    EXPECT_EQ(stats.get("bus.kill"), 1u);
    EXPECT_EQ(stats.get("bus.supply_write"), 1u);
    const DirEntry *entry = home.directory().lookup(20);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->owner, -1); // demoted, but still a sharer
    EXPECT_TRUE(entry->sharers.contains(0));

    // Retry: the read now completes against current home memory.
    serve(1);
    ASSERT_EQ(storage[1].completions.size(), 1u);
    EXPECT_EQ(storage[1].completions[0].data, 8u);
    EXPECT_EQ(entry->sharers.count(), 2u);
    ASSERT_FALSE(storage[0].observed.empty());
    EXPECT_EQ(storage[0].observed.back().op, BusOp::Read);
}

TEST_F(HomeNodeTest, WritebackDemotesOwnerButKeepsEntry)
{
    storage[0].push(makeRequest(BusOp::Write, 30, 1));
    serve(0);
    ASSERT_EQ(home.directory().lookup(30)->owner, 0);

    storage[0].push(makeRequest(BusOp::Write, 30, 2, true));
    serve(0);

    ASSERT_EQ(storage[0].completions.size(), 2u);
    EXPECT_EQ(home.memoryBank().peek(30), 2u);
    const DirEntry *entry = home.directory().lookup(30);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->owner, -1);
    EXPECT_EQ(entry->sharers.count(), 1u);
    EXPECT_TRUE(entry->sharers.contains(0));
    EXPECT_EQ(stats.get("dir.msg.inval"), 0u);
}

TEST_F(HomeNodeTest, NackOnLockedWordLeavesDirectoryUntouched)
{
    storage[0].push(makeRequest(BusOp::ReadLock, 40));
    serve(0);
    ASSERT_EQ(storage[0].completions.size(), 1u);

    storage[1].push(makeRequest(BusOp::Write, 40, 7));
    serve(1);
    EXPECT_EQ(storage[1].nacks, 1);
    EXPECT_TRUE(storage[1].completions.empty());
    EXPECT_TRUE(storage[1].hasRequest());
    EXPECT_EQ(stats.get("bus.nack"), 1u);
    EXPECT_EQ(stats.get("bus.nack.BusWrite"), 1u);
    EXPECT_EQ(home.memoryBank().peek(40), 0u);
    const DirEntry *entry = home.directory().lookup(40);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->owner, -1);
    EXPECT_EQ(entry->sharers.count(), 1u);

    storage[0].push(makeRequest(BusOp::WriteUnlock, 40, 3));
    serve(0);
    EXPECT_EQ(home.memoryBank().peek(40), 3u);

    // The blocked write retries and now succeeds, invalidating the
    // unlocker's copy.
    serve(1);
    ASSERT_EQ(storage[1].completions.size(), 1u);
    EXPECT_EQ(home.memoryBank().peek(40), 7u);
    EXPECT_EQ(entry->owner, 1);
    EXPECT_EQ(entry->sharers.count(), 1u);
    EXPECT_TRUE(entry->sharers.contains(1));
}

TEST_F(HomeNodeTest, RmwResolvesSuccessAndFailure)
{
    storage[0].push(makeRequest(BusOp::Rmw, 50, 1));
    serve(0);
    ASSERT_EQ(storage[0].completions.size(), 1u);
    EXPECT_TRUE(storage[0].completions[0].rmw_success);
    EXPECT_EQ(storage[0].completions[0].data, 0u); // observed old value
    EXPECT_EQ(stats.get("bus.rmw_success"), 1u);
    const DirEntry *entry = home.directory().lookup(50);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->owner, 0);

    // The winner's copy is the latest; a second TS must forward first
    // (kill path), then fail as a read of the set lock.
    storage[0].supply_addr = 50;
    storage[0].supply_value = 1;
    storage[1].push(makeRequest(BusOp::Rmw, 50, 1));
    serve(1);
    EXPECT_EQ(storage[1].kills, 1);
    EXPECT_TRUE(storage[1].hasRequest());
    EXPECT_EQ(entry->owner, -1);

    serve(1);
    ASSERT_EQ(storage[1].completions.size(), 1u);
    EXPECT_FALSE(storage[1].completions[0].rmw_success);
    EXPECT_EQ(storage[1].completions[0].data, 1u);
    EXPECT_EQ(stats.get("bus.rmw_fail"), 1u);
    EXPECT_EQ(entry->sharers.count(), 2u);
}

/**
 * The scaled configuration: more sharers than the bitmap holds.  The
 * overflow vector must keep membership exact, deliveries ascending,
 * and the invalidate-ack sweep complete.
 */
TEST(HomeNodeScale, SharerOverflowPastSixtyFourClients)
{
    constexpr int kClients = 70;
    stats::CounterSet stats;
    HomeNode home(0, ArbiterKind::RoundRobin, 1, stats);
    std::deque<FakeClient> storage;
    std::vector<BusClient *> clients;
    for (PeId pe = 0; pe < kClients; pe++) {
        storage.emplace_back(pe);
        clients.push_back(&storage.back());
    }
    std::uint64_t visits = 0;
    auto serve = [&](int client) {
        home.clearInbox();
        home.post(client);
        home.tick(clients, visits);
    };

    for (int i = 0; i < kClients; i++) {
        storage[static_cast<std::size_t>(i)].push(
            makeRequest(BusOp::Read, 3));
        serve(i);
    }

    const DirEntry *entry = home.directory().lookup(3);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->sharers.count(), 70u);
    EXPECT_TRUE(entry->sharers.overflowed());
    EXPECT_TRUE(entry->sharers.contains(69));
    EXPECT_EQ(stats.get("dir.sharer_overflow"), 6u); // clients 64..69
    EXPECT_EQ(stats.get("bus.read"), 70u);
    // Reader i updated the i earlier sharers: 0+1+...+69 messages.
    EXPECT_EQ(stats.get("dir.msg.update"), 2415u);
    EXPECT_EQ(visits, 2415u);

    std::vector<int> order;
    entry->sharers.forEach([&](int id) { order.push_back(id); });
    ASSERT_EQ(order.size(), 70u);
    for (int i = 0; i < kClients; i++)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);

    // One write sweeps all 69 other sharers with invalidate + ack.
    storage[0].push(makeRequest(BusOp::Write, 3, 9));
    serve(0);
    EXPECT_EQ(stats.get("dir.msg.inval"), 69u);
    EXPECT_EQ(stats.get("dir.msg.ack"), 69u);
    EXPECT_EQ(visits, 2415u + 69u);
    for (int i = 1; i < kClients; i++) {
        ASSERT_FALSE(storage[static_cast<std::size_t>(i)].observed
                         .empty());
        EXPECT_EQ(storage[static_cast<std::size_t>(i)].observed.back()
                      .op,
                  BusOp::Write);
    }
    EXPECT_EQ(entry->owner, 0);
    EXPECT_EQ(entry->sharers.count(), 1u);
    EXPECT_TRUE(entry->sharers.contains(0));
    EXPECT_FALSE(entry->sharers.overflowed());
}

// ---------------------------------------------------------------- //
//  DirectoryFabric                                                 //
// ---------------------------------------------------------------- //

TEST(DirectoryFabricTest, RoutesRequestsToAddressInterleavedHomes)
{
    stats::CounterSet stats;
    DirectoryFabric fabric(4, ArbiterKind::RoundRobin, 1, stats);
    EXPECT_EQ(fabric.numHomes(), 4);
    EXPECT_EQ(fabric.homeOf(6), 2);
    EXPECT_EQ(fabric.homeOf(9), 1);
    EXPECT_EQ(fabric.blockWords(), 1u);

    std::deque<FakeClient> storage;
    std::vector<BusClient *> clients;
    for (PeId pe = 0; pe < 2; pe++) {
        storage.emplace_back(pe);
        clients.push_back(&storage.back());
        fabric.attach(&storage.back());
    }

    // Two requests to different homes are served in the same cycle.
    storage[0].push(makeRequest(BusOp::Read, 6));
    storage[1].push(makeRequest(BusOp::Read, 9));
    fabric.tick();

    EXPECT_EQ(storage[0].completions.size(), 1u);
    EXPECT_EQ(storage[1].completions.size(), 1u);
    EXPECT_EQ(fabric.home(2).directory().blocks(), 1u);
    EXPECT_EQ(fabric.home(1).directory().blocks(), 1u);
    EXPECT_EQ(fabric.home(0).directory().blocks(), 0u);
    EXPECT_EQ(fabric.home(3).directory().blocks(), 0u);
    EXPECT_EQ(fabric.directoryBlocks(), 2u);
    EXPECT_EQ(stats.get("bus.busy_cycles"), 2u);
    EXPECT_EQ(stats.get("bus.idle_cycles"), 2u);
}

TEST(DirectoryFabricTest, MemoryAccessRoutesToTheHomeBank)
{
    stats::CounterSet stats;
    DirectoryFabric fabric(4, ArbiterKind::RoundRobin, 1, stats);
    fabric.pokeMemory(6, 42);
    EXPECT_EQ(fabric.memoryValue(6), 42u);
    EXPECT_EQ(fabric.home(2).memoryBank().peek(6), 42u);
    for (int h : {0, 1, 3})
        EXPECT_EQ(fabric.home(h).memoryBank().peek(6), 0u);

    std::deque<FakeClient> storage;
    storage.emplace_back(0);
    fabric.attach(&storage.back());
    storage[0].push(makeRequest(BusOp::Read, 6));
    fabric.tick();
    ASSERT_EQ(storage[0].completions.size(), 1u);
    EXPECT_EQ(storage[0].completions[0].data, 42u);
}

TEST(DirectoryFabricTest, ArmingGatesNextEventAndSkip)
{
    stats::CounterSet stats;
    DirectoryFabric fabric(2, ArbiterKind::RoundRobin, 1, stats);
    std::deque<FakeClient> storage;
    for (PeId pe = 0; pe < 2; pe++) {
        storage.emplace_back(pe);
        fabric.attach(&storage.back());
    }

    // Clients attach armed, pinning the fabric to the current cycle.
    EXPECT_EQ(fabric.armedClients(), 2u);
    EXPECT_EQ(fabric.nextEventCycle(5), 5u);

    fabric.setRequestArmed(0, false);
    fabric.setRequestArmed(0, false); // idempotent
    fabric.setRequestArmed(1, false);
    EXPECT_EQ(fabric.armedClients(), 0u);
    EXPECT_EQ(fabric.nextEventCycle(5), kNever);

    fabric.skipCycles(7);
    EXPECT_EQ(stats.get("bus.idle_cycles"), 14u); // 7 per home

    fabric.setRequestArmed(0, true);
    EXPECT_EQ(fabric.armedClients(), 1u);
    EXPECT_EQ(fabric.nextEventCycle(9), 9u);

    // Armed but with nothing pending: every home idles.
    fabric.tick();
    EXPECT_EQ(stats.get("bus.idle_cycles"), 16u);
    EXPECT_EQ(fabric.messageVisits(), 0u);
}

TEST(DirectoryFabricTest, QuiescentRoutingReportsNeverUntilRearmed)
{
    stats::CounterSet stats;
    DirectoryFabric fabric(2, ArbiterKind::RoundRobin, 1, stats);
    std::deque<FakeClient> storage;
    for (PeId pe = 0; pe < 2; pe++) {
        storage.emplace_back(pe);
        fabric.attach(&storage.back());
    }

    // Armed clients with no pending request pin the fabric to `now`
    // only until one routing pass observes the quiescence...
    EXPECT_EQ(fabric.nextEventCycle(3), 3u);
    fabric.tick();
    EXPECT_EQ(stats.get("bus.idle_cycles"), 2u);

    // ...after which it reports kNever, so the skip engine engages
    // even though both clients are still armed.
    EXPECT_EQ(fabric.armedClients(), 2u);
    EXPECT_EQ(fabric.nextEventCycle(4), kNever);
    fabric.skipCycles(5);
    EXPECT_EQ(stats.get("bus.idle_cycles"), 12u); // 5 more per home

    // An arm event re-pins the fabric to `now` (the quiescence
    // contract: new work is announced through setRequestArmed).
    fabric.setRequestArmed(0, false);
    fabric.setRequestArmed(0, true);
    EXPECT_EQ(fabric.nextEventCycle(9), 9u);

    // A routing pass that posts keeps the fabric live at `now`.
    storage[0].push(makeRequest(BusOp::Read, 2));
    fabric.tick();
    EXPECT_EQ(storage[0].completions.size(), 1u);
    EXPECT_EQ(fabric.nextEventCycle(10), 10u);
}

} // namespace
} // namespace dir
} // namespace ddc
