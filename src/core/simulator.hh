/**
 * @file
 * One-call facade over the full simulator stack.
 *
 * Most consumers (examples, benches, sweeps) want: build a machine,
 * run a trace, get the headline numbers.  These helpers package that,
 * optionally with the serial-consistency check enabled.
 */

#ifndef DDC_CORE_SIMULATOR_HH
#define DDC_CORE_SIMULATOR_HH

#include <string>

#include "sim/system.hh"
#include "stats/counter.hh"
#include "trace/trace.hh"

namespace ddc {

/** Headline results of one trace-driven run. */
struct RunSummary
{
    bool completed = false;
    /** Finished vs. timed out (== completed, as an explicit status). */
    RunStatus status = RunStatus::Finished;
    Cycle cycles = 0;
    /**
     * Of cycles, how many the run loop fast-forwarded across
     * quiescent intervals instead of ticking (see SystemConfig::
     * skip_quiescent; 0 with skipping disabled).
     */
    Cycle skipped_cycles = 0;
    std::uint64_t total_refs = 0;
    std::uint64_t bus_transactions = 0;
    /**
     * Broadcast visits + supplier polls across all buses (see
     * Bus::snoopVisits); shrinks with the snoop filter on while every
     * other field stays byte-identical.
     */
    std::uint64_t snoop_visits = 0;
    /**
     * Times any bus silently degraded from sharer-indexed to full
     * snooping (see Bus::snoopFilterFallbacks); 0 on a healthy
     * filtered run, and the run stays correct either way — this
     * surfaces the perf cliff that used to be invisible.
     */
    std::uint64_t snoop_filter_fallbacks = 0;
    /**
     * Host wall-clock milliseconds spent inside the simulation loop
     * proper (System::run), excluding machine construction and trace
     * loading.  The denominator for honest cycles-per-second
     * throughput comparisons; machine-dependent by nature.
     */
    double sim_time_ms = 0.0;
    /** Bus transactions per memory reference. */
    double bus_per_ref = 0.0;
    /** Fraction of references needing the bus at issue time. */
    double miss_ratio = 0.0;
    /** Consistency verdict (true unless checking found a violation). */
    bool consistent = true;
    /** Full merged counter set. */
    stats::CounterSet counters;
    /** Per-bus bus.busy_cycles, indexed by bus (size = num_buses). */
    std::vector<std::uint64_t> per_bus_busy_cycles;
    /** True when latency histograms were collected (--histograms). */
    bool has_histograms = false;
    /** The collected latency distributions (valid iff has_histograms). */
    obs::RunMetrics histograms;
    /** Counter time series (empty unless --sample-every). */
    obs::SampleSeries samples;
};

/**
 * Run @p trace on a machine built from @p config.
 *
 * @param check_consistency Record the serial execution log and replay
 *        it through the consistency checker (slower; sets
 *        RunSummary::consistent).
 * @param max_cycles Cycle budget; exceeding it sets
 *        RunSummary::status to RunStatus::TimedOut.
 */
RunSummary runTrace(SystemConfig config, const Trace &trace,
                    bool check_consistency = false,
                    Cycle max_cycles = System::kDefaultMaxCycles);

/** One-line human summary of a RunSummary. */
std::string describe(const RunSummary &summary);

} // namespace ddc

#endif // DDC_CORE_SIMULATOR_HH
