#include "exp/result.hh"

#include "base/logging.hh"

namespace ddc {
namespace exp {

void
RunResult::setMetric(const std::string &name, double value)
{
    for (auto &[metric_name, metric_value] : metrics) {
        if (metric_name == name) {
            metric_value = value;
            return;
        }
    }
    metrics.emplace_back(name, value);
}

double
RunResult::metric(const std::string &name) const
{
    for (const auto &[metric_name, metric_value] : metrics) {
        if (metric_name == name)
            return metric_value;
    }
    return 0.0;
}

bool
RunResult::hasMetric(const std::string &name) const
{
    for (const auto &[metric_name, metric_value] : metrics) {
        if (metric_name == name)
            return true;
    }
    return false;
}

Json
RunResult::toJson(bool include_timing) const
{
    Json json = Json::object();
    json["index"] = Json(static_cast<std::int64_t>(index));

    Json params_json = Json::object();
    for (const auto &[name, value] : params)
        params_json[name] = Json(value);
    json["params"] = std::move(params_json);

    json["status"] = Json(toString(status));
    json["cycles"] = Json(static_cast<std::uint64_t>(cycles));
    json["total_refs"] = Json(total_refs);
    json["bus_transactions"] = Json(bus_transactions);
    json["consistent"] = Json(consistent);
    if (include_timing) {
        json["wall_time_ms"] = Json(wall_time_ms);
        json["sim_time_ms"] = Json(sim_time_ms);
        json["sim_cycles_per_sec"] = Json(sim_cycles_per_sec);
        json["skipped_cycles"] =
            Json(static_cast<std::uint64_t>(skipped_cycles));
        json["skip_fraction"] =
            Json(cycles > 0 ? static_cast<double>(skipped_cycles) /
                                  static_cast<double>(cycles)
                            : 0.0);
        json["snoop_visits"] = Json(snoop_visits);
        json["snoop_filter_fallbacks"] = Json(snoop_filter_fallbacks);
        json["directory_blocks"] = Json(directory_blocks);
        json["directory_max_load_factor"] =
            Json(directory_max_load_factor);
        json["barrier_epochs"] = Json(barrier_epochs);
        json["mean_lookahead_window"] = Json(mean_lookahead_window);
    }

    Json metrics_json = Json::object();
    for (const auto &[name, value] : metrics)
        metrics_json[name] = Json(value);
    json["metrics"] = std::move(metrics_json);

    Json counters_json = Json::object();
    for (const auto &name : counters.names())
        counters_json[name] = Json(counters.get(name));
    json["counters"] = std::move(counters_json);

    if (!histograms.isNull())
        json["histograms"] = histograms;
    if (!samples.isNull())
        json["samples"] = samples;

    return json;
}

Json
histogramJson(const stats::Histogram &histogram)
{
    Json json = Json::object();
    json["count"] = Json(histogram.count());
    json["mean"] = Json(histogram.mean());
    json["min"] = Json(histogram.min());
    json["max"] = Json(histogram.max());
    json["p50"] = Json(histogram.percentile(0.50));
    json["p90"] = Json(histogram.percentile(0.90));
    json["p99"] = Json(histogram.percentile(0.99));
    json["bucket_width"] = Json(histogram.bucketWidth());
    Json buckets = Json::array();
    for (std::size_t i = 0; i < histogram.numBuckets(); i++) {
        if (histogram.bucketCount(i) == 0)
            continue;
        Json bucket = Json::array();
        bucket.push(Json(static_cast<std::uint64_t>(i) *
                         histogram.bucketWidth()));
        bucket.push(Json(histogram.bucketCount(i)));
        buckets.push(std::move(bucket));
    }
    json["buckets"] = std::move(buckets);
    return json;
}

Json
histogramsJson(const obs::RunMetrics &metrics)
{
    Json json = Json::object();
    json["miss_service"] = histogramJson(metrics.miss_service);
    json["bus_wait"] = histogramJson(metrics.bus_wait);
    json["miss_retries"] = histogramJson(metrics.miss_retries);
    json["lock_acquire"] = histogramJson(metrics.lock_acquire);
    json["lock_handoff"] = histogramJson(metrics.lock_handoff);
    json["write_gap"] = histogramJson(metrics.write_gap);
    json["home_service"] = histogramJson(metrics.home_service);
    json["acks_per_inval"] = histogramJson(metrics.acks_per_inval);
    json["dir_occupancy"] = histogramJson(metrics.dir_occupancy);
    return json;
}

Json
samplesJson(const obs::SampleSeries &series)
{
    Json json = Json::object();
    json["interval"] =
        Json(static_cast<std::uint64_t>(series.interval));
    Json columns = Json::array();
    for (const auto &name : series.columns)
        columns.push(Json(name));
    json["columns"] = std::move(columns);
    Json rows = Json::array();
    for (const auto &row : series.rows) {
        Json row_json = Json::array();
        row_json.push(Json(static_cast<std::uint64_t>(row.cycle)));
        for (std::uint64_t value : row.values)
            row_json.push(Json(value));
        rows.push(std::move(row_json));
    }
    json["rows"] = std::move(rows);
    return json;
}

RunResult
RunResult::fromJson(const Json &json)
{
    RunResult result;
    result.index =
        static_cast<std::size_t>(json.find("index")->asInt());
    for (const auto &[name, value] : json.find("params")->items())
        result.params.emplace_back(name, value.asString());
    result.status = json.find("status")->asString() == toString(
                        RunStatus::TimedOut)
                        ? RunStatus::TimedOut
                        : RunStatus::Finished;
    result.cycles =
        static_cast<Cycle>(json.find("cycles")->asInt());
    result.total_refs =
        static_cast<std::uint64_t>(json.find("total_refs")->asInt());
    result.bus_transactions = static_cast<std::uint64_t>(
        json.find("bus_transactions")->asInt());
    result.consistent = json.find("consistent")->asBool();
    if (const Json *wall = json.find("wall_time_ms"))
        result.wall_time_ms = wall->asDouble();
    if (const Json *sim = json.find("sim_time_ms"))
        result.sim_time_ms = sim->asDouble();
    if (const Json *rate = json.find("sim_cycles_per_sec"))
        result.sim_cycles_per_sec = rate->asDouble();
    if (const Json *skipped = json.find("skipped_cycles"))
        result.skipped_cycles = static_cast<Cycle>(skipped->asInt());
    if (const Json *visits = json.find("snoop_visits"))
        result.snoop_visits = static_cast<std::uint64_t>(visits->asInt());
    if (const Json *fallbacks = json.find("snoop_filter_fallbacks")) {
        result.snoop_filter_fallbacks =
            static_cast<std::uint64_t>(fallbacks->asInt());
    }
    if (const Json *blocks = json.find("directory_blocks")) {
        result.directory_blocks =
            static_cast<std::uint64_t>(blocks->asInt());
    }
    if (const Json *load = json.find("directory_max_load_factor"))
        result.directory_max_load_factor = load->asDouble();
    if (const Json *barriers = json.find("barrier_epochs")) {
        result.barrier_epochs =
            static_cast<std::uint64_t>(barriers->asInt());
    }
    if (const Json *window = json.find("mean_lookahead_window"))
        result.mean_lookahead_window = window->asDouble();
    for (const auto &[name, value] : json.find("metrics")->items())
        result.metrics.emplace_back(name, value.asDouble());
    for (const auto &[name, value] : json.find("counters")->items())
        result.counters.add(name,
                            static_cast<std::uint64_t>(value.asInt()));
    if (const Json *histograms = json.find("histograms"))
        result.histograms = *histograms;
    if (const Json *samples = json.find("samples"))
        result.samples = *samples;
    return result;
}

} // namespace exp
} // namespace ddc
