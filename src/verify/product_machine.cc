#include "verify/product_machine.hh"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/logging.hh"

namespace ddc {

namespace {

/**
 * Abstract product-machine state for one address: per-cache line
 * state plus one freshness bit per copy ("holds the latest version")
 * and one for memory.
 */
struct MState
{
    std::vector<LineState> line;
    std::vector<bool> fresh;
    bool mem_fresh = true;

    bool operator==(const MState &other) const = default;

    /** Canonical byte encoding for hashing. */
    std::string
    key() const
    {
        std::string bytes;
        bytes.reserve(line.size() * 3 + 1);
        for (std::size_t i = 0; i < line.size(); i++) {
            bytes.push_back(static_cast<char>(line[i].tag));
            bytes.push_back(static_cast<char>(line[i].streak));
            bytes.push_back(fresh[i] ? 1 : 0);
        }
        bytes.push_back(mem_fresh ? 1 : 0);
        return bytes;
    }

    std::string
    describe() const
    {
        std::ostringstream os;
        os << "[";
        for (std::size_t i = 0; i < line.size(); i++) {
            if (i)
                os << " ";
            os << toString(line[i]) << (fresh[i] ? "*" : "");
        }
        os << "] mem" << (mem_fresh ? "*" : "");
        return os.str();
    }
};

/** Explorer holding the protocol, options, and BFS bookkeeping. */
class Explorer
{
  public:
    Explorer(const Protocol &protocol, int num_caches,
             const ProductCheckOptions &options)
        : protocol(protocol), n(num_caches), options(options)
    {
    }

    ProductCheckResult
    run()
    {
        MState initial;
        initial.line.assign(static_cast<std::size_t>(n), LineState{});
        initial.fresh.assign(static_cast<std::size_t>(n), false);
        initial.mem_fresh = true;

        enqueue(initial, "initial", initial);
        while (!queue.empty() && result.ok) {
            MState state = queue.front();
            queue.pop_front();
            expand(state);
            if (visited.size() > options.max_states) {
                fail(state, "state-space explosion",
                     "exceeded max_states");
                break;
            }
        }
        result.states_explored = visited.size();
        result.configurations.assign(configurations.begin(),
                                     configurations.end());
        return result;
    }

  private:
    /** Normalize (dead copies carry no freshness), check, enqueue. */
    void
    enqueue(MState state, const std::string &event, const MState &from)
    {
        result.transitions_taken++;
        for (std::size_t i = 0; i < state.line.size(); i++) {
            if (!state.line[i].present()) {
                state.fresh[i] = false;
                if (state.line[i].tag == LineTag::NotPresent)
                    state.line[i] = LineState{};
            }
        }
        checkInvariants(state, event, from);
        if (!result.ok)
            return;
        recordConfiguration(state);
        auto [it, inserted] = visited.insert(state.key());
        (void)it;
        if (inserted)
            queue.push_back(std::move(state));
    }

    void
    fail(const MState &state, const std::string &event,
         const std::string &why)
    {
        if (!result.ok)
            return;
        result.ok = false;
        result.error = why + " (event: " + event +
                       ", state: " + state.describe() + ")";
    }

    /** The Section 4 lemma + latest-value invariant. */
    void
    checkInvariants(const MState &state, const std::string &event,
                    const MState &from)
    {
        int owner = -1;
        for (int i = 0; i < n; i++) {
            if (protocol.needsWriteback(state.line[size(i)])) {
                if (owner >= 0) {
                    fail(from, event, "two dirty owners");
                    return;
                }
                owner = i;
            }
        }
        if (owner >= 0) {
            if (!state.fresh[size(owner)]) {
                fail(from, event, "dirty owner holds a stale value");
                return;
            }
            for (int i = 0; i < n; i++) {
                if (i != owner && state.line[size(i)].present()) {
                    fail(from, event,
                         "live copy coexists with a dirty owner");
                    return;
                }
            }
        } else {
            if (!state.mem_fresh) {
                fail(from, event, "memory stale with no dirty owner");
                return;
            }
            for (int i = 0; i < n; i++) {
                if (state.line[size(i)].present() &&
                    !state.fresh[size(i)]) {
                    fail(from, event,
                         "live copy stale with no dirty owner");
                    return;
                }
            }
        }
    }

    static std::size_t size(int i) { return static_cast<std::size_t>(i); }

    /** Record the canonical tag-multiset of @p state. */
    void
    recordConfiguration(const MState &state)
    {
        std::vector<std::string> tags;
        tags.reserve(state.line.size());
        for (const LineState &line : state.line)
            tags.push_back(toString(line));
        std::sort(tags.begin(), tags.end());
        std::string key;
        for (std::size_t i = 0; i < tags.size(); i++) {
            if (i)
                key += " ";
            key += tags[i];
        }
        configurations.insert(key);
    }

    /** Find the unique cache that would supply a snooped read. */
    int
    findSupplier(const MState &state, int exclude)
    {
        int supplier = -1;
        for (int j = 0; j < n; j++) {
            if (j == exclude || !state.line[size(j)].present())
                continue;
            if (protocol.onSnoop(state.line[size(j)], BusOp::Read).supply) {
                if (supplier >= 0) {
                    fail(state, "supplier search",
                         "two caches claim to own the latest value");
                    return -1;
                }
                supplier = j;
            }
        }
        return supplier;
    }

    /** Deliver an effective bus op to every cache except the issuer. */
    void
    snoopAll(MState &state, int issuer, BusOp op, bool data_is_fresh)
    {
        for (int k = 0; k < n; k++) {
            // Invalid lines still hold the address tag and snoop (the
            // RB read broadcast revives them); only NotPresent lines
            // ignore the bus.
            if (k == issuer ||
                state.line[size(k)].tag == LineTag::NotPresent)
                continue;
            SnoopReaction reaction = protocol.onSnoop(state.line[size(k)],
                                                      op);
            if (reaction.supply)
                continue; // Resolved before broadcast in the real bus.
            state.line[size(k)] = reaction.next;
            if (reaction.snarf)
                state.fresh[size(k)] = data_is_fresh;
        }
    }

    /** Kill-and-supply by owner @p j (leaves any pending read pending). */
    void
    applySupply(const MState &state, int j, const std::string &event)
    {
        if (!state.fresh[size(j)]) {
            fail(state, event, "supplier would broadcast a stale value");
            return;
        }
        MState next = state;
        next.mem_fresh = true;
        next.line[size(j)] = protocol.afterSupply(next.line[size(j)]);
        snoopAll(next, j, BusOp::Write, true);
        enqueue(next, event, state);
    }

    void
    expand(const MState &state)
    {
        // An Invalid line snoops but does not satisfy CPU accesses, so
        // snooping below only applies to present-or-invalid tags; the
        // helpers handle that.
        for (int i = 0; i < n && result.ok; i++)
            expandCache(state, i);
    }

    void
    expandCache(const MState &state, int i)
    {
        const LineState mine = state.line[size(i)];
        const std::string who = "cache " + std::to_string(i);

        // --- CPU read -------------------------------------------------
        CpuReaction read = protocol.onCpuAccess(mine, CpuOp::Read,
                                                options_cls);
        if (!read.needs_bus) {
            // Hit: the theorem check — the value returned is the line's.
            if (!state.fresh[size(i)]) {
                fail(state, who + " read hit", "read returned stale value");
                return;
            }
            MState next = state;
            next.line[size(i)] = read.next;
            enqueue(next, who + " read hit", state);
        } else {
            int supplier = findSupplier(state, i);
            if (!result.ok)
                return;
            if (supplier >= 0) {
                applySupply(state, supplier, who + " read killed by " +
                                                 std::to_string(supplier));
            } else {
                if (!state.mem_fresh) {
                    fail(state, who + " bus read",
                         "bus read would return stale memory");
                    return;
                }
                MState next = state;
                if (read.allocate) {
                    next.line[size(i)] = protocol.afterBusOp(mine,
                                                             BusOp::Read,
                                                             false);
                    next.fresh[size(i)] = true;
                }
                snoopAll(next, i, BusOp::Read, true);
                enqueue(next, who + " bus read", state);
            }
        }

        // --- CPU write ------------------------------------------------
        CpuReaction write = protocol.onCpuAccess(mine, CpuOp::Write,
                                                 options_cls);
        if (!write.needs_bus) {
            // Local write: mints a new version visible only here.
            MState next = state;
            clearFresh(next);
            next.line[size(i)] = write.next;
            next.fresh[size(i)] = true;
            enqueue(next, who + " write hit", state);
        } else {
            MState next = state;
            clearFresh(next);
            next.mem_fresh = true; // BW and BI both update memory.
            if (write.allocate) {
                next.line[size(i)] = protocol.afterBusOp(mine, write.bus_op,
                                                         false);
                next.fresh[size(i)] = true;
            }
            BusOp effective = write.bus_op == BusOp::Invalidate
                                  ? BusOp::Invalidate : BusOp::Write;
            snoopAll(next, i, effective, true);
            enqueue(next,
                    who + (effective == BusOp::Invalidate ? " bus BI"
                                                          : " bus write"),
                    state);
        }

        // --- Flush (precedes RMW-class ops on a dirty copy) ------------
        if (mine.present() && protocol.memoryMayBeStale(mine)) {
            applySupply(state, i, who + " flush");
        }

        // --- Test-and-set ----------------------------------------------
        if (options.with_test_and_set &&
            !(mine.present() && protocol.memoryMayBeStale(mine))) {
            CpuReaction ts = protocol.onCpuAccess(mine, CpuOp::TestAndSet,
                                                  options_cls);
            ddc_assert(ts.needs_bus, "TS must be a bus transaction");
            int supplier = findSupplier(state, i);
            if (!result.ok)
                return;
            if (supplier >= 0) {
                applySupply(state, supplier, who + " TS killed by " +
                                                 std::to_string(supplier));
            } else if (state.mem_fresh) {
                // Resolve the conditional both ways.
                for (bool success : {true, false}) {
                    MState next = state;
                    if (success) {
                        clearFresh(next);
                        next.mem_fresh = true;
                    }
                    if (ts.allocate) {
                        next.line[size(i)] = protocol.afterBusOp(
                            mine, BusOp::Rmw, success);
                        next.fresh[size(i)] = true;
                    }
                    snoopAll(next, i, success ? BusOp::Write : BusOp::Read,
                             true);
                    enqueue(next,
                            who + (success ? " TS success" : " TS fail"),
                            state);
                }
            } else {
                fail(state, who + " TS", "TS would observe stale memory");
                return;
            }
        }

        // --- Eviction ---------------------------------------------------
        if (options.with_evictions && mine.tag != LineTag::NotPresent) {
            MState next = state;
            std::string event = who + " evict";
            if (protocol.needsWriteback(mine)) {
                if (!state.fresh[size(i)]) {
                    fail(state, event, "write-back of a stale value");
                    return;
                }
                next.mem_fresh = true;
                next.line[size(i)] = LineState{};
                snoopAll(next, i, BusOp::Write, true);
                event += " (write-back)";
            } else {
                next.line[size(i)] = LineState{};
            }
            enqueue(next, event, state);
        }
    }

    void
    clearFresh(MState &state)
    {
        for (std::size_t i = 0; i < state.fresh.size(); i++)
            state.fresh[i] = false;
        state.mem_fresh = false;
    }

    const Protocol &protocol;
    int n;
    ProductCheckOptions options;
    DataClass options_cls = DataClass::Shared;
    ProductCheckResult result;
    std::unordered_set<std::string> visited;
    std::set<std::string> configurations;
    std::deque<MState> queue;
};

} // namespace

ProductCheckResult
checkProductMachine(const Protocol &protocol, int num_caches,
                    const ProductCheckOptions &options)
{
    ddc_assert(num_caches >= 1, "need at least one cache");
    Explorer explorer(protocol, num_caches, options);
    return explorer.run();
}

} // namespace ddc
