/**
 * @file
 * Ablation A1: scheme comparison across the archetypal shared-data
 * reference patterns the paper discusses — array initialization
 * (Section 5), producer/consumer cycles, migratory records, lock hot
 * spots (Section 6), and the Cm* application mix.  One row per
 * (workload, protocol): bus transactions per reference and cycles per
 * reference.  This quantifies each design ingredient: read broadcast
 * (RB vs write-once), write broadcast (RWB vs RB), and dynamic
 * classification (both vs write-through).
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

std::vector<std::pair<std::string, Trace>>
workloads()
{
    std::vector<std::pair<std::string, Trace>> result;
    result.emplace_back("array_init", makeArrayInitTrace(4, 512));
    result.emplace_back("producer_consumer",
                        makeProducerConsumerTrace(4, 16, 16, 2));
    result.emplace_back("migratory", makeMigratoryTrace(4, 8, 24));
    result.emplace_back("hot_spot", makeHotSpotTrace(4, 16, 8));
    result.emplace_back("cmstar_mix",
                        makeCmStarTrace(cmStarApplicationA(), 4, 8000, 5));
    return result;
}

void
printReproduction(exp::Session &session)
{
    using stats::Table;

    std::cout <<
        "Ablation A1: bus transactions per reference, by scheme and\n"
        "reference pattern (4 PEs, 256-word caches; lower is better)\n\n";

    auto patterns = workloads();
    auto kinds = allProtocolKinds();

    exp::ParamGrid grid;
    {
        std::vector<std::string> names;
        for (const auto &[name, trace] : patterns)
            names.push_back(name);
        grid.axis("workload", names);
        std::vector<std::string> protocols;
        for (auto kind : kinds)
            protocols.push_back(std::string(toString(kind)));
        grid.axis("protocol", protocols);
    }

    exp::Experiment spec("ablation_protocols",
                         "A1: bus transactions and cycles per reference "
                         "by scheme and reference pattern");
    spec.addGrid(grid, [grid, patterns, kinds](std::size_t flat) {
        auto indices = grid.indicesAt(flat);
        exp::TraceRun run;
        run.config.num_pes = 4;
        run.config.cache_lines = 256;
        run.config.protocol = kinds[indices[1]];
        run.trace = patterns[indices[0]].second;
        return run;
    });
    const auto &results = session.run(spec);

    Table table;
    std::vector<std::string> header{"workload"};
    for (auto kind : kinds)
        header.push_back(std::string(toString(kind)));
    table.setHeader(header);

    Table cycles_table;
    cycles_table.setHeader(header);

    std::size_t flat = 0;
    for (const auto &[name, trace] : patterns) {
        std::vector<std::string> row{name};
        std::vector<std::string> cycle_row{name};
        for (std::size_t p = 0; p < kinds.size(); p++, flat++) {
            const auto &result = results[flat];
            row.push_back(Table::num(result.metric("bus_per_ref"), 3));
            cycle_row.push_back(Table::num(
                static_cast<double>(result.cycles) /
                    static_cast<double>(result.total_refs), 3));
        }
        table.addRow(row);
        cycles_table.addRow(cycle_row);
    }
    std::cout << table.render() << "\n";
    std::cout << "Cycles per reference (same runs):\n\n"
              << cycles_table.render() << "\n";
    std::cout <<
        "Expected shape: RWB <= RB on every shared pattern (write\n"
        "broadcast); RB < WriteOnce on read-shared patterns (read\n"
        "broadcast); both << WriteThrough on write-heavy private phases\n"
        "(dynamic classification); CmStar worst everywhere shared data\n"
        "matters since it cannot cache it.\n\n";
}

void
BM_ProtocolOnWorkload(benchmark::State &state)
{
    auto kinds = allProtocolKinds();
    auto kind = kinds[static_cast<std::size_t>(state.range(0))];
    auto trace = makeProducerConsumerTrace(4, 16, 8, 2);
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = 4;
        config.cache_lines = 256;
        config.protocol = kind;
        auto summary = runTrace(config, trace);
        benchmark::DoNotOptimize(summary.cycles);
    }
    state.SetLabel(std::string(toString(kind)));
}
BENCHMARK(BM_ProtocolOnWorkload)->DenseRange(0, 4)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
