/**
 * @file
 * Section 7 reproduction: shared-bus bandwidth.
 *
 * The paper's model: SBB >= m * x / h, with the worked example
 * 1/h = 10%, m = 128, x = 1 MACS  =>  SBB = 12.8 MACS.
 *
 * We print that analytic table, then cross-check the model against
 * the simulator: per-PE bus-transaction rates measured on a Cm*-mix
 * workload under the RB scheme, swept over the PE count, showing
 * where the single bus saturates (utilization -> 1, per-PE throughput
 * collapsing).
 */

#include "bench_common.hh"

#include <iostream>

#include "core/simulator.hh"
#include "stats/table.hh"
#include "trace/synthetic.hh"

namespace {

using namespace ddc;

void
printAnalyticModel()
{
    using stats::Table;

    std::cout <<
        "Section 7: required shared-bus bandwidth  SBB >= m * x / h\n"
        "(x = accesses/second per PE in MACS, 1/h = cache miss ratio,\n"
        "m = number of PEs on the shared bus)\n\n";

    Table table("Analytic model (x = 1 MACS)");
    table.setHeader({"miss ratio 1/h", "m (PEs)", "required SBB (MACS)"});
    for (double miss : {0.05, 0.10, 0.20}) {
        for (int m : {32, 64, 128, 256}) {
            table.addRow({Table::num(miss, 2), std::to_string(m),
                          Table::num(m * 1.0 * miss, 1)});
        }
        table.addSeparator();
    }
    std::cout << table.render();
    std::cout << "\nPaper's example: 1/h = 10%, m = 128, x = 1 MACS  =>  "
              << "SBB = " << 128 * 1.0 * 0.10 << " MACS\n\n";
}

struct SweepPoint
{
    int num_pes;
    double bus_per_ref;
    double utilization;
    double refs_per_cycle_per_pe;
};

SweepPoint
measure(int num_pes)
{
    const std::size_t refs_per_pe = 4000;
    auto trace = makeCmStarTrace(cmStarApplicationA(), num_pes,
                                 refs_per_pe, 7);
    SystemConfig config;
    config.num_pes = num_pes;
    config.cache_lines = 1024;
    config.protocol = ProtocolKind::Rb;
    auto summary = runTrace(config, trace);

    SweepPoint point;
    point.num_pes = num_pes;
    point.bus_per_ref = summary.bus_per_ref;
    point.utilization =
        static_cast<double>(summary.bus_transactions) /
        static_cast<double>(summary.cycles);
    point.refs_per_cycle_per_pe =
        static_cast<double>(summary.total_refs) /
        static_cast<double>(summary.cycles) / num_pes;
    return point;
}

void
printMeasuredSweep()
{
    using stats::Table;

    Table table("Measured on the simulator (RB scheme, Cm*-mix "
                "workload, 1024-word caches, single bus)");
    table.setHeader({"PEs", "bus ops/ref (=1/h)", "bus utilization",
                     "refs/cycle/PE", "model: m/h"});
    for (int m : {1, 2, 4, 8, 16, 32, 64}) {
        auto point = measure(m);
        table.addRow({std::to_string(m), Table::num(point.bus_per_ref, 3),
                      Table::num(point.utilization, 3),
                      Table::num(point.refs_per_cycle_per_pe, 3),
                      Table::num(m * point.bus_per_ref, 2)});
    }
    std::cout << table.render();
    std::cout <<
        "\nReading: one bus serves one transaction per cycle, so the bus\n"
        "saturates when m * (bus ops/ref) approaches 1 ref/cycle of\n"
        "demand - exactly the paper's SBB >= m*x/h with SBB fixed at one\n"
        "transaction/cycle.  Past saturation, per-PE throughput falls as\n"
        "1/m while utilization pins at ~1.\n\n";
}

void
printReproduction()
{
    printAnalyticModel();
    printMeasuredSweep();
}

void
BM_BandwidthSweep(benchmark::State &state)
{
    auto num_pes = static_cast<int>(state.range(0));
    auto trace = makeCmStarTrace(cmStarApplicationA(), num_pes, 2000, 7);
    for (auto _ : state) {
        SystemConfig config;
        config.num_pes = num_pes;
        config.cache_lines = 1024;
        config.protocol = ProtocolKind::Rb;
        auto summary = runTrace(config, trace);
        benchmark::DoNotOptimize(summary.cycles);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            num_pes * 2000);
}
BENCHMARK(BM_BandwidthSweep)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

} // namespace

DDC_BENCH_MAIN(printReproduction)
