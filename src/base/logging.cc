#include "base/logging.hh"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace ddc {

namespace {

/**
 * One mutex for every log line so concurrent experiment workers never
 * interleave output.  Function-local static: thread-safe to initialize
 * and usable from any point of the program's lifetime.
 */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

void
emitLine(const char *severity, const char *file, int line,
         const std::string &message)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::cerr << severity << ": " << message << " [" << file << ":"
              << line << "]" << std::endl;
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &message)
{
    emitLine("panic", file, line, message);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &message)
{
    emitLine("fatal", file, line, message);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &message)
{
    emitLine("warn", file, line, message);
}

} // namespace ddc
