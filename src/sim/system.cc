#include "sim/system.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <string>

#include "base/logging.hh"
#include "sim/trace_agent.hh"

namespace ddc {

std::string_view
toString(RunStatus status)
{
    switch (status) {
      case RunStatus::Finished: return "finished";
      case RunStatus::TimedOut: return "timed_out";
    }
    return "?";
}

namespace {

// Atomic so parallel sweeps (exp runner worker threads) may read it
// while the main thread parses flags; flipped only before any System
// runs in practice.
std::atomic<bool> quiescentSkip{true};

} // namespace

void
setQuiescentSkipEnabled(bool enabled)
{
    quiescentSkip.store(enabled, std::memory_order_relaxed);
}

bool
quiescentSkipEnabled()
{
    return quiescentSkip.load(std::memory_order_relaxed);
}

System::System(const SystemConfig &config) : config(config)
{
    ddc_assert(config.num_pes >= 1, "need at least one PE");
    ddc_assert(config.num_buses >= 1, "need at least one bus");
    ddc_assert(config.cache_lines >= 1, "need at least one cache line");
    ddc_assert(config.block_words >= 1, "need at least one word per block");

    proto = makeProtocol(config.protocol, config.rwb_writes_to_local);

    for (int b = 0; b < config.num_buses; b++) {
        busStats.push_back(std::make_unique<stats::CounterSet>());
        memories.push_back(std::make_unique<Memory>(*busStats.back()));
        buses.push_back(std::make_unique<Bus>(
            *memories.back(), config.arbiter, clock, *busStats.back(),
            config.arbiter_seed + static_cast<std::uint64_t>(b),
            config.block_words, config.memory_latency,
            config.snoop_filter));
    }

    ExecutionLog *log = config.record_log ? &execLog : nullptr;
    auto num_pes = static_cast<std::size_t>(config.num_pes);
    agentStalled.assign(num_pes, 0);
    agentWake.assign(num_pes, 0);
    stallAccrued.assign(num_pes, 0);
    for (PeId pe = 0; pe < config.num_pes; pe++) {
        for (int b = 0; b < config.num_buses; b++) {
            caches.push_back(std::make_unique<Cache>(
                pe, config.cache_lines, *proto, clock, cacheStats, log,
                config.block_words, config.ways));
            caches.back()->connectBus(*buses[static_cast<std::size_t>(b)]);
            caches.back()->setWakeFlag(
                &agentWake[static_cast<std::size_t>(pe)]);
        }
    }
    agents.resize(num_pes);

    static constexpr std::string_view kMissPrefixes[] = {
        "cache.read_miss.", "cache.write_miss.", "cache.ts.",
        "cache.readlock.", "cache.writeunlock."};
    static constexpr std::string_view kClasses[] = {"Code", "Local",
                                                    "Shared"};
    for (auto prefix : kMissPrefixes) {
        for (auto cls : kClasses) {
            missStats.push_back(cacheStats.intern(std::string(prefix) +
                                                  std::string(cls)));
        }
    }

    recorder = obs::makeRecorder(config.histograms, config.sample_every);
    if (recorder) {
        for (int b = 0; b < config.num_buses; b++)
            buses[static_cast<std::size_t>(b)]->setObserver(
                recorder.get(), b);
        for (auto &cache : caches)
            cache->setObserver(recorder.get());
        obsQuiesce = recorder->trace(obs::Category::Quiesce);
        sampler = recorder->sampler();
    }
    if (sampler) {
        for (int b = 0; b < config.num_buses; b++) {
            auto *bus_stats = busStats[static_cast<std::size_t>(b)].get();
            auto busy = bus_stats->intern("bus.busy_cycles");
            sampler->addColumn(
                "bus" + std::to_string(b) + ".busy_cycles",
                [bus_stats, busy](Cycle) {
                    return bus_stats->get(busy);
                });
        }
        auto refs = cacheStats.intern("cache.refs");
        sampler->addColumn("refs", [this, refs](Cycle) {
            return cacheStats.get(refs);
        });
        sampler->addColumn("miss_refs",
                           [this](Cycle) { return missRefs(); });
        // One census scan per sample, shared by the eight per-tag
        // columns through a cycle-stamped buffer.
        struct Census
        {
            Cycle at = kNever;
            std::array<std::uint64_t, Cache::kNumTags> counts{};
        };
        auto census = std::make_shared<Census>();
        for (std::size_t t = 0; t < Cache::kNumTags; t++) {
            sampler->addColumn(
                "tags." +
                    std::string(toString(static_cast<LineTag>(t))),
                [this, census, t](Cycle at) {
                    if (census->at != at) {
                        census->counts.fill(0);
                        for (auto &cache : caches)
                            cache->addTagCensus(census->counts.data());
                        census->at = at;
                    }
                    return census->counts[t];
                });
        }
    }
}

CacheSet
System::cacheSetFor(PeId pe)
{
    std::vector<Cache *> banks;
    for (int b = 0; b < config.num_buses; b++) {
        banks.push_back(
            caches[static_cast<std::size_t>(pe * config.num_buses + b)]
                .get());
    }
    return CacheSet(std::move(banks));
}

void
System::loadTrace(const Trace &trace)
{
    ddc_assert(trace.numPes() <= config.num_pes,
               "trace has more PE streams than the system has PEs");
    for (PeId pe = 0; pe < config.num_pes; pe++) {
        std::vector<MemRef> stream;
        if (pe < trace.numPes())
            stream = trace.stream(pe);
        agents[static_cast<std::size_t>(pe)] = std::make_unique<TraceAgent>(
            pe, cacheSetFor(pe), std::move(stream), cacheStats);
    }
    rebuildActiveAgents();
}

void
System::setProgram(PeId pe, Program program)
{
    ddc_assert(pe >= 0 && pe < config.num_pes, "PE id out of range");
    agents[static_cast<std::size_t>(pe)] = std::make_unique<Processor>(
        pe, cacheSetFor(pe), std::move(program), cacheStats);
    rebuildActiveAgents();
}

void
System::rebuildActiveAgents()
{
    flushStalls();
    std::fill(agentStalled.begin(), agentStalled.end(), 0);
    std::fill(agentWake.begin(), agentWake.end(), 0);
    activeAgents.clear();
    for (std::size_t i = 0; i < agents.size(); i++) {
        if (agents[i] && !agents[i]->done())
            activeAgents.push_back(i);
    }
}

void
System::flushStalls() const
{
    for (std::size_t i = 0; i < stallAccrued.size(); i++) {
        if (stallAccrued[i] > 0 && agents[i]) {
            agents[i]->addStallCycles(stallAccrued[i]);
            stallAccrued[i] = 0;
        }
    }
}

Processor &
System::processor(PeId pe)
{
    ddc_assert(pe >= 0 && pe < config.num_pes, "PE id out of range");
    auto *agent = agents[static_cast<std::size_t>(pe)].get();
    auto *processor = dynamic_cast<Processor *>(agent);
    if (processor == nullptr)
        ddc_fatal("PE ", pe, " is not running a program");
    return *processor;
}

void
System::tick()
{
    for (auto &bus : buses)
        bus->tick();
    // Tick the still-running agents in PE order and drop the ones
    // that finished; compaction is stable so the tick (and execution
    // log commit) order never changes.  An agent stalled on a miss is
    // skipped without even the virtual call until its cache raises
    // the wake flag; each skipped tick would only have accrued one
    // stall cycle, added in bulk at wake (or by flushStalls()).
    std::size_t out = 0;
    for (std::size_t index : activeAgents) {
        if (agentStalled[index]) {
            if (!agentWake[index]) {
                stallAccrued[index]++;
                activeAgents[out++] = index;
                continue;
            }
            agentStalled[index] = 0;
            agentWake[index] = 0;
            if (stallAccrued[index] > 0) {
                agents[index]->addStallCycles(stallAccrued[index]);
                stallAccrued[index] = 0;
            }
        }
        agents[index]->tick();
        if (agents[index]->stalledOnCompletion()) {
            agentStalled[index] = 1;
            agentWake[index] = 0;
        }
        if (!agents[index]->done())
            activeAgents[out++] = index;
    }
    activeAgents.resize(out);
    clock.now++;
}

Cycle
System::earliestNextEvent() const
{
    Cycle earliest = kNever;
    for (const auto &bus : buses) {
        Cycle next = bus->nextEventCycle(clock.now);
        if (next <= clock.now)
            return clock.now;
        earliest = std::min(earliest, next);
    }
    for (std::size_t index : activeAgents) {
        // A stalled agent with no wake pending can only be woken by
        // its cache's completion: kNever, without the virtual call.
        if (agentStalled[index] && !agentWake[index])
            continue;
        Cycle next = agents[index]->nextEventCycle(clock.now);
        if (next <= clock.now)
            return clock.now;
        earliest = std::min(earliest, next);
    }
    return earliest;
}

void
System::skipQuiescent(Cycle count)
{
    if (obsQuiesce) {
        obs::TraceEvent event;
        event.ts = clock.now;
        event.dur = count;
        event.name = "quiesce";
        event.phase = 'X';
        event.track = obs::kTrackSim;
        event.tid = 0;
        obsQuiesce->push(event);
    }
    for (auto &bus : buses)
        bus->skipCycles(count);
    for (std::size_t index : activeAgents)
        agents[index]->skipCycles(count);
    clock.now += count;
    skipped += count;
}

Cycle
System::run(Cycle max_cycles)
{
    Cycle start = clock.now;
    Cycle end = start + max_cycles;
    // Next-event time advance: when no bus can grant and no agent can
    // act this cycle, jump the clock to the earliest future event
    // (typically the end of a memory-latency transfer) instead of
    // ticking through the quiescent interval.  Every skipped cycle is
    // bulk-accounted exactly as a tick would have, so counters, the
    // execution log, and arbiter RNG streams are byte-identical with
    // skipping on or off.
    bool skipping = config.skip_quiescent && quiescentSkipEnabled();
    while (!allDone() && clock.now < end) {
        if (sampler && sampler->due(clock.now))
            sampler->sample(clock.now);
        if (skipping) {
            Cycle next = earliestNextEvent();
            if (next > clock.now) {
                // kNever (all components blocked on each other) fast-
                // forwards to the budget, reported as timed_out below.
                skipQuiescent(std::min(next, end) - clock.now);
                continue;
            }
        }
        tick();
    }
    // Agents still stalled (timeout) carry unflushed skipped-stall
    // cycles; account them before anyone reads counters.
    flushStalls();
    run_status = allDone() ? RunStatus::Finished : RunStatus::TimedOut;
    if (run_status == RunStatus::TimedOut) {
        ddc_warn("System::run hit its cycle budget (", max_cycles,
                 " cycles) with agents still busy; reporting timed_out");
    }
    return clock.now - start;
}

bool
System::allDone() const
{
    return activeAgents.empty();
}

const Cache &
System::cacheBank(PeId pe, Addr addr) const
{
    ddc_assert(pe >= 0 && pe < config.num_pes, "PE id out of range");
    // Interleave across buses at block granularity so a block never
    // straddles two banks (with one-word blocks this is the paper's
    // least-significant-address-bit split).
    int bank = static_cast<int>(
        (addr / static_cast<Addr>(config.block_words)) %
        static_cast<Addr>(config.num_buses));
    return *caches[static_cast<std::size_t>(pe * config.num_buses + bank)];
}

LineState
System::lineState(PeId pe, Addr addr) const
{
    return cacheBank(pe, addr).lineState(addr);
}

Word
System::cacheValue(PeId pe, Addr addr) const
{
    return cacheBank(pe, addr).lineValue(addr);
}

Word
System::memoryValue(Addr addr) const
{
    auto bank = static_cast<std::size_t>(
        (addr / static_cast<Addr>(config.block_words)) %
        static_cast<Addr>(config.num_buses));
    return memories[bank]->peek(addr);
}

void
System::pokeMemory(Addr addr, Word value)
{
    auto bank = static_cast<std::size_t>(
        (addr / static_cast<Addr>(config.block_words)) %
        static_cast<Addr>(config.num_buses));
    memories[bank]->poke(addr, value);
}

Word
System::coherentValue(Addr addr) const
{
    for (PeId pe = 0; pe < config.num_pes; pe++) {
        if (proto->needsWriteback(lineState(pe, addr)))
            return cacheValue(pe, addr);
    }
    return memoryValue(addr);
}

stats::CounterSet
System::counters() const
{
    flushStalls();
    stats::CounterSet merged;
    merged.merge(cacheStats);
    for (const auto &bus_stats : busStats)
        merged.merge(*bus_stats);
    return merged;
}

const stats::CounterSet &
System::busCounters(int bus) const
{
    ddc_assert(bus >= 0 && bus < config.num_buses, "bus index out of range");
    return *busStats[static_cast<std::size_t>(bus)];
}

std::uint64_t
System::totalBusTransactions() const
{
    std::uint64_t total = 0;
    for (const auto &bus_stats : busStats)
        total += bus_stats->get("bus.busy_cycles");
    return total;
}

std::uint64_t
System::snoopVisits() const
{
    std::uint64_t total = 0;
    for (const auto &bus : buses)
        total += bus->snoopVisits();
    return total;
}

std::uint64_t
System::missRefs() const
{
    std::uint64_t total = 0;
    for (auto id : missStats)
        total += cacheStats.get(id);
    return total;
}

} // namespace ddc
